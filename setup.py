"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` falls back to this legacy path
when PEP 660 editable builds are unavailable (no ``bdist_wheel``).
"""
from setuptools import setup

setup()
