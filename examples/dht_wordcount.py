#!/usr/bin/env python
"""Word count on the distributed hash table, end to end through serve.

The classic irregular workload, run the way a production client would:
this script starts a sharded job server on a unix socket (the same
asyncio front end ``python -m repro.serve start`` runs), submits
``dht_wordcount`` jobs over JSON-lines, and prints the top words from
the job summary.

Under the hood each job builds a :class:`repro.structs.DHash` on the
shard's warm rank pool and streams token batches through it with
``add_many`` — every batch is two combining exchanges through the
crystal router, tokens hashed to buckets, buckets dealt cyclically over
ranks — then reads every count back with one batched ``lookup_many``.
Submitting the same text twice shows content routing at work: both jobs
land on the same shard, the second on an already-warm mesh.

Run:  python examples/dht_wordcount.py [--text-file PATH] [--top N]
Docs: docs/structs.md (bucket layout, batching protocol, rebalancing).
"""

import argparse
import pathlib
import threading
import time

from repro.serve.frontend import serve_async
from repro.serve.server import JobServer, ServeClient

DEFAULT_TEXT = """
It was the best of times, it was the worst of times, it was the age of
wisdom, it was the age of foolishness, it was the epoch of belief, it
was the epoch of incredulity, it was the season of Light, it was the
season of Darkness, it was the spring of hope, it was the winter of
despair, we had everything before us, we had nothing before us, we were
all going direct to Heaven, we were all going direct the other way.
"""


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--text-file", default=None,
                    help="count words of this file instead of the built-in")
    ap.add_argument("--top", type=int, default=10)
    ap.add_argument("--nranks", type=int, default=4)
    args = ap.parse_args()
    text = (pathlib.Path(args.text_file).read_text()
            if args.text_file else DEFAULT_TEXT)

    sock = "/tmp/repro-dht-wordcount.sock"
    server = JobServer(args.nranks, shards=2)
    thread = threading.Thread(target=serve_async, args=(server, sock),
                              daemon=True)
    thread.start()

    client = None
    for _ in range(200):                      # wait for the socket to bind
        try:
            client = ServeClient(sock, timeout=300)
            client.request("ping")
            break
        except (FileNotFoundError, ConnectionRefusedError, OSError):
            time.sleep(0.05)
    assert client is not None, "server socket never came up"

    spec = {"text": text, "top": args.top, "batch": 64}
    for attempt in ("cold", "warm"):
        t0 = time.monotonic()
        reply = client.request("submit", kind="dht_wordcount", spec=spec)
        wall = time.monotonic() - t0
        assert reply["ok"], reply
        job = reply["job"]
        summary = job["summary"]
        grew = (f" (bucket space grew to {summary['nbuckets']})"
                if summary["rebalances"] else "")
        print(f"[{attempt}] shard={job['shard']} wall={wall:.2f}s "
              f"tokens={summary['total_tokens']} "
              f"unique={summary['unique_tokens']} "
              f"rebalances={summary['rebalances']}{grew}")
    print(f"\ntop {args.top} words:")
    for token, count in summary["top"]:
        print(f"  {count:4d}  {token}")

    client.request("stop")
    thread.join(30)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
