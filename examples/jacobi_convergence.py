#!/usr/bin/env python
"""The COMPLETE Figure 4 — with the convergence test the paper elided.

Figure 4 reads ``while ( not converged ) do ... -- code to check
convergence``.  This example fills in that code using forall
*reductions* (``maxdiff := max(maxdiff, ...)``), which lower to local
folds plus a recursive-doubling allreduce — and demonstrates a real
numerical subtlety the simulator exposes: the paper's undamped
neighbour-averaging kernel **oscillates** on bipartite meshes (the
checkerboard mode has eigenvalue −1), so the damped variant
``a[i] := (old_a[i] + x) / 2`` is used to reach a fixed point.

Run:  python examples/jacobi_convergence.py
"""

import numpy as np

from repro.lang import compile_kali
from repro.machine.cost import NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep

KALI_SOURCE = """
processors Procs : array[1..P] with P in 1..n;

const n : integer;
const width : integer;
const tol : real;

var a, old_a : array[1..n] of real dist by [ block ] on Procs;
    count    : array[1..n] of integer dist by [ block ] on Procs;
    adj      : array[1..n, 1..width] of integer dist by [ block, * ] on Procs;
    coef     : array[1..n, 1..width] of real dist by [ block, * ] on Procs;
var converged : boolean;
var maxdiff : real;
var sweeps : integer;

converged := false;
sweeps := 0;
while not converged do
    -- copy mesh values
    forall i in 1..n on old_a[i].loc do
        old_a[i] := a[i];
    end;
    -- damped relaxation (omega = 1/2; undamped oscillates on bipartite grids)
    forall i in 1..n on a[i].loc do
        var x : real;
        x := 0.0;
        for j in 1..count[i] do
            x := x + coef[i,j] * old_a[ adj[i,j] ];
        end;
        if (count[i] > 0) then a[i] := 0.5 * old_a[i] + 0.5 * x; end;
    end;
    -- code to check convergence (a max-reduction forall)
    maxdiff := 0.0;
    forall i in 1..n on a[i].loc do
        maxdiff := max(maxdiff, abs(a[i] - old_a[i]));
    end;
    converged := maxdiff < tol;
    sweeps := sweeps + 1;
end;
print("converged after", sweeps, "sweeps; final maxdiff", maxdiff);
"""

SIDE = 16
P = 8
TOL = 1e-4


def main() -> None:
    mesh = five_point_grid(SIDE, SIDE)
    rng = np.random.default_rng(2026)
    init = rng.random(mesh.n)

    result = compile_kali(KALI_SOURCE).run(
        nprocs=P,
        machine=NCUBE7,
        consts={"n": mesh.n, "width": mesh.width, "tol": TOL},
        inputs={"a": init, "count": mesh.count, "adj": mesh.adj + 1,
                "coef": mesh.coef},
    )
    for line in result.output:
        print("kali |", line)

    # Sequential oracle with identical update and stopping rule.
    ref = init.copy()
    sweeps = 0
    while True:
        new = 0.5 * ref + 0.5 * reference_sweep(mesh, ref)
        diff = np.abs(new - ref).max()
        ref = new
        sweeps += 1
        if diff < TOL:
            break
    assert result.scalars["sweeps"] == sweeps, "sweep counts must agree"
    assert np.allclose(result.arrays["a"], ref)
    print(f"oracle agrees: {sweeps} sweeps, identical field.")
    print()
    t = result.timing
    stats = t.cache_stats()
    print(f"inspector ran once ({t.inspector_time:.3f}s) and its schedule "
          f"served all {sweeps} sweeps: {stats['hits']} cache hits, "
          f"{stats['misses']} misses, {stats['invalidations']} invalidations.")
    print(f"executor total {t.executor_time:.2f}s on {NCUBE7.name} "
          f"({t.executor_time / sweeps * 1e3:.1f} ms/sweep, including the "
          "convergence allreduce).")


if __name__ == "__main__":
    main()
