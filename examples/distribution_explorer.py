#!/usr/bin/env python
"""Exploring data distributions without rewriting the program (§2.4).

"The global name space model used here allows the bodies of the forall
loops to be independent of the distribution of the data ... a variety of
distribution patterns can easily be tried by trivial modification of
this program.  Such a modification in a message passing language would
involve extensive rewriting of the communications statements."

This example runs ONE stencil program under five distributions and
prints, for each: communication volume, inspector/executor virtual time
on both machines, and confirms all answers are identical.

Run:  python examples/distribution_explorer.py
"""

import numpy as np

from repro.apps.jacobi import build_jacobi
from repro.distributions import Block, BlockCyclic, Custom, Cyclic
from repro.machine.cost import IPSC2, NCUBE7
from repro.meshes.regular import five_point_grid
from repro.util.fmt import render_table

SIDE = 48
P = 8
SWEEPS = 10


def main() -> None:
    mesh = five_point_grid(SIDE, SIDE)
    rng = np.random.default_rng(17)
    init = rng.random(mesh.n)

    # A user-defined distribution: snake rows across processors.
    rows_per = SIDE // P
    snake = ((np.arange(mesh.n) // SIDE) // rows_per).clip(0, P - 1)

    distributions = [
        ("block", lambda: Block()),
        ("cyclic", lambda: Cyclic()),
        ("block_cyclic(16)", lambda: BlockCyclic(16)),
        ("block_cyclic(64)", lambda: BlockCyclic(64)),
        ("custom(row bands)", lambda: Custom(snake)),
    ]

    reference = None
    rows = []
    for name, mk in distributions:
        row = [name]
        for machine in (NCUBE7, IPSC2):
            prog = build_jacobi(mesh, P, machine=machine, dist=mk(),
                                initial=init)
            res = prog.run(sweeps=SWEEPS)
            if reference is None:
                reference = prog.solution
            else:
                assert np.allclose(prog.solution, reference), name
            if machine is NCUBE7:
                elems = res.engine.counter_sum("executor_elems_sent") // SWEEPS
                row.append(str(elems))
                row.append(res.strategies()["jacobi-relax"])
            row.append(f"{res.inspector_time:.3f}")
            row.append(f"{res.executor_time:.3f}")
        rows.append(row)

    print(render_table(
        f"One program, five distributions — {SIDE}x{SIDE} Jacobi, P={P}, "
        f"{SWEEPS} sweeps",
        ["distribution", "elems/sweep", "analysis",
         "NCUBE insp", "NCUBE exec", "iPSC insp", "iPSC exec"],
        rows,
    ))
    print()
    print("All five produced identical solutions; only the dist clause "
          "changed.  Block minimises stencil traffic; cyclic ships nearly "
          "every neighbour; block-cyclic interpolates.")


if __name__ == "__main__":
    main()
