#!/usr/bin/env python
"""The paper's motivating workload: PDE relaxation on an unstructured mesh.

The paper's evaluation ran Figure 4 on rectangular grids because "the
optimal static domain decomposition is obvious"; its motivation, though,
is *irregular* meshes, where the adjacency is data and the inspector is
indispensable.  This example:

1. builds a random Delaunay mesh (~6 neighbours/node, as §4 predicts),
2. partitions it two ways — naive block by node id, and recursive
   coordinate bisection producing a user-defined distribution,
3. runs the same Jacobi program under both (one-argument change!),
4. reports solution agreement, communication volume, and virtual times.

Run:  python examples/jacobi_unstructured.py
"""

import numpy as np

from repro.apps.jacobi import build_jacobi
from repro.distributions import Block, Custom
from repro.machine.cost import NCUBE7
from repro.meshes.partition import coordinate_bisection, edge_cut, partition_imbalance
from repro.meshes.regular import reference_sweep
from repro.meshes.unstructured import average_degree, random_unstructured_mesh

NODES = 4000
P = 16
SWEEPS = 25


def main() -> None:
    mesh, points = random_unstructured_mesh(NODES, seed=7, jitter=0.4)
    print(f"mesh: {mesh.n} nodes, {mesh.total_references()} directed edges, "
          f"average degree {average_degree(mesh):.2f} "
          "(paper §4 predicts ~6 for 2-d unstructured grids)")

    rng = np.random.default_rng(3)
    init = rng.random(mesh.n)
    ref = init.copy()
    for _ in range(SWEEPS):
        ref = reference_sweep(mesh, ref)

    owners_rcb = coordinate_bisection(points, P)
    print(f"RCB partition: imbalance {partition_imbalance(owners_rcb, P):.3f}, "
          f"edge cut {edge_cut(mesh.adj, mesh.count, owners_rcb)}")
    block_owners = (np.arange(mesh.n) * P) // mesh.n
    print(f"block-by-id:  edge cut {edge_cut(mesh.adj, mesh.count, block_owners)}")
    print()

    for name, dist in [
        ("block-by-node-id", Block()),
        ("RCB user-defined", Custom(owners_rcb)),
    ]:
        prog = build_jacobi(mesh, P, machine=NCUBE7, dist=dist, initial=init)
        res = prog.run(sweeps=SWEEPS)
        assert np.allclose(prog.solution, ref), "solution must match oracle"
        elems = res.engine.counter_sum("executor_elems_sent") // SWEEPS
        print(f"[{name}]")
        print(f"  strategy: {res.strategies()}")
        print(f"  inspector {res.inspector_time:.3f}s  "
              f"executor {res.executor_time:.3f}s  "
              f"(overhead {100 * res.inspector_overhead:.1f}%)")
        print(f"  elements communicated per sweep: {elems}")
        print()

    print("Both distributions give the oracle's answer; the dist clause is "
          "the only thing that changed (paper §2.4).")


if __name__ == "__main__":
    main()
