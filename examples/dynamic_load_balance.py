#!/usr/bin/env python
"""Dynamic load balancing via run-time redistribution (paper §6).

The paper closes: "We also plan to look at more complex example programs,
including those requiring dynamic load balancing."  This example builds
that future: an unstructured-mesh Jacobi solver that *starts* with a poor
decomposition (block by node id), measures its per-sweep cost, then
**redistributes every array to an RCB partition mid-run** — the cached
communication schedules invalidate automatically, the inspector re-runs
once under the new layout, and the remaining sweeps run faster because
far fewer mesh edges cross processor boundaries.

Run:  python examples/dynamic_load_balance.py
"""

import numpy as np

from repro.apps.jacobi import build_jacobi
from repro.distributions import Custom
from repro.machine.cost import NCUBE7
from repro.meshes.partition import coordinate_bisection, edge_cut
from repro.meshes.regular import reference_sweep
from repro.meshes.unstructured import random_unstructured_mesh

NODES = 3000
P = 16
SWEEPS_BEFORE = 10
SWEEPS_AFTER = 10


def main() -> None:
    # Shuffle node ids so "block by id" is a genuinely bad partition —
    # the situation a solver faces after adaptive refinement.
    mesh, points = random_unstructured_mesh(NODES, seed=21, jitter=0.45,
                                            locality_sort=False)
    rng = np.random.default_rng(4)
    init = rng.random(mesh.n)

    block_owners = (np.arange(mesh.n) * P) // mesh.n
    rcb_owners = coordinate_bisection(points, P)
    print(f"edge cut, block-by-id: {edge_cut(mesh.adj, mesh.count, block_owners)}")
    print(f"edge cut, RCB:         {edge_cut(mesh.adj, mesh.count, rcb_owners)}")
    print()

    prog = build_jacobi(mesh, P, machine=NCUBE7, initial=init)
    copy_loop, relax_loop = prog.copy_loop, prog.relax_loop
    timings = {}

    def program(kr):
        # one warm-up sweep absorbs the initial inspector run
        yield from kr.forall(copy_loop)
        yield from kr.forall(relax_loop)
        t0 = yield from kr.now()
        for _ in range(SWEEPS_BEFORE):
            yield from kr.forall(copy_loop)
            yield from kr.forall(relax_loop)
        t1 = yield from kr.now()

        # --- the rebalance: move all five arrays to the RCB layout, then
        # one sweep that triggers the re-inspection under the new layout
        for name in ("a", "old_a", "count", "adj", "coef"):
            yield from kr.redistribute(name, Custom(rcb_owners))
        yield from kr.forall(copy_loop)
        yield from kr.forall(relax_loop)
        t2 = yield from kr.now()

        for _ in range(SWEEPS_AFTER):
            yield from kr.forall(copy_loop)
            yield from kr.forall(relax_loop)
        t3 = yield from kr.now()
        if kr.id == 0:
            timings.update(before=t1 - t0, rebalance=t2 - t1, after=t3 - t2)

    res = prog.ctx.run(program)

    # Verify numerics against the sequential oracle (+2 warm/transition
    # sweeps).
    ref = init.copy()
    for _ in range(SWEEPS_BEFORE + SWEEPS_AFTER + 2):
        ref = reference_sweep(mesh, ref)
    assert np.allclose(prog.solution, ref), "solution must match oracle"

    per_before = timings["before"] / SWEEPS_BEFORE
    per_after = timings["after"] / SWEEPS_AFTER
    print(f"per-sweep virtual time before rebalance: {per_before * 1e3:8.1f} ms")
    print(f"rebalance one-off (data motion + re-inspection + 1 sweep): "
          f"{timings['rebalance'] * 1e3:.1f} ms")
    print(f"per-sweep virtual time after rebalance:  {per_after * 1e3:8.1f} ms")
    speedup = per_before / per_after
    payoff = timings["rebalance"] / (per_before - per_after)
    print(f"\nrebalancing speeds sweeps up {speedup:.2f}x; the move pays for "
          f"itself after {payoff:.1f} sweeps.")
    stats = res.cache_stats()
    print(f"schedule cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['invalidations']} invalidations (the redistributes)")


if __name__ == "__main__":
    main()
