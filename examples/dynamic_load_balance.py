#!/usr/bin/env python
"""Dynamic load balancing via the adaptive layout tuner (paper §6).

The paper closes: "We also plan to look at more complex example programs,
including those requiring dynamic load balancing."  This example builds
that future: an unstructured-mesh Jacobi solver *starts* with a poor
decomposition (block over shuffled node ids) and hands the sweep loop to
:class:`repro.tune.AdaptiveRunner`.  Every few sweeps the tuner tallies
the communication each candidate layout would cost, allreduces the
evidence, and — once the predicted win amortizes the data motion plus
re-inspection — redistributes all five arrays to the RCB partition
mid-run.  The cached schedules invalidate automatically, the inspector
re-runs once under the new layout, and the remaining sweeps run faster
because far fewer mesh edges cross processor boundaries.

Earlier revisions of this example hand-rolled the measure → decide →
redistribute loop; the tuner now is that loop, and this example asserts
it rediscovers the same RCB-beats-block verdict on its own.

Run:  python examples/dynamic_load_balance.py
"""

import numpy as np

from repro.apps.jacobi import build_jacobi
from repro.machine.cost import NCUBE7
from repro.meshes.partition import coordinate_bisection, edge_cut
from repro.meshes.regular import reference_sweep
from repro.meshes.unstructured import random_unstructured_mesh
from repro.tune import AdaptiveRunner, TunePolicy, TuneSpec

NODES = 3000
P = 16
SWEEPS = 40


def main() -> None:
    # Shuffle node ids so "block by id" is a genuinely bad partition —
    # the situation a solver faces after adaptive refinement.
    mesh, points = random_unstructured_mesh(NODES, seed=21, jitter=0.45,
                                            locality_sort=False)
    rng = np.random.default_rng(4)
    init = rng.random(mesh.n)

    block_owners = (np.arange(mesh.n) * P) // mesh.n
    rcb_owners = coordinate_bisection(points, P)
    print(f"edge cut, block-by-id: {edge_cut(mesh.adj, mesh.count, block_owners)}")
    print(f"edge cut, RCB:         {edge_cut(mesh.adj, mesh.count, rcb_owners)}")
    print()

    prog = build_jacobi(mesh, P, machine=NCUBE7, initial=init)
    runner = AdaptiveRunner(
        TuneSpec(arrays=("a", "old_a", "count", "adj", "coef"),
                 table="adj", count="count", points=points),
        TunePolicy(interval=4, warmup=4, max_moves=2),
    )
    res = runner.run(prog.ctx, [prog.copy_loop, prog.relax_loop], SWEEPS)
    report = res.tune_report

    # Verify numerics against the sequential oracle: redistribution moves
    # data, it never changes it, so the tuned run must match exactly.
    ref = init.copy()
    for _ in range(SWEEPS):
        ref = reference_sweep(mesh, ref)
    assert np.allclose(prog.solution, ref), "solution must match oracle"

    # The tuner should rediscover on its own what the hand-rolled version
    # of this example asserted by construction: one move, to RCB.
    assert report["moves"] == 1, report["events"]
    assert report["layout"]["kind"] == "custom", report["layout"]
    assert np.array_equal(report["layout"]["owners"], rcb_owners), \
        "tuner should land on the RCB partition"

    for ev in report["events"]:
        mark = "MOVE ->" if ev["moved"] else "stay   "
        print(f"sweep {ev['sweep']:3d}: {mark} {ev['best']:<10s} "
              f"predicted gain {ev['gain_per_sweep'] * 1e3:7.2f} ms/sweep, "
              f"move cost {ev['move_cost'] * 1e3:7.1f} ms  [{ev['reason']}]")
    print()

    move_sweep = next(e["sweep"] for e in report["events"] if e["moved"])
    times = report["sweep_times"]
    before = times[:move_sweep - 1]              # bad layout, warm schedules
    after = times[move_sweep:]                   # RCB, re-inspection absorbed
    per_before = float(np.mean(before[1:]))      # drop the inspector sweep
    per_after = float(np.mean(after[1:]))
    print(f"per-sweep virtual time before the move: {per_before * 1e3:8.1f} ms")
    print(f"per-sweep virtual time after the move:  {per_after * 1e3:8.1f} ms")
    print(f"\nthe tuner's move speeds sweeps up {per_before / per_after:.2f}x.")
    stats = res.cache_stats()
    print(f"schedule cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['invalidations']} invalidations (the tuner's moves)")


if __name__ == "__main__":
    main()
