#!/usr/bin/env python
"""Conjugate gradients: every Kali ingredient in one solver.

The paper's closing agenda includes "more complex example programs" (§6).
This example solves ``A x = b`` (A = identity + graph Laplacian of an
unstructured mesh, symmetric positive definite) with CG built entirely
from global-name-space foralls:

* SpMV      — the ``p[acol[i,j]]`` gather (inspector, schedule cached),
* dot       — sum-reduction foralls (local fold + allreduce),
* AXPY      — aligned affine foralls (statically local, zero messages),
* recurrence— replicated scalars updated identically on every rank.

The answer is checked against a dense NumPy solve, and the timing shows
the paper's amortisation story at work: one inspection serves dozens of
SpMV executions.

Run:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro.apps.cg import CGSolver, dense_matrix
from repro.machine.cost import IPSC2, NCUBE7
from repro.meshes.unstructured import average_degree, random_unstructured_mesh

NODES = 600
P = 8


def main() -> None:
    mesh, _ = random_unstructured_mesh(NODES, seed=13)
    rng = np.random.default_rng(7)
    b = rng.random(mesh.n)
    print(f"mesh: {mesh.n} nodes, average degree {average_degree(mesh):.2f}; "
          f"A = I + Laplacian (SPD)")

    for machine in (NCUBE7, IPSC2):
        solver = CGSolver(mesh, P, machine=machine)
        result = solver.solve(b, tol=1e-10)
        t = result.timing
        stats = t.cache_stats()
        print(f"\n[{machine.name}] converged in {result.iterations} iterations, "
              f"residual {result.residual:.2e}")
        print(f"  inspector {t.inspector_time:.4f}s (ran once), "
              f"executor {t.executor_time:.4f}s")
        print(f"  schedule cache: {stats['hits']} hits / {stats['misses']} misses")

    x_ref = np.linalg.solve(dense_matrix(mesh), b)
    err = np.abs(solver.ctx.arrays["x"].data - x_ref).max()
    print(f"\nmax |x - dense solve| = {err:.2e}")
    assert err < 1e-7
    print("matches the dense NumPy solve.")


if __name__ == "__main__":
    main()
