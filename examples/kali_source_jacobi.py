#!/usr/bin/env python
"""Figure 4, verbatim: compiling and running actual Kali source.

This feeds the paper's nearest-neighbour relaxation program — in the
Pascal-like Kali language itself — through the full pipeline: lexer,
parser, semantic analysis, subscript analysis/lowering, and the
inspector/executor runtime on the simulated NCUBE/7.

Run:  python examples/kali_source_jacobi.py
"""

import numpy as np

from repro.lang import compile_kali
from repro.machine.cost import NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep

KALI_SOURCE = """
processors Procs : array[1..P] with P in 1..n;

const n : integer;          -- number of mesh nodes (supplied at run time)
const width : integer;      -- max neighbours per node
const nsweeps : integer;

var a, old_a : array[1..n] of real dist by [ block ] on Procs;
    count    : array[1..n] of integer dist by [ block ] on Procs;
    adj      : array[1..n, 1..width] of integer dist by [ block, * ] on Procs;
    coef     : array[1..n, 1..width] of real dist by [ block, * ] on Procs;
var sweep : integer;

for sweep in 1..nsweeps do
    -- copy mesh values
    forall i in 1..n on old_a[i].loc do
        old_a[i] := a[i];
    end;
    -- perform relaxation (computational core)
    forall i in 1..n on a[i].loc do
        var x : real;
        x := 0.0;
        for j in 1..count[i] do
            x := x + coef[i,j] * old_a[ adj[i,j] ];
        end;
        if (count[i] > 0) then a[i] := x; end;
    end;
end;

print("relaxation finished after", nsweeps, "sweeps");
print("a[1] =", a[1]);
"""

SIDE = 32
P = 8
SWEEPS = 20


def main() -> None:
    mesh = five_point_grid(SIDE, SIDE)
    rng = np.random.default_rng(99)
    init = rng.random(mesh.n)

    program = compile_kali(KALI_SOURCE)
    print(f"compiled: {len(program.program.decls)} declarations, "
          f"{len(program.program.stmts)} top-level statements")

    result = program.run(
        nprocs=P,
        machine=NCUBE7,
        consts={"n": mesh.n, "width": mesh.width, "nsweeps": SWEEPS},
        inputs={
            "a": init,
            "count": mesh.count,
            "adj": mesh.adj + 1,  # Kali arrays are 1-based
            "coef": mesh.coef,
        },
    )

    ref = init.copy()
    for _ in range(SWEEPS):
        ref = reference_sweep(mesh, ref)
    assert np.allclose(result.arrays["a"], ref), "must match sequential oracle"

    print("program output:")
    for line in result.output:
        print("  |", line)
    print()
    print("solution matches the sequential oracle.")
    print(f"analysis per loop: {result.timing.strategies()}")
    print(f"inspector {result.timing.inspector_time:.3f}s "
          f"(ran once, amortised over {SWEEPS} sweeps), "
          f"executor {result.timing.executor_time:.3f}s on {NCUBE7.name}")
    stats = result.timing.cache_stats()
    print(f"schedule cache: {stats['hits']} hits, {stats['misses']} misses")


if __name__ == "__main__":
    main()
