#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 in five minutes.

Declares a processor array and a block-distributed array, then runs the
global-name-space forall

    forall i in 1..N-1 on A[i].loc do
        A[i] := A[i+1];
    end;

on a simulated NCUBE/7.  The compiler resolves the A[i+1] communication
at compile time (closed-form sets); the runtime performs the neighbour
exchange and reports where virtual time went.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AffineRead,
    Block,
    Forall,
    KaliContext,
    NCUBE7,
    OnOwner,
)
from repro.core.forall import Affine, AffineWrite

N = 64
P = 8


def main() -> None:
    # --- declarations: processors + distributed data -----------------------
    ctx = KaliContext(nprocs=P, machine=NCUBE7)
    a = ctx.array("A", N, dist=[Block()])
    a.set(np.arange(1.0, N + 1))

    # --- the forall of Figure 1 -------------------------------------------
    shift = Forall(
        index_range=(0, N - 2),               # forall i in 1..N-1 (0-based)
        on=OnOwner("A"),                       # on A[i].loc
        reads=[AffineRead("A", Affine(1, 1), name="next")],   # A[i+1]
        writes=[AffineWrite("A")],             # A[i] := ...
        kernel=lambda iters, ops: ops["next"],
        label="figure1-shift",
    )

    def program(kr):
        yield from kr.forall(shift)

    result = ctx.run(program)

    # --- results -------------------------------------------------------------
    print("before:  [1, 2, ..., 64]")
    print(f"after:   {a.data[:6]} ... {a.data[-3:]}")
    expected = np.concatenate([np.arange(2.0, N + 1), [N]])
    assert np.array_equal(a.data, expected)
    print("matches the shared-memory semantics (copy-in/copy-out).")
    print()
    print(f"analysis strategy: {result.strategies()['figure1-shift']}")
    print(f"virtual executor time on {NCUBE7.name}: "
          f"{result.executor_time * 1e3:.3f} ms")
    print(f"messages sent: {result.engine.total_messages()} "
          f"({result.engine.total_bytes()} bytes)"
          " — one boundary element per processor pair")


if __name__ == "__main__":
    main()
