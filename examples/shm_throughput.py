#!/usr/bin/env python
"""Where does shared memory beat the pipe?  The pickle/shm crossover.

Streams fixed-size NumPy payloads between two real OS processes twice —
once over the plain pickled-frame pipe transport, once with the
shared-memory data plane (`repro.machine.shm`) hoisting the payload into
a shared segment while the pipe carries only a tiny ShmRef — and prints
payload throughput for each size.

The shape of the result (one 1-CPU container; yours will differ in
absolute numbers, not in shape):

* **Small payloads lose.**  Under a few KiB the pipe write is a single
  PIPE_BUF-atomic syscall; block bookkeeping plus a second process
  attach costs more than it saves.  This is exactly why the plane has a
  threshold (default 2 KiB) below which payloads stay on the pickle
  path.
* **Large payloads win big.**  The pickled frame pays serialize + copy
  into the kernel + copy out + deserialize; the plane pays one copy in
  and one copy out of a shared mapping.  The curve crosses near the
  threshold and the ratio keeps growing with size — the D1 bench gate
  (`python -m repro.bench --shm`) requires >= 2x at multi-MiB payloads.

Run:  python examples/shm_throughput.py [--repeats N]
Docs: docs/dataplane.md (design), EXPERIMENTS.md section D1 (reference
numbers).
"""

import argparse
import time

import numpy as np

from repro.bench.tables import ablation_table
from repro.machine.api import Now, Recv, Send
from repro.machine.cost import IDEAL
from repro.machine.mp import MpEngine
from repro.machine.topology import FullyConnected

SIZES = [1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22]


def stream_program(payload: np.ndarray, repeats: int):
    """Rank 0 streams `repeats` payloads to rank 1, which acks once."""

    def prog(rank):
        if rank.id == 0:
            t0 = yield Now()
            for i in range(repeats):
                yield Send(1, payload, tag=1)
            yield Recv(source=1, tag=2)           # ack: all consumed
            t1 = yield Now()
            return t1 - t0
        total = 0.0
        for i in range(repeats):
            msg = yield Recv(source=0, tag=1)
            total += float(msg.payload[0])        # touch the data
        yield Send(0, 1, tag=2)
        return total

    return prog


def measure(nbytes: int, repeats: int, shm: bool, best_of: int = 3) -> float:
    """Best-of-N payload throughput in MB/s for one transport mode."""
    payload = np.arange(nbytes // 8, dtype=np.float64)
    best = float("inf")
    for _ in range(best_of):
        eng = MpEngine(IDEAL, topology=FullyConnected(2), timeout=120.0,
                       shm=shm, shm_threshold=2048)
        res = eng.run(stream_program(payload, repeats))
        best = min(best, res.values[0])
    return (payload.nbytes * repeats) / best / 1e6


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repeats", type=int, default=8,
                    help="payloads streamed per measurement (default 8)")
    args = ap.parse_args()

    from repro.bench.experiments import AblationRow

    t0 = time.time()
    rows = []
    for nbytes in SIZES:
        pickle_mbps = measure(nbytes, args.repeats, shm=False)
        shm_mbps = measure(nbytes, args.repeats, shm=True)
        rows.append(AblationRow(key=nbytes, values={
            "pickle_MBps": round(pickle_mbps, 1),
            "shm_MBps": round(shm_mbps, 1),
            "speedup": round(shm_mbps / pickle_mbps, 3),
        }))
        marker = "shm" if shm_mbps > pickle_mbps else "pickle"
        print(f"  {nbytes:>8} B: pickle {pickle_mbps:8.1f} MB/s   "
              f"shm {shm_mbps:8.1f} MB/s   -> {marker} wins")

    print()
    print(ablation_table(
        f"pickle-vs-shm payload throughput, 2 ranks, "
        f"{args.repeats} payloads/size (best of 3)",
        rows, ["pickle_MBps", "shm_MBps", "speedup"],
        key_header="payload_B",
    ))
    crossover = next((r.key for r in rows if r.values["speedup"] > 1.0), None)
    print(f"\ncrossover at ~{crossover} B; "
          f"largest-size speedup {rows[-1].values['speedup']:.1f}x "
          f"({time.time() - t0:.1f}s wall)")


if __name__ == "__main__":
    main()
