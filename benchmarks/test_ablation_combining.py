"""A5 — message combining across arrays (§3.3).

"Sorting by processor id also allowed us to combine messages between the
same two processors, thus saving on the number of messages.  If there are
several arrays to be communicated, we can add a symbol field identifying
the array."

The workload is a two-array stencil (both A and B communicate their
boundaries every execution); combining halves the message count, saving
one alpha per peer per execution — significant on the startup-dominated
NCUBE.
"""

import numpy as np
import pytest

from repro.core.context import KaliContext
from repro.core.forall import Affine, AffineRead, AffineWrite, Forall, OnOwner
from repro.distributions import Block
from repro.machine.cost import NCUBE7
from repro.util.fmt import render_table

N, P, REPS = 4096, 16, 50


def _run(combine: bool):
    ctx = KaliContext(P, machine=NCUBE7, combine_messages=combine)
    rng = np.random.default_rng(0)
    ctx.array("A", N, dist=[Block()]).set(rng.random(N))
    ctx.array("B", N, dist=[Block()]).set(rng.random(N))
    ctx.array("C", N, dist=[Block()]).set(np.zeros(N))
    loop = Forall(
        index_range=(1, N - 2),
        on=OnOwner("C"),
        reads=[
            AffineRead("A", Affine(1, -1), name="al"),
            AffineRead("A", Affine(1, 1), name="ar"),
            AffineRead("B", Affine(1, -1), name="bl"),
            AffineRead("B", Affine(1, 1), name="br"),
        ],
        writes=[AffineWrite("C")],
        kernel=lambda i, o: (o["al"] + o["ar"] + o["bl"] + o["br"]) / 4.0,
        label=f"combine-{combine}",
    )

    def program(kr):
        for _ in range(REPS):
            yield from kr.forall(loop)

    res = ctx.run(program)
    return res, ctx.arrays["C"].data.copy()


@pytest.fixture(scope="module")
def results():
    return {flag: _run(flag) for flag in (True, False)}


def test_table_a5(benchmark, results, table_sink):
    def render():
        rows = []
        for flag in (False, True):
            res, _ = results[flag]
            rows.append([
                "combined" if flag else "per-array",
                res.engine.total_messages() // REPS,
                f"{res.executor_time:.3f}",
            ])
        return render_table(
            f"A5: message combining, two-array stencil, NCUBE/7 P={P}, "
            f"{REPS} executions",
            ["messages", "msgs/exec", "executor (s)"],
            rows,
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    table_sink("A5_combining", table)


def test_combining_halves_message_count(results):
    combined = results[True][0].engine.total_messages()
    separate = results[False][0].engine.total_messages()
    assert combined == separate / 2


def test_combining_saves_time(results):
    assert results[True][0].executor_time < results[False][0].executor_time


def test_same_numerics(results):
    np.testing.assert_array_equal(results[True][1], results[False][1])
