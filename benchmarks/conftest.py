"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  The rendered tables are printed and
also written under ``benchmarks/output/`` so artefacts survive pytest's
output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def table_sink():
    """Write a rendered table to benchmarks/output/<name>.txt and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[table written to {path}]")

    return write
