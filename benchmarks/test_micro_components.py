"""Micro-benchmarks of the runtime's host-side building blocks.

These time the actual Python/NumPy implementation (not virtual time):
inspector classification throughput, executor sweep throughput,
translation-table lookups, and the crystal router.  Useful for tracking
performance regressions of the simulator itself.
"""

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.machine.cost import NCUBE7
from repro.machine.engine import Engine
from repro.machine.topology import Hypercube
from repro.meshes.regular import five_point_grid
from repro.runtime.schedule import ArraySchedule, coalesce_ranges
from repro.runtime.translation import TranslationTable


def test_jacobi_sweep_throughput(benchmark):
    """Host wall-time of one full simulated sweep (128x128, P=16)."""
    mesh = five_point_grid(128, 128)
    prog = build_jacobi(mesh, 16, machine=NCUBE7)
    prog.run(sweeps=1)  # warm: builds and caches nothing across runs

    def sweep():
        p = build_jacobi(mesh, 16, machine=NCUBE7)
        p.run(sweeps=1)

    benchmark.pedantic(sweep, rounds=3, iterations=1)


def test_inspector_classification_rate(benchmark):
    """Vectorised owner-classification of 65k references."""
    from repro.distributions import Block

    dist = Block().bind(1 << 16, 64)
    refs = np.random.default_rng(0).integers(0, 1 << 16, size=1 << 16)

    def classify():
        owners = dist.owner(refs)
        return (owners != 7).sum()

    benchmark(classify)


def test_translation_lookup_rate(benchmark):
    """Vectorised O(log r) lookups over a 1000-range table."""
    rng = np.random.default_rng(1)
    offsets = {}
    for q in range(16):
        offsets[q] = np.unique(rng.integers(0, 10000, size=500))
    records = coalesce_ranges(offsets, me=0, incoming=True)
    sched = ArraySchedule(array="x", in_records=records)
    sched.finalize()
    procs = rng.integers(0, 16, size=10000)
    offs = np.concatenate([
        rng.choice(offsets[q], size=625) for q in range(16)
    ])
    procs = np.repeat(np.arange(16), 625)

    benchmark(lambda: sched.translation.lookup(procs, offs))


def test_crystal_router_wall_time(benchmark):
    """64-rank crystal router all-to-all on the simulator."""
    from repro.comm.crystal import crystal_route

    def route():
        def prog(rank):
            out = {q: np.arange(8) for q in range(rank.size)}
            got = yield from crystal_route(rank, out)
            return len(got)

        res = Engine(NCUBE7, topology=Hypercube(64)).run(prog)
        assert all(v == 64 for v in res.values)

    benchmark.pedantic(route, rounds=3, iterations=1)


def test_engine_message_rate(benchmark):
    """Raw engine throughput: 10k point-to-point messages."""
    from repro.machine.api import Recv, Send

    def run():
        def prog(rank):
            if rank.id == 0:
                for i in range(5000):
                    yield Send(dest=1, payload=i, tag=0)
            else:
                for _ in range(5000):
                    yield Recv(source=0, tag=0)

        Engine(NCUBE7, topology=Hypercube(2)).run(prog)

    benchmark.pedantic(run, rounds=3, iterations=1)
