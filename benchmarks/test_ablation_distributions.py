"""A4 — distribution patterns as a one-line change (§2.4).

"With our primitives a variety of distribution patterns can easily be
tried by trivial modification of this program."  The benchmark tries
block, cyclic, and block-cyclic on the same Jacobi program and reports
how the communication volume and times respond — block wins for a
nearest-neighbour stencil, cyclic maximises boundary traffic.
"""

import pytest

from repro.bench.experiments import distribution_ablation
from repro.bench.tables import ablation_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def rows():
    return distribution_ablation(NCUBE7, nprocs=16)


def test_table_a4(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: ablation_table(
            "A4: distribution patterns on the Jacobi stencil, NCUBE/7 "
            "P=16, 64x64, 20 sweeps",
            rows,
            ["total", "executor", "inspector", "remote_refs_per_sweep"],
            key_header="dist",
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("A4_distributions", table)


def test_block_beats_cyclic_for_stencils(rows):
    by_name = {r.key: r.values for r in rows}
    assert by_name["block"]["total"] < by_name["cyclic"]["total"]
    assert (
        by_name["block"]["remote_refs_per_sweep"]
        < by_name["cyclic"]["remote_refs_per_sweep"]
    )


def test_all_distributions_compute_same_answer():
    import numpy as np

    from repro.apps.jacobi import build_jacobi
    from repro.distributions import Block, BlockCyclic, Cyclic
    from repro.machine.cost import IDEAL
    from repro.meshes.regular import five_point_grid

    mesh = five_point_grid(16, 16)
    rng = np.random.default_rng(9)
    init = rng.random(mesh.n)
    results = []
    for spec in (Block(), Cyclic(), BlockCyclic(8)):
        prog = build_jacobi(mesh, 8, machine=IDEAL, initial=init, dist=spec)
        prog.run(sweeps=4)
        results.append(prog.solution)
    np.testing.assert_allclose(results[0], results[1])
    np.testing.assert_allclose(results[0], results[2])
