"""A1 — schedule caching vs per-execution re-inspection.

The paper's §3.2 design point ("saving them for later loop executions
... amortizes the cost of the run-time analysis") contrasted with Rogers
& Pingali's uncached run-time resolution (§5: "fairly inefficient").
"""

import pytest

from repro.bench.experiments import caching_ablation
from repro.bench.tables import ablation_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def rows():
    return caching_ablation(NCUBE7, nprocs=16, sweep_counts=[1, 10, 100])


def test_table_a1(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: ablation_table(
            "A1: schedule caching vs re-inspection, NCUBE/7 P=16, 64x64",
            rows,
            ["cached_total", "uncached_total", "ratio"],
            key_header="sweeps",
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("A1_caching", table)


def test_single_sweep_identical(rows):
    """With one sweep there is nothing to amortise: both run one inspector."""
    assert rows[0].values["ratio"] == pytest.approx(1.0, rel=0.02)


def test_caching_wins_grow_with_sweeps(rows):
    ratios = [r.values["ratio"] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 3.0  # at 100 sweeps, caching is several times faster


def test_uncached_scales_linearly(rows):
    by_sweeps = {r.key: r.values["uncached_total"] for r in rows}
    assert by_sweeps[100] == pytest.approx(10 * by_sweeps[10], rel=0.05)
