"""E4 — paper Figure 10: iPSC/2, 32 processors, mesh 64^2 .. 1024^2."""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import size_scaling
from repro.bench.tables import size_table
from repro.machine.cost import IPSC2


@pytest.fixture(scope="module")
def rows():
    return size_scaling(IPSC2, cal.IPSC_SIZE_PROCS)


def test_table_e4(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: size_table(
            "E4 (paper Fig. 10): iPSC/2, P=32, varying mesh size",
            rows,
            cal.PAPER_IPSC_SIZES,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("E4_ipsc_sizes", table)


def test_cells_within_band(rows):
    for r in rows:
        pt, pe, pi, ps = cal.PAPER_IPSC_SIZES[r.key]
        assert r.executor == pytest.approx(pe, rel=0.15), f"{r.key}^2 executor"
        assert r.speedup == pytest.approx(ps, rel=0.15), f"{r.key}^2 speedup"
        # inspector values are tiny (20-40ms); allow a looser relative band
        assert r.inspector == pytest.approx(pi, rel=0.5), f"{r.key}^2 inspector"


def test_overhead_decreases_with_size(rows):
    overheads = [r.overhead for r in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[-1] < 0.01  # paper: 0.56% at 1024^2


def test_speedup_saturates_near_30(rows):
    """Paper: speedup rises 15.7 -> 30.3 on 32 processors, approaching
    but not reaching P because of the residual search overhead."""
    speedups = [r.speedup for r in rows]
    assert speedups == sorted(speedups)
    assert 28 < speedups[-1] <= 32
