"""E1 — paper Figure 7: NCUBE/7, 128x128 mesh, 100 sweeps, P = 2..128.

Regenerates the processor-scaling table and asserts the reproduction
bands: every cell within 15% of the paper, inspector overhead growing
with P but bounded, U-shaped inspector curve with its minimum at P=16.
"""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import processor_scaling
from repro.bench.tables import processor_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def rows():
    return processor_scaling(NCUBE7, cal.NCUBE_PROC_COUNTS)


def test_table_e1(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: processor_table(
            "E1 (paper Fig. 7): NCUBE/7, 128x128, 100 sweeps",
            rows,
            cal.PAPER_NCUBE_PROCS,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("E1_ncube_procs", table)


def test_cells_within_band(rows):
    for r in rows:
        pt, pe, pi = cal.PAPER_NCUBE_PROCS[r.key]
        assert r.executor == pytest.approx(pe, rel=0.15), f"P={r.key} executor"
        assert r.inspector == pytest.approx(pi, rel=0.15), f"P={r.key} inspector"
        assert r.total == pytest.approx(pt, rel=0.15), f"P={r.key} total"


def test_inspector_overhead_small_and_growing(rows):
    """Paper: 'the overhead from the inspector is never very high; for the
    NCUBE it varies from less than 1% to about 12%'."""
    overheads = [r.overhead for r in rows]
    assert overheads[0] < 0.01
    assert overheads[-1] < 0.13
    assert overheads == sorted(overheads)


def test_inspector_u_shape_minimum_at_16(rows):
    """Paper: inspector time 'starts high, decreases to a minimum at 16
    processors, and then increases slowly'."""
    by_p = {r.key: r.inspector for r in rows}
    assert min(by_p, key=by_p.get) == 16


def test_executor_scales_down_with_processors(rows):
    times = [r.executor for r in rows]
    assert times == sorted(times, reverse=True)
