"""E5 — §4 in-text claim: the single-sweep worst case.

"In the worst case, where one performs only one sweep, the inspector
overhead on the NCUBE would range from 45% on 2 processors to 93% on 128
processors, while on the iPSC it ranges from 35% to 41%."
"""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import single_sweep_overhead
from repro.bench.tables import overhead_table
from repro.machine.cost import IPSC2, NCUBE7


@pytest.fixture(scope="module")
def ncube_rows():
    return single_sweep_overhead(NCUBE7, cal.NCUBE_PROC_COUNTS)


@pytest.fixture(scope="module")
def ipsc_rows():
    return single_sweep_overhead(IPSC2, cal.IPSC_PROC_COUNTS)


def test_table_e5(benchmark, ncube_rows, ipsc_rows, table_sink):
    def render():
        return "\n\n".join([
            overhead_table(
                "E5: single-sweep inspector overhead, NCUBE/7 (paper: 45%..93%)",
                ncube_rows,
            ),
            overhead_table(
                "E5: single-sweep inspector overhead, iPSC/2 (paper: 35%..41%)",
                ipsc_rows,
            ),
        ])

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    table_sink("E5_single_sweep", table)


def test_ncube_range_matches_paper(ncube_rows):
    lo, hi = cal.PAPER_SINGLE_SWEEP_OVERHEAD["NCUBE/7"]
    assert ncube_rows[0].overhead == pytest.approx(lo, abs=0.05)
    assert ncube_rows[-1].overhead == pytest.approx(hi, abs=0.05)


def test_ipsc_range_matches_paper(ipsc_rows):
    lo, hi = cal.PAPER_SINGLE_SWEEP_OVERHEAD["iPSC/2"]
    assert ipsc_rows[0].overhead == pytest.approx(lo, abs=0.05)
    # the paper measured up to 32 procs; allow the top end a wider band
    assert ipsc_rows[-1].overhead == pytest.approx(hi, abs=0.08)


def test_overhead_monotone_in_processors(ncube_rows):
    overheads = [r.overhead for r in ncube_rows]
    assert overheads == sorted(overheads)
