"""E2 — paper Figure 8: iPSC/2, 128x128 mesh, 100 sweeps, P = 2..32."""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import processor_scaling
from repro.bench.tables import processor_table
from repro.machine.cost import IPSC2, NCUBE7


@pytest.fixture(scope="module")
def rows():
    return processor_scaling(IPSC2, cal.IPSC_PROC_COUNTS)


def test_table_e2(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: processor_table(
            "E2 (paper Fig. 8): iPSC/2, 128x128, 100 sweeps",
            rows,
            cal.PAPER_IPSC_PROCS,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("E2_ipsc_procs", table)


def test_cells_within_band(rows):
    for r in rows:
        pt, pe, pi = cal.PAPER_IPSC_PROCS[r.key]
        assert r.executor == pytest.approx(pe, rel=0.15), f"P={r.key} executor"
        assert r.inspector == pytest.approx(pi, rel=0.30), f"P={r.key} inspector"
        assert r.total == pytest.approx(pt, rel=0.15), f"P={r.key} total"


def test_overhead_below_one_percent(rows):
    """Paper: 'on the iPSC it is always less than 1% of the total'."""
    assert all(r.overhead < 0.01 for r in rows)


def test_no_u_shape_on_ipsc(rows):
    """Paper: 'this behavior is not seen [on the iPSC] because the
    locality-checking loop always dominates' — inspector time decreases
    monotonically over the measured range."""
    insp = [r.inspector for r in rows]
    assert insp == sorted(insp, reverse=True)


def test_ipsc_node_faster_than_ncube():
    """Cross-machine sanity: the iPSC/2 runs the same job ~4x faster."""
    ncube = processor_scaling(NCUBE7, [4])[0]
    ipsc = processor_scaling(IPSC2, [4])[0]
    assert 3.0 < ncube.executor / ipsc.executor < 5.0
