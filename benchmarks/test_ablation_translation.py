"""A2 — sorted-range translation tables vs Saltz-style enumeration (§5).

"They explicitly enumerate all array references ... This eliminates the
overhead of checking and searching for nonlocal references during the
loop execution but requires more storage than our implementation."
"""

import pytest

from repro.bench.experiments import translation_ablation
from repro.bench.tables import dict_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def results():
    return translation_ablation(NCUBE7, nprocs=32)


def test_table_a2(benchmark, results, table_sink):
    table = benchmark.pedantic(
        lambda: dict_table(
            "A2: sorted ranges vs enumeration, NCUBE/7 P=32, 128x128", results
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("A2_translation", table)


def test_enumeration_is_faster(results):
    """No per-reference binary search -> cheaper executor."""
    assert results["enumerated_executor"] < results["ranged_executor"]
    assert results["executor_saving"] > 0.05


def test_enumeration_needs_more_storage(results):
    """...but stores one entry per element instead of per range."""
    assert (
        results["enumerated_entries_per_rank"]
        > results["range_records_per_rank"] * 10
    )
