"""A3 — Kali-generated code vs hand-written message passing.

The paper's §1 claim ("virtually identical to that which would be
achieved had the user programmed directly in a message-passing language")
and its §4 caveat (the search overhead "is primarily responsible for
suboptimal speedups") are two ends of the same curve: at small P the gap
is a percent or two; at P=128 on a 128x128 mesh, boundary searches
dominate.
"""

import pytest

from repro.bench.experiments import handcoded_ablation
from repro.bench.tables import ablation_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def rows():
    return handcoded_ablation(NCUBE7, [2, 8, 32, 128])


def test_table_a3(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: ablation_table(
            "A3: Kali vs hand-coded message passing, NCUBE/7, 128x128, "
            "100 sweeps",
            rows,
            ["kali_executor", "handcoded_executor", "kali_overhead"],
            key_header="procs",
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("A3_handcoded", table)


def test_virtually_identical_at_small_p(rows):
    by_p = {r.key: r.values["kali_overhead"] for r in rows}
    assert by_p[2] < 0.05  # within 5% of hand-coded at P=2


def test_search_overhead_grows_with_p(rows):
    overheads = [r.values["kali_overhead"] for r in rows]
    assert overheads == sorted(overheads)


def test_same_numerics():
    """Both versions compute the same answer, bit for bit."""
    import numpy as np

    from repro.apps.jacobi import build_jacobi
    from repro.baselines.handcoded import handcoded_jacobi
    from repro.meshes.regular import five_point_grid

    mesh = five_point_grid(32, 32)
    rng = np.random.default_rng(5)
    init = rng.random(mesh.n)
    kali = build_jacobi(mesh, 8, machine=NCUBE7, initial=init)
    kali.run(sweeps=5)
    hc = handcoded_jacobi(32, 32, 8, NCUBE7, sweeps=5, initial=init)
    np.testing.assert_allclose(kali.solution, hc.solution)
