"""E3 — paper Figure 9: NCUBE/7, 128 processors, mesh 64^2 .. 1024^2.

The paper's claims here: inspector overhead *decreases* with problem
size (27.8% -> 1.2%) and speedup *increases* (23.9 -> 98.9) — "our
inspector-executor code organization can be expected to scale well as
problem size increases".
"""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import size_scaling
from repro.bench.tables import size_table
from repro.machine.cost import NCUBE7


@pytest.fixture(scope="module")
def rows():
    return size_scaling(NCUBE7, cal.NCUBE_SIZE_PROCS)


def test_table_e3(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: size_table(
            "E3 (paper Fig. 9): NCUBE/7, P=128, varying mesh size",
            rows,
            cal.PAPER_NCUBE_SIZES,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("E3_ncube_sizes", table)


def test_cells_within_band(rows):
    for r in rows:
        pt, pe, pi, ps = cal.PAPER_NCUBE_SIZES[r.key]
        assert r.executor == pytest.approx(pe, rel=0.15), f"{r.key}^2 executor"
        assert r.inspector == pytest.approx(pi, rel=0.15), f"{r.key}^2 inspector"
        assert r.speedup == pytest.approx(ps, rel=0.15), f"{r.key}^2 speedup"


def test_overhead_decreases_with_size(rows):
    overheads = [r.overhead for r in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[0] > 0.2    # paper: 27.8% at 64^2
    assert overheads[-1] < 0.02  # paper: 1.2% at 1024^2


def test_speedup_increases_with_size(rows):
    speedups = [r.speedup for r in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 90  # paper: 98.9 on 128 processors
