"""Extension — the paper's trade-offs, 36 years later.

The inspector/executor structure survives unchanged into modern PGAS
runtimes; what changed is the constants.  This benchmark replays the
paper's headline configuration (128x128 Jacobi, 100 sweeps) on a
2020s-commodity-cluster cost model and measures how the paper's three
pain points moved:

* inspector overhead (NCUBE: up to 11.5%) -> far below 1%,
* the single-sweep worst case (NCUBE: 45-93%) -> small,
* the O(log r) search penalty vs hand-coded ghost cells (NCUBE: +180%
  at P=128) -> a few percent.
"""

import pytest

from repro.bench import calibration as cal
from repro.bench.experiments import (
    handcoded_ablation,
    processor_scaling,
    single_sweep_overhead,
)
from repro.bench.tables import overhead_table, processor_table
from repro.machine.cost import MODERN, NCUBE7


@pytest.fixture(scope="module")
def rows():
    return processor_scaling(MODERN, cal.NCUBE_PROC_COUNTS)


def test_table_then_vs_now(benchmark, rows, table_sink):
    table = benchmark.pedantic(
        lambda: overhead_table(
            "X1 (extension): modern cluster, 128x128, 100 sweeps "
            "(compare paper Fig. 7)",
            rows,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink("X1_then_vs_now", table)


def test_absolute_speed_gap(rows):
    """The whole 1990 experiment now completes in well under a second."""
    ncube = processor_scaling(NCUBE7, [128])[0]
    modern = next(r for r in rows if r.key == 128)
    assert modern.total < 0.05
    assert ncube.total / modern.total > 1e3


def test_inspector_overhead_now_negligible(rows):
    """The §3.2 amortisation concern shrinks to noise at modern constants
    (a few percent even at P=128, where *message latency* — not the
    inspector — dominates the 1.7 ms total)."""
    assert all(r.overhead < 0.05 for r in rows)
    assert all(r.overhead < 0.01 for r in rows if r.key <= 8)


def test_single_sweep_worst_case_softens():
    """Even the paper's worst case (one sweep, no amortisation) stays
    moderate on modern hardware."""
    then = single_sweep_overhead(NCUBE7, [128])[0]
    now = single_sweep_overhead(MODERN, [128])[0]
    assert then.overhead > 0.85
    assert now.overhead < then.overhead


def test_search_penalty_softens():
    """The §4 'search overhead unique to our system' shrinks from +180%
    to a modest factor on a modern node at the same scale."""
    then = handcoded_ablation(NCUBE7, [128])[0].values["kali_overhead"]
    now = handcoded_ablation(MODERN, [128])[0].values["kali_overhead"]
    assert now < then / 2
