#!/usr/bin/env python
"""Check relative links and intra-repo anchors in the markdown docs.

Scans ``README.md`` and ``docs/*.md`` for markdown links.  External
links (``http://``, ``https://``, ``mailto:``) are skipped; everything
else must resolve:

* a relative path target must exist on disk (relative to the file the
  link appears in);
* a ``#fragment`` on a markdown target must match a heading in that
  file, using GitHub's slug rules (lowercase, spaces to dashes,
  punctuation dropped);
* a bare ``#fragment`` must match a heading in the same file.

Exit status 1 and one line per problem when anything is broken — CI
runs this so the cross-link mesh between the docs cannot rot silently.

Usage::

    python tools/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set

#: inline markdown links: [text](target) — images share the syntax
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
#: characters GitHub drops when slugging a heading
_SLUG_STRIP_RE = re.compile(r"[^\w\- ]", re.UNICODE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (sans the ``#`` marks)."""
    # inline code/bold/link markup contributes only its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = _SLUG_STRIP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> Set[str]:
    """All anchor slugs a markdown file exposes (with GitHub's ``-1``
    suffixing for duplicate headings)."""
    slugs: Set[str] = set()
    counts: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: pathlib.Path):
    """Yield (line_number, target) for every markdown link, skipping
    fenced code blocks (they hold example syntax, not real links)."""
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path,
               slug_cache: Dict[pathlib.Path, Set[str]]) -> List[str]:
    problems: List[str] = []

    def slugs_of(p: pathlib.Path) -> Set[str]:
        if p not in slug_cache:
            slug_cache[p] = heading_slugs(p)
        return slug_cache[p]

    for lineno, target in iter_links(path):
        where = f"{path.relative_to(root)}:{lineno}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:                       # same-file anchor
            if fragment and fragment not in slugs_of(path):
                problems.append(f"{where}: broken anchor #{fragment}")
            continue
        dest = (path.parent / base).resolve()
        if not dest.exists():
            problems.append(f"{where}: broken link {target} "
                            f"(no such file {base})")
            continue
        if fragment:
            if dest.suffix.lower() != ".md":
                continue                   # anchors into non-md: not checked
            if fragment not in slugs_of(dest):
                problems.append(
                    f"{where}: broken anchor {target} "
                    f"(no heading slug #{fragment} in {base})"
                )
    return problems


def main(argv: List[str]) -> int:
    root = pathlib.Path(argv[1]).resolve() if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent)
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    slug_cache: Dict[pathlib.Path, Set[str]] = {}
    problems: List[str] = []
    for f in files:
        problems.extend(check_file(f, root, slug_cache))
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} broken link(s)/anchor(s) "
              f"across {len(files)} files")
        return 1
    print(f"docs link check: {len(files)} files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
