"""Sim ↔ real differential-testing harness.

The mp backend's correctness argument is *differential*: the virtual-time
simulator is the executable specification, and a real-process run of the
same program must produce

* bit-identical distributed-array contents (NumPy arrays compared with
  ``array_equal``, no tolerance), and
* identical per-rank communication accounting — ``messages_sent``,
  ``messages_received``, ``bytes_sent``, ``bytes_received``, and every
  named ``Count`` counter (``nonlocal_refs``, cache hits, crystal-router
  rounds, ...).

Both hold because the runtime emits the exact same op stream on either
backend — schedules are deterministic functions of the distribution and
the indirection arrays, and ``nbytes`` is computed identically
(``Send.wire_size()``).  What legitimately differs is *time* (virtual
modelled seconds vs wall clock), so clocks and phase durations are
never compared.

Usage::

    pair = run_differential(lambda backend: build_jacobi(..., backend=backend),
                            lambda prog: prog.run(sweeps=5))
    assert_arrays_identical(pair)
    assert_counters_identical(pair)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

#: counters that legitimately differ between backends: the shm data
#: plane's transport accounting exists only on real-process runs (the
#: simulator moves payloads by reference, so there is nothing to hoist
#: or pickle).  Semantic counters — cache hits, inspector builds,
#: crystal rounds, undelivered messages — are still compared exactly.
TIME_DEPENDENT_COUNTERS: frozenset = frozenset({
    "shm_bytes_sent",
    "shm_blocks_sent",
    "shm_bytes_recv",
    "shm_blocks_recv",
    "shm_fallbacks",
    "shm_hwm_bytes",
    "shm_reclaimed_bytes",
    "pipe_bytes_sent",
})


@dataclass
class DifferentialPair:
    """One program run on both backends, plus the final driver arrays."""

    sim_result: Any            # KaliRunResult (or RunResult for raw runs)
    mp_result: Any
    sim_arrays: Dict[str, np.ndarray]
    mp_arrays: Dict[str, np.ndarray]


def run_differential(
    build: Callable[[str], Any],
    run: Callable[[Any], Any],
) -> DifferentialPair:
    """Build and run the same workload on ``backend="sim"`` and
    ``backend="mp"``.

    ``build(backend)`` must return a fresh program object exposing a
    ``ctx`` attribute (a :class:`KaliContext`); ``run(prog)`` executes it
    and returns the :class:`KaliRunResult`.  Rebuilding from scratch per
    backend keeps the two runs fully independent (no shared mutable
    arrays)."""
    sim_prog = build("sim")
    sim_res = run(sim_prog)
    sim_arrays = {
        name: darr.data.copy() for name, darr in sim_prog.ctx.arrays.items()
    }
    mp_prog = build("mp")
    mp_res = run(mp_prog)
    mp_arrays = {
        name: darr.data.copy() for name, darr in mp_prog.ctx.arrays.items()
    }
    return DifferentialPair(sim_res, mp_res, sim_arrays, mp_arrays)


def array_mismatches(pair: DifferentialPair) -> List[str]:
    """Every array that is not bit-identical across backends."""
    problems = []
    if sorted(pair.sim_arrays) != sorted(pair.mp_arrays):
        problems.append(
            f"array sets differ: sim={sorted(pair.sim_arrays)} "
            f"mp={sorted(pair.mp_arrays)}"
        )
        return problems
    for name, sim_data in pair.sim_arrays.items():
        mp_data = pair.mp_arrays[name]
        if sim_data.dtype != mp_data.dtype:
            problems.append(
                f"{name}: dtype sim={sim_data.dtype} mp={mp_data.dtype}"
            )
        elif not np.array_equal(sim_data, mp_data):
            bad = np.flatnonzero(
                (sim_data != mp_data).reshape(-1)
            )
            problems.append(
                f"{name}: {bad.size}/{sim_data.size} elements differ "
                f"(first flat index {bad[0]})"
            )
    return problems


def counter_mismatches(pair: DifferentialPair) -> List[str]:
    """Every per-rank communication counter that differs across backends.

    Compares ``messages_sent/received``, ``bytes_sent/received`` and all
    named counters exactly, rank by rank.  Time (clocks, phase seconds)
    is intentionally not compared — it is the one thing the backends
    disagree on by design.
    """
    sim_stats = _engine(pair.sim_result).stats
    mp_stats = _engine(pair.mp_result).stats
    problems = []
    if len(sim_stats) != len(mp_stats):
        return [f"rank counts differ: sim={len(sim_stats)} mp={len(mp_stats)}"]
    for sim, mp in zip(sim_stats, mp_stats):
        r = sim.rank
        for field in ("messages_sent", "messages_received",
                      "bytes_sent", "bytes_received"):
            a, b = getattr(sim, field), getattr(mp, field)
            if a != b:
                problems.append(f"rank {r}: {field} sim={a} mp={b}")
        names = (set(sim.counters) | set(mp.counters)) - TIME_DEPENDENT_COUNTERS
        for name in sorted(names):
            a, b = sim.counters.get(name, 0), mp.counters.get(name, 0)
            if a != b:
                problems.append(f"rank {r}: counter {name!r} sim={a} mp={b}")
    return problems


def assert_arrays_identical(pair: DifferentialPair) -> None:
    problems = array_mismatches(pair)
    assert not problems, "sim/mp array divergence:\n  " + "\n  ".join(problems)


def assert_counters_identical(pair: DifferentialPair) -> None:
    problems = counter_mismatches(pair)
    assert not problems, (
        "sim/mp counter divergence:\n  " + "\n  ".join(problems)
    )


def assert_values_equal(pair: DifferentialPair) -> None:
    """Per-rank program return values must match (scalar/dict payloads)."""
    sim_v, mp_v = pair.sim_result.values, pair.mp_result.values
    assert len(sim_v) == len(mp_v), f"value counts {len(sim_v)} != {len(mp_v)}"
    for r, (a, b) in enumerate(zip(sim_v, mp_v)):
        assert a == b, f"rank {r}: program value sim={a!r} mp={b!r}"


def _engine(result: Any):
    """Accept either a KaliRunResult (has .engine) or a raw RunResult."""
    return getattr(result, "engine", result)
