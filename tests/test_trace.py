"""Tests for the engine tracing facility."""

import pytest

from repro.machine.api import Compute, Recv, Send
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine
from repro.machine.topology import FullyConnected, Hypercube
from repro.machine.trace import TraceEvent, phase_spans, render_timeline


def traced_run(prog, n=2, machine=IDEAL):
    return Engine(machine, topology=FullyConnected(n), trace=True).run(prog)


class TestTraceCollection:
    def test_off_by_default(self):
        def prog(rank):
            yield Compute(1.0)

        res = Engine(IDEAL, topology=FullyConnected(2)).run(prog)
        assert res.trace is None

    def test_compute_events(self):
        def prog(rank):
            yield Compute(2.0, phase="work")

        res = traced_run(prog)
        computes = [e for e in res.trace if e.kind == "compute"]
        assert len(computes) == 2
        assert all(e.end - e.start == 2.0 and e.phase == "work" for e in computes)

    def test_zero_cost_compute_not_traced(self):
        def prog(rank):
            yield Compute(0.0)

        res = traced_run(prog)
        assert not [e for e in res.trace if e.kind == "compute"]

    def test_send_recv_events_paired(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=b"abcd", tag=7, phase="xfer")
            else:
                yield Recv(source=0, tag=7, phase="xfer")

        res = traced_run(prog, machine=NCUBE7)
        sends = [e for e in res.trace if e.kind == "send"]
        recvs = [e for e in res.trace if e.kind == "recv"]
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].peer == 1 and recvs[0].peer == 0
        assert sends[0].tag == recvs[0].tag == 7
        assert sends[0].nbytes == recvs[0].nbytes == 4

    def test_recv_span_includes_wait(self):
        def prog(rank):
            if rank.id == 0:
                yield Compute(10.0)
                yield Send(dest=1, payload=None, tag=1)
            else:
                yield Recv(source=0, tag=1)

        res = traced_run(prog)
        recv = next(e for e in res.trace if e.kind == "recv")
        assert recv.start == 0.0
        assert recv.end >= 10.0

    def test_finish_events(self):
        def prog(rank):
            yield Compute(float(rank.id + 1))

        res = traced_run(prog, n=3)
        finishes = [e for e in res.trace if e.kind == "finish"]
        assert len(finishes) == 3

    def test_events_time_sorted(self):
        def prog(rank):
            for k in range(3):
                yield Compute(0.5)

        res = traced_run(prog, n=4)
        starts = [e.start for e in res.trace]
        assert starts == sorted(starts)

    def test_describe(self):
        e = TraceEvent(rank=2, kind="send", start=0.0, end=1.0,
                       phase="x", peer=5, tag=9, nbytes=16)
        text = e.describe()
        assert "rank 2" in text and "-> rank 5" in text and "16B" in text


class TestTimeline:
    def _trace(self):
        def prog(rank):
            yield Compute(1.0, phase="a")
            if rank.id == 0:
                yield Send(dest=1, payload=b"x" * 64, tag=1)
            else:
                yield Recv(source=0, tag=1)
            yield Compute(1.0, phase="b")

        return traced_run(prog, machine=NCUBE7)

    def test_renders_all_ranks(self):
        res = self._trace()
        text = render_timeline(res.trace, width=40)
        assert "rank   0" in text and "rank   1" in text
        assert "legend" in text

    def test_empty_trace(self):
        assert "no trace events" in render_timeline([])

    def test_glyphs_present(self):
        res = self._trace()
        text = render_timeline(res.trace, width=40)
        assert "#" in text  # compute dominates most slices

    def test_phase_spans_ordered(self):
        res = self._trace()
        spans = phase_spans(res.trace, rank=0)
        assert [e.rank for e in spans] == [0] * len(spans)
        assert [e.start for e in spans] == sorted(e.start for e in spans)

    def test_recv_wait_and_busy_glyphs(self):
        """A late message shows up as wait (-) before drain (<)."""

        def prog(rank):
            if rank.id == 0:
                yield Compute(8.0)
                yield Send(dest=1, payload=b"x" * 4096, tag=1)
            else:
                yield Recv(source=0, tag=1)
                yield Compute(2.0)

        res = traced_run(prog, machine=NCUBE7)
        recv = next(e for e in res.trace if e.kind == "recv")
        assert recv.busy_start is not None
        assert recv.wait_time > 0 and recv.busy_time > 0
        assert recv.wait_time + recv.busy_time == pytest.approx(
            recv.end - recv.start)

        text = render_timeline(res.trace, width=60)
        rank1 = next(l for l in text.splitlines() if l.startswith("rank   1"))
        assert "-" in rank1  # wait portion while rank 0 computes
        # The wait must come before any drain glyph.
        assert rank1.index("-") < len(rank1) - 1

    def test_finish_marker_column(self):
        """Ranks that finish early keep a visible | at their finish time."""

        def prog(rank):
            yield Compute(10.0 if rank.id == 0 else 1.0)

        res = traced_run(prog, n=3)
        text = render_timeline(res.trace, width=50)
        rows = [l for l in text.splitlines() if l.startswith("rank")]
        assert all("|" in row[10:-1] for row in rows)
        # Ranks 1,2 finish at t=1 of 10: marker in the left tenth.
        for row in rows[1:]:
            bar = row.split("|", 1)[1]
            assert bar.index("|") <= len(bar) // 5

    def test_wait_time_zero_for_other_kinds(self):
        e = TraceEvent(rank=0, kind="compute", start=0.0, end=2.0)
        assert e.wait_time == 0.0 and e.busy_time == 2.0


class TestTraceWithKali:
    def test_forall_run_traced(self):
        """Tracing composes with the full Kali runtime stack."""
        import numpy as np

        from repro.core.context import KaliContext
        from repro.core.forall import Affine, AffineRead, AffineWrite, Forall, OnOwner
        from repro.distributions import Block
        from repro.machine.engine import Engine as _E

        ctx = KaliContext(4, machine=NCUBE7)
        ctx.array("A", 16, dist=[Block()]).set(np.arange(16.0))
        loop = Forall(
            index_range=(0, 14),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="n")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["n"],
            label="traced",
        )

        # KaliContext builds its own engine; run the rank program manually
        # on a traced engine instead.
        def program(kr):
            yield from kr.forall(loop)

        from repro.core.context import KaliRank

        def rank_main(rank):
            env = {name: arr.scatter(rank.id) for name, arr in ctx.arrays.items()}
            kr = KaliRank(rank, env)
            yield from program(kr)

        engine = Engine(NCUBE7, topology=FullyConnected(4), trace=True)
        res = engine.run(rank_main)
        kinds = {e.kind for e in res.trace}
        assert {"compute", "send", "recv", "finish"} <= kinds
        text = render_timeline(res.trace)
        assert "rank   3" in text
