"""Tests for run-time redistribution (the paper's §6 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import KaliContext
from repro.core.forall import Affine, AffineRead, AffineWrite, Forall, OnOwner
from repro.distributions import Block, BlockCyclic, Custom, Cyclic, Replicated
from repro.errors import DistributionError
from repro.lang import compile_kali
from repro.machine.cost import IDEAL, NCUBE7


def run_with_redistribute(n, p, first, second, machine=IDEAL, data=None):
    """Scatter under `first`, redistribute to `second`, gather back."""
    ctx = KaliContext(p, machine=machine)
    arr = ctx.array("A", n, dist=[first])
    data = np.arange(float(n)) if data is None else data
    arr.set(data)

    def program(kr):
        yield from kr.redistribute("A", second)

    res = ctx.run(program)
    return ctx, res


class TestDataMotion:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    @pytest.mark.parametrize("pair", [
        (Block(), Cyclic()),
        (Cyclic(), Block()),
        (Block(), BlockCyclic(3)),
        (BlockCyclic(5), Cyclic()),
    ], ids=["b2c", "c2b", "b2bc", "bc2c"])
    def test_contents_preserved(self, p, pair):
        first, second = pair
        n = 37
        ctx, _ = run_with_redistribute(n, p, first, second)
        np.testing.assert_array_equal(ctx.arrays["A"].data, np.arange(float(n)))
        assert ctx.arrays["A"].dist.dims[0].kind == second.kind

    def test_to_custom_distribution(self):
        n, p = 20, 4
        owners = (np.arange(n) * 3) % p
        ctx, _ = run_with_redistribute(n, p, Block(), Custom(owners))
        np.testing.assert_array_equal(ctx.arrays["A"].data, np.arange(float(n)))

    def test_identity_redistribute_moves_nothing(self):
        n, p = 32, 4
        ctx, res = run_with_redistribute(n, p, Block(), Block(), machine=NCUBE7)
        assert res.engine.total_messages() == 0
        np.testing.assert_array_equal(ctx.arrays["A"].data, np.arange(float(n)))

    def test_block_to_cyclic_moves_most_elements(self):
        n, p = 32, 4
        _, res = run_with_redistribute(n, p, Block(), Cyclic(), machine=NCUBE7)
        moved = res.engine.counter_sum("redistribute_elems_sent")
        assert moved == 24  # each rank keeps exactly n/p^2 = 2 of its 8

    def test_2d_array_rows_move_together(self):
        n, p, w = 12, 3, 4
        ctx = KaliContext(p, machine=IDEAL)
        arr = ctx.array("M", (n, w), dist=[Block(), Replicated()])
        data = np.arange(float(n * w)).reshape(n, w)
        arr.set(data)

        def program(kr):
            yield from kr.redistribute("M", Cyclic())

        ctx.run(program)
        np.testing.assert_array_equal(ctx.arrays["M"].data, data)

    def test_replicated_array_rejected(self):
        ctx = KaliContext(2, machine=IDEAL)
        ctx.array("R", 8, dist=[Replicated()])

        def program(kr):
            yield from kr.redistribute("R", Block())

        with pytest.raises(DistributionError):
            ctx.run(program)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 60),
        p=st.sampled_from([1, 2, 3, 4, 8]),
        seed=st.integers(0, 100),
    )
    def test_random_custom_to_custom(self, n, p, seed):
        rng = np.random.default_rng(seed)
        first = Custom(rng.integers(0, p, size=n))
        second = Custom(rng.integers(0, p, size=n))
        data = rng.random(n)
        ctx, _ = run_with_redistribute(n, p, first, second, data=data)
        np.testing.assert_array_equal(ctx.arrays["A"].data, data)


class TestScheduleInvalidation:
    def test_forall_reanalysed_after_redistribute(self):
        n, p = 24, 4
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
        shift = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["nxt"],
            label="redist-inval",
        )

        def program(kr):
            yield from kr.forall(shift)
            yield from kr.forall(shift)           # cache hit
            yield from kr.redistribute("A", Cyclic())
            yield from kr.forall(shift)           # must re-analyse

        res = ctx.run(program)
        stats = res.cache_stats()
        assert stats["hits"] == p
        assert stats["invalidations"] == p
        expected = np.arange(float(n))
        for _ in range(3):
            nxt = expected.copy()
            nxt[:-1] = expected[1:]
            expected = nxt
        np.testing.assert_array_equal(ctx.arrays["A"].data, expected)

    def test_unrelated_arrays_not_invalidated(self):
        n, p = 16, 2
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
        ctx.array("B", n, dist=[Block()]).set(np.zeros(n))
        bump_b = Forall(
            index_range=(0, n - 1),
            on=OnOwner("B"),
            reads=[AffineRead("B", name="b")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["b"] + 1,
            label="redist-unrelated",
        )

        def program(kr):
            yield from kr.forall(bump_b)
            yield from kr.redistribute("A", Cyclic())
            yield from kr.forall(bump_b)  # B untouched: cache hit

        res = ctx.run(program)
        assert res.cache_stats()["invalidations"] == 0
        assert res.cache_stats()["hits"] == p

    def test_costs_charged(self):
        n, p = 64, 4
        _, res = run_with_redistribute(n, p, Block(), Cyclic(), machine=NCUBE7)
        assert res.engine.phase_max("redistribute") > 0
        assert res.engine.total_bytes() > 0


class TestLanguageRedistribute:
    def test_statement_round_trip(self):
        src = """
        processors Procs : array[1..P] with P in 1..8;
        const n : integer := 18;
        var A : array[1..n] of real dist by [ block ] on Procs;
        forall i in 1..n on A[i].loc do
            A[i] := float(i * i);
        end;
        redistribute A by [ cyclic ];
        forall i in 1..n on A[i].loc do
            A[i] := A[i] + 1.0;
        end;
        """
        res = compile_kali(src).run(nprocs=4, machine=IDEAL)
        np.testing.assert_allclose(
            res.arrays["A"], np.arange(1.0, 19.0) ** 2 + 1
        )

    def test_redistribute_undistributed_rejected(self):
        from repro.errors import KaliSemanticError

        src = """
        processors Procs : array[1..P] with P in 1..8;
        var R : array[1..4] of real;
        redistribute R by [ block ];
        """
        with pytest.raises(KaliSemanticError):
            compile_kali(src)

    def test_redistribute_inside_forall_rejected(self):
        from repro.errors import KaliSemanticError

        src = """
        processors Procs : array[1..P] with P in 1..8;
        var A : array[1..8] of real dist by [ block ] on Procs;
        forall i in 1..8 on A[i].loc do
            redistribute A by [ cyclic ];
        end;
        """
        with pytest.raises(KaliSemanticError):
            compile_kali(src)

    def test_block_cyclic_with_runtime_param(self):
        src = """
        processors Procs : array[1..P] with P in 1..8;
        const n : integer := 24;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var b : integer;
        forall i in 1..n on A[i].loc do
            A[i] := float(i);
        end;
        b := 2 + 1;
        redistribute A by [ block_cyclic(b) ];
        forall i in 1..n on A[i].loc do
            A[i] := A[i] * 2.0;
        end;
        """
        res = compile_kali(src).run(nprocs=4, machine=IDEAL)
        np.testing.assert_allclose(res.arrays["A"], np.arange(1.0, 25.0) * 2)
