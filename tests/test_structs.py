"""repro.structs semantics and the sim↔mp differential bar.

Semantics first (sim only, fast): upsert/lookup/delete/add behavior,
input-order results under arbitrary batch slicing, FIFO order through
interleaved push/pop, rebalance triggering and content preservation,
error paths.  Then the correctness bar of the subsystem: the same op
sequence — including a mid-sequence rebalance — on the simulator and on
real forked processes must produce bit-identical canonical snapshots
*and* exact per-rank message/byte/counter parity, with large mp batches
riding the shm data plane.
"""

import numpy as np
import pytest

from tests.differential import (
    DifferentialPair,
    assert_arrays_identical,
    assert_counters_identical,
)
from repro.machine.cost import IDEAL, NCUBE7
from repro.structs import (
    DHash,
    DQueue,
    StructsError,
    bucket_of,
    grow_buckets,
    merge_results,
    mix64,
    normalize_buckets,
    owner_of,
)

pytestmark = pytest.mark.timeout(300)


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(8 * n)[:n].astype(np.int64)
    vals = rng.standard_normal(n)
    return keys, vals


class TestHashing:
    def test_mix64_deterministic_and_spreading(self):
        keys = np.arange(1000, dtype=np.int64)
        h1, h2 = mix64(keys), mix64(keys)
        assert np.array_equal(h1, h2)
        assert h1.dtype == np.uint64
        # A finalizer must not collide on a small consecutive range.
        assert len(np.unique(h1)) == 1000

    def test_bucket_of_in_range(self):
        buckets = bucket_of(np.arange(500, dtype=np.int64), 17)
        assert buckets.min() >= 0 and buckets.max() < 17

    def test_normalize_and_grow_stay_odd(self):
        assert normalize_buckets(0) == 3
        assert normalize_buckets(16) == 17
        assert normalize_buckets(17) == 17
        n = 5
        for _ in range(6):
            n = grow_buckets(n)
            assert n % 2 == 1

    def test_owner_is_bucket_mod_ranks(self):
        keys = np.arange(300, dtype=np.int64)
        owners = owner_of(keys, 33, 4)
        assert np.array_equal(owners, bucket_of(keys, 33) % 4)


class TestDHashSemantics:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 3])
    def test_insert_lookup_delete_roundtrip(self, nranks):
        keys, vals = _keys(120)
        h = DHash(nranks, nbuckets=11)
        ins = h.insert_many(keys, vals)
        assert not ins.found.any()          # all keys new
        assert len(h) == 120
        got = h.lookup_many(keys)
        assert got.found.all()
        assert np.array_equal(got.values, vals)
        miss = h.lookup_many(np.asarray([10**12], dtype=np.int64))
        assert not miss.found.any() and miss.values[0] == 0.0
        dele = h.delete_many(keys[:60])
        assert dele.found.all()
        assert np.array_equal(dele.values, vals[:60])
        assert len(h) == 60
        again = h.lookup_many(keys)
        assert int(again.found.sum()) == 60

    def test_insert_overwrites_add_accumulates(self):
        h = DHash(2, nbuckets=7)
        k = np.asarray([5, 9], dtype=np.int64)
        h.insert_many(k, np.asarray([1.0, 2.0]))
        r = h.insert_many(k, np.asarray([10.0, 20.0]))
        assert r.found.all()                # upsert reports prior presence
        assert np.array_equal(h.lookup_many(k).values, [10.0, 20.0])
        h.add_many(k, np.asarray([1.0, 1.0]))
        assert np.array_equal(h.lookup_many(k).values, [11.0, 21.0])

    def test_results_in_input_order_any_world_size(self):
        keys, vals = _keys(97, seed=3)      # odd size -> ragged slices
        for nranks in (1, 2, 4):
            h = DHash(nranks, nbuckets=13)
            h.insert_many(keys, vals)
            got = h.lookup_many(keys[::-1])
            assert np.array_equal(got.values, vals[::-1])

    def test_duplicate_keys_in_one_batch_last_wins(self):
        # Slice boundaries must not reorder same-key applies: the owner
        # applies packets sorted by source rank, elements in order.
        h = DHash(4, nbuckets=7)
        k = np.asarray([42] * 8, dtype=np.int64)
        v = np.arange(8, dtype=np.float64)
        h.insert_many(k, v)
        assert h.lookup_many(k[:1]).values[0] == 7.0
        assert len(h) == 1

    def test_empty_batch_is_free(self):
        h = DHash(2)
        out = h.insert_many(np.zeros(0, dtype=np.int64), np.zeros(0))
        assert len(out.found) == 0
        assert h.op_results == []           # no engine run at all

    def test_load_factor_rebalance_triggers_and_preserves(self):
        keys, vals = _keys(200, seed=1)
        h = DHash(4, nbuckets=5, max_load=4.0)
        h.insert_many(keys, vals)
        assert h.rebalances >= 1
        assert h.nbuckets > 5 and h.nbuckets % 2 == 1
        assert h.load_factor <= h.max_load
        got = h.lookup_many(keys)
        assert got.found.all()
        assert np.array_equal(got.values, vals)

    def test_explicit_rebalance_forced_and_shrink_rejected(self):
        keys, vals = _keys(40, seed=2)
        h = DHash(2, nbuckets=31)
        h.insert_many(keys, vals)
        before = h.snapshot()
        info = h.rebalance(101)
        assert info["rebalanced"] and h.nbuckets == 101
        after = h.snapshot()
        assert np.array_equal(before["keys"], after["keys"])
        assert np.array_equal(before["values"], after["values"])
        with pytest.raises(StructsError, match="only grows"):
            h.rebalance(11)

    def test_rebalance_under_load_is_noop(self):
        h = DHash(2, nbuckets=31)
        keys, vals = _keys(10)
        h.insert_many(keys, vals)
        info = h.rebalance()
        assert not info["rebalanced"]
        assert info["reason"] == "under-load"

    def test_rebalance_verdict_is_global_on_ragged_batches(self):
        # Regression: the amortization size hint must be the
        # driver-shipped *global* batch length.  97 keys over 4 ranks
        # slice 25/24/24/24; with NCUBE7 and horizon=1 the amortization
        # threshold sits at ~98.8 hinted items — strictly between the
        # rank-local guesses 100 and 96 — so a slice-derived hint splits
        # the world: rank 0 enters the collective migration while the
        # rest return early, and the op deadlocks.  The global hint (97)
        # keeps every rank on the same side of the threshold.
        keys, vals = _keys(97, seed=6)
        h = DHash(4, nbuckets=7, max_load=4.0, rebalance_horizon=1)
        res = h.insert_many(keys, vals)
        assert res.info["reason"] == "not-amortized"
        assert h.nbuckets == 7 and h.rebalances == 0
        got = h.lookup_many(keys)
        assert got.found.all()
        assert np.array_equal(got.values, vals)

    def test_naive_mode_rebalances_like_batched(self):
        # The naive mode is a routing baseline only: the same key
        # sequence must land in the same table geometry either way.
        keys, vals = _keys(200, seed=7)
        a, b = DHash(4, nbuckets=5), DHash(4, nbuckets=5)
        a.insert_many(keys, vals, combine=True)
        b.insert_many(keys, vals, combine=False)
        assert a.rebalances >= 1
        assert b.rebalances == a.rebalances
        assert b.nbuckets == a.nbuckets
        sa, sb = a.snapshot(), b.snapshot()
        for name in sa:
            assert np.array_equal(sa[name], sb[name])

    def test_naive_mode_matches_batched_results(self):
        keys, vals = _keys(50, seed=4)
        a, b = DHash(4, nbuckets=67), DHash(4, nbuckets=67)
        a.insert_many(keys, vals, combine=True)
        b.insert_many(keys, vals, combine=False)
        ga = a.lookup_many(keys, combine=True)
        gb = b.lookup_many(keys, combine=False)
        assert np.array_equal(ga.values, gb.values)
        sa, sb = a.snapshot(), b.snapshot()
        for name in sa:
            assert np.array_equal(sa[name], sb[name])
        # ...but the naive mode pays for it in exchanges.
        na = merge_results(a.op_results).counter_sum("structs_exchanges")
        nb = merge_results(b.op_results).counter_sum("structs_exchanges")
        assert nb > 4 * na

    def test_validation_errors(self):
        with pytest.raises(StructsError, match="nranks"):
            DHash(0)
        with pytest.raises(StructsError, match="backend"):
            DHash(2, backend="gpu")
        h = DHash(2)
        with pytest.raises(StructsError, match="values"):
            h.insert_many(np.asarray([1, 2], dtype=np.int64),
                          np.asarray([1.0]))


class TestDQueueSemantics:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 3])
    def test_fifo_order_interleaved(self, nranks):
        rng = np.random.default_rng(9)
        q = DQueue(nranks)
        reference = []
        popped = []
        for step in range(12):
            n = int(rng.integers(1, 20))
            vals = rng.standard_normal(n)
            q.push_many(vals)
            reference.extend(vals.tolist())
            take = int(rng.integers(0, len(q) + 1))
            if take:
                popped.extend(q.pop_many(take).tolist())
        popped.extend(q.pop_many(len(q)).tolist())
        assert popped == reference
        assert len(q) == 0

    def test_pop_beyond_size_raises(self):
        q = DQueue(2)
        q.push_many(np.asarray([1.0, 2.0]))
        with pytest.raises(StructsError, match="pop_many"):
            q.pop_many(3)
        assert len(q) == 2                  # failed op mutated nothing

    def test_segments_stay_balanced(self):
        q = DQueue(4)
        q.push_many(np.arange(101, dtype=np.float64))
        sizes = [len(seg) for seg in q._segments]
        assert max(sizes) - min(sizes) <= 1


class TestMergeResults:
    def test_sums_counters_and_clocks(self):
        h = DHash(2, nbuckets=31)
        keys, vals = _keys(30)
        h.insert_many(keys, vals)
        h.lookup_many(keys)
        merged = merge_results(h.op_results)
        assert merged.counter_sum("structs_batches") == 4  # 2 ops x 2 ranks
        assert merged.makespan == pytest.approx(
            max(sum(res.clocks[r] for res in h.op_results)
                for r in range(2)))

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(StructsError):
            merge_results([])
        a = DHash(2); b = DHash(4)
        ka, va = _keys(8)
        a.insert_many(ka, va); b.insert_many(ka, va)
        with pytest.raises(StructsError, match="worlds"):
            merge_results(a.op_results + b.op_results)


# --- the differential bar --------------------------------------------------


def _drive_dhash(backend):
    """An op sequence that crosses a rebalance mid-way (nbuckets grows
    from 5 while ops keep flowing) plus deletes and re-lookups."""
    rng = np.random.default_rng(77)
    keys = rng.permutation(2000)[:400].astype(np.int64)
    vals = rng.standard_normal(400)
    h = DHash(4, nbuckets=5, backend=backend)
    h.insert_many(keys[:150], vals[:150])
    h.lookup_many(keys[:250])
    h.insert_many(keys[150:], vals[150:])
    h.delete_many(keys[::3])
    h.add_many(keys[1::3], np.ones(len(keys[1::3])))
    h.lookup_many(keys)
    assert h.rebalances >= 1, "scenario must cross a rebalance"
    return h.snapshot(), merge_results(h.op_results)


def _drive_dqueue(backend):
    rng = np.random.default_rng(13)
    q = DQueue(4, backend=backend)
    out = []
    q.push_many(rng.standard_normal(60))
    out.append(q.pop_many(25))
    q.push_many(rng.standard_normal(40))
    out.append(q.pop_many(50))
    snap = q.snapshot()
    snap["popped"] = np.concatenate(out)
    return snap, merge_results(q.op_results)


class TestDifferential:
    def test_dhash_sim_mp_bit_identical_with_rebalance(self):
        sim_snap, sim_res = _drive_dhash("sim")
        mp_snap, mp_res = _drive_dhash("mp")
        pair = DifferentialPair(sim_res, mp_res, sim_snap, mp_snap)
        assert_arrays_identical(pair)
        assert_counters_identical(pair)

    def test_dqueue_sim_mp_bit_identical(self):
        sim_snap, sim_res = _drive_dqueue("sim")
        mp_snap, mp_res = _drive_dqueue("mp")
        pair = DifferentialPair(sim_res, mp_res, sim_snap, mp_snap)
        assert_arrays_identical(pair)
        assert_counters_identical(pair)

    def test_mp_batches_ride_the_shm_plane(self):
        # A batch big enough to clear the hoist threshold must move its
        # payload bytes through the shared-memory plane, not the pipes.
        keys, vals = _keys(20000, seed=8)
        h = DHash(2, nbuckets=normalize_buckets(20000), backend="mp",
                  machine=IDEAL)
        h.insert_many(keys, vals)
        merged = merge_results(h.op_results)
        assert merged.counter_sum("shm_bytes_sent") > 0


class TestMachineSensitivity:
    def test_batched_beats_naive_in_virtual_time(self):
        # The G1 bench gates 3x at P>=4; here just pin the direction on
        # the real cost model so a costing regression fails fast.
        keys, vals = _keys(64, seed=5)
        a = DHash(4, nbuckets=67, machine=NCUBE7)
        b = DHash(4, nbuckets=67, machine=NCUBE7)
        a.insert_many(keys, vals, combine=True)
        b.insert_many(keys, vals, combine=False)
        assert (merge_results(b.op_results).makespan
                > 2 * merge_results(a.op_results).makespan)
