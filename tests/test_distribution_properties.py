"""Hypothesis property tests for every distribution in ``repro.distributions``.

Each ``DimDistribution`` realises the paper's ``local(p)`` function and
must satisfy three contracts, exercised here over Hypothesis-drawn
``(extent, nprocs, parameters)``:

* **bijection** — ``to_local``/``to_global`` round-trip through
  ``owner``: for every global index ``i``,
  ``to_global(owner(i), to_local(i)) == i``, and for every processor
  ``p`` and local offset ``k < local_count(p)``,
  ``to_local(to_global(p, k)) == k`` with ``owner(to_global(p, k)) == p``.
* **coverage** — ``local_indices(p)`` partitions ``[0, extent)``
  (disjoint + complete; replicated dims instead store everything
  everywhere), and ``analysis_sections(p)``, when offered, enumerates
  exactly the owned indices.
* **consistency** — ``local_count``, ``local_set`` and vectorised
  ``owner`` all agree with ``local_indices``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Block,
    BlockCyclic,
    Custom,
    Cyclic,
    Replicated,
)
from repro.util.sections import union_to_interval_set

extents = st.integers(1, 120)
procs = st.integers(1, 9)


@st.composite
def bound_dists(draw):
    """A bound distribution of every kind, with drawn parameters."""
    n = draw(extents)
    p = draw(procs)
    kind = draw(st.sampled_from(["block", "cyclic", "bc", "custom", "repl"]))
    if kind == "block":
        d = Block()
    elif kind == "cyclic":
        d = Cyclic()
    elif kind == "bc":
        d = BlockCyclic(draw(st.integers(1, 13)))
    elif kind == "custom":
        seed = draw(st.integers(0, 999))
        owners = np.random.default_rng(seed).integers(0, p, size=n)
        d = Custom(owners)
    else:
        d = Replicated()
    return d.bind(n, p)


@settings(max_examples=150, deadline=None)
@given(dist=bound_dists())
def test_global_local_round_trip_bijection(dist):
    """to_global(owner(i), to_local(i)) == i for every global index, and
    the inverse trip from every (proc, offset) pair."""
    n, p = dist.extent, dist.nprocs
    idx = np.arange(n, dtype=np.int64)
    owners = np.asarray(dist.owner(idx))
    offsets = np.asarray(dist.to_local(idx))
    assert ((owners >= 0) & (owners < p)).all()
    assert (offsets >= 0).all()
    for i in range(n):
        # scalar and vectorised paths must agree
        assert int(dist.owner(i)) == owners[i]
        assert int(dist.to_local(i)) == offsets[i]
        assert int(dist.to_global(int(owners[i]), int(offsets[i]))) == i
    for q in range(p):
        count = dist.local_count(q)
        offs = np.arange(count, dtype=np.int64)
        back = np.asarray(dist.to_global(q, offs))
        if isinstance(dist, Replicated):
            # replicated dims answer storage queries for every proc but
            # route ownership to the canonical proc 0
            assert (np.asarray(dist.owner(back)) == 0).all()
        else:
            assert (np.asarray(dist.owner(back)) == q).all()
            np.testing.assert_array_equal(
                np.asarray(dist.to_local(back)), offs
            )


@settings(max_examples=150, deadline=None)
@given(dist=bound_dists())
def test_local_indices_partition_the_dimension(dist):
    """The local(p) sets are pairwise disjoint and cover [0, extent) —
    except replicated, where every proc stores the full extent."""
    n, p = dist.extent, dist.nprocs
    if isinstance(dist, Replicated):
        for q in range(p):
            np.testing.assert_array_equal(
                dist.local_indices(q), np.arange(n, dtype=np.int64)
            )
        return
    dist.check_disjoint_cover()
    seen = np.concatenate([dist.local_indices(q) for q in range(p)])
    np.testing.assert_array_equal(np.sort(seen), np.arange(n, dtype=np.int64))


@settings(max_examples=150, deadline=None)
@given(dist=bound_dists())
def test_local_views_are_consistent(dist):
    """local_count, local_set and owner() all agree with local_indices."""
    n, p = dist.extent, dist.nprocs
    idx = np.arange(n, dtype=np.int64)
    owners = np.asarray(dist.owner(idx))
    for q in range(p):
        mine = dist.local_indices(q)
        assert mine.size == dist.local_count(q)
        np.testing.assert_array_equal(mine, np.sort(mine))
        np.testing.assert_array_equal(dist.local_set(q).to_array(), mine)
        if not isinstance(dist, Replicated):
            np.testing.assert_array_equal(mine, idx[owners == q])
    assert dist.max_local_count() == max(
        dist.local_count(q) for q in range(p)
    )


@settings(max_examples=150, deadline=None)
@given(dist=bound_dists())
def test_analysis_sections_enumerate_exactly_owned_indices(dist):
    """When a distribution offers strided sections to the closed-form
    analysis, they must enumerate exactly local(p) — no more, no less —
    and has_section_form()/local_section() must tell the truth."""
    p = dist.nprocs
    for q in range(p):
        secs = dist.analysis_sections(q)
        if secs is None:
            # No closed form on offer: the planner must not try.
            assert not dist.supports_closed_form()
            continue
        enumerated = np.sort(np.concatenate(
            [s.to_array() for s in secs]
        )) if secs else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(enumerated, dist.local_indices(q))
        # sections are internally disjoint
        assert enumerated.size == np.unique(enumerated).size
        np.testing.assert_array_equal(
            union_to_interval_set(secs).to_array(), dist.local_indices(q)
        )
        if dist.has_section_form():
            single = dist.local_section(q)
            assert single is not None
            np.testing.assert_array_equal(
                single.to_array(), dist.local_indices(q)
            )


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(1, 100),
    p=st.integers(1, 8),
    b=st.integers(1, 12),
)
def test_block_cyclic_degenerate_forms(n, p, b):
    """block_cyclic(1) == cyclic and block_cyclic(ceil(n/p)) == block,
    element for element."""
    bc1 = BlockCyclic(1).bind(n, p)
    cyc = Cyclic().bind(n, p)
    idx = np.arange(n, dtype=np.int64)
    np.testing.assert_array_equal(bc1.owner(idx), cyc.owner(idx))
    np.testing.assert_array_equal(bc1.to_local(idx), cyc.to_local(idx))

    big = BlockCyclic(-(-n // p)).bind(n, p)
    blk = Block().bind(n, p)
    np.testing.assert_array_equal(big.owner(idx), blk.owner(idx))
    np.testing.assert_array_equal(big.to_local(idx), blk.to_local(idx))
