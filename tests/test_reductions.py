"""Tests for forall reductions (sum/max/min across all iterations).

The paper elides Figure 4's "code to check convergence"; reductions are
the natural way a global-name-space forall expresses it.  Both front
ends are covered: the IR-level ``ReduceSpec`` and the Kali-language
``x := max(x, e)`` accumulation shape.
"""

import numpy as np
import pytest

from repro.core.context import KaliContext
from repro.core.forall import (
    Affine,
    AffineRead,
    AffineWrite,
    Forall,
    OnOwner,
    ReduceSpec,
)
from repro.distributions import Block, Cyclic
from repro.errors import ForallError, KaliSemanticError
from repro.lang import compile_kali
from repro.machine.cost import IDEAL, NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep


def run_reduction(n, p, dist, reductions, kernel, reads=None, writes=()):
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[dist]).set(np.arange(float(n)))
    loop = Forall(
        index_range=(0, n - 1),
        on=OnOwner("A"),
        reads=reads or [AffineRead("A", name="a")],
        writes=list(writes),
        reductions=reductions,
        kernel=kernel,
        label=f"red-{p}-{dist.kind}-{len(reductions)}",
    )
    results = {}

    def program(kr):
        results[kr.id] = (yield from kr.forall(loop))

    ctx.run(program)
    return ctx, results


class TestIRReductions:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_sum(self, p):
        _, res = run_reduction(
            40, p, Block(),
            [ReduceSpec("total", "sum")],
            lambda iters, ops: {"total": ops["a"]},
        )
        assert all(v == {"total": sum(range(40))} for v in res.values())

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_max_min(self, p):
        _, res = run_reduction(
            25, p, Cyclic(),
            [ReduceSpec("hi", "max"), ReduceSpec("lo", "min")],
            lambda iters, ops: {"hi": ops["a"], "lo": ops["a"]},
        )
        assert all(v == {"hi": 24.0, "lo": 0.0} for v in res.values())

    def test_all_ranks_get_same_value(self):
        _, res = run_reduction(
            31, 4, Block(),
            [ReduceSpec("total", "sum")],
            lambda iters, ops: {"total": ops["a"] * 2},
        )
        values = {v["total"] for v in res.values()}
        assert values == {float(sum(range(31)) * 2)}

    def test_reduction_with_write(self):
        """Writes and reductions coexist in one forall."""
        ctx, res = run_reduction(
            16, 4, Block(),
            [ReduceSpec("total", "sum")],
            lambda iters, ops: {"A": ops["a"] + 1, "total": ops["a"]},
            writes=[AffineWrite("A")],
        )
        np.testing.assert_array_equal(
            ctx.arrays["A"].data, np.arange(16.0) + 1
        )
        assert res[0]["total"] == sum(range(16))

    def test_pure_reduction_forall_allowed(self):
        """No write target needed when a reduction is present."""
        _, res = run_reduction(
            8, 2, Block(),
            [ReduceSpec("m", "max")],
            lambda iters, ops: {"m": ops["a"]},
        )
        assert res[0]["m"] == 7.0

    def test_kernel_must_supply_contributions(self):
        from repro.errors import InspectorError

        with pytest.raises(InspectorError):
            run_reduction(
                8, 2, Block(),
                [ReduceSpec("m", "max")],
                lambda iters, ops: {"wrong": ops["a"]},
            )

    def test_bad_op_rejected(self):
        with pytest.raises(ForallError):
            ReduceSpec("x", "product")

    def test_neither_write_nor_reduction_rejected(self):
        with pytest.raises(ForallError):
            Forall(
                index_range=(0, 3),
                on=OnOwner("A"),
                reads=[],
                writes=[],
                kernel=lambda i, o: i,
            )

    def test_reduction_charges_allreduce_messages(self):
        """The reduction communicates: message counts must reflect the
        recursive-doubling pattern."""
        ctx = KaliContext(8, machine=NCUBE7)
        ctx.array("A", 32, dist=[Block()]).set(np.ones(32))
        loop = Forall(
            index_range=(0, 31),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[],
            reductions=[ReduceSpec("s", "sum")],
            kernel=lambda iters, ops: {"s": ops["a"]},
            label="red-msgs",
        )

        def program(kr):
            yield from kr.forall(loop)

        res = ctx.run(program)
        # allreduce on 8 ranks: 3 rounds x 8 sends = 24 messages.
        assert res.engine.total_messages() == 24


class TestKaliLanguageReductions:
    HEADER = (
        "processors Procs : array[1..P] with P in 1..32;\n"
        "const n : integer := 24;\n"
        "var A : array[1..n] of real dist by [ block ] on Procs;\n"
        "var s, m : real;\n"
    )

    def _run(self, body, p=4):
        return compile_kali(self.HEADER + body).run(nprocs=p, machine=IDEAL)

    def test_sum_shape(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
            "s := 0.0;\n"
            "forall i in 1..n on A[i].loc do s := s + A[i]; end;\n"
        )
        assert res.scalars["s"] == sum(range(1, 25))

    def test_sum_commuted_shape(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := 1.0; end;\n"
            "s := 100.0;\n"
            "forall i in 1..n on A[i].loc do s := A[i] + s; end;\n"
        )
        assert res.scalars["s"] == 124.0  # initial value folds in

    def test_max_shape(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := float(i * i); end;\n"
            "m := 0.0;\n"
            "forall i in 1..n on A[i].loc do m := max(m, A[i]); end;\n"
        )
        assert res.scalars["m"] == 576.0

    def test_min_shape(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
            "m := 1000.0;\n"
            "forall i in 1..n on A[i].loc do m := min(A[i], m); end;\n"
        )
        assert res.scalars["m"] == 1.0

    def test_two_reductions_one_forall(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
            "s := 0.0;\n"
            "m := 0.0;\n"
            "forall i in 1..n on A[i].loc do\n"
            "    s := s + A[i];\n"
            "    m := max(m, A[i]);\n"
            "end;\n"
        )
        assert res.scalars["s"] == sum(range(1, 25))
        assert res.scalars["m"] == 24.0

    def test_non_reduction_scalar_write_still_rejected(self):
        with pytest.raises(KaliSemanticError):
            self._run(
                "forall i in 1..n on A[i].loc do s := float(i); end;\n"
            )

    def test_contribution_reading_accumulator_rejected(self):
        with pytest.raises(KaliSemanticError):
            self._run(
                "forall i in 1..n on A[i].loc do s := s + (A[i] * s); end;\n"
            )

    def test_conditional_reduction(self):
        """Reductions under if fold only the live iterations (a masked
        sum — the histogram pattern)."""
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
            "s := 0.0;\n"
            "forall i in 1..n on A[i].loc do\n"
            "    if A[i] > 20.0 then s := s + 1.0; end;\n"
            "end;\n"
        )
        assert res.scalars["s"] == 4.0  # values 21..24

    def test_reduction_inside_inner_loop(self):
        res = self._run(
            "forall i in 1..n on A[i].loc do A[i] := 1.0; end;\n"
            "s := 0.0;\n"
            "forall i in 1..n on A[i].loc do\n"
            "    for j in 1..3 do s := s + A[i]; end;\n"
            "end;\n"
        )
        assert res.scalars["s"] == 24 * 3

    def test_conflicting_reduction_ops_rejected(self):
        with pytest.raises(KaliSemanticError):
            self._run(
                "s := 0.0;\n"
                "forall i in 1..n on A[i].loc do\n"
                "    s := s + A[i];\n"
                "    s := max(s, A[i]);\n"
                "end;\n"
            )

    def test_reduction_forall_is_cached(self):
        """Re-executing a reduction forall must not re-lower or re-inspect
        even though the accumulator's value changes every time."""
        src = self.HEADER + (
            "var k : integer;\n"
            "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
            "s := 0.0;\n"
            "for k in 1..5 do\n"
            "    forall i in 1..n on A[i].loc do s := s + A[i]; end;\n"
            "end;\n"
        )
        res = compile_kali(src).run(nprocs=4, machine=IDEAL)
        assert res.scalars["s"] == 5 * sum(range(1, 25))
        stats = res.timing.cache_stats()
        # init forall: 1 miss/rank; reduction forall: 1 miss + 4 hits/rank
        assert stats["hits"] == 4 * 4
        assert stats["misses"] == 2 * 4


class TestConvergentJacobi:
    def test_full_figure4_with_convergence(self):
        """The complete Figure 4 — including the elided convergence test —
        in Kali source, with damped relaxation (the undamped kernel
        oscillates on bipartite grids; the checkerboard mode has
        eigenvalue -1)."""
        src = """
        processors Procs : array[1..P] with P in 1..n;
        const n : integer;
        const width : integer;
        const tol : real := 0.001;
        var a, old_a : array[1..n] of real dist by [ block ] on Procs;
            count : array[1..n] of integer dist by [ block ] on Procs;
            adj : array[1..n, 1..width] of integer dist by [ block, * ] on Procs;
            coef : array[1..n, 1..width] of real dist by [ block, * ] on Procs;
        var converged : boolean;
        var maxdiff : real;
        var sweeps : integer;

        converged := false;
        sweeps := 0;
        while not converged do
            forall i in 1..n on old_a[i].loc do
                old_a[i] := a[i];
            end;
            forall i in 1..n on a[i].loc do
                var x : real;
                x := 0.0;
                for j in 1..count[i] do
                    x := x + coef[i,j] * old_a[ adj[i,j] ];
                end;
                if (count[i] > 0) then a[i] := 0.5 * old_a[i] + 0.5 * x; end;
            end;
            maxdiff := 0.0;
            forall i in 1..n on a[i].loc do
                maxdiff := max(maxdiff, abs(a[i] - old_a[i]));
            end;
            converged := maxdiff < tol;
            sweeps := sweeps + 1;
        end;
        """
        mesh = five_point_grid(8, 8)
        rng = np.random.default_rng(42)
        init = rng.random(mesh.n)
        res = compile_kali(src).run(
            nprocs=4,
            machine=IDEAL,
            consts={"n": mesh.n, "width": mesh.width},
            inputs={"a": init, "count": mesh.count, "adj": mesh.adj + 1,
                    "coef": mesh.coef},
        )
        ref = init.copy()
        sweeps = 0
        while True:
            new = 0.5 * ref + 0.5 * reference_sweep(mesh, ref)
            diff = np.abs(new - ref).max()
            ref = new
            sweeps += 1
            if diff < 1e-3:
                break
        assert res.scalars["sweeps"] == sweeps
        np.testing.assert_allclose(res.arrays["a"], ref)

    def test_convergence_loop_reuses_schedules(self):
        """Across the whole while loop, each of the three foralls is
        analysed exactly once (the reduction accumulator's changing value
        must not poison the fingerprint)."""
        src = """
        processors Procs : array[1..P] with P in 1..64;
        const n : integer := 64;
        var a, old_a : array[1..n] of real dist by [ block ] on Procs;
        var maxdiff : real;
        var k : integer;

        forall i in 1..n on a[i].loc do a[i] := float(i); end;
        for k in 1..6 do
            forall i in 1..n on old_a[i].loc do old_a[i] := a[i]; end;
            maxdiff := 0.0;
            forall i in 1..n on a[i].loc do
                maxdiff := max(maxdiff, abs(a[i] - old_a[i]));
            end;
        end;
        """
        res = compile_kali(src).run(nprocs=4, machine=NCUBE7)
        stats = res.timing.cache_stats()
        assert stats["misses"] == 3 * 4  # three distinct foralls, 4 ranks
        assert stats["invalidations"] == 0
