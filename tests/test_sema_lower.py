"""Tests for semantic analysis and forall lowering."""

import numpy as np
import pytest

from repro.errors import KaliSemanticError
from repro.lang.lower import affine_of, forall_fingerprint
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lang import ast

HEADER = (
    "processors Procs : array[1..P] with P in 1..8;\n"
    "var A, B : array[1..16] of real dist by [block] on Procs;\n"
    "var T : array[1..16, 1..3] of integer dist by [block, *] on Procs;\n"
    "var R : array[1..4] of real;\n"
    "var x : real; k : integer;\n"
    "const c : integer := 3;\n"
)


def check(body: str, header: str = HEADER):
    return analyze(parse(header + body))


class TestSemaDeclarations:
    def test_symbols_collected(self):
        table = check("")
        assert set(table.procs) == {"Procs"}
        assert {"A", "B", "T", "R"} <= set(table.arrays)
        assert {"x", "k", "c", "P"} <= set(table.scalars)
        assert table.scalars["c"].is_const
        assert not table.arrays["R"].distributed

    def test_duplicate_declaration(self):
        with pytest.raises(KaliSemanticError):
            check("", header=HEADER + "var A : real;\n")

    def test_dist_without_on(self):
        with pytest.raises(KaliSemanticError):
            analyze(parse(
                "processors Procs : array[1..2];\n"
                "var Z : array[1..4] of real dist by [block] on Nope;"
            ))

    def test_dist_count_mismatch(self):
        with pytest.raises(KaliSemanticError):
            analyze(parse(
                "processors Procs : array[1..2];\n"
                "var Z : array[1..4, 1..4] of real dist by [block] on Procs;"
            ))

    def test_two_distributed_dims_rejected(self):
        with pytest.raises(KaliSemanticError):
            analyze(parse(
                "processors Procs : array[1..2];\n"
                "var Z : array[1..4, 1..4] of real dist by [block, cyclic] on Procs;"
            ))

    def test_star_first_dim_rejected(self):
        with pytest.raises(KaliSemanticError):
            analyze(parse(
                "processors Procs : array[1..2];\n"
                "var Z : array[1..4, 1..4] of real dist by [*, block] on Procs;"
            ))


class TestSemaStatements:
    def test_undeclared_name(self):
        with pytest.raises(KaliSemanticError):
            check("x := nosuch;")

    def test_assign_to_const(self):
        with pytest.raises(KaliSemanticError):
            check("c := 4;")

    def test_array_without_subscript(self):
        with pytest.raises(KaliSemanticError):
            check("x := A;")

    def test_wrong_arity(self):
        with pytest.raises(KaliSemanticError):
            check("x := A[1, 2];")
        with pytest.raises(KaliSemanticError):
            check("x := T[1];")

    def test_global_scalar_write_in_forall(self):
        with pytest.raises(KaliSemanticError) as exc:
            check("forall i in 1..16 on A[i].loc do x := 1.0; end;")
        assert "races" in str(exc.value)

    def test_local_var_write_in_forall_ok(self):
        check(
            "forall i in 1..16 on A[i].loc do\n"
            "  var t : real;\n"
            "  t := 1.0; A[i] := t;\n"
            "end;"
        )

    def test_nested_forall_rejected(self):
        with pytest.raises(KaliSemanticError):
            check(
                "forall i in 1..16 on A[i].loc do\n"
                "  forall j in 1..16 on B[j].loc do B[j] := 0.0; end;\n"
                "end;"
            )

    def test_while_inside_forall_rejected(self):
        with pytest.raises(KaliSemanticError):
            check(
                "forall i in 1..16 on A[i].loc do\n"
                "  while x > 0.0 do A[i] := 0.0; end;\n"
                "end;"
            )

    def test_forall_on_undistributed_rejected(self):
        with pytest.raises(KaliSemanticError):
            check("forall i in 1..4 on R[i].loc do R[i] := 0.0; end;")

    def test_forall_local_array_rejected(self):
        with pytest.raises(KaliSemanticError):
            check(
                "forall i in 1..16 on A[i].loc do\n"
                "  var t : array[1..2] of real;\n"
                "  A[i] := 0.0;\n"
                "end;"
            )

    def test_for_var_scoped(self):
        check("for j in 1..3 do x := x + 1.0; end;")


class TestAffineExtraction:
    def _expr(self, text):
        prog = parse(HEADER + f"k := {text};")
        return prog.stmts[0].value

    def test_constant(self):
        assert affine_of(self._expr("7"), "i", {}) == (0, 7)

    def test_var(self):
        assert affine_of(ast.Name("i"), "i", {}) == (1, 0)

    def test_shift(self):
        assert affine_of(self._expr("i + 1"), "i", {"i": None}) == (1, 1)

    def test_general(self):
        # 2*i - 3 + c with c = 3
        e = self._expr("2 * i - 3 + c")
        assert affine_of(e, "i", {"c": 3}) == (2, 0)

    def test_negated(self):
        e = self._expr("-(i - 4)")
        assert affine_of(e, "i", {}) == (-1, 4)

    def test_scalar_fold(self):
        e = self._expr("k * i")
        assert affine_of(e, "i", {"k": 5}) == (5, 0)

    def test_nonlinear_rejected(self):
        e = self._expr("i * i")
        assert affine_of(e, "i", {}) is None

    def test_unknown_name_rejected(self):
        e = self._expr("i + q")
        assert affine_of(e, "i", {}) is None

    def test_div_constant_fold(self):
        e = self._expr("7 div 2")
        assert affine_of(e, "i", {}) == (0, 3)

    def test_div_of_var_rejected(self):
        e = self._expr("i div 2")
        assert affine_of(e, "i", {}) is None


class TestFingerprint:
    def _forall(self, src):
        prog = parse(HEADER + src)
        table = analyze(prog)
        stmt = prog.stmts[-1]
        return stmt, table

    def test_depends_on_referenced_scalars(self):
        stmt, table = self._forall(
            "forall i in 1..k on A[i].loc do A[i] := x; end;"
        )
        f1 = forall_fingerprint(stmt, table, {"k": 8, "x": 1.0})
        f2 = forall_fingerprint(stmt, table, {"k": 9, "x": 1.0})
        f3 = forall_fingerprint(stmt, table, {"k": 8, "x": 1.0, "unrelated": 7})
        assert f1 != f2
        assert f1 == f3

    def test_inner_loop_bounds_included(self):
        stmt, table = self._forall(
            "forall i in 1..16 on A[i].loc do\n"
            "  var t : real;\n"
            "  for j in 1..k do t := t + 1.0; end;\n"
            "  A[i] := t;\n"
            "end;"
        )
        assert forall_fingerprint(stmt, table, {"k": 2}) != forall_fingerprint(
            stmt, table, {"k": 3}
        )
