"""The adaptive layout tuner: signals, candidate scoring, the online
policy, the learned plan store, and the serve warm-start path.

The load-bearing contracts:

* **Tally additivity** — per-rank partial tallies sum to the global
  tally, which is what makes the online decision a single exact integer
  allreduce (and therefore identical on every rank and every backend).
* **Convergence gate** — started on an adversarial layout, the tuner
  reaches the RCB partition in at most 2 redistributions, and the final
  array is bit-identical to a static-RCB run (redistribution moves data,
  it never changes it).  The gate holds on the sim *and* mp backends,
  with identical decision sequences.
* **Warm start** — a second job with the same fingerprint starts in the
  learned layout: ``tune_applied`` True, zero mid-run moves, same bits.
"""

import json

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.distributions import Block, Custom, Cyclic
from repro.machine.cost import NCUBE7
from repro.meshes.partition import coordinate_bisection
from repro.meshes.unstructured import random_unstructured_mesh
from repro.obs.registry import MetricsRegistry
from repro.tune import (
    AdaptiveRunner,
    LoadProfile,
    PlanStore,
    TUNEPLAN_FORMAT,
    TunePolicy,
    TuneSpec,
    apply_plan,
    context_fingerprint,
    generate_candidates,
    layout_tallies,
    plan,
    plan_from_layouts,
    predict_move_cost,
    score_layouts,
)
from repro.tune.candidates import CandidateLayout, owner_map, tally_width

pytestmark = pytest.mark.timeout(300)

P = 8
NODES = 600
SWEEPS = 16
ARRAYS = ("a", "old_a", "count", "adj", "coef")


@pytest.fixture(scope="module")
def shuffled():
    """A shuffled unstructured mesh: node ids decorrelated from geometry,
    so id-based layouts are genuinely bad and RCB genuinely wins."""
    return random_unstructured_mesh(NODES, seed=7, locality_sort=False)


def bad_owners(n, nprocs, seed=8):
    return np.random.default_rng(seed).integers(
        0, nprocs, size=n).astype(np.int64)


def adaptive_jacobi(mesh, points, nprocs, dist, sweeps=SWEEPS, *,
                    backend="sim", tune=None, policy=None):
    prog = build_jacobi(
        mesh, nprocs, machine=NCUBE7, dist=dist,
        initial=np.random.default_rng(3).random(mesh.n),
        backend=backend, tune=tune,
    )
    runner = AdaptiveRunner(
        TuneSpec(arrays=ARRAYS, table="adj", count="count", points=points),
        policy or TunePolicy(interval=4, warmup=4),
    )
    res = runner.run(prog.ctx, [prog.copy_loop, prog.relax_loop], sweeps)
    return prog, res


def static_jacobi(mesh, nprocs, dist, sweeps=SWEEPS, *, backend="sim"):
    prog = build_jacobi(
        mesh, nprocs, machine=NCUBE7, dist=dist,
        initial=np.random.default_rng(3).random(mesh.n), backend=backend,
    )
    res = prog.run(sweeps)
    return prog, res


# --- candidates and tallies -----------------------------------------------


class TestCandidates:
    def test_owner_map_matches_bound_distribution(self):
        own = owner_map(Block(), 10, 3)      # ceil blocks of 4: 4 + 4 + 2
        assert own.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        own = owner_map(Cyclic(), 7, 3)
        assert own.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_candidates_deterministic_and_unique(self, shuffled):
        mesh, points = shuffled
        a = generate_candidates(mesh.n, P, points=points)
        b = generate_candidates(mesh.n, P, points=points)
        assert [c.name for c in a] == [c.name for c in b]
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.owners, cb.owners)
        seen = {c.owners.tobytes() for c in a}
        assert len(seen) == len(a)  # owner-map dedup held
        names = {c.name for c in a}
        assert {"block", "cyclic", "rcb"} <= names

    def test_candidate_spec_round_trip(self, shuffled):
        mesh, points = shuffled
        for c in generate_candidates(mesh.n, P, points=points):
            assert np.array_equal(
                owner_map(c.to_spec(), mesh.n, P), c.owners)

    def test_tally_hand_check(self):
        # 4 rows on 2 procs, block layout [0,0,1,1]; row i reads its
        # neighbours: row0->{1}, row1->{2}, row2->{1,3}, row3->{2}.
        own = np.array([0, 0, 1, 1], dtype=np.int64)
        table = np.array([[1, 0], [2, 0], [1, 3], [2, 0]], dtype=np.int64)
        counts = np.array([1, 1, 2, 1], dtype=np.int64)
        t = layout_tallies([own], np.arange(4), table, counts, 2)[0]
        assert t.shape == (tally_width(2),)
        assert t[0:2].tolist() == [2, 3]       # refs by executing rank
        assert t[2:4].tolist() == [1, 1]       # remote subset
        # pair matrix rows: (executor 0 -> home 1) = 1, (1 -> 0) = 1
        assert t[4:].reshape(2, 2).tolist() == [[0, 1], [1, 0]]

    def test_tallies_are_additive_over_row_partitions(self, shuffled):
        """Per-rank partials must sum to the global tally — the invariant
        the online allreduce decision rests on."""
        mesh, points = shuffled
        owns = [c.owners for c in generate_candidates(mesh.n, P,
                                                      points=points)]
        full = layout_tallies(owns, np.arange(mesh.n), mesh.adj,
                              mesh.count, P)
        rng = np.random.default_rng(0)
        rows = rng.permutation(mesh.n)
        pieces = np.array_split(rows, 5)
        summed = sum(
            layout_tallies(owns, piece, mesh.adj[piece],
                           mesh.count[piece], P)
            for piece in pieces
        )
        assert np.array_equal(full, summed)

    def test_rcb_scores_below_scrambled(self, shuffled):
        mesh, points = shuffled
        cands = [
            CandidateLayout("scrambled", bad_owners(mesh.n, P)),
            CandidateLayout("rcb", coordinate_bisection(points, P)),
        ]
        tallies = layout_tallies([c.owners for c in cands],
                                 np.arange(mesh.n), mesh.adj, mesh.count, P)
        costs = score_layouts([c.owners for c in cands],
                              [c.name for c in cands], tallies, NCUBE7, P)
        by_name = {c.name: c for c in costs}
        assert by_name["rcb"].sweep_time < by_name["scrambled"].sweep_time
        assert by_name["rcb"].remote_refs < by_name["scrambled"].remote_refs

    def test_move_cost_positive_and_scales_with_payload(self, shuffled):
        mesh, points = shuffled
        old = bad_owners(mesh.n, P)
        new = coordinate_bisection(points, P)
        tally = layout_tallies([new], np.arange(mesh.n), mesh.adj,
                               mesh.count, P)[0]
        light = predict_move_cost(old, new, NCUBE7, P, tally,
                                  row_weights=(1.0,))
        heavy = predict_move_cost(old, new, NCUBE7, P, tally,
                                  row_weights=(1.0, 1.0, 1.0, 5.0, 5.0))
        assert 0.0 < light < heavy


# --- offline planning ------------------------------------------------------


class TestOfflinePlan:
    def test_recommends_rcb_from_bad_layout(self, shuffled):
        mesh, points = shuffled
        report = plan(mesh.n, P, NCUBE7, mesh.adj, counts=mesh.count,
                      points=points, current=bad_owners(mesh.n, P),
                      sweeps=50, row_weights=(1, 1, 1, 5, 5))
        assert report["recommendation"] == "rcb"
        assert report["layout"]["kind"] == "custom"
        assert np.array_equal(report["layout"]["owners"],
                              coordinate_bisection(points, P))
        best = next(c for c in report["candidates"] if c["name"] == "rcb")
        assert best["break_even_sweeps"] > 0
        assert report["predicted_total_move"] < report["predicted_total_stay"]

    def test_stays_when_already_best(self, shuffled):
        mesh, points = shuffled
        report = plan(mesh.n, P, NCUBE7, mesh.adj, counts=mesh.count,
                      points=points,
                      current=coordinate_bisection(points, P), sweeps=50)
        assert report["recommendation"] == "stay"
        assert report["layout"] is None

    def test_short_horizon_does_not_amortize(self, shuffled):
        mesh, points = shuffled
        report = plan(mesh.n, P, NCUBE7, mesh.adj, counts=mesh.count,
                      points=points, current=bad_owners(mesh.n, P),
                      sweeps=1, row_weights=(1, 1, 1, 5, 5))
        assert report["recommendation"] == "stay"
        assert report["reason"] == "not-amortized"


# --- the online policy (sim) ----------------------------------------------


class TestAdaptiveSim:
    def test_converges_to_rcb_and_matches_static_bits(self, shuffled):
        mesh, points = shuffled
        bad = Custom(bad_owners(mesh.n, P))
        prog, res = adaptive_jacobi(mesh, points, P, bad)
        report = res.tune_report

        assert 1 <= report["moves"] <= 2, report["events"]
        assert report["layout"] is not None
        assert np.array_equal(report["layout"]["owners"],
                              coordinate_bisection(points, P))
        moved = [e for e in report["events"] if e["moved"]]
        assert all(e["reason"] == "amortized-win" for e in moved)

        # every rank took the same decisions in the same order
        key = lambda e: (e["sweep"], e["best"], e["moved"], e["reason"])
        for rank_report in res.values[1:]:
            assert ([key(e) for e in rank_report["events"]]
                    == [key(e) for e in report["events"]])

        # redistribution moves data, it never changes it
        rcb_prog, _ = static_jacobi(
            mesh, P, Custom(coordinate_bisection(points, P)))
        bad_prog, _ = static_jacobi(mesh, P, bad)
        assert np.array_equal(prog.solution, rcb_prog.solution)
        assert np.array_equal(prog.solution, bad_prog.solution)

    def test_moves_invalidate_schedules_in_obs_registry(self, shuffled):
        mesh, points = shuffled
        _, res = adaptive_jacobi(mesh, points, P,
                                 Custom(bad_owners(mesh.n, P)))
        moves = res.tune_report["moves"]
        reg = MetricsRegistry.from_run(res.engine)
        # each move drops both cached schedules (copy + relax) per rank
        assert reg.get("cache.invalidations") == 2 * P * moves > 0
        assert reg.get("cache.hits") > 0
        assert reg.get("counter_sum.tune_moves") == P * moves

        _, static = static_jacobi(
            mesh, P, Custom(coordinate_bisection(points, P)))
        static_reg = MetricsRegistry.from_run(static.engine)
        assert static_reg.get("cache.invalidations") == 0

    def test_max_moves_zero_pins_the_layout(self, shuffled):
        mesh, points = shuffled
        _, res = adaptive_jacobi(
            mesh, points, P, Custom(bad_owners(mesh.n, P)),
            policy=TunePolicy(interval=4, warmup=4, max_moves=0))
        report = res.tune_report
        assert report["moves"] == 0
        assert report["decisions"] > 0
        assert {e["reason"] for e in report["events"]} == {"move-budget"}

    def test_already_good_layout_never_moves(self, shuffled):
        mesh, points = shuffled
        _, res = adaptive_jacobi(
            mesh, points, P, Custom(coordinate_bisection(points, P)))
        report = res.tune_report
        assert report["moves"] == 0
        assert {e["reason"] for e in report["events"]} == {"already-best"}


# --- sim / mp decision parity ---------------------------------------------


class TestAdaptiveMp:
    MP_P = 4
    MP_NODES = 300
    MP_SWEEPS = 12

    @pytest.mark.timeout(240)
    def test_mp_takes_identical_decisions_and_bits(self):
        mesh, points = random_unstructured_mesh(
            self.MP_NODES, seed=7, locality_sort=False)
        bad = Custom(bad_owners(mesh.n, self.MP_P))
        key = lambda e: (e["sweep"], e["best"], e["moved"], e["reason"])

        sim_prog, sim_res = adaptive_jacobi(
            mesh, points, self.MP_P, bad, sweeps=self.MP_SWEEPS)
        mp_prog, mp_res = adaptive_jacobi(
            mesh, points, self.MP_P, bad, sweeps=self.MP_SWEEPS,
            backend="mp")

        sim_ev = sim_res.tune_report["events"]
        mp_ev = mp_res.tune_report["events"]
        assert [key(e) for e in mp_ev] == [key(e) for e in sim_ev]
        assert mp_res.tune_report["moves"] == sim_res.tune_report["moves"]
        assert sim_res.tune_report["moves"] >= 1, sim_ev
        assert np.array_equal(mp_prog.solution, sim_prog.solution)
        static_prog, _ = static_jacobi(
            mesh, self.MP_P,
            Custom(coordinate_bisection(points, self.MP_P)),
            sweeps=self.MP_SWEEPS)
        assert np.array_equal(mp_prog.solution, static_prog.solution)


# --- load profiles ---------------------------------------------------------


class TestLoadProfile:
    def test_from_run_counters_and_round_trip(self, shuffled):
        mesh, points = shuffled
        _, res = adaptive_jacobi(mesh, points, P,
                                 Custom(bad_owners(mesh.n, P)))
        prof = LoadProfile.from_run(res, meta={"tag": "t"})
        assert prof.nranks == P
        assert prof.busy.shape == (P,)
        assert prof.imbalance() >= 1.0
        assert prof.counter("remote_refs").sum() > 0
        moves = res.tune_report["moves"]
        assert prof.counter("cache_invalidations").sum() == 2 * P * moves
        assert 0.0 < prof.remote_fraction() < 1.0

        back = LoadProfile.from_dict(json.loads(prof.to_json()))
        assert back.nranks == prof.nranks
        assert np.allclose(back.busy, prof.busy)
        assert back.meta == prof.meta
        assert "rank" in prof.render_table()


# --- the plan store --------------------------------------------------------


class TestPlanStore:
    LAYOUT = {"kind": "block", "param": None, "name": "block", "owners": []}

    def test_store_load_round_trip(self, tmp_path):
        store = PlanStore(tmp_path / "plans")
        doc = plan_from_layouts(["a"], self.LAYOUT, key="k1",
                                meta={"moves": 1})
        store.store("k1", doc)
        loaded = store.load("k1")
        assert loaded["format"] == TUNEPLAN_FORMAT
        assert loaded["layout"]["kind"] == "block"
        assert loaded["meta"] == {"moves": 1}
        assert store.stats() == {"hits": 1, "misses": 0, "stores": 1,
                                 "corrupt": 0, "races": 0, "entries": 1}

    def test_missing_corrupt_and_foreign_entries_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        assert store.load("absent") is None
        (tmp_path / "garbled.tuneplan").write_text("{not json")
        assert store.load("garbled") is None
        (tmp_path / "alien.tuneplan").write_text(
            json.dumps({"format": "other", "key": "alien", "layout": {}}))
        assert store.load("alien") is None
        assert store.corrupt == 2
        assert store.entries() == []  # bad entries were deleted

    def test_fingerprint_tracks_topology_not_float_payload(self, shuffled):
        mesh, _ = shuffled

        def ctx_of(initial_seed, adj=None):
            prog = build_jacobi(
                mesh, P, machine=NCUBE7,
                initial=np.random.default_rng(initial_seed).random(mesh.n))
            if adj is not None:
                prog.ctx.arrays["adj"].set(adj)
            return prog.ctx

        base = context_fingerprint(ctx_of(1))
        assert context_fingerprint(ctx_of(2)) == base  # floats excluded
        other_adj = mesh.adj.copy()
        other_adj[0, 0] = (other_adj[0, 0] + 1) % mesh.n
        assert context_fingerprint(ctx_of(1, adj=other_adj)) != base

    def test_apply_plan_skips_unknown_arrays(self, shuffled):
        mesh, points = shuffled
        prog = build_jacobi(mesh, P, machine=NCUBE7)
        rcb = coordinate_bisection(points, P)
        doc = plan_from_layouts(
            ["a", "ghost"],
            {"kind": "custom", "param": None, "name": "rcb",
             "owners": rcb.tolist()})
        assert apply_plan(prog.ctx, doc) == ["a"]
        assert np.array_equal(
            prog.ctx.arrays["a"].dist.dims[0].owner(np.arange(mesh.n)), rcb)

    def test_second_run_warm_starts_with_zero_moves(self, shuffled, tmp_path):
        mesh, points = shuffled
        tune_dir = str(tmp_path / "plans")
        bad = Custom(bad_owners(mesh.n, P))

        prog1, res1 = adaptive_jacobi(mesh, points, P, bad, tune=tune_dir)
        assert res1.tune_report["moves"] >= 1
        assert prog1.ctx.tune_applied is False
        assert len(PlanStore(tune_dir).entries()) == 1

        prog2, res2 = adaptive_jacobi(mesh, points, P, bad, tune=tune_dir)
        assert prog2.ctx.tune_applied is True
        assert res2.tune_report["moves"] == 0
        assert {e["reason"] for e in res2.tune_report["events"]} \
            == {"already-best"}
        assert np.array_equal(prog2.solution, prog1.solution)


# --- the T1 bench gate -----------------------------------------------------


class TestBenchGate:
    def test_adaptive_within_15pct_of_static_rcb(self):
        from repro.bench import adaptive_vs_static

        rows, runs = adaptive_vs_static(NCUBE7, nprocs=P, nodes=NODES,
                                        sweeps=SWEEPS)
        by_key = {r.key: r.values for r in rows}
        adaptive, rcb, bad = (by_key["adaptive"], by_key["static-rcb"],
                              by_key["static-bad"])
        assert adaptive["moves"] <= 2
        assert adaptive["steady_sweep"] <= 1.15 * rcb["steady_sweep"]
        assert adaptive["steady_sweep"] < bad["steady_sweep"]
        assert all(v["identical"] == 1.0 for v in by_key.values())
        assert set(runs) == set(by_key)

    def test_bench_cli_tune_gate_passes(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["--tune", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "adaptive" in out
        assert "FAIL" not in out


# --- the serve path --------------------------------------------------------


class TestServeWarmStart:
    @pytest.mark.timeout(240)
    def test_jacobi_adaptive_jobs_share_the_learned_plan(self, tmp_path):
        from repro.serve.server import JobServer

        spec = {"nodes": 600, "sweeps": 16, "seed": 7}
        with JobServer(4, cache_dir=str(tmp_path / "cache"),
                       tune_dir=str(tmp_path / "plans")) as server:
            first = server.submit("jacobi_adaptive", spec).result(timeout=200)
            second = server.submit("jacobi_adaptive", spec).result(timeout=200)
            stat = server.stat()

        assert first["ok"] and second["ok"]
        s1, s2 = first["summary"], second["summary"]
        assert s1["tune_moves"] >= 1
        assert s1["tune_applied"] is False
        assert s2["tune_moves"] == 0            # learned: no mid-run moves
        assert s2["tune_applied"] is True
        assert s2["final_layout"] == "learned"
        assert s1["solution_sha256"] == s2["solution_sha256"]
        assert stat["tune_store"]["entries"] == 1
