"""Tests for range records, coalescing, and translation tables (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InspectorError
from repro.runtime.schedule import ArraySchedule, CommSchedule, RangeRecord, coalesce_ranges
from repro.runtime.translation import EnumeratedTable, TranslationTable


class TestRangeRecord:
    def test_count(self):
        assert RangeRecord(0, 1, low=3, high=7).count == 5

    def test_empty_rejected(self):
        with pytest.raises(InspectorError):
            RangeRecord(0, 1, low=5, high=4)


class TestCoalesce:
    def test_adjacent_offsets_merge(self):
        recs = coalesce_ranges({2: np.array([5, 6, 7, 10])}, me=0, incoming=True)
        assert [(r.low, r.high) for r in recs] == [(5, 7), (10, 10)]

    def test_duplicates_removed(self):
        recs = coalesce_ranges({1: np.array([3, 3, 4, 4])}, me=0, incoming=True)
        assert [(r.low, r.high) for r in recs] == [(3, 4)]
        assert recs[0].count == 2

    def test_sorted_by_peer_then_low(self):
        recs = coalesce_ranges(
            {3: np.array([0]), 1: np.array([9, 2])}, me=0, incoming=True
        )
        keys = [(r.from_proc, r.low) for r in recs]
        assert keys == sorted(keys)

    def test_buffer_starts_cumulative(self):
        recs = coalesce_ranges(
            {1: np.array([0, 1, 5]), 2: np.array([7, 8])}, me=0, incoming=True
        )
        starts = [r.buffer_start for r in recs]
        counts = [r.count for r in recs]
        assert starts == [0, 2, 3]
        assert sum(counts) == 5

    def test_outgoing_records_name_me_as_sender(self):
        recs = coalesce_ranges({4: np.array([1])}, me=2, incoming=False)
        assert recs[0].from_proc == 2 and recs[0].to_proc == 4
        assert recs[0].buffer_start == -1

    def test_empty_peer_skipped(self):
        recs = coalesce_ranges({1: np.array([], dtype=np.int64)}, me=0, incoming=True)
        assert recs == []


def make_table(spec):
    """spec: {proc: offset list} -> finalized ArraySchedule."""
    recs = coalesce_ranges(
        {p: np.asarray(o, dtype=np.int64) for p, o in spec.items()}, me=0, incoming=True
    )
    a = ArraySchedule(array="t", in_records=recs)
    a.finalize()
    return a


class TestTranslationTable:
    def test_lookup_within_ranges(self):
        a = make_table({1: [5, 6, 7], 3: [2, 9]})
        t = a.translation
        np.testing.assert_array_equal(
            t.lookup(np.array([1, 1, 3, 3]), np.array([5, 7, 2, 9])), [0, 2, 3, 4]
        )

    def test_lookup_miss_raises(self):
        t = make_table({1: [5, 6]}).translation
        with pytest.raises(InspectorError):
            t.lookup(np.array([1]), np.array([9]))
        with pytest.raises(InspectorError):
            t.lookup(np.array([2]), np.array([5]))

    def test_lookup_below_everything(self):
        t = make_table({3: [5]}).translation
        with pytest.raises(InspectorError):
            t.lookup(np.array([1]), np.array([0]))

    def test_contains(self):
        t = make_table({1: [5, 6], 2: [0]}).translation
        np.testing.assert_array_equal(
            t.contains(np.array([1, 1, 2, 2]), np.array([5, 7, 0, 1])),
            [True, False, True, False],
        )

    def test_empty_table(self):
        a = ArraySchedule(array="t")
        a.finalize()
        assert a.translation.lookup(np.array([], dtype=np.int64),
                                    np.array([], dtype=np.int64)).size == 0
        with pytest.raises(InspectorError):
            a.translation.lookup(np.array([0]), np.array([0]))

    def test_num_ranges_counts_coalesced(self):
        a = make_table({1: [0, 1, 2, 10, 11]})
        assert a.translation.num_ranges == 2
        assert a.num_in_ranges() == 2

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 6),
            st.lists(st.integers(0, 80), min_size=1, max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    def test_lookup_is_injective_and_total(self, spec):
        """Every scheduled (proc, offset) maps to a distinct buffer slot in
        [0, buffer_len)."""
        a = make_table(spec)
        procs, offs = [], []
        for p, os_ in spec.items():
            for o in set(os_):
                procs.append(p)
                offs.append(o)
        slots = a.translation.lookup(np.array(procs), np.array(offs))
        assert len(set(slots.tolist())) == len(slots)
        assert slots.min() >= 0 and slots.max() < a.buffer_len

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 6),
            st.lists(st.integers(0, 80), min_size=1, max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    def test_enumerated_agrees_with_ranges(self, spec):
        """The Saltz-style enumerated table gives identical slots."""
        a = make_table(spec)
        e = EnumeratedTable.from_records(a.in_records)
        procs, offs = [], []
        for p, os_ in spec.items():
            for o in set(os_):
                procs.append(p)
                offs.append(o)
        procs, offs = np.array(procs), np.array(offs)
        np.testing.assert_array_equal(
            a.translation.lookup(procs, offs), e.lookup(procs, offs)
        )

    def test_enumerated_storage_counts_elements(self):
        a = make_table({1: [0, 1, 2, 3, 10]})
        e = EnumeratedTable.from_records(a.in_records)
        assert e.storage_entries() == 5

    def test_enumerated_miss(self):
        a = make_table({1: [0]})
        e = EnumeratedTable.from_records(a.in_records)
        with pytest.raises(InspectorError):
            e.lookup(np.array([1]), np.array([5]))


class TestCommSchedule:
    def _schedule(self):
        s = CommSchedule(
            label="t",
            rank=0,
            exec_local=np.array([0, 1]),
            exec_nonlocal=np.array([2]),
        )
        s.arrays["x"] = make_table({1: [0, 1], 2: [5]})
        s.arrays["x"].out_records = [RangeRecord(0, 1, 3, 4)]
        return s

    def test_totals(self):
        s = self._schedule()
        assert s.total_in_elements() == 3
        assert s.total_out_elements() == 2
        assert s.num_exec() == 3

    def test_enumerate_translations(self):
        s = self._schedule()
        s.enumerate_translations()
        assert s.translation_kind == "enumerated"
        assert isinstance(s.arrays["x"].translation, EnumeratedTable)

    def test_describe_mentions_array(self):
        assert "x" in self._schedule().describe()
