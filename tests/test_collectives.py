"""Tests for the collective operations and the crystal router."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scan,
)
from repro.comm.crystal import crystal_route
from repro.errors import CommunicationError
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine
from repro.machine.topology import FullyConnected, Hypercube
from repro.util.gray import is_power_of_two

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16]
POW2 = [1, 2, 4, 8, 16]


def launch(prog, n, machine=IDEAL):
    topo = Hypercube(n) if is_power_of_two(n) else FullyConnected(n)
    return Engine(machine, topology=topo).run(prog)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(n, root):
    r = n - 1 if root == "last" else 0

    def prog(rank):
        value = {"data": 99} if rank.id == r else None
        got = yield from bcast(rank, value, root=r)
        return got["data"]

    res = launch(prog, n)
    assert res.values == [99] * n


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def prog(rank):
        s = yield from reduce(rank, rank.id + 1, operator.add, root=0)
        return s

    res = launch(prog, n)
    assert res.values[0] == n * (n + 1) // 2
    assert all(v is None for v in res.values[1:])


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_sum_and_max(n):
    def prog(rank):
        s = yield from allreduce(rank, rank.id, operator.add)
        m = yield from allreduce(rank, rank.id, max, tag=1)
        return (s, m)

    res = launch(prog, n)
    assert all(v == (n * (n - 1) // 2, n - 1) for v in res.values)


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def prog(rank):
        g = yield from gather(rank, rank.id * rank.id, root=n // 2)
        return g

    res = launch(prog, n)
    assert res.values[n // 2] == [i * i for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def prog(rank):
        g = yield from allgather(rank, chr(ord("a") + rank.id))
        return "".join(g)

    res = launch(prog, n)
    expected = "".join(chr(ord("a") + i) for i in range(n))
    assert res.values == [expected] * n


@pytest.mark.parametrize("n", SIZES)
def test_alltoall(n):
    def prog(rank):
        out = [(rank.id, q) for q in range(n)]
        got = yield from alltoall(rank, out)
        return got

    res = launch(prog, n)
    for me, got in enumerate(res.values):
        assert got == [(q, me) for q in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scan_inclusive(n):
    def prog(rank):
        s = yield from scan(rank, rank.id + 1, operator.add)
        return s

    res = launch(prog, n)
    assert res.values == [sum(range(1, i + 2)) for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronises_clocks(n):
    """After a barrier, no rank's clock may precede another rank's
    pre-barrier clock (the defining property of a barrier)."""

    def prog(rank):
        yield from rank_work(rank)
        pre = yield from now_of(rank)
        yield from barrier(rank)
        post = yield from now_of(rank)
        return (pre, post)

    def rank_work(rank):
        from repro.machine.api import Compute

        yield Compute(float(rank.id) * 3.0)

    def now_of(rank):
        from repro.machine.api import Now

        t = yield Now()
        return t

    res = launch(prog, n)
    max_pre = max(pre for pre, _ in res.values)
    assert all(post >= max_pre for _, post in res.values)


def test_allreduce_log_cost():
    """Recursive doubling must cost O(log P) message startups, not O(P)."""
    m = IDEAL.with_overrides(alpha_send=1.0, ref_local=0.0, iter_base=0.0, flop=0.0)

    def prog(rank):
        yield from allreduce(rank, 1, operator.add)

    res16 = launch(prog, 16, machine=m)
    # 4 rounds of (send+recv): sends cost alpha=1 -> clock ~4, not ~15.
    assert res16.makespan < 10.0


def test_bcast_empty_world():
    def prog(rank):
        v = yield from bcast(rank, 5, root=0)
        return v

    assert launch(prog, 1).values == [5]


class TestCrystalRouter:
    @pytest.mark.parametrize("n", POW2)
    def test_all_to_all_delivery(self, n):
        def prog(rank):
            out = {q: f"{rank.id}->{q}" for q in range(n)}
            got = yield from crystal_route(rank, out)
            return got

        res = launch(prog, n)
        for me, got in enumerate(res.values):
            assert got == {q: f"{q}->{me}" for q in range(n)}

    @pytest.mark.parametrize("n", POW2)
    def test_sparse_pattern(self, n):
        """Only even ranks send, to rank 0 only."""

        def prog(rank):
            out = {0: rank.id} if rank.id % 2 == 0 else {}
            got = yield from crystal_route(rank, out)
            return got

        res = launch(prog, n)
        assert res.values[0] == {q: q for q in range(0, n, 2)}
        for got in res.values[1:]:
            assert got == {}

    def test_requires_power_of_two(self):
        def prog(rank):
            yield from crystal_route(rank, {})

        with pytest.raises(CommunicationError):
            launch(prog, 3)

    def test_bad_destination(self):
        def prog(rank):
            yield from crystal_route(rank, {99: "x"})

        with pytest.raises(CommunicationError):
            launch(prog, 4)

    def test_charges_combine_stage(self):
        m = IDEAL.with_overrides(combine_stage=1.0)

        def prog(rank):
            yield from crystal_route(rank, {})

        res = launch(prog, 8, machine=m)
        # 3 stages in a 3-cube, each charging combine_stage.
        assert res.phase_max("crystal") == pytest.approx(3.0)

    def test_no_combine_charge_when_disabled(self):
        m = IDEAL.with_overrides(combine_stage=1.0)

        def prog(rank):
            yield from crystal_route(rank, {}, charge_combine=False)

        res = launch(prog, 8, machine=m)
        assert res.phase_max("crystal") == pytest.approx(0.0)

    def test_numpy_payloads(self):
        def prog(rank):
            out = {q: np.full(3, rank.id) for q in range(rank.size)}
            got = yield from crystal_route(rank, out)
            return {q: v.tolist() for q, v in got.items()}

        res = launch(prog, 8)
        for me, got in enumerate(res.values):
            assert got == {q: [q, q, q] for q in range(8)}

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20))
    def test_random_patterns_deliver_exactly(self, pairs):
        """Every (src, dst) pair in the pattern arrives exactly once."""
        from collections import defaultdict

        sends = defaultdict(dict)
        for s, d in pairs:
            sends[s][d] = sends[s].get(d, 0) + 1

        def prog(rank):
            got = yield from crystal_route(rank, dict(sends[rank.id]))
            return got

        res = launch(prog, 8)
        for dst in range(8):
            expected = {s: sends[s][dst] for s in sends if dst in sends[s]}
            assert res.values[dst] == expected
