"""Tests for the discrete-event SPMD engine: semantics, virtual time,
determinism, deadlock detection."""

import numpy as np
import pytest

from repro.errors import CommunicationError, DeadlockError, EngineError
from repro.machine.api import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Count,
    Now,
    Recv,
    Send,
    payload_nbytes,
)
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine, run_spmd
from repro.machine.topology import FullyConnected, Hypercube


def run(prog, n=4, machine=IDEAL, topology=None):
    return Engine(machine, topology=topology or FullyConnected(n)).run(prog)


class TestBasics:
    def test_single_rank_returns_value(self):
        def prog(rank):
            yield Compute(1.0)
            return rank.id * 10

        res = run(prog, n=1)
        assert res.values == [0]
        assert res.makespan == 1.0

    def test_compute_accumulates_per_phase(self):
        def prog(rank):
            yield Compute(1.0, phase="a")
            yield Compute(2.0, phase="b")
            yield Compute(3.0, phase="a")

        res = run(prog, n=2)
        assert res.phase_max("a") == 4.0
        assert res.phase_max("b") == 2.0
        assert res.makespan == 6.0

    def test_now_reports_clock(self):
        def prog(rank):
            t0 = yield Now()
            yield Compute(5.0)
            t1 = yield Now()
            return (t0, t1)

        res = run(prog, n=1)
        assert res.values[0] == (0.0, 5.0)

    def test_counters(self):
        def prog(rank):
            yield Count("widgets", 3)
            yield Count("widgets")

        res = run(prog, n=3)
        assert res.counter_sum("widgets") == 12
        assert res.counter_max("widgets") == 4

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_non_generator_program_rejected(self):
        def not_gen(rank):
            return 42

        with pytest.raises(EngineError):
            run(not_gen, n=2)

    def test_yielding_garbage_rejected(self):
        def prog(rank):
            yield "not an op"

        with pytest.raises(EngineError):
            run(prog, n=1)


class TestMessaging:
    def test_pingpong_payload(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload={"x": 42}, tag=7)
                msg = yield Recv(source=1, tag=8)
                return msg.payload
            else:
                msg = yield Recv(source=0, tag=7)
                yield Send(dest=0, payload=msg.payload["x"] + 1, tag=8)
                return None

        res = run(prog, n=2)
        assert res.values[0] == 43

    def test_fifo_per_channel(self):
        def prog(rank):
            if rank.id == 0:
                for i in range(5):
                    yield Send(dest=1, payload=i, tag=1)
            else:
                got = []
                for _ in range(5):
                    msg = yield Recv(source=0, tag=1)
                    got.append(msg.payload)
                return got

        res = run(prog, n=2)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload="a", tag=1)
                yield Send(dest=1, payload="b", tag=2)
            else:
                m2 = yield Recv(source=0, tag=2)
                m1 = yield Recv(source=0, tag=1)
                return (m1.payload, m2.payload)

        res = run(prog, n=2)
        assert res.values[1] == ("a", "b")

    def test_any_source(self):
        def prog(rank):
            if rank.id == 0:
                got = set()
                for _ in range(3):
                    msg = yield Recv(source=ANY_SOURCE, tag=5)
                    got.add(msg.source)
                return got
            else:
                yield Compute(float(rank.id))
                yield Send(dest=0, payload=None, tag=5)

        res = run(prog, n=4)
        assert res.values[0] == {1, 2, 3}

    def test_any_tag_from_specific_source(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload="x", tag=3)
            else:
                msg = yield Recv(source=0, tag=ANY_TAG)
                return msg.tag

        res = run(prog, n=2)
        assert res.values[1] == 3

    def test_send_to_bad_rank(self):
        def prog(rank):
            yield Send(dest=99, payload=None)

        with pytest.raises(CommunicationError):
            run(prog, n=2)

    def test_send_to_self_rejected(self):
        def prog(rank):
            yield Send(dest=rank.id, payload=None, tag=1)

        with pytest.raises(CommunicationError, match="itself"):
            run(prog, n=2)

    def test_negative_tag_rejected_at_construction(self):
        with pytest.raises(CommunicationError, match="tag"):
            Send(dest=1, payload=None, tag=-3)
        with pytest.raises(CommunicationError):
            Send(dest=-2, payload=None)
        with pytest.raises(CommunicationError):
            Send(dest=1, payload=None, nbytes=-1)
        with pytest.raises(CommunicationError):
            Recv(source=-7, tag=1)
        with pytest.raises(CommunicationError):
            Recv(source=0, tag=-9)

    def test_numpy_payload_isolated_per_message(self):
        """Payload references are delivered as-is: the sender sends a copy."""

        def prog(rank):
            if rank.id == 0:
                data = np.arange(4.0)
                yield Send(dest=1, payload=data.copy(), tag=1)
                data[:] = -1  # must not affect the delivered message
                yield Send(dest=1, payload=None, tag=2)
            else:
                msg = yield Recv(source=0, tag=1)
                yield Recv(source=0, tag=2)
                return msg.payload.tolist()

        res = run(prog, n=2)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0]


class TestVirtualTime:
    def test_send_charges_alpha_beta(self):
        m = NCUBE7

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=np.zeros(100), tag=1)
            else:
                yield Recv(source=0, tag=1)

        res = run(prog, n=2, machine=m)
        expected = m.alpha_send + m.beta * 800
        assert res.clocks[0] == pytest.approx(expected)

    def test_recv_waits_for_arrival(self):
        m = IDEAL.with_overrides(alpha_send=1.0, alpha_recv=0.5, hop=0.25)

        def prog(rank):
            if rank.id == 0:
                yield Compute(10.0)
                yield Send(dest=1, payload=None, tag=1)
            else:
                msg = yield Recv(source=0, tag=1)
                t = yield Now()
                return (msg.arrival, t)

        res = run(prog, n=2, machine=m, topology=Hypercube(2))
        arrival, t = res.values[1]
        assert arrival == pytest.approx(10.0 + 1.0 + 0.25)  # compute + send + 1 hop
        assert t == pytest.approx(arrival + 0.5)

    def test_recv_no_wait_when_message_early(self):
        m = IDEAL.with_overrides(alpha_send=1.0, alpha_recv=0.5)

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=None, tag=1)
            else:
                yield Compute(100.0)
                yield Recv(source=0, tag=1)
                t = yield Now()
                return t

        res = run(prog, n=2, machine=m)
        assert res.values[1] == pytest.approx(100.5)

    def test_hop_latency_scales_with_distance(self):
        m = IDEAL.with_overrides(hop=1.0, alpha_send=0.0, alpha_recv=0.0)

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=7, payload=None, tag=1)  # 3 hops in a 3-cube
            elif rank.id == 7:
                msg = yield Recv(source=0, tag=1)
                return msg.arrival

        res = run(prog, n=8, machine=m, topology=Hypercube(8))
        assert res.values[7] == pytest.approx(3.0)

    def test_determinism_across_runs(self):
        def prog(rank):
            right = (rank.id + 1) % rank.size
            for i in range(10):
                yield Send(dest=right, payload=i, tag=i)
                yield Recv(source=(rank.id - 1) % rank.size, tag=i)
                yield Compute(0.1 * rank.id)

        r1 = run(prog, n=8, machine=NCUBE7, topology=Hypercube(8))
        r2 = run(prog, n=8, machine=NCUBE7, topology=Hypercube(8))
        assert r1.clocks == r2.clocks
        assert r1.makespan == r2.makespan


class TestDeadlock:
    def test_mutual_recv_deadlocks(self):
        def prog(rank):
            yield Recv(source=1 - rank.id, tag=1)

        with pytest.raises(DeadlockError) as exc:
            run(prog, n=2)
        assert set(exc.value.blocked) == {0, 1}

    def test_recv_from_finished_rank_deadlocks(self):
        def prog(rank):
            if rank.id == 0:
                return None
                yield  # pragma: no cover
            else:
                yield Recv(source=0, tag=1)

        with pytest.raises(DeadlockError):
            run(prog, n=2)

    def test_unmatched_tag_deadlocks(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=None, tag=1)
            else:
                yield Recv(source=0, tag=2)

        with pytest.raises(DeadlockError):
            run(prog, n=2)

    def test_diagnostics_name_every_blocked_rank(self):
        """The error reports, per blocked rank: peer, tag, phase, virtual
        time — plus the undelivered messages left in the mailboxes."""

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=b"xyz", tag=1, phase="exchange")
                yield Recv(source=1, tag=7, phase="exchange", label="edge")
            else:
                yield Compute(0.5, phase="work")
                yield Recv(source=0, tag=9, phase="collect")

        with pytest.raises(DeadlockError) as excinfo:
            run(prog, n=2)
        exc = excinfo.value
        assert set(exc.blocked) == {0, 1}
        assert exc.blocked[0].source == 1 and exc.blocked[0].tag == 7
        assert exc.blocked[0].phase == "exchange"
        assert exc.blocked[0].label == "edge"
        assert exc.blocked[1].source == 0 and exc.blocked[1].tag == 9
        assert exc.blocked[1].phase == "collect"
        assert exc.blocked[1].clock == pytest.approx(0.5)
        assert exc.undelivered == [(0, 1, 1, pytest.approx(0.0), 3)]
        msg = str(exc)
        assert "rank 0 waiting on (src=1, tag=7) in exchange:edge" in msg
        assert "rank 1 waiting on (src=0, tag=9) in collect" in msg
        assert "undelivered messages (1):" in msg

    def test_legacy_tuple_form_still_formats(self):
        e = DeadlockError({2: (0, 5)})
        assert e.blocked == {2: (0, 5)}
        assert "rank 2 waiting on (src=0, tag=5)" in str(e)


class TestStats:
    def test_message_accounting(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=np.zeros(10), tag=1)
            else:
                yield Recv(source=0, tag=1)

        res = run(prog, n=2)
        assert res.total_messages() == 1
        assert res.total_bytes() == 80
        assert res.stats[1].messages_received == 1
        assert res.stats[1].bytes_received == 80

    def test_summary_mentions_phases(self):
        def prog(rank):
            yield Compute(1.0, phase="inspector")

        text = run(prog, n=2).summary()
        assert "inspector" in text

    def test_run_spmd_wrapper(self):
        def prog(rank):
            yield Compute(1.0)
            return rank.id

        res = run_spmd(prog, nranks=3, machine=IDEAL)
        assert res.values == [0, 1, 2]


class TestPayloadSizing:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_scalars(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(True) == 1
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.5) == 8

    def test_containers(self):
        assert payload_nbytes([1, 2.0]) == 16
        assert payload_nbytes({"k": 1}) == 64 + 8

    def test_explicit_nbytes_override(self):
        s = Send(dest=0, payload=np.zeros(100), nbytes=4)
        assert s.wire_size() == 4

    def test_per_rank_args(self):
        def prog(rank):
            yield Compute(0.0)
            return rank.arg * 2

        res = run_spmd(prog, nranks=3, machine=IDEAL, args=[10, 20, 30])
        assert res.values == [20, 40, 60]
