"""Unit tests for the sharded fleet: stat aggregation, tenant fairness,
quotas/shedding, retry routing, scaling, the autoscaler policy, and the
``serve.*``/``shard.*`` metrics registry.

The stat-aggregation tests are the regression fix from this PR's issue:
``JobServer.stat()`` used to report the single pool's state; with N
shards the legacy ``pool``/``disk_cache`` blocks must become exact sums
of the per-shard entries, so anything that keyed on the old shape reads
fleet totals unchanged.
"""

import threading
import time

import pytest

from repro.errors import KaliError
from repro.obs.registry import MetricsRegistry
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.pool import PoolCrashError
from repro.serve.queue import Job, JobQueue, ShedError
from repro.serve.server import JOB_KINDS, JobServer, register_job_kind


# --- stat aggregation (the issue's fix + regression test) ----------------


def test_stat_totals_equal_sum_of_shard_counters(tmp_path):
    with JobServer(2, shards=2, cache_dir=str(tmp_path / "cache"),
                   metrics_dir=str(tmp_path / "metrics")) as server:
        futures = [server.submit("jacobi",
                                 {"rows": 8 + i % 3, "sweeps": 2, "seed": i})
                   for i in range(6)]
        records = [f.result(timeout=120) for f in futures]
        stat = server.stat()

    assert all(r["ok"] for r in records)
    shards = stat["shards"]
    assert len(shards) == 2
    assert {e["name"] for e in shards} == {"shard-0", "shard-1"}
    # Both shards actually ran work (three distinct families spread).
    assert all(e["jobs_done"] > 0 for e in shards)

    # The legacy aggregate blocks are exact sums of per-shard entries.
    assert stat["jobs_done"] == sum(e["jobs_done"] for e in shards) == 6
    assert stat["pool"]["jobs_done"] == sum(
        e["pool_jobs_done"] for e in shards)
    assert stat["pool"]["rebuilds"] == sum(e["rebuilds"] for e in shards)
    assert stat["pool"]["meshes_built"] == sum(
        e["meshes_built"] for e in shards)
    assert stat["pool"]["shm_ship_bytes"] == sum(
        e["shm_ship_bytes"] for e in shards)
    assert stat["pool"]["warm"] == any(e["warm"] for e in shards) is True
    assert stat["disk_cache"]["entries"] == sum(
        e["disk_entries"] for e in shards) > 0
    assert stat["disk_cache"]["bytes"] == sum(
        e["disk_bytes"] for e in shards) > 0
    assert stat["queued"] == sum(e["queued"] for e in shards) == 0
    assert stat["failures"] == sum(e["failures"] for e in shards) == 0
    assert stat["retries"] == sum(e["retries"] for e in shards) == 0
    assert stat["router"]["shards"] == ["shard-0", "shard-1"]


def test_stat_sum_invariant_under_concurrent_snapshots():
    """Stress the stat-sum invariant: counter mutations and ``stat()``
    snapshots race from many threads, and *every* snapshot must satisfy
    ``total == sum(shard counters)`` for jobs_done/failures/retries —
    the per-shard sums are taken under the same server-lock hold as the
    totals, so a half-applied mutation can never tear a snapshot."""
    from repro.machine.stats import RankStats, RunResult

    def quick(shard, spec):
        if spec["i"] % 7 == 3:
            raise ValueError("injected failure")
        result = RunResult(nranks=shard.nranks,
                           clocks=[0.0] * shard.nranks,
                           stats=[RankStats(rank=r)
                                  for r in range(shard.nranks)],
                           values=[None] * shard.nranks)
        return result, {"i": spec["i"]}

    register_job_kind("_fleet_quick", quick)
    violations = []
    done = threading.Event()

    def snapshotter(server):
        while not done.is_set():
            stat = server.stat()
            shards = stat["shards"]
            for total_key in ("jobs_done", "failures", "retries"):
                total = stat[total_key]
                parts = sum(e[total_key] for e in shards)
                if total != parts:
                    violations.append((total_key, total, parts))

    try:
        with JobServer(2, shards=2, max_batch=4) as server:
            readers = [threading.Thread(target=snapshotter, args=(server,))
                       for _ in range(4)]
            for t in readers:
                t.start()
            futures = [server.submit("_fleet_quick", {"i": i},
                                     tenant=f"t{i % 3}")
                       for i in range(120)]
            records = [f.result(timeout=120) for f in futures]
            done.set()
            for t in readers:
                t.join(30)
            final = server.stat()
    finally:
        done.set()
        del JOB_KINDS["_fleet_quick"]

    assert not violations, f"torn stat snapshots: {violations[:5]}"
    failed = sum(1 for r in records if not r.get("ok"))
    assert failed == sum(1 for i in range(120) if i % 7 == 3)
    assert final["jobs_done"] == sum(
        e["jobs_done"] for e in final["shards"]) == 120 - failed
    assert final["failures"] == sum(
        e["failures"] for e in final["shards"]) == failed


def test_single_shard_stat_matches_legacy_shape(tmp_path):
    """shards=1 must look exactly like the pre-sharding server to any
    stat consumer: same keys, same meanings, one shard entry."""
    with JobServer(2, cache_dir=str(tmp_path / "c")) as server:
        server.submit("jacobi", {"rows": 8, "sweeps": 2}).result(timeout=120)
        stat = server.stat()
    for key in ("nranks", "policy", "uptime_s", "busy", "queued",
                "queue_snapshot", "jobs_done", "failures", "pool",
                "disk_cache", "tune_store"):
        assert key in stat
    assert stat["pool"]["warm"] is True
    assert stat["pool"]["jobs_done"] == 1
    assert len(stat["shards"]) == 1
    # Compat accessors still point at the (only) shard's internals.
    assert server.pool is server.shards[0].pool
    assert server.queue is server.shards[0].queue


def test_records_and_metrics_carry_serve_provenance(tmp_path):
    import json
    import os

    mdir = str(tmp_path / "metrics")
    with JobServer(2, shards=2, metrics_dir=mdir) as server:
        record = server.submit(
            "jacobi", {"rows": 8, "sweeps": 2}, tenant="alice",
        ).result(timeout=120)
    assert record["tenant"] == "alice"
    assert record["shard"] in ("shard-0", "shard-1")
    assert record["retries"] == 0
    reg = json.load(open(os.path.join(mdir, "job-1-metrics.json")))
    assert reg["serve.shard_index"] == int(record["shard"].split("-")[-1])
    assert reg["serve.retries"] == 0
    run = json.load(open(os.path.join(mdir, "job-1.json")))
    assert run["meta"]["shard"] == record["shard"]
    assert run["meta"]["tenant"] == "alice"


def test_fleet_registry_naming():
    with JobServer(2, shards=2) as server:
        server.submit("jacobi", {"rows": 8, "sweeps": 1}).result(timeout=120)
        reg = server.fleet_registry()
    assert reg.get("serve.shards") == 2
    assert reg.get("serve.jobs_done") == 1
    assert reg.get("serve.sheds") == 0
    shard0 = reg.subset("shard.0")
    shard1 = reg.subset("shard.1")
    assert shard0 and shard1
    assert (shard0["shard.0.jobs_done"] + shard1["shard.1.jobs_done"]) == 1
    # from_fleet is a pure function of the stat snapshot.
    again = MetricsRegistry.from_fleet(
        {"shards": [], "jobs_done": 3, "sheds": 1})
    assert again.get("serve.jobs_done") == 3
    assert again.get("serve.shards") == 0


# --- tenant-fair queue ----------------------------------------------------


def _job(tenant, n, priority=0):
    return Job(kind="k", spec={"n": n}, tenant=tenant, priority=priority)


def test_weighted_fair_service_between_tenants():
    q = JobQueue("fifo", tenant_weights={"heavy": 2.0})
    for i in range(6):
        q.submit(_job("heavy", i))
        q.submit(_job("light", i))
    order = [q.next_batch(1)[0].tenant for _ in range(12)]
    # Weight 2 gets two slots per light slot while both lanes are
    # backlogged: after any prefix, heavy served >= light served, and
    # in the first 9 pulls heavy gets ~2/3.
    assert order.count("heavy") == 6 and order.count("light") == 6
    heavy_in_first_9 = order[:9].count("heavy")
    assert heavy_in_first_9 == 6, order


def test_idle_lane_reenters_at_service_floor():
    q = JobQueue("fifo")
    for i in range(4):
        q.submit(_job("busy", i))
    assert q.next_batch(1)[0].tenant == "busy"
    assert q.next_batch(1)[0].tenant == "busy"
    # A newcomer does not get a catch-up burst for its idle past: it
    # alternates with the backlogged tenant from here on.
    q.submit(_job("new", 0))
    q.submit(_job("new", 1))
    order = [q.next_batch(1)[0].tenant for _ in range(4)]
    assert order.count("new") == 2 and order.count("busy") == 2
    assert order[0] != order[1]  # alternation, not a monopoly


def test_tenant_quota_sheds_with_structure():
    q = JobQueue("fifo", tenant_quotas={"capped": 2}, default_quota=None)
    q.submit(_job("capped", 0))
    q.submit(_job("capped", 1))
    q.submit(_job("free", 0))  # other tenants unaffected
    with pytest.raises(ShedError) as err:
        q.submit(_job("capped", 2))
    assert err.value.details == {
        "reason": "tenant-quota", "tenant": "capped", "depth": 2, "limit": 2}
    assert q.sheds == 1 and q.sheds_by_tenant == {"capped": 1}


def test_queue_depth_sheds_with_structure():
    q = JobQueue("fifo", max_depth=2)
    q.submit(_job("a", 0))
    q.submit(_job("b", 0))
    with pytest.raises(ShedError) as err:
        q.submit(_job("c", 0))
    assert err.value.details["reason"] == "queue-depth"
    assert err.value.details["limit"] == 2


def test_batching_stays_within_one_lane():
    q = JobQueue("fifo")
    for i in range(3):
        j = _job("a", 0)
        j.batch_key = "same"
        q.submit(j)
    j = _job("b", 0)
    j.batch_key = "same"
    q.submit(j)
    batch = q.next_batch(8)
    assert len(batch) == 3
    assert all(job.tenant == "a" for job in batch)


def test_drain_jobs_returns_everything_in_schedule_order():
    q = JobQueue("priority")
    low, high = _job("t", 0, priority=0), _job("t", 1, priority=5)
    q.submit(low)
    q.submit(high)
    drained = q.drain_jobs()
    assert [j.priority for j in drained] == [5, 0]
    assert q.pending() == 0


# --- fleet-level admission ------------------------------------------------


def test_fleet_quota_and_max_pending():
    server = JobServer(2, shards=2, max_pending=2,
                       tenants={"vip": {"quota": 1}})
    # Shards not started: submissions pile up in the queues.
    server.submit("jacobi", {"rows": 8}, tenant="vip")
    with pytest.raises(ShedError) as err:
        server.submit("jacobi", {"rows": 9}, tenant="vip")
    assert err.value.details["reason"] == "tenant-quota"
    server.submit("jacobi", {"rows": 10})
    with pytest.raises(ShedError) as err:
        server.submit("jacobi", {"rows": 11})
    assert err.value.details["reason"] == "queue-depth"
    stat_sheds = server.stat()["sheds"]
    assert stat_sheds == 2
    server.close()


def test_shed_reply_carries_shard_when_shard_queue_full():
    server = JobServer(2, shards=1, shard_depth=1)
    server.submit("jacobi", {"rows": 8})
    with pytest.raises(ShedError) as err:
        server.submit("jacobi", {"rows": 9})
    assert err.value.details["reason"] == "queue-depth"
    assert err.value.details["shard"] == "shard-0"
    server.close()


# --- retry routing and scaling -------------------------------------------


def test_crash_retry_prefers_the_other_shard():
    attempts = []

    def flaky(shard, spec):
        attempts.append(shard.name)
        if len(attempts) == 1:
            raise PoolCrashError("injected")
        return JOB_KINDS["jacobi"](shard, {"rows": 8, "sweeps": 1})

    register_job_kind("_fleet_flaky", flaky)
    try:
        with JobServer(2, shards=2) as server:
            record = server.submit("_fleet_flaky", {}).result(timeout=120)
    finally:
        del JOB_KINDS["_fleet_flaky"]
    assert record["ok"] and record["retries"] == 1
    assert attempts[0] != attempts[1]
    assert record["shard"] == attempts[1]


def test_condemned_batch_survivors_replay_without_spending_budget():
    ran = []

    def first_crashes(shard, spec):
        ran.append(spec["i"])
        if spec["i"] == 0 and ran.count(0) == 1:
            raise PoolCrashError("injected")
        return JOB_KINDS["jacobi"](shard, {"rows": 8, "sweeps": 1})

    register_job_kind("_fleet_batchy", first_crashes)
    try:
        # One shard, so queued jobs behind the crash are in the same
        # batch; retry_budget=1 means the crasher spends its only retry
        # while the survivors must not spend any.
        server = JobServer(2, shards=1, retry_budget=1, max_batch=8)
        jobs = []
        for i in range(3):
            job = Job(kind="_fleet_batchy", spec={"i": i},
                      batch_key="same-batch")
            jobs.append(job)
            server._admit(job)
            with server._lock:
                server._job_seq += 1
                job.job_id = server._job_seq
            server.shards[0].queue.submit(job)
        server.start()
        records = [j.future.result(timeout=120) for j in jobs]
        server.close()
    finally:
        del JOB_KINDS["_fleet_batchy"]
    assert all(r["ok"] for r in records)
    assert records[0]["retries"] == 1
    assert records[1]["retries"] == 0 and records[2]["retries"] == 0


def test_retire_shard_replays_backlog():
    server = JobServer(2, shards=2)
    # Fill queues without running anything.
    futures = [server.submit("jacobi", {"rows": 8 + i, "sweeps": 1})
               for i in range(4)]
    victim = server.shards[-1].name
    queued_on_victim = server.shards[-1].queue.pending()
    server.retire_shard()
    assert len(server.shards) == 1
    survivor = server.shards[0]
    assert survivor.queue.pending() == 4
    if queued_on_victim:
        assert survivor.replays_in == queued_on_victim
    server.start()
    records = [f.result(timeout=120) for f in futures]
    server.close()
    assert all(r["ok"] for r in records)
    assert all(r["shard"] != victim for r in records)


def test_cannot_retire_last_shard():
    server = JobServer(2, shards=1)
    with pytest.raises(KaliError):
        server.retire_shard()
    server.close()


# --- autoscaler policy ----------------------------------------------------


def test_autoscale_policy_validation():
    with pytest.raises(KaliError):
        AutoscalePolicy(high_depth=1.0, low_depth=2.0)
    with pytest.raises(KaliError):
        AutoscalePolicy(min_shards=0)
    with pytest.raises(KaliError):
        AutoscalePolicy(min_shards=3, max_shards=2)


def test_autoscaler_hysteresis_with_fake_clock():
    server = JobServer(1, shards=1)
    policy = AutoscalePolicy(min_shards=1, max_shards=3, high_depth=2,
                             low_depth=0.5, up_after=1.0, down_after=2.0,
                             cooldown=0.5)
    scaler = Autoscaler(server, policy)
    for i in range(6):
        server.submit("jacobi", {"rows": 8, "seed": i})

    assert scaler.step(now=0.0) is None          # high, but not sustained
    assert scaler.step(now=1.1) == "up"          # sustained past up_after
    assert len(server.shards) == 2
    assert scaler.step(now=1.3) is None          # cooldown blocks
    assert scaler.step(now=2.5) == "up"
    assert len(server.shards) == 3
    assert scaler.step(now=2.6) is None          # at max_shards forever

    for shard in server.shards:
        shard.queue.drain_jobs()
    assert scaler.step(now=3.2) is None          # low, but not sustained
    assert scaler.step(now=5.5) == "down"
    assert len(server.shards) == 2

    events = scaler.describe()["events"]
    assert [e["action"] for e in events] == ["up", "up", "down"]
    server.close()


def test_autoscaler_band_is_quiet():
    """Depth between the watermarks must never trigger a change, no
    matter how long it persists — that is the hysteresis band."""
    server = JobServer(1, shards=2)
    policy = AutoscalePolicy(min_shards=1, max_shards=4, high_depth=10,
                             low_depth=0.1, up_after=0.0, down_after=0.0,
                             cooldown=0.0)
    scaler = Autoscaler(server, policy)
    for i in range(4):  # avg 2/shard: inside (0.1, 10)
        server.submit("jacobi", {"rows": 8, "seed": i})
    for t in range(100):
        assert scaler.step(now=float(t)) is None
    assert len(server.shards) == 2
    server.close()
