"""Tests for the interpreter's sequential (non-forall) semantics."""

import numpy as np
import pytest

from repro.errors import KaliRuntimeError, KaliSemanticError
from repro.lang import compile_kali
from repro.machine.cost import IDEAL

HEADER = (
    "processors Procs : array[1..P] with P in 1..16;\n"
    "const n : integer := 8;\n"
    "var A : array[1..n] of real dist by [ cyclic ] on Procs;\n"
    "var M : array[1..4, 1..3] of real dist by [ block, * ] on Procs;\n"
    "var R : array[1..3] of integer;\n"
    "var x : real; k, j : integer; flag : boolean;\n"
)


def run(body, p=4, **kw):
    return compile_kali(HEADER + body).run(nprocs=p, machine=IDEAL, **kw)


class TestScalarStatements:
    def test_arithmetic_and_types(self):
        res = run(
            "x := 7.0 / 2.0;\n"
            "k := 7 div 2 + 7 mod 2;\n"
            "flag := (k = 4) and not (x > 4.0);\n"
        )
        assert res.scalars["x"] == 3.5
        assert res.scalars["k"] == 4
        assert res.scalars["flag"] is True

    def test_builtins(self):
        res = run(
            "x := abs(-2.5) + sqrt(16.0);\n"
            "k := trunc(3.9) + max(2, 7);\n"
        )
        assert res.scalars["x"] == 6.5
        assert res.scalars["k"] == 10

    def test_while_with_counter(self):
        res = run(
            "k := 0;\n"
            "while k < 5 do k := k + 1; end;\n"
        )
        assert res.scalars["k"] == 5

    def test_nested_for_loops(self):
        res = run(
            "k := 0;\n"
            "for j in 1..3 do\n"
            "    for k in 1..1 do x := x + 1.0; end;\n"
            "end;\n"
        )
        assert res.scalars["x"] == 3.0

    def test_if_else_chain(self):
        res = run(
            "k := 2;\n"
            "if k = 1 then x := 10.0;\n"
            "else\n"
            "    if k = 2 then x := 20.0; else x := 30.0; end;\n"
            "end;\n"
        )
        assert res.scalars["x"] == 20.0


class TestGlobalElementAccess:
    def test_2d_element_write_and_read(self):
        res = run(
            "M[3, 2] := 9.5;\n"
            "x := M[3, 2];\n"
        )
        assert res.scalars["x"] == 9.5
        assert res.arrays["M"][2, 1] == 9.5

    def test_replicated_array_access(self):
        res = run(
            "R[1] := 4;\n"
            "R[2] := R[1] * 2;\n"
            "k := R[2];\n"
        )
        assert res.scalars["k"] == 8
        np.testing.assert_array_equal(res.arrays["R"], [4, 8, 0])

    def test_out_of_bounds_read(self):
        with pytest.raises(KaliRuntimeError):
            run("x := A[9];\n")

    def test_out_of_bounds_write(self):
        with pytest.raises(KaliRuntimeError):
            run("A[0] := 1.0;\n")

    def test_element_read_costs_a_broadcast(self):
        """Reading a remote element is not free: log-P messages."""
        from repro.machine.cost import NCUBE7

        src = HEADER + "A[5] := 2.0;\nx := A[5];\n"
        res = compile_kali(src).run(nprocs=4, machine=NCUBE7)
        assert res.timing.engine.total_messages() > 0
        assert res.scalars["x"] == 2.0

    def test_sequential_write_visible_to_forall(self):
        res = run(
            "A[3] := 5.0;\n"
            "forall i in 1..n on A[i].loc do A[i] := A[i] * 2.0; end;\n"
        )
        assert res.arrays["A"][2] == 10.0


class TestPrintFormats:
    def test_float_formatting(self):
        res = run('print(1.0 / 3.0);\n')
        assert res.output == ["0.333333"]

    def test_mixed_args(self):
        res = run('k := 7;\nprint("k:", k, true);\n')
        assert res.output == ["k: 7 True"]

    def test_multiple_lines_ordered(self):
        res = run('print("one");\nprint("two");\n')
        assert res.output == ["one", "two"]


class TestScalarResults:
    def test_loop_variable_scoping(self):
        """A for variable reverts to its prior value after the loop."""
        res = run(
            "k := 99;\n"
            "for k in 1..3 do x := x + 1.0; end;\n"
        )
        assert res.scalars["k"] == 99

    def test_boolean_result(self):
        res = run("flag := 1 < 2;\n")
        assert res.scalars["flag"] is True

    def test_scalars_identical_across_ranks(self):
        """SPMD discipline: the collected scalars are rank 0's, and every
        rank computed the same values (checked via a global write)."""
        res = run(
            "k := P;\n"
            "A[1] := float(k);\n"
        , p=8)
        assert res.scalars["k"] == 8
        assert res.arrays["A"][0] == 8.0
