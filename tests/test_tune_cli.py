"""The ``python -m repro.tune`` CLI: plan, explain, profile, and the
loop between them (explain writes a run file, profile reads it back).

Workloads here are deliberately tiny — the CLI's correctness is in its
plumbing and report shapes; the tuner's decisions are covered by
test_tune.py.
"""

import json

import pytest

from repro.tune.__main__ import main

pytestmark = pytest.mark.timeout(300)

SMALL = ["--nodes", "400", "--procs", "4", "--seed", "7"]


class TestPlan:
    def test_json_report_recommends_rcb_from_bad_start(self, capsys):
        assert main(["plan", *SMALL, "--sweeps", "60", "--layout", "bad",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n"] == 400 and report["nprocs"] == 4
        assert report["recommendation"] == "rcb"
        assert report["layout"]["kind"] == "custom"
        assert len(report["layout"]["owners"]) == 400
        names = {c["name"] for c in report["candidates"]}
        assert {"block", "cyclic", "rcb"} <= names

    def test_table_output_and_out_file(self, capsys, tmp_path):
        out = tmp_path / "plan.json"
        assert main(["plan", *SMALL, "--sweeps", "60", "-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "recommendation:" in text
        assert "candidate" in text
        saved = json.loads(out.read_text())
        assert saved["recommendation"] == "rcb"

    def test_unknown_machine_is_a_cli_error(self, capsys):
        assert main(["plan", *SMALL, "--machine", "cray-3"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestExplain:
    def test_explains_each_decision_and_writes_run_file(self, capsys,
                                                        tmp_path):
        out = tmp_path / "run.json"
        assert main(["explain", *SMALL, "--sweeps", "16", "--layout", "bad",
                     "--warmup", "4", "--interval", "4",
                     "-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "MOVED" in text
        assert "moves: 1/2" in text
        assert "final layout: rcb" in text
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-run-v1"
        assert doc["meta"]["workload"] == "jacobi-adaptive"
        assert doc["meta"]["tune_moves"] == 1

    def test_profile_reads_explains_run_file(self, capsys, tmp_path):
        out = tmp_path / "run.json"
        main(["explain", *SMALL, "--sweeps", "16", "-o", str(out)])
        capsys.readouterr()

        assert main(["profile", "--run", str(out)]) == 0
        table = capsys.readouterr().out
        assert "ranks=4" in table
        assert "remote_refs" in table

        assert main(["profile", "--run", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["nranks"] == 4
        assert len(doc["busy"]) == 4
        assert doc["counters"]["cache_invalidations"] is not None


class TestProfile:
    def test_needs_exactly_one_source(self, capsys, tmp_path):
        assert main(["profile"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["profile", "--run", "r.json",
                     "--metrics-dir", str(tmp_path)]) == 2

    def test_empty_metrics_dir_is_an_error(self, capsys, tmp_path):
        assert main(["profile", "--metrics-dir", str(tmp_path)]) == 2
        assert "no repro-run-v1" in capsys.readouterr().err

    def test_metrics_dir_lists_every_run(self, capsys, tmp_path):
        for name in ("a.json", "b.json"):
            main(["explain", *SMALL, "--sweeps", "8",
                  "-o", str(tmp_path / name)])
        (tmp_path / "noise.json").write_text("{}")
        capsys.readouterr()
        assert main(["profile", "--metrics-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("---") == 2      # one header per run file, noise skipped
        assert "a.json" in out and "b.json" in out
