"""Coverage tests for stats, formatting, errors, and KaliRunResult."""

import numpy as np
import pytest

from repro.core.context import KaliContext
from repro.core.forall import AffineRead, AffineWrite, Forall, OnOwner
from repro.distributions import Block
from repro.errors import (
    DeadlockError,
    KaliError,
    KaliSemanticError,
    KaliSyntaxError,
)
from repro.machine.cost import IDEAL, PRESETS
from repro.machine.stats import RankStats, RunResult
from repro.util.fmt import format_percent, format_seconds, render_table


class TestRankStats:
    def test_charge_accumulates(self):
        s = RankStats(rank=0)
        s.charge("a", 1.0)
        s.charge("a", 2.0)
        s.charge("b", 0.5)
        assert s.phase_time["a"] == 3.0
        assert s.total_time() == 3.5

    def test_counters(self):
        s = RankStats(rank=1)
        s.count("x")
        s.count("x", 4)
        assert s.counters["x"] == 5


class TestRunResult:
    def _result(self):
        s0, s1 = RankStats(0), RankStats(1)
        s0.charge("work", 2.0)
        s1.charge("work", 5.0)
        s1.charge("idle", 1.0)
        s0.count("ops", 3)
        s1.count("ops", 7)
        return RunResult(nranks=2, clocks=[2.0, 6.0], stats=[s0, s1],
                         values=[None, None])

    def test_makespan(self):
        assert self._result().makespan == 6.0

    def test_phase_max_and_sum(self):
        r = self._result()
        assert r.phase_max("work") == 5.0
        assert r.phase_sum("work") == 7.0
        assert r.phase_max("nothing") == 0.0

    def test_phases_sorted(self):
        assert self._result().phases() == ["idle", "work"]

    def test_counter_aggregation(self):
        r = self._result()
        assert r.counter_sum("ops") == 10
        assert r.counter_max("ops") == 7

    def test_empty_result(self):
        r = RunResult(nranks=0, clocks=[], stats=[], values=[])
        assert r.makespan == 0.0
        assert r.phase_max("x") == 0.0


class TestFormatting:
    def test_seconds(self):
        assert format_seconds(1.234567) == "1.23"

    def test_percent(self):
        assert format_percent(0.115) == "11.5%"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [100, 3.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "100" in lines[-1]
        # all rows share one width
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(KaliSyntaxError, KaliError)
        assert issubclass(KaliSemanticError, KaliError)
        assert issubclass(DeadlockError, KaliError)

    def test_syntax_error_position(self):
        e = KaliSyntaxError("bad", line=3, column=7)
        assert "line 3" in str(e) and e.column == 7

    def test_semantic_error_line(self):
        assert "line 9" in str(KaliSemanticError("oops", line=9))

    def test_deadlock_details(self):
        e = DeadlockError({0: (1, 5)})
        assert "rank 0" in str(e) and e.blocked == {0: (1, 5)}


class TestKaliRunResultReporting:
    def _run(self):
        n, p = 12, 2
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["a"] * 2,
            label="report",
        )

        def program(kr):
            yield from kr.forall(loop)

        return ctx.run(program)

    def test_summary_mentions_times(self):
        res = self._run()
        text = res.summary()
        assert "executor" in text and "inspector" in text

    def test_total_includes_all_phases(self):
        res = self._run()
        assert res.total_time >= res.executor_time + res.inspector_time

    def test_zero_time_overhead_guard(self):
        from repro.core.context import KaliRunResult
        from repro.machine.stats import RunResult as RR

        empty = KaliRunResult(RR(0, [], [], []), [])
        assert empty.inspector_overhead == 0.0


class TestPresets:
    def test_registry(self):
        assert {"NCUBE/7", "iPSC/2", "modern-cluster", "ideal"} <= set(PRESETS)

    def test_with_overrides(self):
        m = PRESETS["ideal"].with_overrides(flop=9.0)
        assert m.flop == 9.0
        assert PRESETS["ideal"].flop == 1.0  # original untouched

    def test_search_cost_log(self):
        m = PRESETS["ideal"].with_overrides(search_base=1.0, search_factor=1.0)
        assert m.search_cost(1) == 1.0
        assert m.search_cost(8) == pytest.approx(4.0)  # 1 + log2(8)


class TestContextValidation:
    def test_duplicate_array_rejected(self):
        ctx = KaliContext(2, machine=IDEAL)
        ctx.array("A", 4, dist=[Block()])
        with pytest.raises(KaliError):
            ctx.array("A", 4, dist=[Block()])

    def test_bad_translation_kind(self):
        with pytest.raises(KaliError):
            KaliContext(2, machine=IDEAL, translation="wat").run(
                lambda kr: iter(())
            )

    def test_non_generator_program_rejected(self):
        ctx = KaliContext(2, machine=IDEAL)
        with pytest.raises(KaliError):
            ctx.run(lambda kr: 42)

    def test_local_accessor(self):
        ctx = KaliContext(2, machine=IDEAL)
        ctx.array("A", 4, dist=[Block()]).set(np.arange(4.0))
        seen = {}

        def program(kr):
            seen[kr.id] = kr.local("A").data.copy()
            with pytest.raises(KaliError):
                kr.local("nope")
            return
            yield  # pragma: no cover

        # program isn't a generator (returns None after asserts) — wrap:
        def gen_program(kr):
            seen[kr.id] = kr.local("A").data.copy()
            with pytest.raises(KaliError):
                kr.local("nope")
            yield from kr.compute(0.0)

        ctx.run(gen_program)
        np.testing.assert_array_equal(seen[0], [0.0, 1.0])
        np.testing.assert_array_equal(seen[1], [2.0, 3.0])
