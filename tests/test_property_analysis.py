"""Property-based tests of the analysis machinery as a whole.

Hypothesis generates random forall shapes (range, affine subscripts,
distributions, processor counts) and asserts the system-level invariants:

* closed-form and inspector-built schedules are structurally identical,
* executing under any strategy gives the sequential-oracle result,
* exec(p) sets partition the iteration range,
* in/out duality holds for random indirections.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.closedform import build_closed_form_schedule
from repro.analysis.planner import Strategy
from repro.core.context import KaliContext
from repro.core.forall import (
    Affine,
    AffineRead,
    AffineWrite,
    Forall,
    IndirectRead,
    OnOwner,
)
from repro.distributions import Block, BlockCyclic, Custom, Cyclic
from repro.machine.cost import IDEAL
from repro.runtime.inspector import compute_exec, run_inspector

# Generator for (n, p, dist-spec factory) triples.
dist_strategies = st.sampled_from([
    ("block", lambda n, p, rng: Block()),
    ("cyclic", lambda n, p, rng: Cyclic()),
    ("bc2", lambda n, p, rng: BlockCyclic(2)),
    ("custom", lambda n, p, rng: Custom(rng.integers(0, p, size=n))),
])

affine_maps = st.tuples(st.sampled_from([1, -1, 2, 3]), st.integers(-3, 3))


def _legal_range(n, fn_list):
    """Largest iteration range keeping every a*i+b inside [0, n)."""
    import math

    lo, hi = -10**9, 10**9
    for a, b in fn_list:
        bound1 = (0 - b) / a
        bound2 = (n - 1 - b) / a
        lo = max(lo, math.ceil(min(bound1, bound2)))
        hi = min(hi, math.floor(max(bound1, bound2)))
    return lo, hi


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 50),
    p=st.sampled_from([1, 2, 4, 8]),
    gmap=affine_maps,
    fmap=st.sampled_from([(1, 0), (1, 1), (1, -1)]),
    dist=dist_strategies,
    seed=st.integers(0, 99),
)
def test_random_affine_forall_matches_oracle(n, p, gmap, fmap, dist, seed):
    """B[f(i)] := A[g(i)] over random maps and distributions == oracle."""
    rng = np.random.default_rng(seed)
    _name, mk = dist
    lo, hi = _legal_range(n, [gmap, fmap])
    if lo > hi:
        return  # degenerate configuration

    init = rng.random(n)
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[mk(n, p, rng)]).set(init)
    ctx.array("B", n, dist=[mk(n, p, rng)]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("B", Affine(*fmap)),
        reads=[AffineRead("A", Affine(*gmap), name="g")],
        writes=[AffineWrite("B", Affine(*fmap))],
        kernel=lambda iters, ops: ops["g"],
        label=f"prop-{_name}-{n}-{p}-{gmap}-{fmap}-{seed}",
    )

    def program(kr):
        yield from kr.forall(loop)

    ctx.run(program)
    expected = np.zeros(n)
    its = np.arange(lo, hi + 1)
    expected[fmap[0] * its + fmap[1]] = init[gmap[0] * its + gmap[1]]
    np.testing.assert_array_equal(ctx.arrays["B"].data, expected)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 60),
    p=st.sampled_from([2, 4, 8]),
    gmap=affine_maps,
    ondist=st.sampled_from(["block", "cyclic", "bc2", "bc5"]),
    readdist=st.sampled_from(["block", "cyclic", "bc2", "bc5"]),
)
def test_closed_form_equals_inspector(n, p, gmap, ondist, readdist):
    """Structural identity of the two analysis paths over random shapes,
    including multi-section block-cyclic local sets."""
    mk = {"block": Block, "cyclic": Cyclic,
          "bc2": lambda: BlockCyclic(2), "bc5": lambda: BlockCyclic(5)}
    lo, hi = _legal_range(n, [gmap])
    if lo > hi:
        return
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[mk[readdist]()]).set(np.arange(float(n)))
    ctx.array("B", n, dist=[mk[ondist]()]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("B"),
        reads=[AffineRead("A", Affine(*gmap), name="g")],
        writes=[AffineWrite("B")],
        kernel=lambda iters, ops: ops["g"],
        label=f"ceq-{n}-{p}-{gmap}-{ondist}-{readdist}",
    )
    pairs = {}

    def program(kr):
        ct = build_closed_form_schedule(kr.rank, loop, kr.env)
        rt = yield from run_inspector(kr.rank, loop, kr.env)
        pairs[kr.id] = (ct, rt)

    ctx.run(program)
    for me, (ct, rt) in pairs.items():
        np.testing.assert_array_equal(ct.exec_local, rt.exec_local)
        np.testing.assert_array_equal(ct.exec_nonlocal, rt.exec_nonlocal)
        for name in rt.arrays:
            assert ct.arrays[name].in_records == rt.arrays[name].in_records, (
                f"rank {me} in-records differ"
            )
            assert ct.arrays[name].out_records == rt.arrays[name].out_records


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 80),
    p=st.sampled_from([1, 2, 3, 4, 8]),
    fmap=st.sampled_from([(1, 0), (1, 2), (-1, 0), (2, 0)]),
    dist=dist_strategies,
    lo_off=st.integers(0, 3),
    hi_off=st.integers(0, 3),
    seed=st.integers(0, 9),
)
def test_exec_sets_partition_the_range(n, p, fmap, dist, lo_off, hi_off, seed):
    """Every in-range iteration lands on exactly one processor."""
    rng = np.random.default_rng(seed)
    _name, mk = dist
    lo_f, hi_f = _legal_range(n, [fmap])
    lo, hi = lo_f + lo_off, hi_f - hi_off
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[mk(n, p, rng)]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("A", Affine(*fmap)),
        reads=[AffineRead("A", Affine(*fmap), name="x")],
        writes=[AffineWrite("A", Affine(*fmap))],
        kernel=lambda iters, ops: ops["x"],
        label=f"part-{_name}-{n}-{p}-{fmap}-{seed}",
    )
    execs = {}
    # compute_exec is a pure function of metadata: call it directly per rank.
    from repro.machine.api import Rank

    for r in range(p):
        env = {name: arr.scatter(r) for name, arr in ctx.arrays.items()}
        rank = Rank(r, p, IDEAL, None)
        execs[r] = compute_exec(loop, rank, env)

    all_iters = np.concatenate([execs[r] for r in range(p)]) if p else []
    expected = np.arange(lo, hi + 1) if lo <= hi else np.empty(0, np.int64)
    np.testing.assert_array_equal(np.sort(all_iters), expected)
    # disjointness
    assert len(np.unique(all_iters)) == len(all_iters)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 40),
    p=st.sampled_from([2, 4, 8]),
    dist=dist_strategies,
    seed=st.integers(0, 99),
)
def test_indirect_duality_and_oracle(n, p, dist, seed):
    """Random gather B[i] := A[idx[i]]: duality holds, result exact."""
    rng = np.random.default_rng(seed)
    _name, mk = dist
    idx = rng.integers(0, n, size=n).astype(np.int64)
    init = rng.random(n)
    ctx = KaliContext(p, machine=IDEAL)
    # B and idx must share a layout (table alignment); A may differ, but
    # for custom maps reuse one rng draw so the spec is identical.
    map_rng = np.random.default_rng(seed + 1)
    shared = mk(n, p, map_rng)
    ctx.array("A", n, dist=[mk(n, p, np.random.default_rng(seed + 2))]).set(init)
    ctx.array("B", n, dist=[shared._clone()]).set(np.zeros(n))
    ctx.array("idx", n, dist=[shared._clone()], dtype=np.int64).set(idx)
    loop = Forall(
        index_range=(0, n - 1),
        on=OnOwner("B"),
        reads=[IndirectRead("A", table="idx", name="g")],
        writes=[AffineWrite("B")],
        kernel=lambda iters, ops: ops["g"].values[:, 0],
        label=f"idual-{_name}-{n}-{p}-{seed}",
    )
    schedules = {}

    def program(kr):
        schedules[kr.id] = (yield from run_inspector(kr.rank, loop, kr.env))
        yield from kr.forall(loop)

    ctx.run(program)
    np.testing.assert_array_equal(ctx.arrays["B"].data, init[idx])
    for me in range(p):
        for q in range(p):
            if me == q:
                continue
            ins = [(r.low, r.high)
                   for r in schedules[me].arrays["A"].ranges_for_peer_in(q)]
            outs = [(r.low, r.high)
                    for r in schedules[q].arrays["A"].ranges_for_peer_out(me)]
            assert ins == outs
