"""End-to-end tests: complete Kali programs through compile_kali().run().

These exercise the whole stack — lexer, parser, sema, lowering, the
inspector/executor runtime, and the simulated machine — against NumPy
oracles.
"""

import numpy as np
import pytest

from repro.errors import KaliRuntimeError, KaliSemanticError
from repro.lang import compile_kali
from repro.machine.cost import IDEAL, NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep

HEADER = "processors Procs : array[1..P] with P in 1..64;\n"


def run(src, nprocs=4, machine=IDEAL, **kw):
    return compile_kali(src).run(nprocs=nprocs, machine=machine, **kw)


class TestFigure1:
    SRC = HEADER + """
    const n : integer := 20;
    var A : array[1..n] of real dist by [ block ] on Procs;

    forall i in 1..n on A[i].loc do
        A[i] := float(i);
    end;
    forall i in 1..n-1 on A[i].loc do
        A[i] := A[i+1];
    end;
    """

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_shift(self, p):
        res = run(self.SRC, nprocs=p)
        expected = np.arange(1.0, 21.0)
        expected[:-1] = expected[1:]
        np.testing.assert_allclose(res.arrays["A"], expected)

    def test_cyclic_variant_same_answer(self):
        """Paper §2.4: changing the dist clause must not change semantics."""
        src = self.SRC.replace("[ block ]", "[ cyclic ]")
        r1 = run(self.SRC, nprocs=4)
        r2 = run(src, nprocs=4)
        np.testing.assert_allclose(r1.arrays["A"], r2.arrays["A"])

    def test_block_cyclic_variant(self):
        src = self.SRC.replace("[ block ]", "[ block_cyclic(3) ]")
        r2 = run(src, nprocs=4)
        expected = np.arange(1.0, 21.0)
        expected[:-1] = expected[1:]
        np.testing.assert_allclose(r2.arrays["A"], expected)


class TestFigure4:
    SRC = """
    processors Procs : array[1..P] with P in 1..n;
    const n : integer;
    const width : integer;
    const nsweeps : integer := 4;
    var a, old_a : array[1..n] of real dist by [ block ] on Procs;
        count    : array[1..n] of integer dist by [ block ] on Procs;
        adj      : array[1..n, 1..width] of integer dist by [ block, * ] on Procs;
        coef     : array[1..n, 1..width] of real dist by [ block, * ] on Procs;
    var sweep : integer;

    for sweep in 1..nsweeps do
        forall i in 1..n on old_a[i].loc do
            old_a[i] := a[i];
        end;
        forall i in 1..n on a[i].loc do
            var x : real;
            x := 0.0;
            for j in 1..count[i] do
                x := x + coef[i,j] * old_a[ adj[i,j] ];
            end;
            if (count[i] > 0) then a[i] := x; end;
        end;
    end;
    """

    def _run(self, p, machine=IDEAL, sweeps=4):
        mesh = five_point_grid(8, 8)
        rng = np.random.default_rng(11)
        init = rng.random(mesh.n)
        res = compile_kali(self.SRC).run(
            nprocs=p,
            machine=machine,
            consts={"n": mesh.n, "width": mesh.width, "nsweeps": sweeps},
            inputs={
                "a": init,
                "count": mesh.count,
                "adj": mesh.adj + 1,  # Kali node ids are 1-based
                "coef": mesh.coef,
            },
        )
        ref = init.copy()
        for _ in range(sweeps):
            ref = reference_sweep(mesh, ref)
        return res, ref

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_oracle(self, p):
        res, ref = self._run(p)
        np.testing.assert_allclose(res.arrays["a"], ref)

    def test_strategies(self):
        res, _ = self._run(4)
        strategies = set(res.timing.strategies().values())
        assert strategies == {"compile-time", "inspector"}

    def test_schedule_cached_across_sweeps(self):
        res, _ = self._run(4, sweeps=6)
        # relax loop inspected once per rank despite 6 executions
        assert res.timing.engine.counter_sum("inspector_runs") == 4

    def test_matches_embedded_api_timing(self):
        """Both front ends must drive the runtime identically."""
        from repro.apps.jacobi import build_jacobi

        mesh = five_point_grid(8, 8)
        rng = np.random.default_rng(11)
        init = rng.random(mesh.n)
        res, _ = self._run(4, machine=NCUBE7)
        prog = build_jacobi(mesh, 4, machine=NCUBE7, initial=init)
        r2 = prog.run(sweeps=4)
        assert res.timing.inspector_time == pytest.approx(
            r2.inspector_time, rel=1e-9
        )


class TestLanguageFeatures:
    def test_sequential_element_read_is_global(self):
        """Reading A[k] in sequential code must work regardless of owner
        (the title's 'direct access to remote parts of data values')."""
        src = HEADER + """
        const n : integer := 16;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var v, w : real;

        forall i in 1..n on A[i].loc do
            A[i] := float(i) * 10.0;
        end;
        v := A[1];
        w := A[16];
        """
        res = run(src, nprocs=4)
        assert res.scalars["v"] == 10.0
        assert res.scalars["w"] == 160.0

    def test_sequential_element_write_updates_owner(self):
        src = HEADER + """
        const n : integer := 8;
        var A : array[1..n] of real dist by [ cyclic ] on Procs;
        A[5] := 42.0;
        A[1] := 7.0;
        """
        res = run(src, nprocs=4)
        assert res.arrays["A"][4] == 42.0
        assert res.arrays["A"][0] == 7.0

    def test_while_loop_with_global_read(self):
        src = HEADER + """
        const n : integer := 8;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var steps : integer;

        A[1] := 0.0;
        steps := 0;
        while A[1] < 3.0 do
            A[1] := A[1] + 1.0;
            steps := steps + 1;
        end;
        """
        res = run(src, nprocs=4)
        assert res.scalars["steps"] == 3
        assert res.arrays["A"][0] == 3.0

    def test_print_output(self):
        src = HEADER + """
        const n : integer := 4;
        var A : array[1..n] of real dist by [ block ] on Procs;
        A[2] := 1.5;
        print("A2 =", A[2]);
        print("n =", n);
        """
        res = run(src, nprocs=2)
        assert res.output == ["A2 = 1.5", "n = 4"]

    def test_if_else_in_forall(self):
        src = HEADER + """
        const n : integer := 12;
        var A, B : array[1..n] of real dist by [ block ] on Procs;
        forall i in 1..n on A[i].loc do
            A[i] := float(i);
        end;
        forall i in 1..n on B[i].loc do
            if A[i] > 6.0 then
                B[i] := 1.0;
            else
                B[i] := -1.0;
            end;
        end;
        """
        res = run(src, nprocs=4)
        expected = np.where(np.arange(1, 13) > 6, 1.0, -1.0)
        np.testing.assert_allclose(res.arrays["B"], expected)

    def test_conditional_write_keeps_old_values(self):
        src = HEADER + """
        const n : integer := 10;
        var A : array[1..n] of real dist by [ block ] on Procs;
        forall i in 1..n on A[i].loc do
            A[i] := 5.0;
        end;
        forall i in 1..n on A[i].loc do
            if i mod 2 = 0 then
                A[i] := 9.0;
            end;
        end;
        """
        res = run(src, nprocs=2)
        expected = np.where(np.arange(1, 11) % 2 == 0, 9.0, 5.0)
        np.testing.assert_allclose(res.arrays["A"], expected)

    def test_direct_processor_on_clause(self):
        src = HEADER + """
        const n : integer := 8;
        var A : array[1..n] of real dist by [ cyclic ] on Procs;
        forall i in 1..n on Procs[i] do
            A[i] := float(i);
        end;
        """
        res = run(src, nprocs=4)
        np.testing.assert_allclose(res.arrays["A"], np.arange(1.0, 9.0))

    def test_replicated_array_in_forall(self):
        src = HEADER + """
        const n : integer := 8;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var w : array[1..2] of real;
        w[1] := 10.0;
        w[2] := 0.5;
        forall i in 1..n on A[i].loc do
            A[i] := w[1] + w[2] * float(i);
        end;
        """
        res = run(src, nprocs=4)
        np.testing.assert_allclose(
            res.arrays["A"], 10.0 + 0.5 * np.arange(1.0, 9.0)
        )

    def test_stencil_with_shifted_reads(self):
        src = HEADER + """
        const n : integer := 20;
        var A, B : array[1..n] of real dist by [ block ] on Procs;
        forall i in 1..n on A[i].loc do
            A[i] := float(i * i);
        end;
        forall i in 2..n-1 on B[i].loc do
            B[i] := (A[i-1] + A[i+1]) / 2.0;
        end;
        """
        res = run(src, nprocs=4)
        a = np.arange(1.0, 21.0) ** 2
        expected = np.zeros(20)
        expected[1:-1] = (a[:-2] + a[2:]) / 2.0
        np.testing.assert_allclose(res.arrays["B"], expected)

    def test_integer_arrays_and_mod(self):
        src = HEADER + """
        const n : integer := 12;
        var K : array[1..n] of integer dist by [ block ] on Procs;
        forall i in 1..n on K[i].loc do
            K[i] := i mod 3;
        end;
        """
        res = run(src, nprocs=4)
        np.testing.assert_array_equal(res.arrays["K"], np.arange(1, 13) % 3)

    def test_scalar_result_collection(self):
        src = HEADER + """
        const n : integer := 4;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var total : real;
        var m : integer;
        total := 0.0;
        for m in 1..n do
            A[m] := float(m);
            total := total + A[m];
        end;
        """
        res = run(src, nprocs=2)
        assert res.scalars["total"] == 10.0


class TestRunConfiguration:
    def test_consts_must_be_supplied(self):
        src = HEADER + """
        const n : integer;
        var A : array[1..n] of real dist by [ block ] on Procs;
        A[1] := 1.0;
        """
        with pytest.raises(KaliSemanticError):
            run(src, nprocs=2)
        res = run(src, nprocs=2, consts={"n": 8})
        assert res.arrays["A"].shape == (8,)

    def test_nprocs_outside_declared_range(self):
        src = "processors Procs : array[1..P] with P in 2..4;\n" + \
              "var A : array[1..8] of real dist by [block] on Procs;\nA[1] := 1.0;\n"
        with pytest.raises(KaliRuntimeError):
            compile_kali(src).run(nprocs=8)

    def test_fixed_processor_count_enforced(self):
        src = "processors Procs : array[1..4];\n" + \
              "var A : array[1..8] of real dist by [block] on Procs;\nA[1] := 1.0;\n"
        with pytest.raises(KaliRuntimeError):
            compile_kali(src).run(nprocs=2)
        compile_kali(src).run(nprocs=4)

    def test_unknown_input_rejected(self):
        src = HEADER + "var A : array[1..4] of real dist by [block] on Procs;\nA[1] := 0.0;\n"
        with pytest.raises(KaliRuntimeError):
            run(src, nprocs=2, inputs={"nosuch": np.zeros(4)})

    def test_size_var_visible_in_program(self):
        src = HEADER + """
        const n : integer := 8;
        var A : array[1..n] of real dist by [ block ] on Procs;
        var procs_used : integer;
        procs_used := P;
        A[1] := 0.0;
        """
        res = run(src, nprocs=4)
        assert res.scalars["procs_used"] == 4
