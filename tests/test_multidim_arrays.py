"""Tests for ArrayDistribution, DistributedArray scatter/gather, LocalArray."""

import numpy as np
import pytest

from repro.arrays import DistributedArray, LocalArray
from repro.distributions import (
    ArrayDistribution,
    Block,
    Custom,
    Cyclic,
    ProcessorArray,
    Replicated,
)
from repro.errors import DistributionError


class TestArrayDistribution:
    def test_1d_block(self):
        procs = ProcessorArray(4)
        d = ArrayDistribution(16, [Block()], procs)
        assert d.owner(5) == 1
        assert d.local_shape(0) == (4,)

    def test_2d_block_star_paper_fig4(self):
        """adj : array[1..n, 1..4] dist by [block, *] on Procs."""
        procs = ProcessorArray(4)
        d = ArrayDistribution((16, 4), [Block(), Replicated()], procs)
        assert d.owner((5, 2)) == 1
        assert d.owner((15, 0)) == 3
        assert d.local_shape(0) == (4, 4)

    def test_2d_cyclic_star_paper_fig1(self):
        """B : array[1..N,1..M] dist by [cyclic, *] — paper Figure 1."""
        procs = ProcessorArray(10)
        d = ArrayDistribution((100, 7), [Cyclic(), Replicated()], procs)
        # processor 0 stores rows 0, 10, 20, ... (paper: 1, 11, 21 1-based)
        assert d.owner((0, 3)) == 0
        assert d.owner((10, 6)) == 0
        assert d.owner((11, 0)) == 1

    def test_dist_count_mismatch(self):
        with pytest.raises(DistributionError):
            ArrayDistribution((4, 4), [Block()], ProcessorArray(2))

    def test_distributed_dims_must_match_grid(self):
        """Paper §2.2: number of distributed dims == processor array rank."""
        with pytest.raises(DistributionError):
            ArrayDistribution((4, 4), [Block(), Block()], ProcessorArray(4))
        # but on a 2-d grid it works
        ArrayDistribution((4, 4), [Block(), Block()], ProcessorArray((2, 2)))

    def test_2d_grid_ownership(self):
        procs = ProcessorArray((2, 2))
        d = ArrayDistribution((4, 4), [Block(), Block()], procs)
        assert d.owner((0, 0)) == 0
        assert d.owner((0, 3)) == 1
        assert d.owner((3, 0)) == 2
        assert d.owner((3, 3)) == 3

    def test_fully_replicated(self):
        d = ArrayDistribution(8, [Replicated()], ProcessorArray(4))
        assert d.fully_replicated
        assert d.owner(3) == 0  # canonical owner
        assert d.local_shape(2) == (8,)

    def test_owner_flat(self):
        procs = ProcessorArray(2)
        d = ArrayDistribution((4, 3), [Block(), Replicated()], procs)
        # flat index 7 -> (2, 1) -> row 2 -> owner 1
        assert d.owner_flat(7) == 1

    def test_global_indices_of(self):
        procs = ProcessorArray(2)
        d = ArrayDistribution(10, [Cyclic()], procs)
        np.testing.assert_array_equal(d.global_indices_of(0), [0, 2, 4, 6, 8])

    def test_describe(self):
        d = ArrayDistribution((4, 4), [Block(), Replicated()], ProcessorArray(2))
        assert "block" in d.describe() and "*" in d.describe()


class TestDistributedArray:
    def test_scatter_gather_roundtrip_1d(self):
        procs = ProcessorArray(4)
        arr = DistributedArray("x", 19, [Block()], procs)
        data = np.arange(19.0)
        arr.set(data)
        pieces = arr.scatter_all()
        arr.set(np.zeros(19))
        arr.gather_from(pieces)
        np.testing.assert_array_equal(arr.data, data)

    def test_scatter_gather_roundtrip_2d(self):
        procs = ProcessorArray(3)
        arr = DistributedArray("m", (10, 4), [Cyclic(), Replicated()], procs)
        data = np.arange(40.0).reshape(10, 4)
        arr.set(data)
        pieces = arr.scatter_all()
        arr.set(np.zeros((10, 4)))
        arr.gather_from(pieces)
        np.testing.assert_array_equal(arr.data, data)

    def test_scatter_contents_match_distribution(self):
        procs = ProcessorArray(4)
        arr = DistributedArray("x", 16, [Cyclic()], procs)
        arr.set(np.arange(16.0))
        la = arr.scatter(1)
        np.testing.assert_array_equal(la.data, [1, 5, 9, 13])

    def test_scatter_is_a_copy(self):
        procs = ProcessorArray(2)
        arr = DistributedArray("x", 4, [Block()], procs)
        la = arr.scatter(0)
        la.data[:] = 99
        assert arr.data[0] == 0.0

    def test_version_bumps(self):
        arr = DistributedArray("x", 4, [Block()], ProcessorArray(2))
        v0 = arr.version
        arr.set(np.ones(4))
        assert arr.version == v0 + 1
        arr[0] = 5.0
        assert arr.version == v0 + 2

    def test_data_view_readonly(self):
        arr = DistributedArray("x", 4, [Block()], ProcessorArray(2))
        with pytest.raises(ValueError):
            arr.data[0] = 1.0

    def test_shape_mismatch_rejected(self):
        arr = DistributedArray("x", 4, [Block()], ProcessorArray(2))
        with pytest.raises(DistributionError):
            arr.set(np.zeros(5))

    def test_replicated_gather_takes_rank0(self):
        procs = ProcessorArray(2)
        arr = DistributedArray("r", 4, [Replicated()], procs)
        pieces = arr.scatter_all()
        pieces[0].data[:] = 7.0
        pieces[1].data[:] = 7.0
        arr.gather_from(pieces)
        np.testing.assert_array_equal(arr.data, np.full(4, 7.0))

    def test_dtype_respected(self):
        arr = DistributedArray("i", 4, [Block()], ProcessorArray(2), dtype=np.int64)
        assert arr.scatter(0).data.dtype == np.int64

    def test_custom_distribution_scatter(self):
        owner_map = [1, 0, 1, 0, 1]
        arr = DistributedArray("c", 5, [Custom(owner_map)], ProcessorArray(2))
        arr.set(np.arange(5.0))
        np.testing.assert_array_equal(arr.scatter(0).data, [1, 3])
        np.testing.assert_array_equal(arr.scatter(1).data, [0, 2, 4])


class TestLocalArray:
    def _make(self, n=12, p=3, spec=None):
        procs = ProcessorArray(p)
        arr = DistributedArray("x", n, [spec or Block()], procs)
        arr.set(np.arange(float(n)))
        return arr

    def test_global_rows(self):
        la = self._make().scatter(1)
        np.testing.assert_array_equal(la.global_rows, [4, 5, 6, 7])

    def test_owns(self):
        la = self._make().scatter(1)
        np.testing.assert_array_equal(
            la.owns(np.array([0, 4, 7, 8])), [False, True, True, False]
        )

    def test_get_set_rows(self):
        la = self._make().scatter(1)
        np.testing.assert_array_equal(la.get_rows(np.array([4, 6])), [4.0, 6.0])
        la.set_rows(np.array([5]), np.array([99.0]))
        assert la.get_rows(np.array([5]))[0] == 99.0

    def test_cyclic_rows(self):
        la = self._make(spec=Cyclic()).scatter(2)
        np.testing.assert_array_equal(la.global_rows, [2, 5, 8, 11])
        np.testing.assert_array_equal(la.get_rows(np.array([8])), [8.0])

    def test_nbytes_rows(self):
        procs = ProcessorArray(2)
        arr = DistributedArray("m", (8, 4), [Block(), Replicated()], procs)
        la = arr.scatter(0)
        assert la.nbytes_rows(2) == 2 * 4 * 8

    def test_copy_independent(self):
        la = self._make().scatter(0)
        cp = la.copy()
        cp.data[:] = -1
        assert la.data[0] == 0.0
