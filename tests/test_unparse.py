"""Round-trip tests for the Kali pretty-printer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse
from repro.lang.unparse import unparse, unparse_expr

FIG4 = """
processors Procs: array[1..P] with P in 1..n;
const n : integer := 64;
var a, old_a: array[1..n ] of real dist by [ block ] on Procs;
    count : array[ 1..n ] of integer dist by [ block ] on Procs;
    adj : array[ 1..n, 1..4 ] of integer dist by [ block, * ] on Procs;
    coef : array[ 1..n, 1..4 ] of real dist by [ block, * ] on Procs;
var converged : boolean;
var maxdiff : real;

while ( not converged ) do
    forall i in 1..n on old_a[i].loc do
        old_a[i] := a[i];
    end;
    forall i in 1..n on a[i].loc do
        var x : real;
        x := 0.0;
        for j in 1..count[i] do
            x := x + coef[i,j] * old_a[ adj[i,j] ];
        end;
        if (count[i] > 0) then a[i] := x; end;
    end;
    maxdiff := 0.0;
    forall i in 1..n on a[i].loc do
        maxdiff := max(maxdiff, abs(a[i] - old_a[i]));
    end;
    converged := maxdiff < 0.001;
end;
redistribute a by [ cyclic ];
print("done", maxdiff);
"""


def roundtrip(src: str) -> None:
    """unparse must be a fixpoint: parse -> print -> parse -> print."""
    once = unparse(parse(src))
    twice = unparse(parse(once))
    assert once == twice


class TestRoundTrip:
    def test_figure4(self):
        roundtrip(FIG4)

    def test_empty_program(self):
        assert unparse(parse("")).strip() == ""

    def test_declarations_only(self):
        roundtrip("processors Q : array[1..8];\nconst k : integer := 2;\n")

    def test_block_cyclic_param(self):
        roundtrip(
            "processors Q : array[1..P] with P in 1..4;\n"
            "var A : array[1..10] of real dist by [block_cyclic(2 + 1)] on Q;\n"
            "redistribute A by [ block_cyclic(4) ];"
        )

    def test_if_else(self):
        roundtrip(
            "var x : real;\n"
            "if x > 0.0 then x := 1.0; else x := 2.0; end;"
        )

    def test_direct_on_clause(self):
        roundtrip(
            "processors Q : array[1..P] with P in 1..4;\n"
            "var A : array[1..8] of real dist by [cyclic] on Q;\n"
            "forall i in 1..8 on Q[i] do A[i] := 0.0; end;"
        )

    def test_output_reparses_semantically(self):
        """The printed program must run identically to the original."""
        from repro.lang import compile_kali
        from repro.machine.cost import IDEAL

        src = (
            "processors Procs : array[1..P] with P in 1..8;\n"
            "const n : integer := 12;\n"
            "var A : array[1..n] of real dist by [ block ] on Procs;\n"
            "forall i in 1..n on A[i].loc do A[i] := float(i) * 3.0; end;\n"
            "forall i in 1..n-1 on A[i].loc do A[i] := A[i+1]; end;\n"
        )
        r1 = compile_kali(src).run(nprocs=4, machine=IDEAL)
        printed = unparse(parse(src))
        r2 = compile_kali(printed).run(nprocs=4, machine=IDEAL)
        np.testing.assert_array_equal(r1.arrays["A"], r2.arrays["A"])


class TestPrecedence:
    """Minimal parenthesisation must preserve evaluation order."""

    def _expr_roundtrip(self, text):
        src = f"var x : real; k : integer;\nx := {text};"
        prog = parse(src)
        printed = unparse_expr(prog.stmts[0].value)
        reparsed = parse(f"var x : real; k : integer;\nx := {printed};")
        assert unparse_expr(reparsed.stmts[0].value) == printed

    @pytest.mark.parametrize("text", [
        "1.0 + 2.0 * 3.0",
        "(1.0 + 2.0) * 3.0",
        "1.0 - (2.0 - 3.0)",
        "1.0 - 2.0 - 3.0",
        "-(x + 1.0)",
        "-x + 1.0",
        "2.0 * (x + 1.0) / 4.0",
        "x > 0.0 and x < 1.0 or x = 5.0",
        "not (x > 0.0)",
        "abs(x - 1.0) + max(x, 0.0)",
        "1 + 2 mod 3",
        "(1 + 2) mod 3",
    ])
    def test_shapes(self, text):
        self._expr_roundtrip(text)


# --- hypothesis: random expression round-trips ----------------------------------

def exprs(depth=0):
    base = st.one_of(
        st.integers(0, 99).map(lambda v: f"{v}"),
        st.sampled_from(["x", "k"]),
    )
    if depth >= 3:
        return base
    sub = exprs(depth + 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "div", "mod"]), sub, sub).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        sub.map(lambda e: f"(-{e})"),
        st.tuples(sub, sub).map(lambda t: f"max({t[0]}, {t[1]})"),
    )


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_random_expression_fixpoint(text):
    src = f"var x : integer; k : integer;\nx := {text};"
    once = unparse(parse(src))
    twice = unparse(parse(once))
    assert once == twice


# --- hypothesis: random full-program round-trips --------------------------------
#
# Satellite to the differential-testing PR: fuzz the whole frontend, not
# just expressions.  Programs draw processors declarations, dist-by
# clauses over every distribution kind, foralls with both on-clause
# forms, nested control flow, redistribute and print — then assert the
# parse -> unparse -> parse fixpoint.

DIST_CLAUSES = st.sampled_from([
    "[ block ]",
    "[ cyclic ]",
    "[block_cyclic(2)]",
    "[ block_cyclic(3 + 1) ]",
])

ARRAY_NAMES = ["A", "B", "C"]


@st.composite
def kali_programs(draw):
    n = draw(st.integers(4, 32))
    lines = [
        "processors Procs : array[1..P] with P in 1..8;",
        f"const n : integer := {n};",
    ]
    arrays = draw(st.lists(st.sampled_from(ARRAY_NAMES), min_size=1,
                           max_size=3, unique=True))
    for name in arrays:
        dist = draw(DIST_CLAUSES)
        elem = draw(st.sampled_from(["real", "integer"]))
        lines.append(
            f"var {name} : array[1..n] of {elem} dist by {dist} on Procs;"
        )
    lines.append("var x : real;\n    t : integer;")

    def subscript():
        return draw(st.sampled_from(["i", "i + 1", "i - 1", "2 * i", "1"]))

    def simple_stmt(indent):
        pad = "    " * indent
        kind = draw(st.sampled_from(
            ["arr_assign", "scalar", "print", "if", "for"]
        ))
        if kind == "arr_assign":
            dst = draw(st.sampled_from(arrays))
            src = draw(st.sampled_from(arrays))
            return [f"{pad}{dst}[{subscript()}] := "
                    f"{src}[{subscript()}] + {draw(st.integers(0, 9))};"]
        if kind == "scalar":
            return [f"{pad}t := t + {draw(st.integers(1, 5))};"]
        if kind == "print":
            return [f"{pad}print(\"v\", t);"]
        if kind == "if":
            body = simple_stmt(indent + 1)
            if draw(st.booleans()):
                other = simple_stmt(indent + 1)
                return ([f"{pad}if t > {draw(st.integers(0, 9))} then"]
                        + body + [f"{pad}else"] + other + [f"{pad}end;"])
            return ([f"{pad}if t > {draw(st.integers(0, 9))} then"]
                    + body + [f"{pad}end;"])
        body = simple_stmt(indent + 1)
        return ([f"{pad}for j in 1..{draw(st.integers(1, 4))} do"]
                + body + [f"{pad}end;"])

    nstmts = draw(st.integers(1, 4))
    for _ in range(nstmts):
        top = draw(st.sampled_from(["forall", "plain", "while", "redist"]))
        if top == "forall":
            arr = draw(st.sampled_from(arrays))
            on = draw(st.sampled_from([f"{arr}[i].loc", "Procs[i]"]))
            lo, hi = draw(st.sampled_from([("1", "n"), ("2", "n - 1")]))
            body = simple_stmt(1)
            if draw(st.booleans()):
                body = ["    var y : real;", "    y := 0.0;"] + body
            lines += [f"forall i in {lo}..{hi} on {on} do"] + body + ["end;"]
        elif top == "while":
            lines += (["t := 0;", "while ( t < 3 ) do"]
                      + simple_stmt(1) + ["    t := t + 1;", "end;"])
        elif top == "redist":
            arr = draw(st.sampled_from(arrays))
            lines.append(f"redistribute {arr} by {draw(DIST_CLAUSES)};")
        else:
            lines += simple_stmt(0)
    return "\n".join(lines) + "\n"


@settings(max_examples=60, deadline=None)
@given(kali_programs())
def test_random_program_fixpoint(src):
    """parse -> unparse -> parse -> unparse is a fixpoint for whole
    programs (declarations, foralls, dist-by, control flow)."""
    once = unparse(parse(src))
    twice = unparse(parse(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(kali_programs())
def test_random_program_reparse_preserves_shape(src):
    """The reparsed AST declares the same names and the same statement
    kinds in the same order — unparse loses no program structure."""
    p1 = parse(src)
    p2 = parse(unparse(p1))
    assert [type(s).__name__ for s in p1.stmts] \
        == [type(s).__name__ for s in p2.stmts]
    def decl_key(d):
        return (type(d).__name__,
                tuple(getattr(d, "names", ())) or getattr(d, "name", None))

    assert [decl_key(d) for d in p1.decls] == [decl_key(d) for d in p2.decls]


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_random_expression_value_preserved(text):
    """Evaluation of the printed expression equals the original (over a
    sample of variable assignments), i.e. parenthesisation is sound."""
    import math

    src = f"var x : integer; k : integer;\nx := {text};"
    prog = parse(src)
    printed = unparse_expr(prog.stmts[0].value)
    reparsed = parse(f"var x : integer; k : integer;\nx := {printed};")

    from repro.lang.lower import _binop, _call
    from repro.lang import ast as A

    def ev(e, envv):
        if isinstance(e, A.NumLit):
            return e.value
        if isinstance(e, A.Name):
            return envv[e.ident]
        if isinstance(e, A.UnOp):
            return -ev(e.operand, envv)
        if isinstance(e, A.BinOp):
            return _binop(e.op, ev(e.left, envv), ev(e.right, envv))
        if isinstance(e, A.Call):
            v = _call(e.func, [ev(a, envv) for a in e.args])
            # np.maximum returns NumPy scalars; convert so that a later
            # division by zero raises (Python semantics) instead of
            # warning and propagating nan.
            import numpy as _np

            return v.item() if isinstance(v, _np.generic) else v
        raise AssertionError(e)

    for x in (0, 3, -7):
        envv = {"x": x, "k": 5}
        try:
            v1 = ev(prog.stmts[0].value, envv)
            v2 = ev(reparsed.stmts[0].value, envv)
        except ZeroDivisionError:
            continue
        assert v1 == v2
