"""Property tests for the rendezvous shard router.

The router is the piece that makes sharding *worth it*: cache warmth
depends on stable, balanced, minimally-disruptive placement.  Each
property here is one of those three words:

* **deterministic** — routing is a pure function of (shard names, key):
  same answer on every call, across router instances, and across
  *processes* (no ``PYTHONHASHSEED`` dependence — pinned by actually
  spawning a fresh interpreter);
* **balanced** — over any drawn key set, no shard gets pathologically
  more than its k/n share (binomial concentration, generous bound);
* **minimally disruptive** — adding a shard moves keys *only onto the
  new shard* (never between survivors), about 1/(n+1) of them; removing
  a shard moves *only that shard's* keys.  Everything else stays put —
  which is exactly the statement "scaling does not cool surviving
  caches".
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KaliError
from repro.serve.router import ShardRouter, route_key

# Unique printable keys: list of distinct tokens (dedup by construction
# so disruption ratios are over distinct keys, the quantity that matters).
keys_strategy = st.lists(
    st.text(st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=24),
    min_size=1, max_size=200, unique=True,
)

shard_names = [f"shard-{i}" for i in range(8)]


# --- determinism ----------------------------------------------------------


@given(keys=keys_strategy, n=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_routing_is_deterministic_per_instance(keys, n):
    router = ShardRouter(shard_names[:n])
    other = ShardRouter(shard_names[:n])
    for key in keys:
        assert router.route(key) == router.route(key) == other.route(key)


def test_routing_is_deterministic_across_processes():
    """A fresh interpreter (fresh hash randomization) must route every
    key identically — placement can never depend on process state."""
    keys = [route_key("jacobi", {"rows": r, "sweeps": s})
            for r in (8, 16, 32) for s in (1, 2)]
    keys += [f"key-{i}" for i in range(32)]
    here = ShardRouter(shard_names[:4]).table(keys)
    script = (
        "import json, sys\n"
        "from repro.serve.router import ShardRouter\n"
        "keys = json.load(sys.stdin)\n"
        "router = ShardRouter([f'shard-{i}' for i in range(4)])\n"
        "print(json.dumps(router.table(keys)))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], input=json.dumps(keys),
        capture_output=True, text=True, check=True,
    )
    assert json.loads(out.stdout) == here


# --- balance --------------------------------------------------------------


@given(n=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_balanced_within_bounds(n, seed):
    """With k >> n distinct keys every shard stays within a generous
    multiplicative band of the fair share k/n (SHA-256 scores are
    uniform; 3x/0.2x bounds are far outside binomial noise at k=600)."""
    k = 600
    keys = [f"balance-{seed}-{i}" for i in range(k)]
    router = ShardRouter(shard_names[:n])
    counts = {s: 0 for s in router.shards}
    for key in keys:
        counts[router.route(key)] += 1
    fair = k / n
    assert sum(counts.values()) == k
    for shard, got in counts.items():
        assert got < 3.0 * fair, f"{shard} overloaded: {got} vs fair {fair}"
        assert got > 0.2 * fair, f"{shard} starved: {got} vs fair {fair}"


# --- minimal disruption ---------------------------------------------------


@given(keys=keys_strategy, n=st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_adding_a_shard_moves_keys_only_onto_it(keys, n):
    router = ShardRouter(shard_names[:n])
    before = router.table(keys)
    router.add(shard_names[n])
    after = router.table(keys)
    moved = [k for k in keys if before[k] != after[k]]
    # Every moved key moved TO the new shard — survivors never trade
    # keys among themselves, so their caches stay exactly as warm.
    for k in moved:
        assert after[k] == shard_names[n]
    # About 1/(n+1) of keys move; bound the tail generously.
    if len(keys) >= 30:
        expected = len(keys) / (n + 1)
        assert len(moved) <= 3.0 * expected + 5


@given(keys=keys_strategy, n=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_removing_a_shard_moves_only_its_keys(keys, n):
    router = ShardRouter(shard_names[:n])
    before = router.table(keys)
    victim = shard_names[n - 1]
    router.remove(victim)
    after = router.table(keys)
    for k in keys:
        if before[k] == victim:
            assert after[k] != victim
        else:
            assert after[k] == before[k], (
                f"key {k!r} moved between surviving shards")


@given(keys=keys_strategy, n=st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_exclude_equals_removal(keys, n):
    """Routing with a shard excluded (the condemned-pool replay path)
    lands every key exactly where a fleet without that shard would."""
    router = ShardRouter(shard_names[:n])
    victim = shard_names[0]
    smaller = ShardRouter(shard_names[1:n])
    for k in keys:
        assert router.route(k, exclude=(victim,)) == smaller.route(k)


# --- edges ----------------------------------------------------------------


def test_membership_errors():
    router = ShardRouter(["a", "b"])
    with pytest.raises(KaliError):
        router.add("a")
    with pytest.raises(KaliError):
        router.remove("c")
    with pytest.raises(KaliError):
        ShardRouter(["x", "x"])
    with pytest.raises(KaliError):
        ShardRouter([]).route("anything")


def test_exclude_ignored_when_it_would_empty_the_fleet():
    router = ShardRouter(["only"])
    assert router.route("k", exclude=("only",)) == "only"


def test_route_key_is_canonical():
    assert route_key("jacobi", {"b": 1, "a": 2}) == \
        route_key("jacobi", {"a": 2, "b": 1})
    assert route_key("jacobi", {}) == route_key("jacobi", None)
    assert route_key("jacobi", {"rows": 8}) != route_key("cg", {"rows": 8})
