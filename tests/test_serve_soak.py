"""Soak/leak regression: 200 mixed-tenant jobs through the async front.

PR 4 pinned fd hygiene for one warm pool; this extends the check to the
sharded path, where the leak surface is much wider: asyncio transports,
per-connection stream pairs, two pools' pipe meshes and shm segments,
and a scheduler thread per shard.  One mid-sized soak catches the
classes of bug that per-feature unit tests structurally cannot — a pipe
pair leaked per *job*, an shm segment leaked per *batch*, a counter that
wobbles backwards under concurrency.

Assertions:

* ``/proc/self/fd`` count at the end of the run equals the post-warmup
  baseline — zero descriptors leaked across ~200 jobs and hundreds of
  socket round trips;
* ``/dev/shm`` holds no new ``repro-shm-*`` segments once the server is
  closed (the data plane unlinked everything it created);
* ``serve.jobs_done`` sampled concurrently with the stream is monotone
  non-decreasing and lands exactly on the accepted-job count — the
  counter never double-counts a replayed/batched job and never loses
  one.
"""

import glob
import os
import threading
import time

import pytest

from repro.serve.frontend import serve_async
from repro.serve.server import JobServer, ServeClient

NJOBS = 200
TENANTS = ("default", "alice", "bob", "carol")


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def _shm_entries() -> set:
    return set(glob.glob("/dev/shm/*repro*"))


def _job_for(i: int):
    # Three small families, mixed kinds, round-robin over tenants.
    fam = i % 3
    if fam == 2:
        return "cg", {"rows": 6, "max_iter": 12, "seed": fam}
    return "jacobi", {"rows": 7 + fam, "sweeps": 1, "seed": fam}


@pytest.mark.timeout(300)
def test_soak_fd_shm_and_monotonic_jobs_done(tmp_path):
    shm_before = _shm_entries()
    sock = str(tmp_path / "soak.sock")
    server = JobServer(2, shards=2, tenants={"alice": {"weight": 2.0}})
    front = threading.Thread(target=serve_async, args=(server, sock),
                             daemon=True)
    front.start()

    client = ServeClient(sock, timeout=120.0)
    for _ in range(200):
        try:
            client.request("ping")
            break
        except (FileNotFoundError, ConnectionRefusedError, OSError):
            time.sleep(0.05)

    conns = [client.connect() for _ in range(len(TENANTS))]
    watch = client.connect()
    try:
        # Warmup: fork both meshes, seed the schedule caches, spin up
        # the drain executor thread — everything that legitimately
        # allocates descriptors must have happened before the baseline.
        for i, conn in enumerate(conns):
            kind, spec = _job_for(i)
            reply = conn.request("submit", kind=kind, spec=spec,
                                 tenant=TENANTS[i])
            assert reply["ok"], reply
        assert watch.request("drain")["ok"]
        baseline_fd = _fd_count()

        samples = []
        stop_sampling = threading.Event()

        def sample():
            while not stop_sampling.is_set():
                reply = watch.request("metrics")
                samples.append(reply["metrics"]["serve.jobs_done"])
                time.sleep(0.05)

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()

        errors = []

        def submitter(lane: int):
            conn, tenant = conns[lane], TENANTS[lane]
            for i in range(lane, NJOBS, len(TENANTS)):
                kind, spec = _job_for(i)
                reply = conn.request("submit", kind=kind, spec=spec,
                                     tenant=tenant)
                if not reply.get("ok"):
                    errors.append(reply)
                    return

        threads = [threading.Thread(target=submitter, args=(lane,))
                   for lane in range(len(TENANTS))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(240)
        stop_sampling.set()
        sampler.join(30)
        assert not errors, f"jobs failed during soak: {errors[:3]}"

        final = watch.request("metrics")["metrics"]
        stat = watch.request("stat")["stat"]

        # Monotone, and exactly one count per accepted job.
        assert samples == sorted(samples), (
            "serve.jobs_done went backwards during the soak")
        warmup = len(TENANTS)
        assert final["serve.jobs_done"] == NJOBS + warmup
        assert final["serve.failures"] == 0
        assert stat["jobs_done"] == NJOBS + warmup
        done_by_shard = sum(e["jobs_done"] for e in stat["shards"])
        assert done_by_shard == NJOBS + warmup

        # Flat descriptor table: the steady state leaked nothing.
        assert _fd_count() == baseline_fd, (
            f"fd leak: {baseline_fd} -> {_fd_count()} across {NJOBS} jobs")
    finally:
        for conn in conns:
            conn.close()
        try:
            watch.request("stop")
        except Exception:
            pass
        watch.close()
        front.join(60)

    assert not front.is_alive(), "async front end failed to shut down"
    assert not os.path.exists(sock)
    # Every shm segment the fleet created was unlinked at teardown.
    leaked = _shm_entries() - shm_before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
