"""Tests for the observability subsystem (``repro.obs``)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.machine.api import Compute, Recv, Send
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine
from repro.machine.topology import FullyConnected, Hypercube
from repro.meshes.regular import five_point_grid
from repro.obs import (
    CommMatrix,
    MetricsRegistry,
    ascii_heatmap,
    build_spans,
    critical_path,
    pair_messages,
    rank_activity,
    read_run_json,
    render_activity,
    render_hotspots,
    run_from_dict,
    run_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_run_json,
)


def traced(prog, n, machine=IDEAL, topology=None):
    topo = topology or FullyConnected(n)
    return Engine(machine, topology=topo, trace=True).run(prog)


def pipeline3(rank):
    """A 3-stage pipeline with a known critical path: 0 -> 1 -> 2.

    Rank 0 computes 5s then feeds rank 1; rank 1 computes 1s locally,
    waits, computes 3s, feeds rank 2; rank 2 waits then computes 2s.
    Under IDEAL (zero comm cost) the critical path is exactly
    5 + 3 + 2 = 10s and the makespan equals it.
    """
    if rank.id == 0:
        yield Compute(5.0, phase="stage0")
        yield Send(dest=1, payload=b"x" * 8, tag=1, phase="stage0")
    elif rank.id == 1:
        yield Compute(1.0, phase="stage1")
        yield Recv(source=0, tag=1, phase="stage1")
        yield Compute(3.0, phase="stage1")
        yield Send(dest=2, payload=b"x" * 8, tag=2, phase="stage1")
    else:
        yield Recv(source=1, tag=2, phase="stage2")
        yield Compute(2.0, phase="stage2")


def traced_jacobi(procs=4, side=8, sweeps=2, machine=NCUBE7):
    mesh = five_point_grid(side, side)
    prog = build_jacobi(mesh, procs, machine=machine, trace=True)
    return prog.run(sweeps=sweeps).engine


# --- spans -----------------------------------------------------------------


class TestSpans:
    def test_recv_split_into_wait_and_busy(self):
        res = traced(pipeline3, 3)
        spans = build_spans(res.trace)
        waits = [s for s in spans if s.kind == "recv_wait"]
        busies = [s for s in spans if s.kind == "recv_busy"]
        assert len(busies) == 2
        # Rank 1 waited from t=1 (after its local compute) to t=5.
        w1 = next(s for s in waits if s.rank == 1)
        assert w1.start == pytest.approx(1.0)
        assert w1.end == pytest.approx(5.0)

    def test_wait_plus_busy_equals_recv_span(self):
        res = traced_jacobi()
        spans = build_spans(res.trace)
        recv_total = sum(
            e.end - e.start for e in res.trace if e.kind == "recv"
        )
        split_total = sum(
            s.duration for s in spans if s.kind in ("recv_wait", "recv_busy")
        )
        assert split_total == pytest.approx(recv_total)

    def test_pair_messages_matches_every_recv(self):
        res = traced_jacobi()
        recvs = [e for e in res.trace if e.kind == "recv"]
        pairs = pair_messages(res.trace)
        assert len(pairs) == len(recvs)
        for send, recv in pairs:
            assert send.seq == recv.seq
            assert send.rank == recv.peer and recv.rank == send.peer
            assert send.nbytes == recv.nbytes

    def test_rank_activity_accounts_full_makespan(self):
        res = traced(pipeline3, 3)
        acts = rank_activity(res.trace, nranks=3)
        for a in acts:
            assert a.busy + a.wait + a.idle_tail == pytest.approx(a.makespan)
        # Rank 2 idled 8s waiting (pipeline fill), was busy 2s + recv drain.
        a2 = acts[2]
        assert a2.wait == pytest.approx(8.0)
        assert a2.busy == pytest.approx(2.0)
        text = render_activity(acts)
        assert "parallel efficiency" in text

    def test_spans_carry_forall_labels(self):
        res = traced_jacobi()
        labels = {s.label for s in build_spans(res.trace)}
        assert "jacobi-relax" in labels
        assert "jacobi-copy" in labels


# --- chrome trace ----------------------------------------------------------


class TestChromeTrace:
    def test_schema_valid(self):
        res = traced_jacobi()
        doc = to_chrome_trace(res.trace, nranks=res.nranks)
        assert validate_chrome_trace(doc) == []

    def test_json_serializable_and_monotonic(self):
        res = traced_jacobi()
        doc = json.loads(json.dumps(to_chrome_trace(res.trace)))
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_one_pid_per_rank(self):
        res = traced_jacobi(procs=4)
        doc = to_chrome_trace(res.trace, nranks=4)
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {r: f"rank {r}" for r in range(4)}

    def test_flow_ids_pair_sends_with_recvs(self):
        res = traced_jacobi()
        doc = to_chrome_trace(res.trace)
        starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
        ends = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
        assert starts == ends
        n_recvs = sum(1 for e in res.trace if e.kind == "recv")
        assert len(starts) == n_recvs

    def test_flow_steps_land_inside_their_slices(self):
        """Perfetto binds flows to the enclosing slice at the step ts."""
        res = traced(pipeline3, 3)
        doc = to_chrome_trace(res.trace)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]

        def enclosing(pid, ts, cat):
            return [
                s for s in slices
                if s["pid"] == pid and s["cat"] == cat
                and s["ts"] <= ts <= s["ts"] + s["dur"]
            ]

        for ev in doc["traceEvents"]:
            if ev["ph"] == "s":
                assert enclosing(ev["pid"], ev["ts"], "send")
            elif ev["ph"] == "f":
                assert enclosing(ev["pid"], ev["ts"], "recv_busy")

    def test_golden_two_rank_exchange(self):
        """Exact expected slices for a deterministic two-rank program."""
        def prog(rank):
            if rank.id == 0:
                yield Compute(2.0, phase="work")
                yield Send(dest=1, payload=b"ab", tag=3, phase="xfer")
            else:
                yield Recv(source=0, tag=3, phase="xfer")

        res = traced(prog, 2)
        doc = to_chrome_trace(res.trace, nranks=2)
        xs = [
            (e["pid"], e["cat"], e["name"], e["ts"], e["dur"])
            for e in doc["traceEvents"] if e["ph"] == "X"
        ]
        # IDEAL: compute 2s; send/recv cost 0 => recv waits [0, 2e6]us.
        assert (0, "compute", "work", 0.0, 2_000_000.0) in xs
        assert (0, "send", "xfer", 2_000_000.0, 0.0) in xs
        assert (1, "recv_wait", "xfer", 0.0, 2_000_000.0) in xs
        assert (1, "recv_busy", "xfer", 2_000_000.0, 0.0) in xs

    def test_write_and_validate_file(self, tmp_path):
        res = traced_jacobi()
        path = tmp_path / "trace.json"
        write_chrome_trace(res.trace, str(path), nranks=res.nranks)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


# --- comm matrix -----------------------------------------------------------


class TestCommMatrix:
    def test_reconciles_with_rankstats_jacobi(self):
        res = traced_jacobi(procs=8, side=12, sweeps=3)
        matrix = CommMatrix.from_trace(res.trace, nranks=res.nranks)
        assert matrix.reconcile(res.stats) == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reconciles_with_random_traffic(self, seed):
        """Property: row sums == bytes_sent, col sums == bytes_received."""
        rng = np.random.default_rng(seed)
        n = 5
        plan = [
            [(int(d), int(rng.integers(1, 200)))
             for d in rng.integers(0, n, size=rng.integers(1, 6))
             if int(d) != me]  # the engine rejects self-sends
            for me in range(n)
        ]

        def prog(rank):
            for dst, size in plan[rank.id]:
                yield Send(dest=dst, payload=b"z" * size,
                           tag=100 + rank.id, phase="traffic")
            expected = [
                (src, size)
                for src in range(n)
                for (dst, size) in plan[src]
                if dst == rank.id
            ]
            for src, _size in sorted(expected):
                yield Recv(source=src, tag=100 + src, phase="traffic")

        res = traced(prog, n)
        matrix = CommMatrix.from_trace(res.trace, nranks=n)
        assert matrix.reconcile(res.stats) == []
        assert matrix.total("bytes") == res.total_bytes()
        assert matrix.total("messages") == res.total_messages()

    def test_hop_weighting_uses_topology(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=3, payload=b"x" * 10, tag=1)
            elif rank.id == 3:
                yield Recv(source=0, tag=1)

        res = traced(prog, 4, topology=Hypercube(4))
        matrix = CommMatrix.from_trace(res.trace, nranks=4,
                                       topology=Hypercube(4))
        # 0 -> 3 crosses both cube bits: 2 hops x 10 bytes.
        assert matrix.hop_bytes[0][3] == 20

    def test_heatmap_and_hotspots_render(self):
        res = traced_jacobi(procs=4)
        matrix = CommMatrix.from_trace(res.trace, nranks=4)
        heat = ascii_heatmap(matrix, mode="bytes")
        assert "comm matrix" in heat and "@" in heat
        hot = render_hotspots(matrix, k=3)
        assert "->" in hot

    def test_empty_matrix(self):
        def prog(rank):
            yield Compute(1.0)

        res = traced(prog, 2)
        matrix = CommMatrix.from_trace(res.trace, nranks=2)
        assert "no bytes traffic" in ascii_heatmap(matrix)
        assert matrix.reconcile(res.stats) == []


# --- critical path ---------------------------------------------------------


class TestCriticalPath:
    def test_pipeline_known_answer(self):
        res = traced(pipeline3, 3)
        cp = critical_path(res.trace, nranks=3)
        assert res.makespan == pytest.approx(10.0)
        assert cp.length == pytest.approx(10.0)
        # The chain visits the pipeline stages in order; rank 1's initial
        # 1s compute is NOT on the path (it overlapped rank 0's 5s).
        assert cp.ranks() == [0, 1, 2]
        by_rank = cp.time_by("rank")
        assert by_rank["0"] == pytest.approx(5.0)
        assert by_rank["1"] == pytest.approx(3.0)
        assert by_rank["2"] == pytest.approx(2.0)

    def test_path_skips_non_binding_work(self):
        """A slow rank that nobody waits on must stay off the path."""
        def prog(rank):
            if rank.id == 0:
                yield Compute(9.0, phase="slowpoke")
            elif rank.id == 1:
                yield Compute(1.0, phase="feeder")
                yield Send(dest=2, payload=b"x", tag=1, phase="feeder")
            else:
                yield Recv(source=1, tag=1, phase="sink")
                yield Compute(1.0, phase="sink")

        res = traced(prog, 3)
        cp = critical_path(res.trace, nranks=3)
        # Makespan is rank 0's 9s of local work; path is entirely rank 0.
        assert cp.ranks() == [0]
        assert cp.length == pytest.approx(9.0)
        assert "slowpoke" in cp.time_by("phase")

    def test_path_covers_full_makespan_on_jacobi(self):
        res = traced_jacobi(procs=8, side=12, sweeps=2)
        cp = critical_path(res.trace, nranks=res.nranks)
        assert cp.length == pytest.approx(res.makespan, rel=1e-9)
        # Steps are contiguous and time-ordered.
        for a, b in zip(cp.steps, cp.steps[1:]):
            assert b.start == pytest.approx(a.end, abs=1e-9)
        assert cp.steps[0].start == pytest.approx(0.0)

    def test_transit_time_attributed(self):
        def prog(rank):
            if rank.id == 0:
                yield Compute(1.0)
                yield Send(dest=1, payload=b"x" * 100, tag=1)
            else:
                yield Recv(source=0, tag=1)

        res = traced(prog, 2, machine=NCUBE7, topology=Hypercube(2))
        cp = critical_path(res.trace, nranks=2)
        kinds = cp.time_by("kind")
        assert kinds.get("transit", 0.0) == pytest.approx(NCUBE7.hop)
        assert cp.length == pytest.approx(res.makespan, rel=1e-9)

    def test_render(self):
        res = traced(pipeline3, 3)
        text = critical_path(res.trace, nranks=3).render()
        assert "critical path" in text
        assert "by phase" in text and "chain" in text


# --- metrics registry and run files ----------------------------------------


class TestRegistry:
    def test_from_run_collects_counters_and_phases(self):
        res = traced_jacobi(procs=4, sweeps=3)
        reg = MetricsRegistry.from_run(res)
        assert reg.get("nranks") == 4
        assert reg.get("makespan") == pytest.approx(res.makespan)
        assert reg.get("phase_max.executor") == pytest.approx(
            res.phase_max("executor"))
        # Runtime metrics previously invisible to RunResult:
        assert reg.get("counter_sum.schedule_cache_hits", 0) > 0
        assert reg.get("counter_sum.schedule_cache_misses", 0) > 0
        assert reg.get("counter_sum.crystal_rounds", 0) > 0
        assert reg.get("counter_sum.inspector_checks", 0) > 0
        assert 0.0 < reg.get("parallel_efficiency") <= 1.0

    def test_exporters_round_trip(self):
        res = traced_jacobi()
        reg = MetricsRegistry.from_run(res, extra={"custom": 7})
        as_json = json.loads(reg.to_json())
        assert as_json["custom"] == 7
        lines = reg.to_jsonl().splitlines()
        assert len(lines) == len(reg)
        parsed = [json.loads(ln) for ln in lines]
        assert {p["name"]: p["value"] for p in parsed} == reg.as_dict()
        csv = reg.to_csv().splitlines()
        assert csv[0] == "name,value"
        assert len(csv) == len(reg) + 1
        assert "makespan" in reg.render_table()

    def test_run_json_round_trip(self, tmp_path):
        res = traced_jacobi(procs=4, sweeps=2)
        path = tmp_path / "run.json"
        write_run_json(res, str(path), meta={"workload": "jacobi"})
        back = read_run_json(str(path))
        assert back.nranks == res.nranks
        assert back.clocks == pytest.approx(res.clocks)
        assert back.makespan == pytest.approx(res.makespan)
        for a, b in zip(back.stats, res.stats):
            assert dict(a.phase_time) == pytest.approx(dict(b.phase_time))
            assert dict(a.counters) == dict(b.counters)
            assert a.bytes_sent == b.bytes_sent
        assert back.trace is not None and len(back.trace) == len(res.trace)
        assert back.trace[0] == res.trace[0]
        # Telemetry computed from the round-tripped run is identical.
        assert MetricsRegistry.from_run(back).as_dict() == pytest.approx(
            MetricsRegistry.from_run(res).as_dict())

    def test_run_from_dict_rejects_foreign_docs(self):
        with pytest.raises(ValueError):
            run_from_dict({"format": "something-else"})

    def test_run_to_dict_without_trace(self):
        def prog(rank):
            yield Compute(1.0)

        res = Engine(IDEAL, topology=FullyConnected(2)).run(prog)
        doc = run_to_dict(res)
        assert "trace" not in doc
        assert run_from_dict(doc).trace is None


# --- engine instrumentation surfaced by obs --------------------------------


class TestEngineInstrumentation:
    def test_undelivered_attributed_to_destination(self):
        """The leftover-message count lands on the addressee, not rank 0."""
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=2, payload=b"x", tag=1)
                yield Send(dest=2, payload=b"x", tag=1)
                yield Send(dest=1, payload=b"x", tag=2)
            elif rank.id == 1:
                yield Recv(source=0, tag=2)
            else:
                yield Compute(1.0)

        res = traced(prog, 3)
        per_rank = [s.counters.get("undelivered_messages", 0)
                    for s in res.stats]
        assert per_rank == [0, 0, 2]
        assert res.counter_sum("undelivered_messages") == 2

    def test_no_undelivered_counter_on_clean_run(self):
        def prog(rank):
            yield Compute(1.0)

        res = traced(prog, 2)
        assert res.counter_sum("undelivered_messages") == 0
        assert all("undelivered_messages" not in s.counters for s in res.stats)

    def test_schedule_cache_counters_reach_run_result(self):
        res = traced_jacobi(procs=4, sweeps=5)
        # 2 foralls x 5 sweeps: first execution of each misses, rest hit.
        assert res.counter_sum("schedule_cache_misses") == 2 * 4
        assert res.counter_sum("schedule_cache_hits") == 2 * 4 * 4

    def test_crystal_round_counters(self):
        res = traced_jacobi(procs=8, sweeps=1)
        # One inspected forall on an 8-rank hypercube: log2(8) = 3 rounds.
        assert res.counter_max("crystal_rounds") == 3

    def test_redistribute_volume_counters(self):
        from repro.core.context import KaliContext
        from repro.distributions import Block, Cyclic

        ctx = KaliContext(4, machine=IDEAL, trace=True)
        ctx.array("v", 16, dist=[Block()]).set(np.arange(16.0))

        def program(kr):
            yield from kr.redistribute("v", Cyclic())

        res = ctx.run(program)
        moved = res.engine.counter_sum("redistribute_elems_sent")
        assert moved > 0
        assert res.engine.counter_sum("redistribute_msgs") > 0
        assert res.engine.counter_sum("redistribute_bytes") >= 8 * moved

    def test_collective_call_counters(self):
        from repro.comm.collectives import allreduce

        def prog(rank):
            total = yield from allreduce(rank, rank.id, lambda a, b: a + b)
            return total

        res = traced(prog, 4)
        assert res.counter_sum("collective_calls") == 4
        assert all(v == 6 for v in res.values)
