"""Semantic tests for forall execution: results must equal the sequential
global-name-space oracle for every distribution and analysis strategy.

This is the heart of the reproduction: the paper's promise is that the
generated message-passing program computes exactly what the shared-memory
forall specifies, for *any* data distribution.
"""

import numpy as np
import pytest

from repro.analysis.planner import Strategy
from repro.core.context import KaliContext
from repro.core.forall import (
    Affine,
    AffineRead,
    AffineWrite,
    Forall,
    IndirectRead,
    OnOwner,
    OnProcessor,
)
from repro.distributions import Block, BlockCyclic, Custom, Cyclic, Replicated
from repro.errors import InspectorError, KaliError
from repro.machine.cost import IDEAL
import repro.machine.cost as cost

DISTS = [
    ("block", lambda n, p: Block()),
    ("cyclic", lambda n, p: Cyclic()),
    ("block_cyclic3", lambda n, p: BlockCyclic(3)),
    ("custom", lambda n, p: Custom((np.arange(n) * 7 + 3) % p)),
]
PS = [1, 2, 4, 8]


def run_forall(n, p, dist_mk, loops, arrays, force=None):
    """Build a context with 1-d float arrays, run the loops, return dict of
    final global contents."""
    ctx = KaliContext(p, machine=IDEAL, force_strategy=force)
    for name, values in arrays.items():
        values = np.asarray(values)
        if values.ndim == 1 and values.dtype != np.int64:
            a = ctx.array(name, n, dist=[dist_mk(n, p)])
        elif values.ndim == 1:
            a = ctx.array(name, n, dist=[dist_mk(n, p)], dtype=np.int64)
        else:
            a = ctx.array(
                name,
                values.shape,
                dist=[dist_mk(n, p), Replicated()],
                dtype=values.dtype,
            )
        a.set(values)

    def program(kr):
        for loop in loops:
            yield from kr.forall(loop)

    ctx.run(program)
    return {name: ctx.arrays[name].data.copy() for name in arrays}


@pytest.mark.parametrize("dist_name,dist_mk", DISTS)
@pytest.mark.parametrize("p", PS)
class TestAgainstOracle:
    def test_shift_left_figure1(self, dist_name, dist_mk, p):
        """forall i in 1..N-1 on A[i].loc do A[i] := A[i+1] (paper Fig. 1)."""
        n = 23
        init = np.arange(float(n)) * 2 + 1
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="next")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["next"],
            label=f"shift-{dist_name}-{p}",
        )
        out = run_forall(n, p, dist_mk, [loop], {"A": init})["A"]
        expected = init.copy()
        expected[:-1] = init[1:]  # copy-in/copy-out: RHS sees old values
        np.testing.assert_allclose(out, expected)

    def test_three_point_stencil(self, dist_name, dist_mk, p):
        n = 31
        init = np.sin(np.arange(n))
        loop = Forall(
            index_range=(1, n - 2),
            on=OnOwner("A"),
            reads=[
                AffineRead("A", Affine(1, -1), name="lo"),
                AffineRead("A", Affine(1, 0), name="mid"),
                AffineRead("A", Affine(1, 1), name="hi"),
            ],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: (ops["lo"] + ops["mid"] + ops["hi"]) / 3.0,
            label=f"stencil-{dist_name}-{p}",
        )
        out = run_forall(n, p, dist_mk, [loop], {"A": init})["A"]
        expected = init.copy()
        expected[1:-1] = (init[:-2] + init[1:-1] + init[2:]) / 3.0
        np.testing.assert_allclose(out, expected)

    def test_reversal_read(self, dist_name, dist_mk, p):
        """B[i] := A[n-1-i] — a negative-stride affine subscript."""
        n = 17
        init = np.arange(float(n)) ** 2
        loop = Forall(
            index_range=(0, n - 1),
            on=OnOwner("B"),
            reads=[AffineRead("A", Affine(-1, n - 1), name="rev")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["rev"],
            label=f"rev-{dist_name}-{p}",
        )
        out = run_forall(n, p, dist_mk, [loop], {"A": init, "B": np.zeros(n)})["B"]
        np.testing.assert_allclose(out, init[::-1])

    def test_indirect_permutation(self, dist_name, dist_mk, p):
        """B[i] := A[perm[i]] — data-dependent subscript (inspector path)."""
        n = 29
        rng = np.random.default_rng(7)
        perm = rng.permutation(n).astype(np.int64)
        init = rng.random(n)
        loop = Forall(
            index_range=(0, n - 1),
            on=OnOwner("B"),
            reads=[IndirectRead("A", table="perm", name="g")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["g"].values[:, 0],
            label=f"perm-{dist_name}-{p}",
        )
        out = run_forall(
            n, p, dist_mk, [loop], {"A": init, "B": np.zeros(n), "perm": perm}
        )["B"]
        np.testing.assert_allclose(out, init[perm])

    def test_strided_read(self, dist_name, dist_mk, p):
        """B[i] := A[2i] for i < n/2 — a scaling affine subscript."""
        n = 24
        init = np.arange(float(n))
        loop = Forall(
            index_range=(0, n // 2 - 1),
            on=OnOwner("B"),
            reads=[AffineRead("A", Affine(2, 0), name="even")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["even"],
            label=f"stride-{dist_name}-{p}",
        )
        out = run_forall(n, p, dist_mk, [loop], {"A": init, "B": np.zeros(n)})["B"]
        expected = np.zeros(n)
        expected[: n // 2] = init[::2]
        np.testing.assert_allclose(out, expected)

    def test_two_loops_chained(self, dist_name, dist_mk, p):
        """Loop 2 reads what loop 1 wrote (sequential forall semantics)."""
        n = 16
        init = np.arange(float(n))
        double = Forall(
            index_range=(0, n - 1),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["a"] * 2,
            label=f"dbl-{dist_name}-{p}",
        )
        shift = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["nxt"],
            label=f"shift2-{dist_name}-{p}",
        )
        out = run_forall(n, p, dist_mk, [double, shift], {"A": init})["A"]
        doubled = init * 2
        expected = doubled.copy()
        expected[:-1] = doubled[1:]
        np.testing.assert_allclose(out, expected)


class TestStrategyEquivalence:
    """Compile-time and run-time analysis must produce identical results
    (the paper's 'common framework for run-time and compile-time
    resolution')."""

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("dist_name,dist_mk",
                             [("block", lambda n, p: Block()),
                              ("cyclic", lambda n, p: Cyclic())])
    def test_same_result_both_strategies(self, p, dist_name, dist_mk):
        n = 40
        init = np.cos(np.arange(n))

        def mkloop(tag):
            return Forall(
                index_range=(1, n - 2),
                on=OnOwner("A"),
                reads=[
                    AffineRead("A", Affine(1, -1), name="lo"),
                    AffineRead("A", Affine(1, 1), name="hi"),
                ],
                writes=[AffineWrite("A")],
                kernel=lambda iters, ops: 0.5 * (ops["lo"] + ops["hi"]),
                label=f"streq-{tag}-{dist_name}-{p}",
            )

        out_ct = run_forall(n, p, dist_mk, [mkloop("ct")], {"A": init},
                            force=Strategy.COMPILE_TIME)["A"]
        out_rt = run_forall(n, p, dist_mk, [mkloop("rt")], {"A": init},
                            force=Strategy.RUNTIME)["A"]
        np.testing.assert_array_equal(out_ct, out_rt)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_schedules_structurally_identical(self, p):
        """The closed-form schedule must match the inspector's: same exec
        split, same in/out records, same buffer layout."""
        from repro.analysis.closedform import build_closed_form_schedule
        from repro.runtime.inspector import run_inspector
        from repro.machine.engine import Engine
        from repro.machine.topology import FullyConnected

        n = 37
        ctx = KaliContext(p, machine=IDEAL)
        a = ctx.array("A", n, dist=[Block()])
        a.set(np.arange(float(n)))
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["nxt"],
            label=f"structeq-{p}",
        )

        schedules = {}

        def program(kr):
            ct = build_closed_form_schedule(kr.rank, loop, kr.env)
            rt = yield from run_inspector(kr.rank, loop, kr.env)
            schedules[kr.id] = (ct, rt)

        ctx.run(program)
        for rank, (ct, rt) in schedules.items():
            np.testing.assert_array_equal(ct.exec_local, rt.exec_local)
            np.testing.assert_array_equal(ct.exec_nonlocal, rt.exec_nonlocal)
            assert ct.arrays.keys() == rt.arrays.keys()
            for name in ct.arrays:
                assert ct.arrays[name].in_records == rt.arrays[name].in_records
                assert ct.arrays[name].out_records == rt.arrays[name].out_records


class TestInOutDuality:
    """in(p,q) == out(q,p): what p receives from q is exactly what q sends
    to p — the defining identity of §3.1."""

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("dist_name,dist_mk", DISTS)
    def test_duality_via_inspector(self, p, dist_name, dist_mk):
        from repro.runtime.inspector import run_inspector

        n = 33
        rng = np.random.default_rng(3)
        perm = rng.integers(0, n, size=n).astype(np.int64)
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[dist_mk(n, p)]).set(np.arange(float(n)))
        ctx.array("B", n, dist=[dist_mk(n, p)]).set(np.zeros(n))
        ctx.array("perm", n, dist=[dist_mk(n, p)], dtype=np.int64).set(perm)
        loop = Forall(
            index_range=(0, n - 1),
            on=OnOwner("B"),
            reads=[IndirectRead("A", table="perm", name="g")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["g"].values[:, 0],
            label=f"dual-{dist_name}-{p}",
        )
        schedules = {}

        def program(kr):
            schedules[kr.id] = (yield from run_inspector(kr.rank, loop, kr.env))

        ctx.run(program)
        for me in range(p):
            for q in range(p):
                if me == q:
                    continue
                ins = [
                    (r.low, r.high)
                    for r in schedules[me].arrays["A"].ranges_for_peer_in(q)
                ]
                outs = [
                    (r.low, r.high)
                    for r in schedules[q].arrays["A"].ranges_for_peer_out(me)
                ]
                assert ins == outs, f"in({me},{q}) != out({q},{me})"


class TestSemanticsEdgeCases:
    def test_empty_range(self):
        n = 8
        loop = Forall(
            index_range=(5, 4),  # empty
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["a"],
            label="empty-range",
        )
        init = np.arange(float(n))
        out = run_forall(n, 4, lambda n, p: Block(), [loop], {"A": init})["A"]
        np.testing.assert_array_equal(out, init)

    def test_single_iteration(self):
        n = 8
        loop = Forall(
            index_range=(3, 3),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["nxt"] * 10,
            label="single-iter",
        )
        init = np.arange(float(n))
        out = run_forall(n, 4, lambda n, p: Block(), [loop], {"A": init})["A"]
        expected = init.copy()
        expected[3] = init[4] * 10
        np.testing.assert_array_equal(out, expected)

    def test_out_of_bounds_read_rejected(self):
        n = 8
        loop = Forall(
            index_range=(0, n - 1),  # A[i+1] runs off the end
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["nxt"],
            label="oob",
        )
        from repro.errors import AnalysisError

        with pytest.raises((InspectorError, AnalysisError)):
            run_forall(n, 2, lambda n, p: Block(), [loop], {"A": np.zeros(n)})

    def test_remote_write_rejected(self):
        """Writing A[i+1] under on A[i].loc violates owner-computes."""
        n = 8
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A", Affine(1, 1))],
            kernel=lambda iters, ops: ops["a"],
            label="remote-write",
        )
        from repro.errors import AnalysisError

        with pytest.raises((InspectorError, AnalysisError)):
            run_forall(n, 2, lambda n, p: Block(), [loop], {"A": np.zeros(n)})

    def test_on_processor_clause(self):
        """Direct processor naming: iterations dealt round-robin."""
        n = 12
        p = 4
        loop = Forall(
            index_range=(0, n - 1),
            on=OnProcessor(Affine(1, 0)),
            reads=[IndirectRead("A", table="idx", name="g")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["g"].values[:, 0] + 1,
            label="onproc",
        )
        init = np.arange(float(n))
        idx = np.arange(n, dtype=np.int64)[::-1].copy()
        # OnProcessor(i) places iteration i on proc i mod P; write B[i] must
        # be owned by that proc -> use a cyclic distribution for B.
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Cyclic()]).set(init)
        ctx.array("B", n, dist=[Cyclic()]).set(np.zeros(n))
        ctx.array("idx", n, dist=[Cyclic()], dtype=np.int64).set(idx)

        def program(kr):
            yield from kr.forall(loop)

        ctx.run(program)
        np.testing.assert_allclose(ctx.arrays["B"].data, init[::-1] + 1)

    def test_kernel_dict_output_multiple_writes(self):
        n = 8
        loop = Forall(
            index_range=(0, n - 1),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A"), AffineWrite("B")],
            kernel=lambda iters, ops: {"A": ops["a"] + 1, "B": ops["a"] * 2},
            label="multiwrite",
        )
        init = np.arange(float(n))
        out = run_forall(n, 2, lambda n, p: Block(), [loop],
                         {"A": init, "B": np.zeros(n)})
        np.testing.assert_array_equal(out["A"], init + 1)
        np.testing.assert_array_equal(out["B"], init * 2)

    def test_forall_validation(self):
        with pytest.raises(KaliError):
            Forall(index_range=(0, 1), on=OnOwner("A"), reads=[],
                   writes=[], kernel=lambda i, o: i)
        with pytest.raises(KaliError):
            Forall(index_range=(0, 1), on="bogus", reads=[],
                   writes=[AffineWrite("A")], kernel=lambda i, o: i)
