"""Hypothesis property tests for the mesh partitioners.

:func:`coordinate_bisection` feeds ``Custom`` distributions and the
tuner's RCB candidates, so its owner maps must be *total* (every point
owned, every owner in range) and *exactly balanced* (part sizes differ
by at most one — exact apportionment, not per-level rounding) for any
processor count, including non-powers-of-two, ``nprocs > n``, and
degenerate geometry (coincident points, collinear points).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Custom
from repro.meshes.partition import (
    block_partition,
    coordinate_bisection,
    edge_cut,
    partition_imbalance,
)

nprocs_st = st.integers(1, 17)
coords = st.floats(-100.0, 100.0, allow_nan=False, width=32)


@st.composite
def point_sets(draw):
    """(n, 2) float points; duplicates drawn deliberately often."""
    n = draw(st.integers(1, 120))
    if draw(st.booleans()):
        # coordinates from a tiny alphabet: guaranteed duplicate planes
        vals = st.sampled_from([0.0, 1.0, 2.0])
    else:
        vals = coords
    pts = draw(st.lists(st.tuples(vals, vals), min_size=n, max_size=n))
    return np.array(pts, dtype=float)


def assert_total_and_balanced(owners, n, nprocs):
    assert owners.shape == (n,)
    assert owners.min() >= 0 and owners.max() < nprocs
    counts = np.bincount(owners, minlength=nprocs)
    base, extra = divmod(n, nprocs)
    # exact apportionment: `extra` parts of base+1, the rest of base
    assert sorted(counts.tolist(), reverse=True) == \
        [base + 1] * extra + [base] * (nprocs - extra)


class TestCoordinateBisection:
    @settings(max_examples=60, deadline=None)
    @given(points=point_sets(), nprocs=nprocs_st)
    def test_total_and_exactly_balanced(self, points, nprocs):
        owners = coordinate_bisection(points, nprocs)
        assert_total_and_balanced(owners, len(points), nprocs)

    @settings(max_examples=30, deadline=None)
    @given(points=point_sets(), nprocs=nprocs_st)
    def test_deterministic(self, points, nprocs):
        a = coordinate_bisection(points, nprocs)
        b = coordinate_bisection(points.copy(), nprocs)
        assert np.array_equal(a, b)

    @settings(max_examples=30, deadline=None)
    @given(points=point_sets(), nprocs=nprocs_st)
    def test_owner_map_binds_as_custom_distribution(self, points, nprocs):
        """The map must be accepted verbatim by the distribution layer."""
        from repro.distributions.multidim import ArrayDistribution
        from repro.distributions.procs import ProcessorArray

        n = len(points)
        owners = coordinate_bisection(points, nprocs)
        dist = ArrayDistribution((n,), [Custom(owners)],
                                 ProcessorArray(nprocs))
        assert np.array_equal(dist.dims[0].owner(np.arange(n)), owners)

    def test_all_points_coincident(self):
        points = np.zeros((10, 2))
        owners = coordinate_bisection(points, 4)
        assert_total_and_balanced(owners, 10, 4)

    def test_more_procs_than_points(self):
        owners = coordinate_bisection(np.random.default_rng(0).random((3, 2)),
                                      8)
        assert_total_and_balanced(owners, 3, 8)

    def test_rejects_bad_shapes_and_procs(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            coordinate_bisection(np.zeros((4, 3)), 2)
        with pytest.raises(ValueError, match="at least one"):
            coordinate_bisection(np.zeros((4, 2)), 0)

    def test_separated_clusters_split_cleanly(self):
        """Two well-separated clusters on 2 procs: zero cut edges between
        clusters means RCB found the obvious partition."""
        rng = np.random.default_rng(1)
        left = rng.random((20, 2))
        right = rng.random((20, 2)) + [10.0, 0.0]
        points = np.vstack([left, right])
        owners = coordinate_bisection(points, 2)
        assert len(set(owners[:20])) == 1
        assert len(set(owners[20:])) == 1
        assert owners[0] != owners[-1]


class TestBlockPartition:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(0, 200), nprocs=nprocs_st)
    def test_total_monotone_in_range(self, n, nprocs):
        owners = block_partition(n, nprocs)
        assert owners.shape == (n,)
        if n:
            assert owners.min() >= 0 and owners.max() < nprocs
            assert np.all(np.diff(owners) >= 0)  # contiguous blocks

    def test_imbalance_of_balanced_map_is_one(self):
        owners = coordinate_bisection(np.random.default_rng(2).random((64, 2)),
                                      8)
        assert partition_imbalance(owners, 8) == 1.0

    def test_edge_cut_counts_each_edge_once(self):
        # a 2-node mesh with one symmetric edge, split across procs
        adj = np.array([[1], [0]])
        count = np.array([1, 1])
        assert edge_cut(adj, count, np.array([0, 1])) == 1
        assert edge_cut(adj, count, np.array([0, 0])) == 0
