"""The warm rank pool: reuse, reset isolation, crash rebuild, fd hygiene.

The pool's correctness argument is the mp backend's, extended across
jobs: every pooled run must be indistinguishable — bit-identical arrays,
identical per-rank communication counters — from a fork-per-run mp run
and from the simulator, *including* the second and later jobs on a reused
mesh (the reset protocol is what makes that non-trivial).  On top of
that the pool makes two resource promises worth testing mechanically:
crashed ranks are replaced (by mesh rebuild) without killing the pool,
and a hundred sequential jobs leak zero file descriptors.
"""

import os
import gc

import numpy as np
import pytest

from tests.differential import (
    DifferentialPair,
    assert_arrays_identical,
    assert_counters_identical,
)
from repro.apps.jacobi import build_jacobi
from repro.errors import DeadlockError, EngineError
from repro.machine.api import Count, Recv, Send
from repro.machine.cost import NCUBE7
from repro.machine.mp import MpEngine
from repro.meshes.regular import five_point_grid
from repro.serve import shipping
from repro.serve.pool import RankPool

pytestmark = pytest.mark.timeout(180)


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def ring_program(rank):
    data = np.arange(4, dtype=np.float64) + rank.id
    yield Send((rank.id + 1) % rank.size, data, tag=5)
    msg = yield Recv(source=(rank.id - 1) % rank.size, tag=5)
    yield Count("ring_rounds", 1)
    return float(msg.payload.sum())


def crash_on_rank_1(rank):
    if rank.id == 1:
        raise RuntimeError("boom")
    yield Count("survived", 1)
    return rank.id


def leave_unreceived(rank):
    # Rank 0 sends a message nobody ever receives: the reset barrier must
    # discard it so the *next* job's wildcard receives cannot see it.
    if rank.id == 0:
        yield Send(1, "stale", tag=77)
    return rank.id


def wildcard_recv_after_send(rank):
    if rank.id == 0:
        yield Send(1, "fresh", tag=3)
        return None
    msg = yield Recv()
    return msg.payload


def stuck_rank(rank):
    # Everyone waits on a message nobody ever sends: a true deadlock.
    peer = (rank.id + 1) % rank.size
    yield Recv(source=peer, tag=99)


class TestPoolSemantics:
    def test_raw_program_values_and_reuse(self):
        with RankPool(3, timeout=30) as pool:
            first = pool.run(ring_program, NCUBE7)
            assert pool.last_pool_reused is False
            second = pool.run(ring_program, NCUBE7)
            assert pool.last_pool_reused is True
            assert pool.meshes_built == 1
            for res in (first, second):
                expected = [
                    float((np.arange(4) + (r - 1) % 3).sum()) for r in range(3)
                ]
                assert res.values == expected
                assert res.counter_sum("ring_rounds") == 3
                assert all(s.messages_sent == 1 for s in res.stats)

    def test_job_isolation_across_reset(self):
        # Job N's undelivered message must not satisfy job N+1's wildcard.
        with RankPool(2, timeout=30) as pool:
            res1 = pool.run(leave_unreceived, NCUBE7)
            # the discard is attributed to the job that left it behind
            assert res1.counter_sum("undelivered_messages") == 1
            res2 = pool.run(wildcard_recv_after_send, NCUBE7)
            assert res2.values[1] == "fresh"
            assert res2.counter_sum("undelivered_messages") == 0

    def test_crash_condemns_mesh_and_rebuilds(self):
        with RankPool(2, timeout=30) as pool:
            pool.run(ring_program, NCUBE7)
            with pytest.raises(EngineError, match="boom"):
                pool.run(crash_on_rank_1, NCUBE7)
            # replacement of the crashed rank = mesh rebuild on next run
            res = pool.run(ring_program, NCUBE7)
            assert res.counter_sum("ring_rounds") == 2
            assert pool.rebuilds == 1
            assert pool.meshes_built == 2
            assert pool.last_pool_reused is False

    def test_watchdog_fails_job_not_pool(self):
        with RankPool(2, timeout=30) as pool:
            with pytest.raises(DeadlockError):
                pool.run(stuck_rank, NCUBE7, timeout=1.0)
            res = pool.run(ring_program, NCUBE7)
            assert res.counter_sum("ring_rounds") == 2
            assert pool.rebuilds == 1

    def test_check_health_pings_and_rebuilds(self):
        with RankPool(2, timeout=30) as pool:
            report = pool.check_health()
            assert report == {"healthy": True, "alive": [0, 1],
                              "rebuilt": False, "warm": False}
            pool.run(ring_program, NCUBE7)
            report = pool.check_health()
            assert report["healthy"] and report["warm"]
            assert not report["rebuilt"]
            # kill a rank behind the pool's back: health check notices
            # and rebuilds the mesh
            pool._procs[1].terminate()
            pool._procs[1].join(5.0)
            report = pool.check_health()
            assert report["healthy"] is False
            assert report["alive"] == [0]
            assert report["rebuilt"] is True
            res = pool.run(ring_program, NCUBE7)
            assert res.counter_sum("ring_rounds") == 2

    def test_closed_pool_rejects_jobs(self):
        pool = RankPool(2)
        pool.close()
        with pytest.raises(EngineError, match="closed"):
            pool.run(ring_program, NCUBE7)
        pool.close()  # idempotent

    def test_validation(self):
        with pytest.raises(EngineError):
            RankPool(0)
        with pytest.raises(EngineError):
            RankPool(2, timeout=0)
        with RankPool(2) as pool:
            with pytest.raises(EngineError, match="length"):
                pool.run(ring_program, NCUBE7, args=[1])

    def test_args_and_trace(self):
        def with_arg(rank):
            yield Count("args_seen", rank.arg)
            return rank.arg

        with RankPool(2, timeout=30) as pool:
            res = pool.run(with_arg, NCUBE7, args=[10, 20], trace=True)
            assert res.values == [10, 20]
            kinds = {e.kind for e in res.trace}
            assert "finish" in kinds


class TestPoolDifferential:
    """Pooled jacobi vs fork-per-run vs sim: the cold equivalence class
    (no disk cache anywhere — disk hits legitimately change inspector
    message counts, so warm-class comparisons live in test_serve_cache)."""

    def _build(self, pool=None, backend="sim"):
        mesh = five_point_grid(10, 10)
        init = np.random.default_rng(42).random(mesh.n)
        return build_jacobi(mesh, 4, initial=init, backend=backend, pool=pool)

    def test_pool_matches_sim_and_fork(self):
        sim_prog = self._build()
        sim_res = sim_prog.run(4)
        fork_prog = self._build(backend="mp")
        fork_res = fork_prog.run(4)
        with RankPool(4, timeout=60) as pool:
            pool_prog1 = self._build(pool=pool)
            pool_res1 = pool_prog1.run(4)
            pool_prog2 = self._build(pool=pool)
            pool_res2 = pool_prog2.run(4)
            assert pool.last_pool_reused is True

        for other_prog, other_res in (
            (fork_prog, fork_res),
            (pool_prog1, pool_res1),
            (pool_prog2, pool_res2),  # job 2 ran on the reused mesh
        ):
            pair = DifferentialPair(
                sim_result=sim_res,
                mp_result=other_res,
                sim_arrays={n: d.data.copy()
                            for n, d in sim_prog.ctx.arrays.items()},
                mp_arrays={n: d.data.copy()
                           for n, d in other_prog.ctx.arrays.items()},
            )
            assert_arrays_identical(pair)
            assert_counters_identical(pair)

    def test_pool_backend_is_mp(self):
        with RankPool(4, timeout=60) as pool:
            prog = self._build(pool=pool)
            assert prog.ctx.backend == "mp"
            assert prog.ctx.pool is pool

    def test_pool_size_mismatch_rejected(self):
        from repro.core.context import KaliContext
        from repro.errors import KaliError

        with RankPool(2) as pool:
            with pytest.raises(KaliError, match="world size|ranks"):
                KaliContext(4, pool=pool)


class TestFdHygiene:
    def test_pool_100_jobs_leak_no_fds(self):
        with RankPool(2, timeout=30) as pool:
            pool.run(ring_program, NCUBE7)  # settle: mesh + pipes exist
            gc.collect()
            baseline = _fd_count()
            for _ in range(100):
                pool.run(ring_program, NCUBE7)
            gc.collect()
            assert _fd_count() <= baseline
            assert pool.jobs_done == 101
        gc.collect()

    def test_fork_per_run_releases_everything(self):
        engine = MpEngine(NCUBE7, nranks=2, timeout=30)
        engine.run(ring_program)  # warm any lazy imports/loggers
        gc.collect()
        baseline = _fd_count()
        for _ in range(5):
            engine.run(ring_program)
        gc.collect()
        assert _fd_count() <= baseline

    def test_pool_close_returns_to_pre_pool_fd_count(self):
        gc.collect()
        baseline = _fd_count()
        pool = RankPool(3, timeout=30)
        pool.run(ring_program, NCUBE7)
        assert _fd_count() > baseline  # mesh + control pipes are open
        pool.close()
        gc.collect()
        assert _fd_count() <= baseline


class TestShipping:
    def test_importable_function_ships_by_reference(self):
        data = shipping.dumps(ring_program)
        fn = shipping.loads(data)
        assert fn is ring_program

    def test_closure_ships_with_cells(self):
        bias = 7

        def kernel(x):
            return x + bias

        fn = shipping.loads(shipping.dumps(kernel))
        assert fn(1) == 8

    def test_lambda_over_numpy_ships(self):
        coef = np.arange(3, dtype=np.float64)
        fn = shipping.loads(shipping.dumps(lambda x: float((coef * x).sum())))
        assert fn(2.0) == pytest.approx(6.0)

    def test_recursive_closure_ships(self):
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        fn = shipping.loads(shipping.dumps(fib))
        assert fn(10) == 55

    def test_unpicklable_capture_raises_shipping_error(self):
        fh = open("/dev/null")
        try:
            with pytest.raises(shipping.ShippingError):
                shipping.dumps(lambda: fh.read())
        finally:
            fh.close()
