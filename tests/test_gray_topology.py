"""Tests for Gray codes and machine topologies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.machine.topology import FullyConnected, Hypercube, Mesh2D
from repro.util.gray import (
    gray_decode,
    gray_encode,
    hamming_distance,
    hypercube_neighbors,
    is_power_of_two,
    log2_exact,
    ring_embedding,
)


class TestGray:
    def test_first_codes(self):
        assert [gray_encode(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(0, 1 << 20))
    def test_roundtrip(self, n):
        assert gray_decode(gray_encode(n)) == n

    @given(st.integers(0, 1 << 20))
    def test_adjacent_codes_differ_by_one_bit(self, n):
        assert hamming_distance(gray_encode(n), gray_encode(n + 1)) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)

    def test_hypercube_neighbors(self):
        assert sorted(hypercube_neighbors(0, 3)) == [1, 2, 4]
        assert sorted(hypercube_neighbors(5, 3)) == [1, 4, 7]

    def test_neighbors_out_of_cube(self):
        with pytest.raises(ValueError):
            hypercube_neighbors(8, 3)

    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << k) for k in range(12))
        assert not any(is_power_of_two(x) for x in (0, 3, 5, 6, 7, 9, 12, -4))

    def test_log2_exact(self):
        assert log2_exact(128) == 7
        with pytest.raises(ValueError):
            log2_exact(96)

    def test_ring_embedding_neighbours(self):
        ring = ring_embedding(8, 3)
        for a, b in zip(ring, ring[1:]):
            assert hamming_distance(a, b) == 1
        assert hamming_distance(ring[-1], ring[0]) == 1  # power-of-two wrap

    def test_ring_too_big(self):
        with pytest.raises(ValueError):
            ring_embedding(9, 3)


class TestHypercube:
    def test_sizes(self):
        for d in range(0, 8):
            h = Hypercube(1 << d)
            assert h.dimension == d
            assert h.diameter() == d

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(24)

    def test_hops_is_hamming(self):
        h = Hypercube(16)
        assert h.hops(0, 15) == 4
        assert h.hops(5, 5) == 0
        assert h.hops(0b1010, 0b1001) == 2

    def test_neighbors_count(self):
        h = Hypercube(32)
        for node in range(32):
            nbrs = h.neighbors(node)
            assert len(nbrs) == 5
            assert all(h.hops(node, m) == 1 for m in nbrs)

    def test_bad_node(self):
        with pytest.raises(TopologyError):
            Hypercube(8).hops(0, 8)


class TestMesh2D:
    def test_hops_manhattan(self):
        m = Mesh2D(4, 5)
        assert m.hops(0, m.size - 1) == 3 + 4
        assert m.diameter() == 7

    def test_neighbors_interior(self):
        m = Mesh2D(3, 3)
        assert sorted(m.neighbors(4)) == [1, 3, 5, 7]

    def test_neighbors_corner(self):
        m = Mesh2D(3, 3)
        assert sorted(m.neighbors(0)) == [1, 3]

    def test_bad_shape(self):
        with pytest.raises(TopologyError):
            Mesh2D(0, 3)


class TestFullyConnected:
    def test_hops(self):
        f = FullyConnected(5)
        assert f.hops(0, 4) == 1
        assert f.hops(2, 2) == 0
        assert f.diameter() == 1

    def test_single_node(self):
        assert FullyConnected(1).diameter() == 0

    def test_neighbors(self):
        f = FullyConnected(4)
        assert sorted(f.neighbors(1)) == [0, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            FullyConnected(0)
