"""Protocol tests for the asyncio front end.

The front end shares :meth:`JobServer.handle_request` with the blocking
front, so most protocol semantics are pinned elsewhere; what these tests
own is the async-specific surface: many clients multiplexed on one event
loop, submits awaited without a thread per connection, structured SHED
replies, malformed-input robustness, and clean shutdown (socket file
gone, loop exited, fleet closed).
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.serve.frontend import serve_async
from repro.serve.server import JobServer, ServeClient


@pytest.fixture()
def fleet(tmp_path):
    sock = str(tmp_path / "front.sock")
    server = JobServer(2, shards=2, max_pending=64)
    thread = threading.Thread(target=serve_async, args=(server, sock),
                              daemon=True)
    thread.start()
    client = ServeClient(sock, timeout=120.0)
    for _ in range(200):
        try:
            client.request("ping")
            break
        except (FileNotFoundError, ConnectionRefusedError, OSError):
            time.sleep(0.05)
    else:
        pytest.fail("async front end never came up")
    yield server, client, sock
    try:
        client.request("stop")
    except Exception:
        pass
    thread.join(60)
    assert not thread.is_alive()


def test_ping_reports_fleet_shape(fleet):
    _, client, _ = fleet
    reply = client.request("ping")
    assert reply["ok"] and reply["nranks"] == 2 and reply["shards"] == 2


def test_submit_roundtrip_and_record_fields(fleet):
    _, client, _ = fleet
    reply = client.request("submit", kind="jacobi",
                           spec={"rows": 8, "sweeps": 2}, tenant="t1")
    assert reply["ok"]
    job = reply["job"]
    assert job["tenant"] == "t1"
    assert job["shard"].startswith("shard-")
    assert job["retries"] == 0
    assert "solution_sha256" in job["summary"]


def test_many_clients_multiplex_on_one_loop(fleet):
    _, client, _ = fleet
    results, errors = [], []

    def one(i):
        try:
            conn = client.connect()
            try:
                for j in range(3):
                    reply = conn.request(
                        "submit", kind="jacobi",
                        spec={"rows": 8 + i % 2, "sweeps": 1, "seed": j})
                    assert reply["ok"], reply
                    results.append(reply["job"]["id"])
            finally:
                conn.close()
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not errors
    assert len(results) == 18
    assert len(set(results)) == 18  # every submit got its own job


def test_shed_reply_is_structured(fleet):
    server, client, _ = fleet
    server.tenants["meek"] = {"quota": 0}
    reply = client.request("submit", kind="jacobi", spec={"rows": 8},
                           tenant="meek")
    assert reply["ok"] is False
    assert reply["shed"] is True
    assert reply["reason"] == "tenant-quota"
    assert reply["tenant"] == "meek"
    assert reply["limit"] == 0


def test_scale_and_stat_through_the_front(fleet):
    _, client, _ = fleet
    assert client.request("scale", shards=3)["shards"] == 3
    stat = client.request("stat")["stat"]
    assert [e["name"] for e in stat["shards"]] == \
        ["shard-0", "shard-1", "shard-2"]
    assert client.request("scale", shards=2)["shards"] == 2
    metrics = client.request("metrics")["metrics"]
    assert metrics["serve.shards"] == 2


def test_malformed_and_unknown_requests_keep_the_connection(fleet):
    _, client, sock = fleet
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(30)
    raw.connect(sock)
    with raw, raw.makefile("rw", encoding="utf-8") as fh:
        fh.write("this is not json\n")
        fh.flush()
        reply = json.loads(fh.readline())
        assert reply["ok"] is False and "JSONDecodeError" in reply["error"]
        fh.write(json.dumps({"cmd": "no-such-cmd"}) + "\n")
        fh.flush()
        reply = json.loads(fh.readline())
        assert reply["ok"] is False and "unknown command" in reply["error"]
        # The connection survived both errors.
        fh.write(json.dumps({"cmd": "ping"}) + "\n")
        fh.flush()
        assert json.loads(fh.readline())["ok"]


def test_unknown_kind_structured_over_async_front(fleet):
    # Regression: the asyncio front must return the same structured
    # unknown-kind rejection as the blocking front, not a stringified
    # exception from the generic error wrapper.
    _, client, _ = fleet
    bad = client.request("submit", kind="no-such-kind")
    assert bad["ok"] is False and bad["unknown_kind"] is True
    assert bad["kind"] == "no-such-kind"
    assert "jacobi" in bad["registered"]
    missing = client.request("submit")
    assert missing["ok"] is False and missing["unknown_kind"] is True
    assert missing["kind"] is None
    assert client.request("ping")["ok"]


def test_stop_tears_everything_down(tmp_path):
    sock = str(tmp_path / "down.sock")
    server = JobServer(2, shards=2)
    thread = threading.Thread(target=serve_async, args=(server, sock),
                              daemon=True)
    thread.start()
    client = ServeClient(sock, timeout=60.0)
    for _ in range(200):
        try:
            client.request("ping")
            break
        except (FileNotFoundError, ConnectionRefusedError, OSError):
            time.sleep(0.05)
    reply = client.request("stop")
    assert reply["ok"] and reply["stopping"]
    thread.join(60)
    assert not thread.is_alive()
    assert not os.path.exists(sock)
    # The fleet is closed: every queue refuses new work.
    assert all(s.queue.closed for s in server.shards)
