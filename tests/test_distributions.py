"""Tests for the distribution machinery: block, cyclic, block-cyclic,
replicated, custom — the paper's local() functions and their inverses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    ArrayDistribution,
    Block,
    BlockCyclic,
    Custom,
    Cyclic,
    ProcessorArray,
    Replicated,
)
from repro.errors import DistributionError


def bound(spec, n, p):
    return spec.bind(n, p)


ALL_SPECS = [
    ("block", lambda: Block()),
    ("cyclic", lambda: Cyclic()),
    ("bc1", lambda: BlockCyclic(1)),
    ("bc3", lambda: BlockCyclic(3)),
    ("bc8", lambda: BlockCyclic(8)),
]


class TestProcessorArray:
    def test_1d(self):
        p = ProcessorArray(8)
        assert p.size == 8 and p.ndim == 1
        assert p.rank_of((3,)) == 3
        assert p.coords_of(5) == (5,)

    def test_2d_row_major(self):
        p = ProcessorArray((2, 4))
        assert p.size == 8
        assert p.rank_of((1, 2)) == 6
        assert p.coords_of(6) == (1, 2)

    def test_roundtrip(self):
        p = ProcessorArray((3, 5))
        for r in range(p.size):
            assert p.rank_of(p.coords_of(r)) == r

    def test_bad_coord(self):
        with pytest.raises(DistributionError):
            ProcessorArray((2, 2)).rank_of((2, 0))

    def test_bad_shape(self):
        with pytest.raises(DistributionError):
            ProcessorArray((0, 4))

    def test_request_picks_largest(self):
        p = ProcessorArray.request(available=100, max_procs=64)
        assert p.size == 64

    def test_request_limited_by_available(self):
        p = ProcessorArray.request(available=12)
        assert p.size == 12

    def test_request_respects_minimum(self):
        with pytest.raises(DistributionError):
            ProcessorArray.request(available=3, min_procs=8)

    def test_request_2d_near_square(self):
        p = ProcessorArray.request(available=36, ndim=2)
        assert p.shape == (6, 6)

    def test_eq_hash(self):
        assert ProcessorArray(4) == ProcessorArray((4,))
        assert ProcessorArray((2, 2)) != ProcessorArray(4)


class TestBlock:
    def test_paper_example(self):
        """local_A(p) = contiguous blocks of ceil(N/P)."""
        d = bound(Block(), 10, 3)  # blocks of 4: [0-3], [4-7], [8-9]
        assert d.local_indices(0).tolist() == [0, 1, 2, 3]
        assert d.local_indices(1).tolist() == [4, 5, 6, 7]
        assert d.local_indices(2).tolist() == [8, 9]

    def test_owner(self):
        d = bound(Block(), 10, 3)
        assert [d.owner(i) for i in range(10)] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_owner_vectorised(self):
        d = bound(Block(), 100, 4)
        idx = np.arange(100)
        np.testing.assert_array_equal(d.owner(idx), idx // 25)

    def test_local_global_roundtrip(self):
        d = bound(Block(), 17, 4)
        for i in range(17):
            p = d.owner(i)
            assert d.to_global(p, d.to_local(i)) == i

    def test_more_procs_than_elements(self):
        d = bound(Block(), 3, 8)
        assert d.local_count(0) == 1
        assert d.local_count(3) == 0
        assert d.local_count(7) == 0

    def test_out_of_range(self):
        d = bound(Block(), 10, 2)
        with pytest.raises(DistributionError):
            d.owner(10)
        with pytest.raises(DistributionError):
            d.owner(-1)

    def test_local_section_matches_indices(self):
        d = bound(Block(), 23, 5)
        for p in range(5):
            np.testing.assert_array_equal(
                d.local_section(p).to_array(), d.local_indices(p)
            )


class TestCyclic:
    def test_paper_example(self):
        """local_B(p) = {i : i ≡ p (mod P)} — the paper's 10-processor
        example, 0-based."""
        d = bound(Cyclic(), 100, 10)
        assert d.local_indices(0).tolist() == list(range(0, 100, 10))
        assert d.local_indices(9).tolist() == list(range(9, 100, 10))

    def test_owner_mod(self):
        d = bound(Cyclic(), 50, 7)
        idx = np.arange(50)
        np.testing.assert_array_equal(d.owner(idx), idx % 7)

    def test_packed_local_storage(self):
        d = bound(Cyclic(), 20, 4)
        assert d.to_local(0) == 0
        assert d.to_local(4) == 1
        assert d.to_local(17) == 4

    def test_roundtrip(self):
        d = bound(Cyclic(), 23, 4)
        for i in range(23):
            assert d.to_global(d.owner(i), d.to_local(i)) == i

    def test_uneven_counts(self):
        d = bound(Cyclic(), 10, 4)
        assert [d.local_count(p) for p in range(4)] == [3, 3, 2, 2]


class TestBlockCyclic:
    def test_degenerates_to_cyclic(self):
        bc = bound(BlockCyclic(1), 30, 4)
        cy = bound(Cyclic(), 30, 4)
        for p in range(4):
            np.testing.assert_array_equal(bc.local_indices(p), cy.local_indices(p))

    def test_blocks_dealt_round_robin(self):
        d = bound(BlockCyclic(2), 12, 3)
        assert d.local_indices(0).tolist() == [0, 1, 6, 7]
        assert d.local_indices(1).tolist() == [2, 3, 8, 9]
        assert d.local_indices(2).tolist() == [4, 5, 10, 11]

    def test_short_last_block(self):
        d = bound(BlockCyclic(4), 10, 2)
        # blocks: [0-3]->p0, [4-7]->p1, [8-9]->p0
        assert d.local_indices(0).tolist() == [0, 1, 2, 3, 8, 9]
        assert d.local_indices(1).tolist() == [4, 5, 6, 7]
        assert d.local_count(0) == 6
        assert d.local_count(1) == 4

    def test_roundtrip(self):
        d = bound(BlockCyclic(3), 25, 4)
        for i in range(25):
            assert d.to_global(d.owner(i), d.to_local(i)) == i

    def test_bad_block_size(self):
        with pytest.raises(DistributionError):
            BlockCyclic(0)

    def test_section_form_detection(self):
        assert bound(BlockCyclic(1), 100, 4).has_section_form()
        assert not bound(BlockCyclic(3), 100, 4).has_section_form()
        # one block per proc -> single sections again
        assert bound(BlockCyclic(32), 100, 4).has_section_form()


class TestReplicated:
    def test_everyone_stores_everything(self):
        d = bound(Replicated(), 10, 1)
        assert d.local_count(0) == 10
        assert d.local_indices(0).tolist() == list(range(10))

    def test_identity_translation(self):
        d = bound(Replicated(), 10, 1)
        assert d.to_local(7) == 7
        assert d.to_global(0, 7) == 7

    def test_disjoint_check_waived(self):
        bound(Replicated(), 10, 1).check_disjoint_cover()  # no raise


class TestCustom:
    def test_explicit_map(self):
        d = bound(Custom([0, 1, 1, 0, 2]), 5, 3)
        assert d.owner(0) == 0 and d.owner(2) == 1 and d.owner(4) == 2
        assert d.local_indices(0).tolist() == [0, 3]
        assert d.local_indices(1).tolist() == [1, 2]
        assert d.local_indices(2).tolist() == [4]

    def test_packed_offsets(self):
        d = bound(Custom([0, 1, 1, 0, 2]), 5, 3)
        assert d.to_local(0) == 0
        assert d.to_local(3) == 1
        assert d.to_local(2) == 1

    def test_roundtrip(self):
        owner_map = [2, 0, 1, 1, 0, 2, 2, 0]
        d = bound(Custom(owner_map), 8, 3)
        for i in range(8):
            assert d.to_global(d.owner(i), d.to_local(i)) == i

    def test_vectorised_to_local(self):
        d = bound(Custom([0, 1, 1, 0, 2]), 5, 3)
        np.testing.assert_array_equal(
            d.to_local(np.array([0, 1, 2, 3, 4])), [0, 0, 1, 1, 0]
        )

    def test_map_size_mismatch(self):
        with pytest.raises(DistributionError):
            bound(Custom([0, 1]), 5, 2)

    def test_map_bad_proc(self):
        with pytest.raises(DistributionError):
            bound(Custom([0, 5]), 2, 2)

    def test_not_regular(self):
        assert not bound(Custom([0, 0]), 2, 1).is_regular()


class TestBindingErrors:
    def test_unbound_usage_raises(self):
        with pytest.raises(DistributionError):
            Block().owner(0)

    def test_negative_extent(self):
        with pytest.raises(DistributionError):
            Block().bind(-1, 2)

    def test_zero_procs(self):
        with pytest.raises(DistributionError):
            Block().bind(10, 0)

    def test_bind_returns_fresh_object(self):
        spec = Block()
        b1 = spec.bind(10, 2)
        b2 = spec.bind(20, 4)
        assert not spec.bound
        assert b1.extent == 10 and b2.extent == 20


class TestSameLayout:
    def test_same(self):
        assert bound(Block(), 10, 2).same_layout(bound(Block(), 10, 2))
        assert bound(BlockCyclic(3), 10, 2).same_layout(bound(BlockCyclic(3), 10, 2))

    def test_different_kind(self):
        assert not bound(Block(), 10, 2).same_layout(bound(Cyclic(), 10, 2))

    def test_different_params(self):
        assert not bound(BlockCyclic(3), 10, 2).same_layout(bound(BlockCyclic(4), 10, 2))
        assert not bound(Block(), 10, 2).same_layout(bound(Block(), 12, 2))

    def test_custom_maps(self):
        assert bound(Custom([0, 1]), 2, 2).same_layout(bound(Custom([0, 1]), 2, 2))
        assert not bound(Custom([0, 1]), 2, 2).same_layout(bound(Custom([1, 0]), 2, 2))


# --- the paper's §2.2 convention, property-tested over all distributions ------

@pytest.mark.parametrize("name,mk", ALL_SPECS)
@given(n=st.integers(0, 120), p=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_disjoint_cover(name, mk, n, p):
    """local(p) sets partition the index space: disjoint and covering."""
    mk().bind(n, p).check_disjoint_cover()


@pytest.mark.parametrize("name,mk", ALL_SPECS)
@given(n=st.integers(1, 120), p=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_owner_consistent_with_local_indices(name, mk, n, p):
    d = mk().bind(n, p)
    for proc in range(p):
        idx = d.local_indices(proc)
        if idx.size:
            np.testing.assert_array_equal(d.owner(idx), proc)


@pytest.mark.parametrize("name,mk", ALL_SPECS)
@given(n=st.integers(1, 120), p=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_translation_roundtrip(name, mk, n, p):
    d = mk().bind(n, p)
    idx = np.arange(n)
    owners = np.asarray(d.owner(idx))
    locals_ = np.asarray(d.to_local(idx))
    for proc in range(p):
        mask = owners == proc
        if mask.any():
            back = d.to_global(proc, locals_[mask])
            np.testing.assert_array_equal(back, idx[mask])


@pytest.mark.parametrize("name,mk", ALL_SPECS)
@given(n=st.integers(1, 120), p=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_local_offsets_are_packed(name, mk, n, p):
    """to_local must produce 0..count-1 exactly, per processor."""
    d = mk().bind(n, p)
    for proc in range(p):
        idx = d.local_indices(proc)
        offs = sorted(int(d.to_local(i)) for i in idx)
        assert offs == list(range(len(idx)))


@pytest.mark.parametrize("name,mk", ALL_SPECS)
@given(n=st.integers(1, 120), p=st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_local_set_matches_indices(name, mk, n, p):
    d = mk().bind(n, p)
    for proc in range(p):
        assert set(d.local_set(proc)) == set(d.local_indices(proc).tolist())


@given(n=st.integers(1, 120), p=st.integers(1, 10), b=st.integers(1, 9))
@settings(max_examples=40, deadline=None)
def test_block_cyclic_section_consistency(n, p, b):
    """When has_section_form() claims single sections, local_section must
    agree with local_indices on every processor."""
    d = BlockCyclic(b).bind(n, p)
    if d.has_section_form():
        for proc in range(p):
            sec = d.local_section(proc)
            assert sec is not None
            np.testing.assert_array_equal(sec.to_array(), d.local_indices(proc))
