"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.cost import IDEAL, IPSC2, NCUBE7
from repro.meshes.regular import five_point_grid


@pytest.fixture
def small_mesh():
    """A 8x8 five-point grid (64 nodes) — fast but non-trivial."""
    return five_point_grid(8, 8)


@pytest.fixture
def medium_mesh():
    """A 32x32 five-point grid (1024 nodes)."""
    return five_point_grid(32, 32)


@pytest.fixture(params=[IDEAL, NCUBE7, IPSC2], ids=["ideal", "ncube", "ipsc"])
def any_machine(request):
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(20260705)
