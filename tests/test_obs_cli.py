"""End-to-end tests for ``python -m repro.obs`` (capture/report/chrome)."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main, phase_table
from repro.obs.chrome_trace import validate_chrome_trace
from repro.obs.registry import read_run_json


@pytest.fixture(scope="module")
def run_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "run.json"
    rc = main(["capture", "--procs", "4", "--rows", "8", "--cols", "8",
               "--sweeps", "2", "--machine", "NCUBE/7", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestCaptureCommand:
    def test_writes_loadable_run(self, run_file):
        res = read_run_json(run_file)
        assert res.nranks == 4
        assert res.trace is not None and len(res.trace) > 0
        assert res.makespan > 0

    def test_records_meta(self, run_file):
        doc = json.loads(open(run_file).read())
        assert doc["meta"]["workload"] == "jacobi"
        assert doc["meta"]["machine"] == "NCUBE/7"
        assert doc["meta"]["procs"] == 4


class TestReportCommand:
    def test_renders_all_sections(self, run_file, capsys):
        assert main(["report", run_file]) == 0
        out = capsys.readouterr().out
        for needle in (
            "phase table", "metrics", "rank activity", "timeline",
            "communication matrix", "critical path",
            "reconciles exactly with RankStats",
            "inspector", "executor", "legend",
        ):
            assert needle in out, f"report is missing {needle!r}"

    def test_report_without_trace(self, tmp_path, capsys):
        from repro.machine.cost import IDEAL
        from repro.machine.engine import Engine
        from repro.machine.topology import FullyConnected
        from repro.obs.registry import write_run_json
        from repro.machine.api import Compute

        def prog(rank):
            yield Compute(1.0, phase="work")

        res = Engine(IDEAL, topology=FullyConnected(2)).run(prog)
        path = tmp_path / "untraced.json"
        write_run_json(res, str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no trace" in out
        assert "phase table" in out

    def test_phase_table_shares(self):
        from repro.machine.api import Compute
        from repro.machine.cost import IDEAL
        from repro.machine.engine import Engine
        from repro.machine.topology import FullyConnected

        def prog(rank):
            yield Compute(3.0, phase="a")
            yield Compute(1.0, phase="b")

        res = Engine(IDEAL, topology=FullyConnected(2)).run(prog)
        text = phase_table(res)
        assert "75.0%" in text and "25.0%" in text and "makespan" in text


class TestChromeCommand:
    def test_exports_valid_trace(self, run_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["chrome", run_file, "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert any(e["ph"] == "s" for e in doc["traceEvents"])
        assert "perfetto" in capsys.readouterr().out
