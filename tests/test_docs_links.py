"""The docs link checker (``tools/check_doc_links.py``) — and, through
it, the repo's own docs: every relative link and heading anchor in
``README.md`` and ``docs/*.md`` must resolve."""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_doc_links  # noqa: E402


def test_repo_docs_have_no_broken_links(capsys):
    assert check_doc_links.main(["check_doc_links", str(ROOT)]) == 0, (
        capsys.readouterr().out
    )


def test_github_slugs():
    assert check_doc_links.github_slug("Quick start") == "quick-start"
    assert check_doc_links.github_slug("13. The shm data plane") == (
        "13-the-shm-data-plane")
    assert check_doc_links.github_slug("`repro.serve` — the pool") == (
        "reproserve--the-pool")


def _write_docs(tmp_path, readme, docs=None):
    (tmp_path / "README.md").write_text(readme)
    (tmp_path / "docs").mkdir()
    for name, text in (docs or {}).items():
        (tmp_path / "docs" / name).write_text(text)


def test_broken_relative_link_fails(tmp_path, capsys):
    _write_docs(tmp_path, "see [missing](docs/nope.md)\n")
    assert check_doc_links.main(["x", str(tmp_path)]) == 1
    assert "no such file" in capsys.readouterr().out


def test_broken_anchor_fails(tmp_path, capsys):
    _write_docs(tmp_path, "see [s](docs/a.md#wrong-slug)\n",
                {"a.md": "# Right slug\n"})
    assert check_doc_links.main(["x", str(tmp_path)]) == 1
    assert "broken anchor" in capsys.readouterr().out


def test_valid_links_and_anchors_pass(tmp_path):
    _write_docs(
        tmp_path,
        "see [a](docs/a.md#one-two) and [self](#intro)\n\n# Intro\n",
        {"a.md": "# One two\n"},
    )
    assert check_doc_links.main(["x", str(tmp_path)]) == 0


def test_code_fences_are_ignored(tmp_path):
    _write_docs(tmp_path,
                "```\n[not a link](nowhere.md)\n```\n")
    assert check_doc_links.main(["x", str(tmp_path)]) == 0


def test_duplicate_headings_get_suffixes(tmp_path):
    _write_docs(tmp_path, "[a](docs/a.md#setup) [b](docs/a.md#setup-1)\n",
                {"a.md": "# Setup\n\n# Setup\n"})
    assert check_doc_links.main(["x", str(tmp_path)]) == 0


def test_external_links_skipped(tmp_path):
    _write_docs(tmp_path, "[x](https://example.com/nope) "
                          "[y](mailto:a@b.c)\n")
    assert check_doc_links.main(["x", str(tmp_path)]) == 0
