"""The structs job kinds through the serve tier.

The acceptance story: irregular DHash/DQueue traffic flows through the
sharded fleet exactly like the mesh workloads do — registered kinds,
content routing, per-job repro-run-v1 records — and the warm path holds:
on a 2-shard fleet, identical ``dht_lookup`` jobs land on the same shard
(rendezvous routing), find the table cached there (``table_reused``),
and replay with zero inspector runs after the first job.  Determinism
across jobs is pinned by snapshot hashes in the summaries.
"""

import numpy as np
import pytest

from repro.serve.server import JOB_KINDS, JobServer

pytestmark = pytest.mark.timeout(300)


def test_structs_kinds_registered():
    for kind in ("dht_build", "dht_lookup", "queue_stream", "dht_wordcount"):
        assert kind in JOB_KINDS


class TestDhtBuild:
    def test_build_reports_snapshot_hash_and_metrics(self, tmp_path):
        spec = {"n": 120, "nbuckets": 7, "batches": 3, "seed": 5}
        with JobServer(2, metrics_dir=str(tmp_path / "m")) as server:
            a = server.submit("dht_build", spec).result(timeout=120)
            b = server.submit("dht_build", spec).result(timeout=120)
        assert a["ok"] and b["ok"]
        assert a["summary"]["entries"] == 120
        assert a["summary"]["rebalances"] >= 1          # 120/7 >> max_load
        # Same spec, fresh table each time: byte-identical builds.
        assert a["summary"]["snapshot_sha256"] == b["summary"]["snapshot_sha256"]
        assert "metrics_file" in a

    def test_bad_spec_fails_cleanly(self):
        with JobServer(2) as server:
            rec = server.submit("dht_build", {"n": 0}).result(timeout=120)
        assert not rec["ok"] and "n >= 1" in rec["error"]


class TestDhtLookupWarmPath:
    def test_zero_reinspection_after_first_job_on_two_shards(self):
        # The acceptance criterion: a warm 2-shard fleet replays
        # identical dht_lookup jobs with no inspector activity and a
        # shard-cached table from job 2 on.
        spec = {"n": 150, "nbuckets": 31, "seed": 9, "lookups": 100}
        with JobServer(2, shards=2) as server:
            records = [
                server.submit("dht_lookup", spec).result(timeout=120)
                for _ in range(3)
            ]
        assert all(r["ok"] for r in records)
        shards = {r["shard"] for r in records}
        assert len(shards) == 1                  # rendezvous: same shard
        assert records[0]["summary"]["table_reused"] is False
        assert all(r["summary"]["table_reused"] is True for r in records[1:])
        # Structs ops never touch the inspector at all; the record field
        # must say so for every job, warm or cold.
        assert all(r["inspector_runs"] == 0 for r in records)
        # Replay determinism: every job read back the same values.
        hashes = {r["summary"]["values_sha256"] for r in records}
        assert len(hashes) == 1

    def test_preexisting_empty_cache_still_persists_tables(self):
        # Regression: `getattr(...) or {}` treated an empty cache dict
        # as missing and built each table into a fresh orphan dict that
        # never landed on the shard — reuse silently disabled forever on
        # any shard whose cache was left empty (e.g. after a crashed
        # build).
        from types import SimpleNamespace

        from repro.machine.cost import NCUBE7
        from repro.structs.jobs import run_dht_lookup

        shard = SimpleNamespace(nranks=2, machine=NCUBE7, pool=None,
                                structs_tables={})
        spec = {"n": 40, "nbuckets": 17, "lookups": 20}
        _, first = run_dht_lookup(shard, spec)
        assert first["table_reused"] is False
        assert shard.structs_tables          # the build landed on the shard
        _, second = run_dht_lookup(shard, spec)
        assert second["table_reused"] is True

    def test_different_specs_get_different_tables(self):
        with JobServer(2) as server:
            a = server.submit("dht_lookup", {"n": 60, "seed": 1}) \
                .result(timeout=120)
            b = server.submit("dht_lookup", {"n": 60, "seed": 2}) \
                .result(timeout=120)
        assert a["ok"] and b["ok"]
        assert not a["summary"]["table_reused"]
        assert not b["summary"]["table_reused"]
        assert (a["summary"]["table_fingerprint"]
                != b["summary"]["table_fingerprint"])


class TestQueueStream:
    def test_stream_verifies_fifo_against_reference(self):
        with JobServer(2) as server:
            rec = server.submit("queue_stream",
                                {"n": 90, "chunk": 16}).result(timeout=120)
        assert rec["ok"] and rec["summary"]["fifo_ok"]
        assert rec["summary"]["n"] == 90


class TestWordcount:
    TEXT = ("to be or not to be that is the question "
            "whether tis nobler in the mind to suffer")

    def test_counts_match_python_reference(self):
        from collections import Counter
        reference = Counter(self.TEXT.split())
        with JobServer(2) as server:
            rec = server.submit("dht_wordcount",
                                {"text": self.TEXT, "top": 5,
                                 "batch": 8}).result(timeout=120)
        assert rec["ok"], rec
        top = {tok: cnt for tok, cnt in rec["summary"]["top"]}
        for tok, cnt in top.items():
            assert reference[tok] == cnt
        assert rec["summary"]["total_tokens"] == len(self.TEXT.split())
        assert top["to"] == 3 and top["be"] == 2

    def test_empty_text_rejected(self):
        with JobServer(2) as server:
            rec = server.submit("dht_wordcount",
                                {"text": "   "}).result(timeout=120)
        assert not rec["ok"] and "non-empty" in rec["error"]


class TestStructsMetrics:
    def test_structs_prefix_in_run_registry(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        from repro.structs import DHash, merge_results

        h = DHash(2, nbuckets=5)
        keys = np.arange(40, dtype=np.int64)
        h.insert_many(keys, np.ones(40))
        reg = MetricsRegistry.from_run(merge_results(h.op_results)).as_dict()
        assert reg["structs.items"] == 40        # slice sums = batch size
        assert reg["structs.batches"] == 2       # one op x two ranks
        assert reg["structs.exchanges"] > 0
        assert reg["structs.rebalances"] >= 1
        assert reg["structs.migrated_keys"] > 0
