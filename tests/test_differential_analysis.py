"""Hypothesis differential test: closed-form planner vs run-time inspector.

The compile-time analysis (paper §3.2, ``analysis/closedform.py``) and the
run-time inspector (§3.3, ``runtime/inspector.py``) are two independent
implementations of the same specification: given a forall's on-clause,
affine subscripts and the arrays' distributions, produce the CommSchedule.
Hypothesis drives both over random affine subscripts × {block, cyclic,
block_cyclic(k)} with drawn block sizes, multiple simultaneous reads, and
non-trivial on-clause alignment, then asserts the schedules are
*equivalent*: identical exec partitions and identical in/out range sets
after coalescing — plus the structural invariants coalescing promises
(per-peer sort, disjointness, maximality).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.closedform import build_closed_form_schedule
from repro.core.context import KaliContext
from repro.core.forall import Affine, AffineRead, AffineWrite, Forall, OnOwner
from repro.distributions import Block, BlockCyclic, Cyclic
from repro.machine.cost import IDEAL
from repro.runtime.inspector import run_inspector

# Drawn distributions: block-cyclic block sizes come from Hypothesis, so
# odd sizes (3, 7) and degenerate ones (1 = cyclic, >= n/p = block) all
# appear.
dist_specs = st.one_of(
    st.just(("block", None)),
    st.just(("cyclic", None)),
    st.tuples(st.just("bc"), st.integers(1, 9)),
)


def make_dist(spec):
    kind, param = spec
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic()
    return BlockCyclic(param)


affine_maps = st.tuples(st.sampled_from([1, -1, 2, 3, -2]),
                        st.integers(-4, 4))


def legal_range(n, maps):
    """Largest iteration range keeping every a*i+b inside [0, n)."""
    lo, hi = -10**9, 10**9
    for a, b in maps:
        bound1 = (0 - b) / a
        bound2 = (n - 1 - b) / a
        lo = max(lo, math.ceil(min(bound1, bound2)))
        hi = min(hi, math.floor(max(bound1, bound2)))
    return lo, hi


def build_both_schedules(ctx, loop):
    """{rank: (closed_form, inspector)} for one forall on one context."""
    pairs = {}

    def program(kr):
        ct = build_closed_form_schedule(kr.rank, loop, kr.env)
        rt = yield from run_inspector(kr.rank, loop, kr.env)
        pairs[kr.id] = (ct, rt)

    ctx.run(program)
    return pairs


def assert_schedules_equivalent(pairs):
    for rank, (ct, rt) in pairs.items():
        np.testing.assert_array_equal(ct.exec_local, rt.exec_local,
                                      err_msg=f"rank {rank} exec_local")
        np.testing.assert_array_equal(ct.exec_nonlocal, rt.exec_nonlocal,
                                      err_msg=f"rank {rank} exec_nonlocal")
        assert sorted(ct.arrays) == sorted(rt.arrays), f"rank {rank} arrays"
        for name in rt.arrays:
            assert ct.arrays[name].in_records == rt.arrays[name].in_records, (
                f"rank {rank} array {name}: in-records differ\n"
                f"  closed-form: {ct.arrays[name].in_records}\n"
                f"  inspector:   {rt.arrays[name].in_records}"
            )
            assert ct.arrays[name].out_records == rt.arrays[name].out_records, (
                f"rank {rank} array {name}: out-records differ"
            )
            assert ct.arrays[name].buffer_len == rt.arrays[name].buffer_len


def assert_coalescing_invariants(schedule):
    """Records are sorted by (peer, low), disjoint, and maximal."""
    for name, a in schedule.arrays.items():
        for records, peer_of in ((a.in_records, lambda r: r.from_proc),
                                 (a.out_records, lambda r: r.to_proc)):
            keys = [(peer_of(r), r.low) for r in records]
            assert keys == sorted(keys), f"{name}: records not sorted"
            by_peer = {}
            for r in records:
                by_peer.setdefault(peer_of(r), []).append(r)
            for q, rs in by_peer.items():
                for prev, cur in zip(rs, rs[1:]):
                    assert prev.high < cur.low, (
                        f"{name} peer {q}: overlapping ranges {prev} {cur}"
                    )
                    # maximality: adjacent offsets must have been merged
                    assert cur.low - prev.high > 1, (
                        f"{name} peer {q}: uncoalesced adjacency {prev} {cur}"
                    )


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(4, 64),
    p=st.sampled_from([2, 3, 4, 8]),
    gmap=affine_maps,
    fmap=st.sampled_from([(1, 0), (1, 1), (1, -2)]),
    ondist=dist_specs,
    readdist=dist_specs,
)
def test_closed_form_equals_inspector_single_read(
    n, p, gmap, fmap, ondist, readdist
):
    """One affine read under random drawn distributions on both sides."""
    lo, hi = legal_range(n, [gmap, fmap])
    if lo > hi:
        return
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[make_dist(readdist)]).set(np.arange(float(n)))
    ctx.array("B", n, dist=[make_dist(ondist)]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("B", Affine(*fmap)),
        reads=[AffineRead("A", Affine(*gmap), name="g")],
        writes=[AffineWrite("B", Affine(*fmap))],
        kernel=lambda iters, ops: ops["g"],
        label=f"da1-{n}-{p}-{gmap}-{fmap}-{ondist}-{readdist}",
    )
    pairs = build_both_schedules(ctx, loop)
    assert_schedules_equivalent(pairs)
    for ct, rt in pairs.values():
        assert_coalescing_invariants(ct)
        assert_coalescing_invariants(rt)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(6, 48),
    p=st.sampled_from([2, 4]),
    gmap1=st.sampled_from([(1, 1), (1, -1), (2, 0), (-1, 0)]),
    gmap2=st.sampled_from([(1, 2), (1, -2), (3, 0)]),
    ondist=dist_specs,
    d1=dist_specs,
    d2=dist_specs,
)
def test_closed_form_equals_inspector_multiple_reads(
    n, p, gmap1, gmap2, ondist, d1, d2
):
    """Two reads of differently-distributed arrays in one forall: each
    array gets its own in/out sets, both paths must agree on all of them."""
    lo, hi = legal_range(n, [gmap1, gmap2, (1, 0)])
    if lo > hi:
        return
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("X", n, dist=[make_dist(d1)]).set(np.arange(float(n)))
    ctx.array("Y", n, dist=[make_dist(d2)]).set(np.arange(float(n)) * 2)
    ctx.array("B", n, dist=[make_dist(ondist)]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("B"),
        reads=[
            AffineRead("X", Affine(*gmap1), name="x"),
            AffineRead("Y", Affine(*gmap2), name="y"),
        ],
        writes=[AffineWrite("B")],
        kernel=lambda iters, ops: ops["x"] + ops["y"],
        label=f"da2-{n}-{p}-{gmap1}-{gmap2}-{ondist}-{d1}-{d2}",
    )
    pairs = build_both_schedules(ctx, loop)
    assert_schedules_equivalent(pairs)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 64),
    p=st.sampled_from([2, 4, 8]),
    gmap=affine_maps,
    ondist=dist_specs,
    readdist=dist_specs,
)
def test_in_out_duality_across_ranks(n, p, gmap, ondist, readdist):
    """q's out-ranges to me equal my in-ranges from q (paper's in/out
    duality) for BOTH analysis paths, over random drawn distributions."""
    lo, hi = legal_range(n, [gmap])
    if lo > hi:
        return
    ctx = KaliContext(p, machine=IDEAL)
    ctx.array("A", n, dist=[make_dist(readdist)]).set(np.arange(float(n)))
    ctx.array("B", n, dist=[make_dist(ondist)]).set(np.zeros(n))
    loop = Forall(
        index_range=(lo, hi),
        on=OnOwner("B"),
        reads=[AffineRead("A", Affine(*gmap), name="g")],
        writes=[AffineWrite("B")],
        kernel=lambda iters, ops: ops["g"],
        label=f"da3-{n}-{p}-{gmap}-{ondist}-{readdist}",
    )
    pairs = build_both_schedules(ctx, loop)
    for which in (0, 1):  # 0 = closed-form, 1 = inspector
        scheds = {r: pair[which] for r, pair in pairs.items()}
        for me in range(p):
            for q in range(p):
                if me == q:
                    continue
                ins = [(r.low, r.high)
                       for r in scheds[me].arrays["A"].ranges_for_peer_in(q)]
                outs = [(r.low, r.high)
                        for r in scheds[q].arrays["A"].ranges_for_peer_out(me)]
                assert ins == outs, (
                    f"path {which}: in({me},{q}) != out({q},{me})"
                )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(8, 48),
    p=st.sampled_from([2, 4]),
    gmap=st.sampled_from([(1, 1), (1, -1), (2, 1)]),
    ondist=dist_specs,
    readdist=dist_specs,
)
def test_both_schedules_execute_identically(n, p, gmap, ondist, readdist):
    """Forcing either strategy end-to-end gives the same (oracle) result —
    schedule equivalence is not just structural."""
    from repro.analysis.planner import Strategy

    lo, hi = legal_range(n, [gmap, (1, 0)])
    if lo > hi:
        return
    init = np.arange(float(n)) + 0.5
    results = {}
    for strategy in (Strategy.COMPILE_TIME, Strategy.RUNTIME):
        ctx = KaliContext(p, machine=IDEAL, force_strategy=strategy)
        ctx.array("A", n, dist=[make_dist(readdist)]).set(init.copy())
        ctx.array("B", n, dist=[make_dist(ondist)]).set(np.zeros(n))
        loop = Forall(
            index_range=(lo, hi),
            on=OnOwner("B"),
            reads=[AffineRead("A", Affine(*gmap), name="g")],
            writes=[AffineWrite("B")],
            kernel=lambda iters, ops: ops["g"],
            label=f"da4-{n}-{p}-{gmap}-{ondist}-{readdist}-{strategy}",
        )

        def program(kr, loop=loop):
            yield from kr.forall(loop)

        ctx.run(program)
        results[strategy] = ctx.arrays["B"].data.copy()

    expected = np.zeros(n)
    its = np.arange(lo, hi + 1)
    expected[its] = init[gmap[0] * its + gmap[1]]
    np.testing.assert_array_equal(results[Strategy.COMPILE_TIME], expected)
    np.testing.assert_array_equal(results[Strategy.RUNTIME], expected)
