"""Tests for the command-line Kali runner (python -m repro.lang)."""

import numpy as np
import pytest

from repro.lang.__main__ import build_parser, main


@pytest.fixture
def shift_program(tmp_path):
    src = tmp_path / "shift.kali"
    src.write_text(
        "processors Procs : array[1..P] with P in 1..16;\n"
        "const n : integer := 8;\n"
        "var A : array[1..n] of real dist by [ block ] on Procs;\n"
        "forall i in 1..n on A[i].loc do A[i] := float(i); end;\n"
        "forall i in 1..n-1 on A[i].loc do A[i] := A[i+1]; end;\n"
        'print("first", A[1]);\n'
    )
    return src


class TestCLI:
    def test_runs_and_prints(self, shift_program, capsys):
        rc = main([str(shift_program), "--nprocs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "first 2" in out

    def test_timing_flag(self, shift_program, capsys):
        rc = main([str(shift_program), "--timing"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "executor=" in err and "schedule cache" in err

    def test_machine_choice(self, shift_program, capsys):
        assert main([str(shift_program), "-m", "iPSC/2"]) == 0
        assert main([str(shift_program), "-m", "modern-cluster"]) == 0

    def test_const_override(self, tmp_path, capsys):
        src = tmp_path / "p.kali"
        src.write_text(
            "processors Procs : array[1..P] with P in 1..16;\n"
            "const n : integer;\n"
            "var A : array[1..n] of real dist by [ block ] on Procs;\n"
            "A[1] := 1.0;\n"
            'print("n =", n);\n'
        )
        rc = main([str(src), "-c", "n=12"])
        assert rc == 0
        assert "n = 12" in capsys.readouterr().out

    def test_input_and_save(self, tmp_path, capsys):
        init = tmp_path / "init.npy"
        np.save(init, np.arange(8.0))
        out = tmp_path / "out.npz"
        src = tmp_path / "p.kali"
        src.write_text(
            "processors Procs : array[1..P] with P in 1..16;\n"
            "const n : integer := 8;\n"
            "var A : array[1..n] of real dist by [ block ] on Procs;\n"
            "forall i in 1..n on A[i].loc do A[i] := A[i] * 2.0; end;\n"
        )
        rc = main([str(src), "-i", f"A={init}", "--save-arrays", str(out)])
        assert rc == 0
        saved = np.load(out)
        np.testing.assert_array_equal(saved["A"], np.arange(8.0) * 2)

    def test_emit_pretty_prints(self, shift_program, capsys):
        rc = main([str(shift_program), "--emit"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forall i in 1..n - 1 on A[i].loc do" in out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.kali"]) == 2

    def test_kali_error_reported(self, tmp_path, capsys):
        src = tmp_path / "bad.kali"
        src.write_text("var x : real;\nx := nosuchvar;\n")
        assert main([str(src)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_cache_flag(self, shift_program):
        assert main([str(shift_program), "--no-cache"]) == 0

    def test_parser_const_types(self):
        ap = build_parser()
        args = ap.parse_args(["x.kali", "-c", "n=5", "-c", "tol=0.5",
                              "-c", "flag=true"])
        assert dict(args.const) == {"n": 5, "tol": 0.5, "flag": True}

    def test_example_programs_run(self, capsys):
        """The shipped .kali examples must execute cleanly."""
        import pathlib

        kali_dir = pathlib.Path(__file__).parent.parent / "examples" / "kali"
        programs = sorted(kali_dir.glob("*.kali"))
        assert programs, "no example .kali programs found"
        for prog in programs:
            assert main([str(prog), "--nprocs", "4"]) == 0, prog.name
