"""Tests for the Kali lexer and parser."""

import pytest

from repro.errors import KaliSyntaxError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


class TestLexer:
    def test_keywords_and_idents(self):
        assert types("forall foo end") == [T.KW_FORALL, T.IDENT, T.KW_END]

    def test_keywords_case_insensitive(self):
        assert types("FORALL Forall") == [T.KW_FORALL, T.KW_FORALL]

    def test_range_vs_real(self):
        toks = tokenize("1..N")
        assert [t.type for t in toks][:-1] == [T.INT, T.DOTDOT, T.IDENT]
        assert toks[0].value == 1

    def test_real_literals(self):
        toks = tokenize("3.14 0.5 2.0e3 1e-2")
        vals = [t.value for t in toks[:-1]]
        assert vals == [3.14, 0.5, 2000.0, 0.01]
        assert all(t.type is T.REAL for t in toks[:-1])

    def test_int_literal(self):
        assert tokenize("42")[0].value == 42

    def test_assign_vs_colon(self):
        assert types("x := 1; y : integer") == [
            T.IDENT, T.ASSIGN, T.INT, T.SEMI, T.IDENT, T.COLON, T.KW_INTEGER,
        ]

    def test_comparisons(self):
        assert types("< <= > >= = <>") == [T.LT, T.LE, T.GT, T.GE, T.EQ, T.NE]

    def test_comments_stripped(self):
        assert types("a -- this is a comment\n b") == [T.IDENT, T.IDENT]

    def test_comment_does_not_eat_minus(self):
        assert types("a - b") == [T.IDENT, T.MINUS, T.IDENT]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.type is T.STRING and tok.value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(KaliSyntaxError):
            tokenize('"oops')

    def test_bad_character(self):
        with pytest.raises(KaliSyntaxError):
            tokenize("a ? b")

    def test_figure1_lexes(self):
        src = """
        processors Procs: array [ 1..P ] with P in 1..max_procs;
        var A : array[1..N] of real dist by [ block ] on Procs;
        forall i in 1..N-1 on A[i].loc do
            A[i] := A[i+1];
        end;
        """
        assert tokenize(src)[-1].type is T.EOF


class TestParserDeclarations:
    def test_processors_with_clause(self):
        prog = parse("processors Procs : array[1..P] with P in 1..64;")
        decl = prog.decls[0]
        assert isinstance(decl, ast.ProcessorsDecl)
        assert decl.name == "Procs" and decl.size_var == "P"

    def test_processors_fixed(self):
        prog = parse("processors Q : array[1..8];")
        assert prog.decls[0].size_var is None

    def test_var_single(self):
        prog = parse("var x : real;")
        d = prog.decls[0]
        assert d.names == ["x"] and d.type.kind == "real"

    def test_var_multiple_names(self):
        prog = parse("var a, b, c : integer;")
        assert prog.decls[0].names == ["a", "b", "c"]

    def test_var_block_continuation(self):
        """Figure 4 style: one 'var' introduces several groups."""
        prog = parse(
            "processors Procs : array[1..P] with P in 1..4;\n"
            "var a : array[1..8] of real dist by [block] on Procs;\n"
            "    count : array[1..8] of integer dist by [block] on Procs;\n"
        )
        names = [d.names[0] for d in prog.decls if isinstance(d, ast.VarDecl)]
        assert names == ["a", "count"]

    def test_array_with_dist(self):
        prog = parse(
            "processors Procs : array[1..P] with P in 1..4;\n"
            "var B : array[1..10, 1..5] of real dist by [cyclic, *] on Procs;"
        )
        t = prog.decls[-1].type
        assert isinstance(t, ast.ArrayType)
        assert [p.kind for p in t.dist] == ["cyclic", "*"]
        assert t.on_procs == "Procs"
        assert len(t.ranges) == 2

    def test_block_cyclic_param(self):
        prog = parse(
            "processors Procs : array[1..P] with P in 1..4;\n"
            "var B : array[1..10] of real dist by [block_cyclic(4)] on Procs;"
        )
        pat = prog.decls[-1].type.dist[0]
        assert pat.kind == "block_cyclic"
        assert isinstance(pat.param, ast.NumLit) and pat.param.value == 4

    def test_const(self):
        prog = parse("const n : integer := 64;")
        d = prog.decls[0]
        assert d.name == "n" and d.value.value == 64

    def test_const_no_value(self):
        prog = parse("const n : integer;")
        assert prog.decls[0].value is None


class TestParserStatements:
    def _stmts(self, body, header=""):
        default_header = (
            "processors Procs : array[1..P] with P in 1..8;\n"
            "var A : array[1..16] of real dist by [block] on Procs;\n"
            "var x : real; k : integer;\n"
        )
        return parse((header or default_header) + body).stmts

    def test_assign(self):
        (s,) = self._stmts("x := 1.5;")
        assert isinstance(s, ast.Assign)
        assert isinstance(s.target, ast.Name)

    def test_array_assign(self):
        (s,) = self._stmts("A[3] := 2.0;")
        assert isinstance(s.target, ast.Index)

    def test_if_else(self):
        (s,) = self._stmts("if x > 0.0 then x := 1.0; else x := 2.0; end;")
        assert isinstance(s, ast.IfStmt)
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_while(self):
        (s,) = self._stmts("while k < 3 do k := k + 1; end;")
        assert isinstance(s, ast.WhileStmt)

    def test_for(self):
        (s,) = self._stmts("for k in 1..10 do x := x + 1.0; end;")
        assert isinstance(s, ast.ForStmt) and s.var == "k"

    def test_forall_loc(self):
        (s,) = self._stmts(
            "forall i in 1..15 on A[i].loc do A[i] := A[i+1]; end;"
        )
        assert isinstance(s, ast.ForallStmt)
        assert not s.direct and s.on_array == "A"

    def test_forall_direct_processor(self):
        (s,) = self._stmts("forall i in 1..16 on Procs[i] do A[i] := 0.0; end;")
        assert s.direct

    def test_forall_local_vars(self):
        (s,) = self._stmts(
            "forall i in 1..16 on A[i].loc do\n"
            "  var t : real;\n"
            "  t := A[i]; A[i] := t * 2.0;\n"
            "end;"
        )
        assert s.local_decls[0].names == ["t"]
        assert len(s.body) == 2

    def test_print(self):
        (s,) = self._stmts('print("value", x);')
        assert isinstance(s, ast.PrintStmt) and len(s.args) == 2

    def test_precedence(self):
        (s,) = self._stmts("x := 1.0 + 2.0 * 3.0;")
        assert s.value.op == "+"
        assert s.value.right.op == "*"

    def test_parentheses(self):
        (s,) = self._stmts("x := (1.0 + 2.0) * 3.0;")
        assert s.value.op == "*"

    def test_boolean_precedence(self):
        (s,) = self._stmts("k := 1; ")
        src = "if x > 0.0 and not (k = 2) or false then x := 1.0; end;"
        (s2,) = self._stmts(src)
        assert s2.cond.op == "or"

    def test_unary_minus(self):
        (s,) = self._stmts("x := -x + 1.0;")
        assert s.value.op == "+"
        assert isinstance(s.value.left, ast.UnOp)

    def test_div_mod(self):
        (s,) = self._stmts("k := 7 div 2 + 7 mod 2;")
        assert s.value.left.op == "div" and s.value.right.op == "mod"

    def test_builtin_call(self):
        (s,) = self._stmts("x := abs(x);")
        assert isinstance(s.value, ast.Call) and s.value.func == "abs"


class TestParserErrors:
    def test_missing_semi(self):
        with pytest.raises(KaliSyntaxError):
            parse("var x : real")

    def test_bad_statement(self):
        with pytest.raises(KaliSyntaxError):
            parse("var x : real; 42;")

    def test_unclosed_forall(self):
        with pytest.raises(KaliSyntaxError):
            parse(
                "processors P1 : array[1..2];\n"
                "var A : array[1..4] of real dist by [block] on P1;\n"
                "forall i in 1..4 on A[i].loc do A[i] := 0.0;"
            )

    def test_bad_dist_pattern(self):
        with pytest.raises(KaliSyntaxError):
            parse(
                "processors P1 : array[1..2];\n"
                "var A : array[1..4] of real dist by [diagonal] on P1;"
            )

    def test_error_carries_position(self):
        with pytest.raises(KaliSyntaxError) as exc:
            parse("var x : real;\n@")
        assert exc.value.line == 2

    def test_figure4_parses_fully(self):
        src = """
        processors Procs: array[1..P] with P in 1..n;
        const n : integer := 64;
        var a, old_a: array[1..n ] of real dist by [ block ] on Procs;
            count : array[ 1..n ] of integer dist by [ block ] on Procs;
            adj : array[ 1..n, 1..4 ] of integer dist by [ block, * ] on Procs;
            coef : array[ 1..n, 1..4 ] of real dist by [ block, * ] on Procs;
        var converged : boolean;

        while ( not converged ) do
            forall i in 1..n on old_a[i].loc do
                old_a[i] := a[i];
            end;
            forall i in 1..n on a[i].loc do
                var x : real;
                x := 0.0;
                for j in 1..count[i] do
                    x := x + coef[i,j] * old_a[ adj[i,j] ];
                end;
                if (count[i] > 0) then a[i] := x; end;
            end;
            converged := true;
        end;
        """
        prog = parse(src)
        assert len(prog.stmts) == 1
        assert isinstance(prog.stmts[0], ast.WhileStmt)
