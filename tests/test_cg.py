"""Tests for the conjugate-gradient application (SpMV + reductions + AXPY)."""

import numpy as np
import pytest

from repro.apps.cg import CGSolver, dense_matrix, laplacian_plus_identity
from repro.distributions import Block, Cyclic, Custom
from repro.machine.cost import IDEAL, IPSC2, NCUBE7
from repro.meshes.regular import five_point_grid
from repro.meshes.unstructured import random_unstructured_mesh


class TestOperator:
    def test_laplacian_symmetric_positive_definite(self):
        mesh = five_point_grid(5, 5)
        A = dense_matrix(mesh)
        np.testing.assert_array_equal(A, A.T)
        eigs = np.linalg.eigvalsh(A)
        assert eigs.min() >= 1.0 - 1e-12  # I + L with L PSD

    def test_row_format_consistent(self):
        mesh = five_point_grid(4, 6)
        cols, vals, counts = laplacian_plus_identity(mesh)
        # diagonal first, then -1 per neighbour
        assert (cols[:, 0] == np.arange(mesh.n)).all()
        np.testing.assert_array_equal(vals[:, 0], 1.0 + mesh.count)
        assert (counts == mesh.count + 1).all()
        # row sums of (D - Adj) are 0, so A row sums are 1
        live = np.arange(cols.shape[1])[None, :] < counts[:, None]
        np.testing.assert_allclose((vals * live).sum(axis=1), 1.0)


class TestSolve:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_dense_solve(self, p, rng):
        mesh = five_point_grid(6, 6)
        b = rng.random(mesh.n)
        solver = CGSolver(mesh, p, machine=IDEAL)
        res = solver.solve(b, tol=1e-10)
        x_ref = np.linalg.solve(dense_matrix(mesh), b)
        np.testing.assert_allclose(res.solution, x_ref, atol=1e-8)
        assert res.residual < 1e-9

    def test_unstructured_mesh(self, rng):
        mesh, _ = random_unstructured_mesh(80, seed=3)
        b = rng.random(mesh.n)
        res = CGSolver(mesh, 4, machine=IDEAL).solve(b, tol=1e-10)
        x_ref = np.linalg.solve(dense_matrix(mesh), b)
        np.testing.assert_allclose(res.solution, x_ref, atol=1e-8)

    def test_alternative_distribution(self, rng):
        mesh = five_point_grid(6, 6)
        b = rng.random(mesh.n)
        res = CGSolver(mesh, 4, machine=IDEAL, dist=Cyclic()).solve(b, tol=1e-10)
        x_ref = np.linalg.solve(dense_matrix(mesh), b)
        np.testing.assert_allclose(res.solution, x_ref, atol=1e-8)

    def test_iteration_count_independent_of_p(self, rng):
        """CG's arithmetic is identical on any processor count."""
        mesh = five_point_grid(6, 6)
        b = rng.random(mesh.n)
        iters = {
            p: CGSolver(mesh, p, machine=IDEAL).solve(b, tol=1e-10).iterations
            for p in (1, 4)
        }
        assert iters[1] == iters[4]

    def test_zero_rhs_converges_immediately(self):
        mesh = five_point_grid(4, 4)
        res = CGSolver(mesh, 2, machine=IDEAL).solve(np.zeros(mesh.n))
        assert res.iterations == 0
        np.testing.assert_array_equal(res.solution, np.zeros(mesh.n))

    def test_max_iter_cap(self, rng):
        mesh = five_point_grid(8, 8)
        b = rng.random(mesh.n)
        res = CGSolver(mesh, 2, machine=IDEAL).solve(b, tol=1e-30, max_iter=3)
        assert res.iterations == 3


class TestSchedulesAndCosts:
    def test_spmv_schedule_inspected_once(self, rng):
        mesh = five_point_grid(8, 8)
        b = rng.random(mesh.n)
        solver = CGSolver(mesh, 4, machine=NCUBE7)
        res = solver.solve(b, tol=1e-10)
        # one inspection per rank for the spmv loop (all other loops are
        # affine/compile-time), reused by every CG iteration.
        assert res.timing.engine.counter_sum("inspector_runs") == 4
        stats = res.timing.cache_stats()
        assert stats["hits"] > stats["misses"]
        assert stats["invalidations"] == 0

    def test_axpy_loops_are_compile_time_and_local(self, rng):
        mesh = five_point_grid(8, 8)
        b = rng.random(mesh.n)
        solver = CGSolver(mesh, 4, machine=NCUBE7)
        res = solver.solve(b, tol=1e-8)
        strategies = res.timing.strategies()
        assert strategies["cg-update-x"] == "compile-time"
        assert strategies["cg-spmv"] == "inspector"

    def test_faster_machine_faster_solve(self, rng):
        mesh = five_point_grid(8, 8)
        b = rng.random(mesh.n)
        tn = CGSolver(mesh, 4, machine=NCUBE7).solve(b).timing.total_time
        ti = CGSolver(mesh, 4, machine=IPSC2).solve(b).timing.total_time
        assert ti < tn
