"""S1 acceptance: the serve tier actually serves.

The headline claim is ``python -m repro.bench --serve``'s job: on
10x-repeated Jacobi, warm-pool+disk sustains >= 2x the jobs/sec of
fork-per-run with *zero* re-inspection after the first job.  Here that
claim is split by how measurable it is under pytest on a noisy shared
host:

* the structural half — zero inspector runs on warm jobs, every regime
  bit-identical — is asserted exactly;
* the throughput half is asserted with slack and best-of-3 retries
  (warm-pool+disk must clearly beat fork-per-run; transient host load
  can mask a real speedup but never fake one, so one clean measurement
  settles it — the hard 2x gate lives in the bench driver where a human
  reads the table, not in CI where one descheduled tick would flake the
  suite).
"""

import pytest

from repro.bench import serving_throughput
from repro.machine.cost import NCUBE7

pytestmark = pytest.mark.timeout(300)


def _measure(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("s1-cache"))
    rows, runs = serving_throughput(NCUBE7, njobs=10, mesh_side=16,
                                    sweeps=2, cache_dir=cache_dir)
    return {r.key: r.values for r in rows}, runs


@pytest.fixture(scope="module")
def s1_rows(tmp_path_factory):
    return _measure(tmp_path_factory)


def test_all_regimes_present(s1_rows):
    by, runs = s1_rows
    assert set(by) == {"sim", "fork-per-run", "warm-pool", "warm-pool+disk"}
    assert set(runs) == set(by)


def test_zero_reinspection_on_warm_jobs(s1_rows):
    by, _ = s1_rows
    # Job 1 inspects once per rank per forall; jobs 2..10 are pure disk
    # hits — the inspector must never run again.
    assert by["warm-pool+disk"]["inspector_first"] > 0
    assert by["warm-pool+disk"]["inspector_rest"] == 0.0
    # Without the disk tier every job re-inspects (fresh process or
    # fresh per-job cache), which is exactly the cost being amortized.
    assert by["fork-per-run"]["inspector_rest"] > 0
    assert by["warm-pool"]["inspector_rest"] > 0


def test_warm_pool_disk_beats_fork_per_run(s1_rows, tmp_path_factory):
    # Measured 2.4-2.7x on an idle 1-CPU host; 1.3x is the floor that
    # still proves the tier pays for itself.  Load can depress one
    # measurement, so re-measure (fresh pools, fresh cache) on a miss.
    ratios = []
    by = s1_rows[0]
    for _ in range(3):
        warm = by["warm-pool+disk"]["jobs_per_s"]
        fork = by["fork-per-run"]["jobs_per_s"]
        ratios.append(warm / fork)
        if warm > 1.3 * fork:
            return
        by = _measure(tmp_path_factory)[0]
    pytest.fail(
        f"warm-pool+disk never cleared 1.3x fork-per-run in 3 runs "
        f"(ratios: {', '.join(f'{r:.2f}' for r in ratios)}): "
        "the serve tier is not paying for itself"
    )


def test_identical_answers_across_regimes(s1_rows):
    by, runs = s1_rows
    # Every regime runs the same differential-checked Jacobi job; the
    # final-job run results must agree on the work done per rank.
    msgs = {name: res.total_messages() for name, res in runs.items()}
    # Warm disk jobs skip inspector traffic entirely, so they carry
    # strictly fewer messages than the cold regimes — and the two cold
    # regimes (sim, fork) must match each other exactly.
    assert msgs["sim"] == msgs["fork-per-run"] == msgs["warm-pool"]
    assert msgs["warm-pool+disk"] < msgs["sim"]
