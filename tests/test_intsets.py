"""Unit and property tests for the interval-set algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intsets import IntervalSet


def iset(*pairs):
    return IntervalSet(pairs)


class TestConstruction:
    def test_empty(self):
        s = IntervalSet.empty()
        assert len(s) == 0
        assert not s
        assert list(s) == []

    def test_range(self):
        s = IntervalSet.range(3, 7)
        assert len(s) == 5
        assert list(s) == [3, 4, 5, 6, 7]

    def test_range_inverted_is_empty(self):
        assert not IntervalSet.range(7, 3)

    def test_point(self):
        assert list(IntervalSet.point(42)) == [42]

    def test_merges_overlapping(self):
        s = iset((1, 5), (3, 8))
        assert s.intervals == ((1, 8),)

    def test_merges_adjacent(self):
        s = iset((1, 3), (4, 6))
        assert s.intervals == ((1, 6),)

    def test_keeps_disjoint(self):
        s = iset((1, 3), (5, 7))
        assert s.intervals == ((1, 3), (5, 7))

    def test_unsorted_input(self):
        s = iset((10, 12), (1, 3))
        assert s.intervals == ((1, 3), (10, 12))

    def test_from_indices(self):
        s = IntervalSet.from_indices([5, 1, 2, 3, 9, 10])
        assert s.intervals == ((1, 3), (5, 5), (9, 10))

    def test_from_indices_duplicates(self):
        s = IntervalSet.from_indices([2, 2, 2, 3])
        assert s.intervals == ((2, 3),)

    def test_from_indices_empty(self):
        assert not IntervalSet.from_indices([])

    def test_negative_values(self):
        s = IntervalSet.from_indices([-3, -2, 0])
        assert s.intervals == ((-3, -2), (0, 0))


class TestMembership:
    def test_contains(self):
        s = iset((1, 3), (7, 9))
        for x in (1, 2, 3, 7, 8, 9):
            assert x in s
        for x in (0, 4, 5, 6, 10):
            assert x not in s

    def test_contains_empty(self):
        assert 0 not in IntervalSet.empty()

    def test_iteration_order_sorted(self):
        s = iset((7, 9), (1, 2))
        assert list(s) == [1, 2, 7, 8, 9]


class TestAlgebra:
    def test_union(self):
        a, b = iset((1, 3)), iset((5, 7))
        assert (a | b).intervals == ((1, 3), (5, 7))

    def test_union_overlap(self):
        a, b = iset((1, 5)), iset((4, 9))
        assert (a | b).intervals == ((1, 9),)

    def test_intersection(self):
        a = iset((1, 10))
        b = iset((5, 15))
        assert (a & b).intervals == ((5, 10),)

    def test_intersection_multi(self):
        a = iset((0, 4), (8, 12))
        b = iset((3, 9))
        assert (a & b).intervals == ((3, 4), (8, 9))

    def test_intersection_disjoint(self):
        assert not (iset((1, 2)) & iset((5, 6)))

    def test_difference(self):
        a = iset((0, 10))
        b = iset((3, 5))
        assert (a - b).intervals == ((0, 2), (6, 10))

    def test_difference_whole(self):
        assert not (iset((3, 5)) - iset((0, 10)))

    def test_difference_edges(self):
        a = iset((0, 10))
        assert (a - iset((0, 0))).intervals == ((1, 10),)
        assert (a - iset((10, 10))).intervals == ((0, 9),)

    def test_issubset(self):
        assert iset((2, 4)).issubset(iset((0, 10)))
        assert not iset((2, 11)).issubset(iset((0, 10)))

    def test_isdisjoint(self):
        assert iset((0, 2)).isdisjoint(iset((3, 5)))
        assert not iset((0, 3)).isdisjoint(iset((3, 5)))


class TestTransforms:
    def test_shift(self):
        s = iset((1, 3), (7, 8)).shift(10)
        assert s.intervals == ((11, 13), (17, 18))

    def test_shift_negative(self):
        assert iset((5, 9)).shift(-5).intervals == ((0, 4),)

    def test_affine_preimage_identity(self):
        s = iset((0, 9))
        assert s.affine_preimage(1, 0) == s

    def test_affine_preimage_shift(self):
        # i+1 in [5,9]  <=>  i in [4,8]
        assert iset((5, 9)).affine_preimage(1, 1).intervals == ((4, 8),)

    def test_affine_preimage_scale(self):
        # 2i in [0,10] <=> i in [0,5]
        assert iset((0, 10)).affine_preimage(2, 0).intervals == ((0, 5),)

    def test_affine_preimage_negative_a(self):
        # -i in [-5,-2] <=> i in [2,5]
        assert iset((-5, -2)).affine_preimage(-1, 0).intervals == ((2, 5),)

    def test_affine_preimage_zero_a_raises(self):
        with pytest.raises(ValueError):
            iset((0, 1)).affine_preimage(0, 3)

    def test_affine_image_identity_shift(self):
        assert iset((0, 4)).affine_image(1, 3).intervals == ((3, 7),)

    def test_affine_image_negate(self):
        assert iset((1, 3)).affine_image(-1, 0).intervals == ((-3, -1),)

    def test_affine_image_scale(self):
        s = iset((0, 3)).affine_image(2, 0)
        assert list(s) == [0, 2, 4, 6]

    def test_image_preimage_roundtrip(self):
        s = iset((2, 9))
        img = s.affine_image(3, 1)
        assert img.affine_preimage(3, 1) == s


class TestConversions:
    def test_to_array(self):
        s = iset((1, 3), (7, 7))
        np.testing.assert_array_equal(s.to_array(), [1, 2, 3, 7])

    def test_to_array_empty(self):
        assert IntervalSet.empty().to_array().size == 0

    def test_bounds(self):
        assert iset((3, 5), (9, 12)).bounds() == (3, 12)

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().bounds()

    def test_num_ranges(self):
        assert iset((1, 2), (4, 5), (9, 9)).num_ranges() == 3

    def test_hash_eq(self):
        assert hash(iset((1, 2))) == hash(iset((1, 2)))
        assert iset((1, 2)) == iset((1, 2))
        assert iset((1, 2)) != iset((1, 3))


# --- property-based tests ---------------------------------------------------

index_lists = st.lists(st.integers(-200, 200), max_size=60)


@given(index_lists, index_lists)
def test_union_matches_python_sets(xs, ys):
    a, b = IntervalSet.from_indices(xs), IntervalSet.from_indices(ys)
    assert set(a | b) == set(xs) | set(ys)


@given(index_lists, index_lists)
def test_intersection_matches_python_sets(xs, ys):
    a, b = IntervalSet.from_indices(xs), IntervalSet.from_indices(ys)
    assert set(a & b) == set(xs) & set(ys)


@given(index_lists, index_lists)
def test_difference_matches_python_sets(xs, ys):
    a, b = IntervalSet.from_indices(xs), IntervalSet.from_indices(ys)
    assert set(a - b) == set(xs) - set(ys)


@given(index_lists)
def test_roundtrip_through_array(xs):
    s = IntervalSet.from_indices(xs)
    assert IntervalSet.from_indices(s.to_array().tolist()) == s
    assert len(s) == len(set(xs))


@given(index_lists, st.integers(-100, 100))
def test_shift_preserves_cardinality(xs, k):
    s = IntervalSet.from_indices(xs)
    assert len(s.shift(k)) == len(s)
    assert set(s.shift(k)) == {x + k for x in xs}


@given(index_lists, st.integers(-5, 5).filter(lambda a: a != 0), st.integers(-50, 50))
def test_preimage_definition(xs, a, b):
    s = IntervalSet.from_indices(xs)
    pre = s.affine_preimage(a, b)
    lo, hi = (-500, 500)
    expected = {i for i in range(lo, hi) if a * i + b in s}
    got = {i for i in pre if lo <= i < hi}
    assert got == expected


@given(index_lists)
def test_normalization_canonical(xs):
    """Canonical form: sorted, disjoint, non-adjacent intervals."""
    s = IntervalSet.from_indices(xs)
    ivals = s.intervals
    for lo, hi in ivals:
        assert lo <= hi
    for (l1, h1), (l2, h2) in zip(ivals, ivals[1:]):
        assert h1 + 1 < l2
