"""Chaos suite: seeded worker kills against the sharded serve tier.

The serving-layer failure contract (docs/serving.md) says an accepted
job terminates in exactly one record — completed, or failed with a
structured ``retry_exhausted`` error — no matter what happens to the
pool processes underneath.  These tests enforce it the only honest way:
by killing workers while jobs run.

Chaos is *seeded*, reusing the deterministic draw machinery of
``repro.faults`` (``FaultPlan.unit`` — a pure function of seed + salt +
parts): seed k decides which jobs attract a kill, which rank dies, and
how far into the job the SIGTERM lands.  The kill *timing* still races
the job's actual execution — that is the point — but every race outcome
is inside the contract:

* kill lands mid-job → the pool raises ``PoolCrashError``, the job
  replays (onto the other shard when one survives) against its retry
  budget;
* kill lands between jobs → the pool's health check rebuilds the mesh
  silently and the job runs normally;
* kill lands in a reset barrier → the *next* job crashes and replays.

What must hold for **every** seed:

* every accepted job produced exactly one record and resolved its
  future exactly once (nothing lost, nothing double-completed);
* every completed job's solution hash is bit-identical to the
  crash-free baseline (replay re-executes deterministically);
* the server's jobs_done/retries accounting reconciles with the
  records.

The full 20-seed acceptance sweep runs here as 20 parametrized cases;
each case is small (6 jobs, 2 ranks, 2 shards) to keep the sweep
CI-sized.
"""

import threading
import time

import pytest

from repro.faults.plan import FaultPlan
from repro.serve.server import JobServer

NRANKS = 2
NSHARDS = 2
RETRY_BUDGET = 4

# Six jobs over three families: two jacobi shapes and one cg shape,
# each submitted twice, so batching / cache reuse paths are exercised
# alongside the crashes.
JOBS = [
    ("jacobi", {"rows": 8, "sweeps": 2, "seed": 1}),
    ("cg", {"rows": 6, "max_iter": 20, "seed": 2}),
    ("jacobi", {"rows": 9, "sweeps": 2, "seed": 3}),
    ("jacobi", {"rows": 8, "sweeps": 2, "seed": 1}),
    ("cg", {"rows": 6, "max_iter": 20, "seed": 2}),
    ("jacobi", {"rows": 9, "sweeps": 2, "seed": 3}),
]


def _run_stream(server):
    futures = [server.submit(kind, spec) for kind, spec in JOBS]
    return [f.result(timeout=300) for f in futures]


def _hash_of(record):
    return record["summary"]["solution_sha256"]


@pytest.fixture(scope="module")
def baseline():
    """Crash-free run: the reference hash for every job in the stream."""
    with JobServer(NRANKS, shards=NSHARDS) as server:
        records = _run_stream(server)
    assert all(r["ok"] for r in records)
    return [_hash_of(r) for r in records]


class ChaosMonkey:
    """Seeded mid-job worker killer, at most one kill per job id."""

    def __init__(self, seed: int, kill_rate: float = 0.5):
        self.plan = FaultPlan(seed=seed)
        self.kill_rate = kill_rate
        self.killed = set()
        self.kills = 0
        self._lock = threading.Lock()

    def __call__(self, job, shard):
        with self._lock:
            if job.job_id in self.killed:
                return  # a replayed job runs clean: one kill per job
            if self.plan.unit("chaos-kill", job.job_id) >= self.kill_rate:
                return
            self.killed.add(job.job_id)
        rank = int(self.plan.unit("chaos-rank", job.job_id) * shard.nranks)
        delay = self.plan.unit("chaos-delay", job.job_id) * 0.04
        pool = shard.pool

        def kill():
            deadline = time.monotonic() + 10.0
            while not pool.started and time.monotonic() < deadline:
                time.sleep(0.002)
            time.sleep(delay)
            # The mesh may be torn down concurrently (another kill
            # already condemned it) — snapshot defensively.
            procs = list(pool._procs or ())
            try:
                if rank < len(procs) and procs[rank].is_alive():
                    procs[rank].terminate()
                    with self._lock:
                        self.kills += 1
            except (ValueError, OSError):
                pass  # already reaped

        threading.Thread(target=kill, daemon=True).start()


@pytest.mark.parametrize("seed", range(20))
def test_chaos_seeded_kills_never_lose_or_duplicate_jobs(seed, baseline):
    monkey = ChaosMonkey(seed)
    with JobServer(NRANKS, shards=NSHARDS, retry_budget=RETRY_BUDGET,
                   chaos_hook=monkey) as server:
        records = _run_stream(server)
        stat = server.stat()

    # Exactly one terminal record per accepted job, ids exactly the
    # submitted ones — nothing lost, nothing double-completed.
    assert len(records) == len(JOBS)
    ids = [r["id"] for r in records]
    assert sorted(ids) == list(range(1, len(JOBS) + 1))
    assert len(stat["queue_snapshot"]) == 0
    by_id = {r["id"]: r for r in server.records}
    assert len(server.records) == len(JOBS), (
        "server.records must hold exactly one terminal record per job")
    assert set(by_id) == set(ids)

    # Every job terminated inside the contract.  With one kill per job
    # and a budget of 4 the retries can't exhaust, so all complete —
    # which is what makes the bit-identical comparison meaningful.
    for r in records:
        assert r["ok"], f"job {r['id']} failed under chaos: {r.get('error')}"
        assert r["retries"] <= RETRY_BUDGET

    # Replay is re-execution: results bit-identical to the clean run.
    for r, expected in zip(records, baseline):
        assert _hash_of(r) == expected, (
            f"job {r['id']} (retries={r['retries']}, shard={r['shard']}) "
            "diverged from the crash-free baseline")

    # Accounting reconciles: the server saw every replay it performed.
    assert stat["jobs_done"] == len(JOBS)
    assert stat["failures"] == 0
    shard_retries = sum(e["retries"] for e in stat["shards"])
    assert stat["retries"] == shard_retries


def test_chaos_replays_actually_happen():
    """Across the seed sweep the monkey must land real mid-job kills —
    otherwise the suite above is vacuously green.  One aggressive seeded
    run with an always-kill monkey forces at least one replay."""
    monkey = ChaosMonkey(seed=1234, kill_rate=1.0)
    with JobServer(NRANKS, shards=NSHARDS, retry_budget=RETRY_BUDGET,
                   chaos_hook=monkey) as server:
        records = _run_stream(server)
        stat = server.stat()
    assert all(r["ok"] for r in records)
    assert monkey.kills > 0, "chaos monkey never managed to kill a worker"
    # Kills that land mid-job surface as retries; kills that land between
    # jobs surface as silent mesh rebuilds.  Either way the pools saw
    # real deaths:
    rebuilds = sum(e["rebuilds"] for e in stat["shards"])
    assert stat["retries"] + rebuilds > 0


def test_retry_exhaustion_is_structured():
    """A job that crashes more times than its budget fails loudly, with
    the structured fields the protocol promises, and counts as exactly
    one terminal record."""
    from repro.serve.pool import PoolCrashError
    from repro.serve.server import JOB_KINDS, register_job_kind

    def always_crashes(shard, spec):
        raise PoolCrashError("injected: the mesh is gone")

    register_job_kind("_chaos_doomed", always_crashes)
    try:
        with JobServer(NRANKS, shards=NSHARDS, retry_budget=2) as server:
            record = server.submit("_chaos_doomed", {}).result(timeout=60)
            stat = server.stat()
    finally:
        del JOB_KINDS["_chaos_doomed"]

    assert record["ok"] is False
    assert record["retry_exhausted"] is True
    assert record["retries"] == 2
    assert "PoolCrashError" in record["error"]
    assert stat["failures"] == 1
    assert stat["jobs_done"] == 0
    assert len(stat["queue_snapshot"]) == 0
