"""The shared-memory data plane (``repro.machine.shm``).

Three layers:

* **Allocator unit tests** — publish/read round trips, the content-tag
  guards (stale ref, double consume), the threshold boundary, arena
  exhaustion → grow, free-list reuse, reset/rewind, and orphan sweeping,
  all in one process (the consumer side is exercised by re-attaching the
  plane as a different party, exactly what a forked worker does).
* **Encode/decode protocol** — nested containers, the ``__shm_fields__``
  opt-in hoist, no-mutation guarantees, and pickle fallback accounting.
* **Differential integration** — jacobi on sim vs mp with the plane on
  and off stays bit-identical with identical semantic counters, the
  plane moves bytes when on and none when off, and a warm pool run
  ships schedules through the plane and reclaims at reset.
"""

import os

import numpy as np
import pytest

from tests.differential import (
    assert_arrays_identical,
    assert_counters_identical,
    assert_values_equal,
    run_differential,
)
from repro.apps.jacobi import build_jacobi
from repro.machine.api import Compute, Recv, Send
from repro.machine.cost import IDEAL
from repro.machine.mp import MpEngine
from repro.machine.shm import (
    DEFAULT_THRESHOLD,
    ShmDataPlane,
    ShmError,
    ShmRef,
    shm_enabled_default,
    shm_threshold_default,
)
from repro.machine.topology import FullyConnected
from repro.meshes.regular import five_point_grid
from repro.serve.pool import RankPool
from repro.serve import shipping

pytestmark = pytest.mark.timeout(120)


@pytest.fixture
def plane():
    """A 2-rank plane attached as the parent supervisor (party 2)."""
    p = ShmDataPlane(nranks=2, segment_bytes=1 << 20, threshold=1024)
    yield p
    p.close(unlink=True)
    assert p.sweep_orphans() == 0, "segments leaked past close(unlink=True)"


def _ack_all(plane, ref):
    """Stand in for the consumers: set every ack slot of ``ref``'s block.

    In production each consumer process writes only its own slot; doing
    it from the owner's mapping is byte-identical (same shared page)."""
    seg = plane._segments[ref.segment]
    h = ref.offset // 8
    seg.i64[h + 1: h + 1 + plane.nparties] = 1


# --- allocator unit tests --------------------------------------------------


class TestPublishRead:
    def test_array_round_trip_preserves_dtype_and_shape(self, plane):
        arr = np.arange(600, dtype=np.float32).reshape(30, 20) * 1.5
        ref = plane.publish_array(arr, consumers=[0])
        assert isinstance(ref, ShmRef)
        assert ref.nbytes == arr.nbytes
        plane.attach(0)  # become the consumer, as a forked worker would
        out = plane.read(ref)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)
        # the copy is private: mutating it cannot corrupt the segment
        out[0, 0] = -1.0

    def test_bytes_round_trip(self, plane):
        blob = os.urandom(4096)
        ref = plane.publish_bytes(blob, consumers=[0, 1])
        assert ref.dtype is None and ref.shape is None
        plane.attach(1)
        assert plane.read(ref) == blob

    def test_double_consume_raises(self, plane):
        ref = plane.publish_array(np.zeros(512), consumers=[0])
        plane.attach(0)
        plane.read(ref)
        with pytest.raises(ShmError, match="double consume"):
            plane.read(ref)

    def test_each_consumer_reads_once(self, plane):
        ref = plane.publish_array(np.ones(512), consumers=[0, 1])
        plane.attach(0)
        a = plane.read(ref)
        plane.attach(1)
        b = plane.read(ref)
        assert np.array_equal(a, b)

    def test_stale_ref_after_reclaim_raises(self, plane):
        ref = plane.publish_array(np.zeros(512), consumers=[0])
        _ack_all(plane, ref)
        blocks, freed = plane.reclaim()
        assert blocks == 1 and freed > 0
        plane.attach(0)
        with pytest.raises(ShmError, match="stale"):
            plane.read(ref)

    def test_publish_to_self_rejected(self, plane):
        with pytest.raises(ShmError, match="bad consumer"):
            plane.publish_array(np.zeros(512), consumers=[plane.party])

    def test_publish_needs_consumers(self, plane):
        with pytest.raises(ShmError, match="at least one consumer"):
            plane.publish_array(np.zeros(512), consumers=[])

    def test_header_indices_track_traffic(self, plane):
        arr = np.zeros(1024)
        plane.publish_array(arr, consumers=[0])
        stats = plane.header_stats()
        parent = plane.parent_party
        assert stats["pub_blocks"][parent] == 1
        assert stats["pub_bytes"][parent] == arr.nbytes
        assert stats["hwm_bytes"][parent] > 0
        assert stats["con_blocks"][0] == 0


class TestAllocator:
    def test_exhaustion_grows_new_segment(self, plane):
        # far larger than the ~340 KiB per-party arena of a 1 MiB segment
        big = np.zeros(1 << 20, dtype=np.uint8)
        ref = plane.publish_array(big, consumers=[0])
        assert ref is not None
        assert ref.segment != plane.primary, "should have grown a segment"
        plane.attach(0)  # consumer attaches the grown segment by name
        assert np.array_equal(plane.read(ref), big)

    def test_reclaim_then_free_list_reuse(self, plane):
        a = plane.publish_array(np.zeros(2048, dtype=np.uint8), consumers=[0])
        b = plane.publish_array(np.zeros(2048, dtype=np.uint8), consumers=[0])
        assert b.offset > a.offset
        _ack_all(plane, a)
        _ack_all(plane, b)
        plane.reclaim()
        c = plane.publish_array(np.zeros(2048, dtype=np.uint8), consumers=[0])
        # freed space is reused instead of bumping the arena further
        assert c.offset in (a.offset, b.offset)

    def test_full_arena_reclaims_acked_blocks_inline(self, plane):
        chunk = np.zeros(200 * 1024, dtype=np.uint8)
        refs = [plane.publish_array(chunk, consumers=[0])]
        _ack_all(plane, refs[0])
        # keep publishing: once the arena fills, _publish must reclaim
        # the acked block instead of growing
        for _ in range(3):
            r = plane.publish_array(chunk, consumers=[0])
            refs.append(r)
            _ack_all(plane, r)
        assert all(r.segment == plane.primary for r in refs)

    def test_reset_party_rewinds_and_unlinks_grown(self, plane):
        big = np.zeros(1 << 20, dtype=np.uint8)
        ref = plane.publish_array(big, consumers=[0])
        grown = ref.segment
        assert os.path.exists(os.path.join("/dev/shm", grown))
        small = plane.publish_array(np.zeros(4096, dtype=np.uint8),
                                    consumers=[0])
        reclaimed = plane.reset_party()
        assert reclaimed > big.nbytes
        assert not os.path.exists(os.path.join("/dev/shm", grown))
        # the primary arena rewound: the next publish reuses the start
        again = plane.publish_array(np.zeros(4096, dtype=np.uint8),
                                    consumers=[0])
        assert again.offset == small.offset
        # refs from before the reset are dead, not dangling
        plane.attach(0)
        with pytest.raises(ShmError):
            plane.read(small)

    def test_sweep_orphans_reclaims_crashed_workers_segments(self, plane):
        # a worker that died mid-job leaves its grown segment behind;
        # simulate one by hand under the plane's prefix
        from multiprocessing import shared_memory
        from repro.machine.shm import _untrack

        orphan = f"{plane.prefix}-p0-g99"
        shm = shared_memory.SharedMemory(name=orphan, create=True, size=4096)
        _untrack(orphan)
        shm.close()
        assert os.path.exists(os.path.join("/dev/shm", orphan))
        assert plane.sweep_orphans() >= 1
        assert not os.path.exists(os.path.join("/dev/shm", orphan))

    def test_close_unlink_removes_primary(self):
        p = ShmDataPlane(nranks=2, segment_bytes=1 << 20)
        primary = p.primary
        assert os.path.exists(os.path.join("/dev/shm", primary))
        p.close(unlink=True)
        assert not os.path.exists(os.path.join("/dev/shm", primary))
        p.close(unlink=True)  # idempotent

    def test_tiny_segment_rejected(self):
        with pytest.raises(ShmError, match="no room"):
            ShmDataPlane(nranks=8, segment_bytes=1024)


# --- encode/decode protocol ------------------------------------------------


class TestEncodeDecode:
    def test_threshold_boundary_exact(self, plane):
        below = np.zeros(plane.threshold - 1, dtype=np.uint8)
        at = np.zeros(plane.threshold, dtype=np.uint8)
        enc, nbytes, blocks, fallbacks = plane.encode(
            {"below": below, "at": at}, consumers=[0])
        assert enc["below"] is below          # small: untouched
        assert isinstance(enc["at"], ShmRef)  # >= threshold: hoisted
        assert nbytes == at.nbytes and blocks == 1 and fallbacks == 0

    def test_bytes_respect_threshold(self, plane):
        enc, nbytes, blocks, _ = plane.encode(
            [b"x" * (plane.threshold - 1), b"y" * plane.threshold],
            consumers=[0])
        assert isinstance(enc[0], bytes) and isinstance(enc[1], ShmRef)
        assert blocks == 1

    def test_object_dtype_arrays_never_hoisted(self, plane):
        arr = np.array([{"a": 1}] * 4096, dtype=object)
        enc, _, blocks, _ = plane.encode(arr, consumers=[0])
        assert enc is arr and blocks == 0

    def test_nested_structure_round_trip(self, plane):
        big = np.arange(2048, dtype=np.float64)
        obj = {"k": (1, [big, "tiny"], {"inner": big * 2}), "n": None}
        enc, nbytes, blocks, fallbacks = plane.encode(obj, consumers=[0])
        assert blocks == 2 and fallbacks == 0
        assert isinstance(enc["k"][1][0], ShmRef)
        assert obj["k"][1][0] is big, "encode must not mutate the original"
        plane.attach(0)
        dec, dbytes, dblocks = plane.decode(enc)
        assert dblocks == 2 and dbytes == nbytes
        assert np.array_equal(dec["k"][1][0], big)
        assert np.array_equal(dec["k"][2]["inner"], big * 2)
        assert dec["k"][1][1] == "tiny"

    def test_untouched_subtrees_keep_identity(self, plane):
        small = {"a": [1, 2, 3], "b": np.zeros(4)}
        enc, _, blocks, _ = plane.encode(small, consumers=[0])
        assert enc is small and blocks == 0

    def test_shm_fields_hoist_copies_never_mutates(self, plane):
        class Carrier:
            __shm_fields__ = ("payload",)

            def __init__(self, payload, label):
                self.payload = payload
                self.label = label

        big = np.ones(4096)
        orig = Carrier(big, "x")
        enc, _, blocks, _ = plane.encode(orig, consumers=[0])
        assert blocks == 1
        assert enc is not orig and isinstance(enc.payload, ShmRef)
        assert orig.payload is big, "original object must stay intact"
        assert enc.label == "x"
        plane.attach(0)
        dec, _, dblocks = plane.decode(enc)
        assert dblocks == 1
        assert np.array_equal(dec.payload, big)

    def test_fallback_when_grow_fails(self, plane, monkeypatch):
        def no_grow(need):
            raise OSError("no space on /dev/shm")

        monkeypatch.setattr(plane, "_grow", no_grow)
        huge = np.zeros(1 << 20, dtype=np.uint8)
        enc, nbytes, blocks, fallbacks = plane.encode(huge, consumers=[0])
        assert enc is huge, "fallback must return the original payload"
        assert fallbacks == 1 and blocks == 0 and nbytes == 0

    def test_env_kill_switch_and_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert shm_enabled_default() is False
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled_default() is True
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "4096")
        assert shm_threshold_default() == 4096
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "banana")
        assert shm_threshold_default() == DEFAULT_THRESHOLD


class TestShipping:
    def test_dumps_via_hoists_large_programs(self, plane):
        payload = {"blob": os.urandom(1 << 16)}
        wire, shipped = shipping.dumps_via(payload, plane,
                                           range(plane.nranks))
        assert isinstance(wire, ShmRef) and shipped > 0
        plane.attach(0)
        assert shipping.loads_via(wire, plane) == payload

    def test_dumps_via_small_stays_pickled(self, plane):
        wire, shipped = shipping.dumps_via({"x": 1}, plane,
                                           range(plane.nranks))
        assert isinstance(wire, bytes) and shipped == 0
        assert shipping.loads_via(wire, None) == {"x": 1}

    def test_loads_via_ref_without_plane_fails(self, plane):
        from repro.serve.shipping import ShippingError

        wire, _ = shipping.dumps_via({"blob": os.urandom(1 << 16)}, plane,
                                     range(plane.nranks))
        with pytest.raises(ShippingError):
            shipping.loads_via(wire, None)


# --- differential integration ---------------------------------------------


def _jacobi(backend, shm):
    # threshold of 256B so even this small mesh's gathers cross the plane
    mesh = five_point_grid(12, 12)
    init = np.random.default_rng(7).random(mesh.n)
    return build_jacobi(mesh, 4, machine=IDEAL, initial=init,
                        backend=backend, shm=shm, shm_threshold=256,
                        mp_timeout=60.0)


class TestDifferential:
    def test_jacobi_bit_identical_with_plane_on(self):
        pair = run_differential(lambda b: _jacobi(b, shm=True),
                                lambda p: p.run(sweeps=4))
        assert_arrays_identical(pair)
        assert_counters_identical(pair)
        assert_values_equal(pair)

    def test_jacobi_bit_identical_with_plane_off(self):
        pair = run_differential(lambda b: _jacobi(b, shm=False),
                                lambda p: p.run(sweeps=4))
        assert_arrays_identical(pair)
        assert_counters_identical(pair)

    def test_plane_moves_bytes_only_when_on(self):
        on = _jacobi("mp", shm=True).run(sweeps=4)
        off = _jacobi("mp", shm=False).run(sweeps=4)
        on_bytes = sum(s.counters.get("shm_bytes_sent", 0)
                       for s in on.engine.stats)
        off_bytes = sum(s.counters.get("shm_bytes_sent", 0)
                        for s in off.engine.stats)
        assert on_bytes > 0
        assert off_bytes == 0
        # transport-independent accounting: wire bytes match exactly
        for a, b in zip(on.engine.stats, off.engine.stats):
            assert a.bytes_sent == b.bytes_sent
            assert a.messages_sent == b.messages_sent

    def test_raw_engine_large_payload_round_trip(self):
        payload = np.arange(1 << 16, dtype=np.float64)

        def prog(rank):
            if rank.id == 0:
                yield Send(1, payload, tag=3)
                return 0.0
            msg = yield Recv(source=0, tag=3)
            yield Compute(0.0)
            return float(msg.payload.sum())

        eng = MpEngine(IDEAL, topology=FullyConnected(2), timeout=60.0,
                       shm=True, shm_threshold=1024)
        res = eng.run(prog)
        assert res.values[1] == float(payload.sum())
        assert res.stats[0].counters.get("shm_bytes_sent", 0) >= payload.nbytes

    def test_pool_ships_and_reclaims(self):
        mesh = five_point_grid(12, 12)
        init = np.random.default_rng(11).random(mesh.n)
        with RankPool(4, timeout=60.0) as pool:
            sols = []
            for _ in range(2):
                prog = build_jacobi(mesh, 4, machine=IDEAL, initial=init,
                                    pool=pool)
                prog.run(sweeps=4)
                sols.append(prog.solution.copy())
            assert pool.shm_ship_bytes > 0, "schedule ship skipped the plane"
            assert pool.shm_reclaimed_bytes > 0, "reset reclaimed nothing"
        assert np.array_equal(sols[0], sols[1])
        sim = build_jacobi(mesh, 4, machine=IDEAL, initial=init)
        sim.run(sweeps=4)
        assert np.array_equal(sols[0], sim.solution)

    def test_pool_no_shm_leak_after_close(self):
        before = {n for n in os.listdir("/dev/shm")
                  if n.startswith("repro-shm-")}
        mesh = five_point_grid(8, 8)
        init = np.random.default_rng(3).random(mesh.n)
        with RankPool(2, timeout=60.0) as pool:
            prog = build_jacobi(mesh, 2, machine=IDEAL, initial=init,
                                pool=pool)
            prog.run(sweeps=2)
        after = {n for n in os.listdir("/dev/shm")
                 if n.startswith("repro-shm-")}
        assert after <= before, f"leaked segments: {after - before}"
