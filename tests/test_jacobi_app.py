"""Integration tests: the paper's Figure 4 Jacobi program end-to-end."""

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.distributions import Block, BlockCyclic, Custom, Cyclic
from repro.machine.cost import IDEAL, IPSC2, NCUBE7
from repro.meshes.partition import coordinate_bisection
from repro.meshes.regular import five_point_grid, reference_sweep
from repro.meshes.unstructured import average_degree, random_unstructured_mesh


def oracle(mesh, init, sweeps):
    v = np.asarray(init, dtype=np.float64).copy()
    for _ in range(sweeps):
        v = reference_sweep(mesh, v)
    return v


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_regular_grid_matches_oracle(self, p, rng):
        mesh = five_point_grid(8, 8)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, p, machine=IDEAL, initial=init)
        prog.run(sweeps=4)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 4))

    @pytest.mark.parametrize("dist_mk", [
        lambda n, p: Cyclic(),
        lambda n, p: BlockCyclic(3),
    ], ids=["cyclic", "block_cyclic"])
    def test_alternative_distributions(self, dist_mk, rng):
        """Paper §2.4: 'a variety of distribution patterns can easily be
        tried by trivial modification of this program'."""
        mesh = five_point_grid(8, 8)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 4, machine=IDEAL, initial=init,
                            dist=dist_mk(mesh.n, 4))
        prog.run(sweeps=3)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 3))

    def test_custom_partition_distribution(self, rng):
        mesh, pts = random_unstructured_mesh(120, seed=1)
        owners = coordinate_bisection(pts, 4)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 4, machine=IDEAL, initial=init,
                            dist=Custom(owners))
        prog.run(sweeps=3)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 3))

    def test_unstructured_mesh(self, rng):
        mesh, _ = random_unstructured_mesh(150, seed=2)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 8, machine=IDEAL, initial=init)
        prog.run(sweeps=5)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 5))

    def test_rectangular_nonsquare_grid(self, rng):
        mesh = five_point_grid(4, 16)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 4, machine=IDEAL, initial=init)
        prog.run(sweeps=3)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 3))

    def test_jacobi_converges_to_flat_field(self):
        """Physics sanity: repeated averaging smooths towards consensus."""
        mesh = five_point_grid(8, 8)
        rng = np.random.default_rng(0)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 4, machine=IDEAL, initial=init)
        prog.run(sweeps=60)
        assert prog.solution.std() < init.std() / 10


class TestAnalysisPaths:
    def test_copy_loop_compile_time_relax_runtime(self):
        mesh = five_point_grid(8, 8)
        prog = build_jacobi(mesh, 4, machine=IDEAL)
        res = prog.run(sweeps=1)
        strategies = res.strategies()
        assert strategies["jacobi-copy"] == "compile-time"
        assert strategies["jacobi-relax"] == "inspector"

    def test_inspector_amortised_across_sweeps(self):
        mesh = five_point_grid(8, 8)
        p1 = build_jacobi(mesh, 4, machine=NCUBE7)
        r1 = p1.run(sweeps=1)
        p100 = build_jacobi(mesh, 4, machine=NCUBE7)
        r100 = p100.run(sweeps=20)
        # inspector runs once in both cases
        assert r100.inspector_time == pytest.approx(r1.inspector_time, rel=1e-9)
        assert r100.inspector_overhead < r1.inspector_overhead

    def test_executor_time_linear_in_sweeps(self):
        mesh = five_point_grid(8, 8)
        r2 = build_jacobi(mesh, 4, machine=NCUBE7).run(sweeps=2)
        r6 = build_jacobi(mesh, 4, machine=NCUBE7).run(sweeps=6)
        # Receive-wait attribution varies slightly with clock skew around
        # the first sweep, so linearity holds to ~1%, not exactly.
        assert r6.executor_time == pytest.approx(3 * r2.executor_time, rel=0.01)


class TestMachineProfiles:
    def test_ipsc_faster_than_ncube(self):
        mesh = five_point_grid(16, 16)
        rn = build_jacobi(mesh, 4, machine=NCUBE7).run(sweeps=2)
        ri = build_jacobi(mesh, 4, machine=IPSC2).run(sweeps=2)
        assert ri.total_time < rn.total_time
        assert ri.inspector_time < rn.inspector_time

    def test_more_processors_faster_executor(self):
        mesh = five_point_grid(16, 16)
        times = [
            build_jacobi(mesh, p, machine=NCUBE7).run(sweeps=2).executor_time
            for p in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_ncube_inspector_u_shape(self):
        """The inspector curve dips then rises (paper Figure 7 behaviour):
        with the calibrated combine cost the P=16 inspector is cheaper than
        both the P=2 and P=128 inspectors on the NCUBE at the paper's
        128x128 mesh."""
        mesh = five_point_grid(128, 128)
        insp = {
            p: build_jacobi(mesh, p, machine=NCUBE7).run(sweeps=1).inspector_time
            for p in (2, 16, 128)
        }
        assert insp[16] < insp[2]
        assert insp[16] < insp[128]


class TestMeshes:
    def test_five_point_counts(self):
        mesh = five_point_grid(4, 5)
        # corners 2, edges 3, interior 4
        assert mesh.count.min() == 2 and mesh.count.max() == 4
        assert mesh.total_references() == int(mesh.count.sum())

    def test_five_point_adjacency_symmetric(self):
        mesh = five_point_grid(6, 7)
        live = np.arange(mesh.width)[None, :] < mesh.count[:, None]
        edges = set()
        for i in range(mesh.n):
            for j in range(mesh.count[i]):
                edges.add((i, int(mesh.adj[i, j])))
        assert all((b, a) in edges for a, b in edges)

    def test_coefficients_row_stochastic(self):
        mesh = five_point_grid(5, 5)
        np.testing.assert_allclose(mesh.coef.sum(axis=1), 1.0)

    def test_reference_sweep_identity_for_isolated(self):
        mesh = five_point_grid(1, 1)  # one node, zero neighbours
        v = np.array([3.0])
        np.testing.assert_array_equal(reference_sweep(mesh, v), v)

    def test_unstructured_degree_near_six(self):
        """Paper §4: 2-d unstructured nodes average ~six neighbours."""
        mesh, _ = random_unstructured_mesh(500, seed=3)
        assert 5.0 <= average_degree(mesh) <= 7.0

    def test_unstructured_adjacency_symmetric(self):
        mesh, _ = random_unstructured_mesh(100, seed=4)
        edges = set()
        for i in range(mesh.n):
            for j in range(mesh.count[i]):
                edges.add((i, int(mesh.adj[i, j])))
        assert all((b, a) in edges for a, b in edges)

    def test_unstructured_deterministic_by_seed(self):
        m1, p1 = random_unstructured_mesh(80, seed=5)
        m2, p2 = random_unstructured_mesh(80, seed=5)
        np.testing.assert_array_equal(m1.adj, m2.adj)
        np.testing.assert_array_equal(p1, p2)

    def test_mesh_validate_catches_bad_adj(self):
        mesh = five_point_grid(3, 3)
        mesh.adj[0, 0] = 99
        with pytest.raises(AssertionError):
            mesh.validate()


class TestPartitioners:
    def test_block_partition_matches_block_dist(self):
        from repro.meshes.partition import block_partition

        owners = block_partition(10, 3)
        assert owners.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_bisection_balanced(self):
        from repro.meshes.partition import coordinate_bisection, partition_imbalance

        rng = np.random.default_rng(0)
        pts = rng.random((1000, 2))
        for p in (2, 4, 7, 8):
            owners = coordinate_bisection(pts, p)
            assert partition_imbalance(owners, p) < 1.05
            assert set(np.unique(owners)) == set(range(p))

    def test_bisection_cuts_fewer_edges_than_random(self):
        from repro.meshes.partition import coordinate_bisection, edge_cut

        mesh, pts = random_unstructured_mesh(400, seed=6)
        rcb = coordinate_bisection(pts, 8)
        rng = np.random.default_rng(1)
        rand = rng.integers(0, 8, size=mesh.n)
        assert edge_cut(mesh.adj, mesh.count, rcb) < edge_cut(
            mesh.adj, mesh.count, rand
        )
