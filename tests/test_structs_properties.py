"""Hypothesis properties of the distributed structures.

Three invariant families the subsystem's correctness argument names:

* **bucket-ownership bijection** — every key maps to exactly one bucket
  in range and exactly one owning rank, the map is a pure function of
  the key (stable across worlds: the *bucket* never depends on P, the
  owner is exactly the Cyclic deal of that bucket), and local slots
  round-trip through the distribution.
* **rebalance** — growing the bucket space preserves the exact contents,
  and the keys that move are *exactly* those whose residue changed:
  ``structs_rehashed_keys`` equals the count of ``mix % new != mix %
  old`` and ``structs_migrated_keys`` the count of owner changes.  Over
  a large fixed sample the moved fraction lands near the consistent-
  rehash prediction ``1 - old/new``.
* **queue order** — any interleaving of pushes and pops on any world
  size replays a sequential FIFO exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structs import (
    DHash,
    DQueue,
    bucket_dist,
    bucket_of,
    grow_buckets,
    merge_results,
    mix64,
    normalize_buckets,
    owner_of,
)

pytestmark = pytest.mark.timeout(300)

keys_st = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62),
    min_size=1, max_size=200, unique=True,
)


class TestBucketOwnershipBijection:
    @given(keys=keys_st,
           nbuckets=st.integers(min_value=3, max_value=500),
           nranks=st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_every_key_has_exactly_one_home(self, keys, nbuckets, nranks):
        arr = np.asarray(keys, dtype=np.int64)
        buckets = bucket_of(arr, nbuckets)
        owners = owner_of(arr, nbuckets, nranks)
        assert buckets.shape == owners.shape == arr.shape
        assert (0 <= buckets).all() and (buckets < nbuckets).all()
        assert (0 <= owners).all() and (owners < nranks).all()
        # Deterministic: the same key always lands in the same place.
        assert np.array_equal(buckets, bucket_of(arr, nbuckets))
        # The owner is exactly the Cyclic deal of the bucket.
        dist = bucket_dist(nbuckets, nranks)
        assert np.array_equal(owners, np.asarray(dist.owner(buckets)))

    @given(keys=keys_st, nbuckets=st.integers(min_value=3, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_bucket_independent_of_world_size(self, keys, nbuckets):
        arr = np.asarray(keys, dtype=np.int64)
        reference = bucket_of(arr, nbuckets)
        for nranks in (1, 2, 4, 8):
            assert np.array_equal(reference, bucket_of(arr, nbuckets))
            owners = owner_of(arr, nbuckets, nranks)
            assert np.array_equal(owners, reference % nranks)

    @given(nbuckets=st.integers(min_value=3, max_value=300),
           nranks=st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_local_slots_round_trip(self, nbuckets, nranks):
        dist = bucket_dist(nbuckets, nranks)
        buckets = np.arange(nbuckets, dtype=np.int64)
        owners = np.asarray(dist.owner(buckets))
        locals_ = np.asarray(dist.to_local(buckets))
        back = np.asarray(dist.to_global(owners, locals_))
        assert np.array_equal(back, buckets)
        # Bijection within each rank: no two buckets share (owner, slot).
        pairs = set(zip(owners.tolist(), locals_.tolist()))
        assert len(pairs) == nbuckets


class TestRebalanceProperties:
    @given(keyvals=st.lists(
               st.tuples(st.integers(min_value=0, max_value=2**40),
                         st.floats(min_value=-1e6, max_value=1e6,
                                   allow_nan=False)),
               min_size=1, max_size=60,
               unique_by=lambda kv: kv[0]),
           nranks=st.sampled_from([1, 2, 4]),
           growths=st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_contents_preserved_and_move_counts_exact(self, keyvals, nranks,
                                                      growths):
        keys = np.asarray([k for k, _ in keyvals], dtype=np.int64)
        vals = np.asarray([v for _, v in keyvals], dtype=np.float64)
        old_n = 31
        h = DHash(nranks, nbuckets=old_n)
        h.insert_many(keys, vals)
        before = h.snapshot()
        new_n = old_n
        for _ in range(growths):
            new_n = grow_buckets(new_n)
        h.rebalance(new_n)
        after = h.snapshot()
        assert np.array_equal(before["keys"], after["keys"])
        assert np.array_equal(before["values"], after["values"])
        # The exact predictions, computable from the hash alone:
        mixed = mix64(keys)
        rehashed = int(np.count_nonzero(
            mixed % np.uint64(new_n) != mixed % np.uint64(old_n)))
        old_owner = owner_of(keys, old_n, nranks)
        new_owner = owner_of(keys, new_n, nranks)
        migrated = int(np.count_nonzero(old_owner != new_owner))
        merged = merge_results(h.op_results)
        assert merged.counter_sum("structs_rehashed_keys") == rehashed
        assert merged.counter_sum("structs_migrated_keys") == migrated
        # And the snapshot agrees on where everything now lives.
        assert np.array_equal(after["buckets"], bucket_of(after["keys"], new_n))
        assert np.array_equal(after["owners"],
                              owner_of(after["keys"], new_n, nranks))

    def test_moved_fraction_tracks_consistent_rehash_prediction(self):
        # Statistical leg on a large fixed sample: growing n -> 2n+1
        # re-buckets ~ 1 - old/new ~ half the keys, not all of them.
        rng = np.random.default_rng(42)
        keys = rng.permutation(1 << 20)[:40000].astype(np.int64)
        old_n, new_n = 1023, grow_buckets(1023)
        mixed = mix64(keys)
        moved = np.count_nonzero(
            mixed % np.uint64(new_n) != mixed % np.uint64(old_n))
        predicted = 1.0 - old_n / new_n
        assert abs(moved / len(keys) - predicted) < 0.02


class TestQueueOrder:
    @given(script=st.lists(
               st.tuples(st.integers(min_value=1, max_value=15),
                         st.floats(min_value=0.0, max_value=1.0)),
               min_size=1, max_size=15),
           nranks=st.sampled_from([1, 2, 3, 4]))
    @settings(max_examples=30, deadline=None)
    def test_pop_order_equals_sequential_reference(self, script, nranks):
        q = DQueue(nranks)
        reference: list = []
        cursor = 0
        popped: list = []
        counter = 0.0
        for push_n, pop_frac in script:
            vals = np.arange(counter, counter + push_n, dtype=np.float64)
            counter += push_n
            q.push_many(vals)
            reference.extend(vals.tolist())
            take = int(pop_frac * len(q))
            if take:
                popped.extend(q.pop_many(take).tolist())
                cursor += take
        popped.extend(q.pop_many(len(q)).tolist())
        assert popped == reference

    @given(n=st.integers(min_value=1, max_value=64),
           nranks=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_tickets_deal_round_robin(self, n, nranks):
        q = DQueue(nranks)
        q.push_many(np.ones(n))
        snap = q.snapshot()
        assert np.array_equal(snap["owners"], snap["tickets"] % nranks)
        sizes = [len(seg) for seg in q._segments]
        assert max(sizes) - min(sizes) <= 1
