"""Unit and end-to-end tests for repro.autopilot: drift detection on a
fake clock, the PlanStore's stamped compare-and-swap (the promotion
hot-swap vs shard store-back race), the A/B decision logic (promote /
reject / rollback), and the full observe → drift → shadow → A/B →
promote loop on a live 2-shard fleet.
"""

import json
import time

import pytest

from repro.autopilot import (
    AutopilotJournal,
    AutopilotPolicy,
    DriftDetector,
    DriftPolicy,
    has_profiler,
    profiler_for,
)
from repro.autopilot.daemon import Campaign
from repro.errors import KaliError
from repro.serve.autoscale import HysteresisLatch
from repro.tune.store import PlanStore


def _sample(imbalance=1.0, remote=0.0, invalidation=0.0, wall=0.01):
    return {"imbalance": imbalance, "remote_fraction": remote,
            "invalidation_rate": invalidation, "virtual_s": 0.0,
            "wall_s": wall}


# --- the shared hysteresis primitive --------------------------------------


def test_hysteresis_latch_two_watermarks():
    latch = HysteresisLatch(1.6, 1.2)
    latch.observe(1.4, 0)                      # in the band: nothing held
    assert latch.high_since is None and latch.low_since is None
    latch.observe(1.7, 1)
    assert latch.high_since == 1
    latch.observe(1.9, 2)                      # held, not restarted
    assert latch.high_since == 1
    assert latch.high_held(3, 2) and not latch.high_held(2, 2)
    latch.observe(1.0, 4)                      # through the low watermark
    assert latch.high_since is None and latch.low_since == 4
    with pytest.raises(KaliError):
        HysteresisLatch(1.0, 1.0)


# --- drift detection on a fake clock (sample-index time) ------------------


def test_drift_fires_exactly_after_step_change():
    """window=4, sustain=2, high=1.6: a 1.0 -> 2.0 step at sample 10
    pushes the windowed mean over 1.6 at sample 12, so the detector
    fires at sample 13 — not a sample earlier or later."""
    det = DriftDetector(DriftPolicy(window=4, sustain=2, cooldown=8))
    events = []
    for t in range(20):
        value = 1.0 if t < 10 else 2.0
        event = det.observe(_sample(imbalance=value))
        if event:
            events.append((t, event))
    assert [t for t, _ in events] == [13]
    assert events[0][1]["signals"] == {"imbalance": 2.0}
    assert det.fired == 1


def test_drift_sustain_one_fires_on_crossing_sample():
    det = DriftDetector(DriftPolicy(window=4, sustain=1, cooldown=8))
    fired_at = [t for t in range(20)
                if det.observe(_sample(imbalance=1.0 if t < 10 else 2.0))]
    assert fired_at == [12]                    # mean crosses 1.6 at 12


def test_drift_slow_ramp_fires_once_at_crossing():
    """v(t) = 1.0 + 0.02t: the window-4 mean is 1.0 + 0.02(t - 1.5),
    crossing 1.6 at t=32; sustain=2 fires at t=33 — exactly once, since
    the signal stays high and the detector disarms after firing."""
    det = DriftDetector(DriftPolicy(window=4, sustain=2, cooldown=8))
    fired_at = [t for t in range(60)
                if det.observe(_sample(imbalance=1.0 + 0.02 * t))]
    assert fired_at == [33]


def test_drift_noisy_stationary_never_fires():
    det = DriftDetector(DriftPolicy(window=4, sustain=2, cooldown=8))
    noisy = [1.45, 1.15, 1.40, 1.20]           # mean ~1.3, spikes to 1.45
    assert all(det.observe(_sample(imbalance=noisy[t % 4])) is None
               for t in range(100))
    assert det.fired == 0


def test_drift_hysteresis_blocks_refire_until_rearm():
    """After a fire the signal hovering above the LOW watermark must
    never refire (disarmed), even past the cooldown; only falling
    through low rearms it, after which a new excursion fires again."""
    det = DriftDetector(DriftPolicy(window=4, sustain=2, cooldown=4))
    t = 0

    def feed(value, n):
        nonlocal t
        fired = []
        for _ in range(n):
            if det.observe(_sample(imbalance=value)):
                fired.append(t)
            t += 1
        return fired

    assert feed(1.0, 10) == []
    assert feed(2.0, 10) == [13]               # the step-change fire
    # Oscillate between the watermarks: above low, sometimes above high.
    fired = []
    for _ in range(10):
        fired += feed(1.7, 1) + feed(1.3, 1)
    assert fired == []                         # disarmed: no flapping
    assert feed(0.8, 8) == []                  # mean falls through low
    assert det.describe()["armed"]["imbalance"] is True
    refires = feed(2.0, 8)
    assert len(refires) == 1                   # rearmed: exactly one more
    assert det.fired == 2


def test_drift_cooldown_separates_distinct_signals():
    """With a long cooldown, a second signal crossing its own watermark
    right after the first fire must wait the cooldown out."""
    det = DriftDetector(DriftPolicy(window=2, sustain=1, cooldown=10))
    det.observe(_sample(imbalance=2.0))
    event = det.observe(_sample(imbalance=2.0))
    assert event and list(event["signals"]) == ["imbalance"]
    # remote_fraction now crosses its high too — still inside cooldown.
    for _ in range(5):
        assert det.observe(_sample(imbalance=1.0, remote=0.9)) is None


# --- PlanStore: stamped compare-and-swap (satellite 1) --------------------


def _plan_doc(tag):
    return {"arrays": ["a"], "layout": {"kind": "block"},
            "meta": {"tag": tag}}


def test_plan_store_cas_loses_to_concurrent_writer(tmp_path):
    """The promotion race: writer A loads a stamp, writer B replaces the
    entry, A's CAS must fail, count the race, and leave B's entry."""
    store_a = PlanStore(tmp_path)
    store_b = PlanStore(tmp_path)
    assert store_a.store("k", _plan_doc("original"))
    _, stamp = store_a.load_stamped("k")

    assert store_b.store("k", _plan_doc("shard-store-back"))
    assert store_a.store("k", _plan_doc("promotion"), expect=stamp) is False
    assert store_a.races == 1
    assert store_a.load("k")["meta"]["tag"] == "shard-store-back"

    # Re-read gives a fresh stamp the CAS now succeeds against.
    _, fresh = store_a.load_stamped("k")
    assert store_a.store("k", _plan_doc("promotion"), expect=fresh) is True
    assert store_b.load("k")["meta"]["tag"] == "promotion"


def test_plan_store_memo_invalidated_by_out_of_band_rewrite(tmp_path):
    store = PlanStore(tmp_path)
    other = PlanStore(tmp_path)
    store.store("k", _plan_doc("v1"))
    assert store.load("k")["meta"]["tag"] == "v1"   # memoized
    time.sleep(0.01)                                # distinct mtime_ns
    other.store("k", _plan_doc("v2"))
    assert store.load("k")["meta"]["tag"] == "v2"   # stat mismatch -> reread


def test_plan_store_cas_none_means_must_not_exist(tmp_path):
    store = PlanStore(tmp_path)
    assert store.store("k", _plan_doc("first"), expect=None) is True
    assert store.store("k", _plan_doc("second"), expect=None) is False
    assert store.load("k")["meta"]["tag"] == "first"


def test_plan_store_discard(tmp_path):
    store = PlanStore(tmp_path)
    store.store("k", _plan_doc("v1"))
    assert store.discard("k") is True
    assert store.load("k") is None
    assert store.discard("k") is False


def test_plan_store_stress_many_writers(tmp_path):
    """Interleaved stamped writers: every lost CAS is reported False and
    the surviving entry is always the last *successful* store."""
    import threading

    store = PlanStore(tmp_path)
    store.store("k", _plan_doc("seed"))
    outcomes = []
    lock = threading.Lock()

    def writer(i):
        mine = PlanStore(tmp_path)
        for j in range(10):
            doc, stamp = mine.load_stamped("k")
            ok = mine.store("k", _plan_doc(f"w{i}-{j}"), expect=stamp)
            with lock:
                outcomes.append(ok)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    final = store.load("k")
    assert final is not None and final["meta"]["tag"].startswith("w")
    assert any(outcomes)                # somebody won
    # The file is a valid store entry (no torn writes).
    assert json.loads((tmp_path / "k.tuneplan").read_text())["key"] == "k"


# --- journal ---------------------------------------------------------------


def test_journal_roundtrip_and_corruption_tolerance(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = AutopilotJournal(path)
    journal.append("drift", family="f1")
    journal.append("decision", decision="promoted", family="f1")
    with open(path, "a") as fh:
        fh.write("not json\n")
        fh.write(json.dumps({"format": "other-v1", "event": "x"}) + "\n")
    entries = AutopilotJournal.read(path)
    assert [e["event"] for e in entries] == ["drift", "decision"]
    assert entries[0]["seq"] == 1 and entries[1]["seq"] == 2
    assert journal.decisions() == {"promoted": 1, "rejected": 0,
                                   "rolled-back": 0}
    assert AutopilotJournal.read(str(tmp_path / "absent.jsonl")) == []


# --- profilers -------------------------------------------------------------


def test_profiler_registry_and_determinism():
    import numpy as np

    assert has_profiler("jacobi_served")
    profiler = profiler_for("jacobi_served")
    a = profiler(2, {"nodes": 120, "seed": 5})
    b = profiler(2, {"nodes": 120, "seed": 5})
    assert a.n == b.n == 120
    assert np.array_equal(a.current, b.current)
    assert np.array_equal(a.table, b.table)
    assert len(a.row_weights) == len(a.arrays)
    with pytest.raises(KaliError):
        profiler_for("no_such_kind")


# --- the A/B decision (unit level, synthetic records) ---------------------


def _ab_fixture(tmp_path, monkeypatch=None):
    """A live 2-shard server + autopilot with a synthetic in-flight
    campaign, so _decide_ab / _verify_promotion can be driven directly."""
    from repro.autopilot.daemon import Autopilot
    from repro.serve.server import JobServer

    server = JobServer(2, shards=2, tune_dir=str(tmp_path / "tune"))
    ap = Autopilot(server, AutopilotPolicy(
        ab_jobs=2, min_win=0.05, verify_jobs=2, verify_grace=0,
        rollback_ratio=1.5))
    family = ap._family_for("jacobi_served", {"seed": 1})
    family.plan_key = "fam-key"
    ap.store.store("fam-key", _plan_doc("incumbent"))
    old_doc, old_stamp = ap.store.load_stamped("fam-key")
    campaign = Campaign(0.0)
    campaign.home_shard = "shard-0"
    campaign.spare_shard = "shard-1"
    campaign.old_doc, campaign.old_stamp = old_doc, old_stamp
    campaign.candidate_doc = _plan_doc("candidate")
    campaign.report = {"predicted_total_stay": 10.0,
                       "predicted_total_move": 4.0}
    family.campaign = campaign
    family.state = "ab"
    return server, ap, family


def _rec(service, sha="same"):
    return {"ok": True, "wall_s": service, "tenant": "__autopilot__",
            "summary": {"solution_sha256": sha, "virtual_s": service}}


def test_ab_promotes_when_candidate_wins(tmp_path):
    server, ap, family = _ab_fixture(tmp_path)
    a = [_rec(2.0), _rec(2.0)]
    b = [_rec(3.0), _rec(0.5)]          # first B job is warmup
    ap._decide_ab(family, a, b)
    assert family.state == "verify"
    assert family.last_decision == "promoted"
    assert ap.store.load("fam-key")["meta"]["tag"] == "candidate"
    assert ap.describe()["promoted"] == 1
    entry = ap.journal.tail(1)[0]
    assert entry["decision"] == "promoted"
    assert entry["b_mean_service_s"] == 0.5   # warmup excluded
    server.close()


def test_ab_rejects_when_candidate_loses(tmp_path):
    server, ap, family = _ab_fixture(tmp_path)
    ap._decide_ab(family, [_rec(1.0), _rec(1.0)], [_rec(1.0), _rec(1.2)])
    assert family.state == "observe" and family.campaign is None
    assert family.last_decision == "rejected"
    assert ap.store.load("fam-key")["meta"]["tag"] == "incumbent"
    assert ap.journal.tail(1)[0]["reason"] == "ab-loss"
    server.close()


def test_ab_rejects_on_divergent_solutions(tmp_path):
    server, ap, family = _ab_fixture(tmp_path)
    ap._decide_ab(family, [_rec(2.0), _rec(2.0)],
                  [_rec(0.5, sha="other"), _rec(0.5, sha="other")])
    assert family.last_decision == "rejected"
    assert ap.journal.tail(1)[0]["reason"] == "not-bit-identical"
    assert ap.store.load("fam-key")["meta"]["tag"] == "incumbent"
    server.close()


def test_ab_rejects_on_model_loss(tmp_path):
    """Measured win but the model predicts moving costs more than
    staying: the move-cost-adjusted comparison vetoes the promotion."""
    server, ap, family = _ab_fixture(tmp_path)
    family.campaign.report = {"predicted_total_stay": 4.0,
                              "predicted_total_move": 10.0}
    ap._decide_ab(family, [_rec(2.0), _rec(2.0)], [_rec(0.5), _rec(0.5)])
    assert family.last_decision == "rejected"
    assert ap.journal.tail(1)[0]["reason"] == "model-loss"
    server.close()


def test_ab_store_race_rejects_cleanly(tmp_path):
    """A shard stores back between the A/B read and the promotion CAS;
    one retry CASes against the fresh stamp and wins (the verdict holds
    regardless of which incumbent copy was on disk)."""
    server, ap, family = _ab_fixture(tmp_path)
    PlanStore(str(tmp_path / "tune")).store("fam-key",
                                            _plan_doc("store-back"))
    ap._decide_ab(family, [_rec(2.0), _rec(2.0)], [_rec(0.5), _rec(0.5)])
    assert family.last_decision == "promoted"
    assert ap.store.load("fam-key")["meta"]["tag"] == "candidate"
    assert ap.store.races >= 1
    server.close()


def test_verify_rolls_back_regressed_promotion(tmp_path):
    server, ap, family = _ab_fixture(tmp_path)
    ap._decide_ab(family, [_rec(2.0), _rec(2.0)], [_rec(0.5), _rec(0.5)])
    assert family.state == "verify"
    # Post-promotion user jobs come in far slower than the B arm said.
    for service in (2.0, 2.0):
        ap._ingest({"kind": "jacobi_served", "spec": {"seed": 1},
                    "ok": True, "summary": {}},
                   _sample(wall=service) | {"virtual_s": service}, now=0.0)
    assert family.state == "observe"
    assert family.last_decision == "rolled-back"
    assert ap.store.load("fam-key")["meta"]["tag"] == "incumbent"
    assert ap.describe()["rolled_back"] == 1
    assert ap.journal.tail(1)[0]["decision"] == "rolled-back"
    server.close()


def test_verify_keeps_healthy_promotion(tmp_path):
    server, ap, family = _ab_fixture(tmp_path)
    ap._decide_ab(family, [_rec(2.0), _rec(2.0)], [_rec(0.5), _rec(0.5)])
    for service in (0.55, 0.6):
        ap._ingest({"kind": "jacobi_served", "spec": {"seed": 1},
                    "ok": True, "summary": {}},
                   _sample(wall=service) | {"virtual_s": service}, now=0.0)
    assert family.state == "observe"
    assert family.last_decision == "promoted"
    assert ap.store.load("fam-key")["meta"]["tag"] == "candidate"
    assert ap.journal.tail(1)[0]["event"] == "verify-ok"
    server.close()


# --- end-to-end on a live 2-shard fleet (satellite 4) ---------------------


@pytest.mark.slow
def test_autopilot_end_to_end_promotion(tmp_path):
    """Induced skew -> drift -> shadow re-plan on the spare shard ->
    A/B -> promotion -> the next job replays the learned layout with
    zero moves, bit-identical to every job before it."""
    from repro.serve.server import JobServer

    policy = AutopilotPolicy(
        interval=1000.0,          # daemon dormant: the test drives step()
        drift=DriftPolicy(window=2, sustain=1, cooldown=4),
        shadow_sweeps=64, ab_jobs=2, min_win=0.0, verify_jobs=2)
    spec = {"nodes": 300, "sweeps": 6, "seed": 11}
    with JobServer(2, shards=2, tune_dir=str(tmp_path / "tune"),
                   autopilot=policy) as server:
        ap = server.autopilot
        shas = set()
        for _ in range(3):
            rec = server.submit("jacobi_served", spec,
                                tenant="t1").result(timeout=300)
            assert rec["ok"], rec.get("error")
            assert rec["summary"]["plan_applied"] is False
            shas.add(rec["summary"]["solution_sha256"])
            ap.step()

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            ap.step()
            d = ap.describe()
            if d["decisions"] >= 1 and d["campaigns_active"] == 0:
                break
            time.sleep(0.05)
        d = ap.describe()
        assert d["promoted"] == 1, ap.journal.tail(10)
        assert d["drift_events"] >= 1 and d["shadow_runs"] >= 1

        # The very next job replays the promoted layout: no moves (the
        # plan is applied before scatter) and the same solution bits.
        rec = server.submit("jacobi_served", spec,
                            tenant="t1").result(timeout=300)
        assert rec["ok"] and rec["summary"]["plan_applied"] is True
        shas.add(rec["summary"]["solution_sha256"])
        assert len(shas) == 1

        # Promotion is durable in the journal and the registry.
        entries = AutopilotJournal.read(ap.journal.path)
        assert any(e.get("decision") == "promoted" for e in entries)
        assert all(e["format"] == "repro-autopilot-v1" for e in entries)
        from repro.obs.registry import MetricsRegistry
        reg = MetricsRegistry.from_fleet(server.stat())
        assert reg.get("autopilot.promoted") == 1

        # Internal traffic was never charged to a tenant.
        stat = server.stat()
        assert "__autopilot__" not in stat.get("sheds_by_tenant", {})


def test_autopilot_requires_tune_dir():
    from repro.serve.server import JobServer

    with pytest.raises(KaliError):
        JobServer(2, shards=2, autopilot=True)


def test_autopilot_socket_command_surface(tmp_path):
    from repro.serve.server import JobServer

    with JobServer(2, shards=2, tune_dir=str(tmp_path / "t"),
                   autopilot=AutopilotPolicy(interval=1000.0)) as server:
        reply = server.handle_request({"cmd": "autopilot", "op": "status"})
        assert reply["ok"] and "decisions" in reply["autopilot"]
        reply = server.handle_request({"cmd": "autopilot", "op": "explain"})
        assert reply["ok"] and reply["explain"]["families"] == []
        reply = server.handle_request(
            {"cmd": "autopilot", "op": "force-replan",
             "kind": "jacobi_served", "spec": {"seed": 3}})
        assert reply["ok"] and reply["family"].startswith("jacobi_served:")
        reply = server.handle_request({"cmd": "autopilot", "op": "bogus"})
        assert not reply["ok"]

    with JobServer(2, shards=1) as server:
        reply = server.handle_request({"cmd": "autopilot", "op": "status"})
        assert not reply["ok"] and "not enabled" in reply["error"]


def test_force_replan_arms_unseen_family(tmp_path):
    """force-replan on a family with no traffic arms a pending force
    that opens the campaign as soon as its first record is mined."""
    from repro.autopilot.daemon import Autopilot
    from repro.serve.server import JobServer

    server = JobServer(2, shards=2, tune_dir=str(tmp_path / "tune"))
    ap = Autopilot(server, AutopilotPolicy(interval=1000.0))
    key = ap.force_replan("jacobi_served", {"seed": 9})
    ap.step(now=0.0)
    family = ap.families[key]
    assert family.force_pending is True
    assert ap.journal.tail(1)[0]["event"] == "force-armed"
    server.close()
