"""Additional engine edge cases: wildcard matching order, conservative
ANY_SOURCE resolution, message combining at the executor level."""

import numpy as np
import pytest

from repro.machine.api import ANY_SOURCE, ANY_TAG, Compute, Recv, Send
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine
from repro.machine.topology import FullyConnected


def run(prog, n, machine=IDEAL):
    return Engine(machine, topology=FullyConnected(n)).run(prog)


class TestWildcardResolution:
    def test_any_source_earliest_arrival_wins(self):
        """With two candidates queued, the earlier virtual arrival is
        matched first regardless of host-side send order."""

        def prog(rank):
            if rank.id == 0:
                first = yield Recv(source=ANY_SOURCE, tag=1)
                second = yield Recv(source=ANY_SOURCE, tag=1)
                return (first.source, second.source)
            elif rank.id == 1:
                yield Compute(5.0)
                yield Send(dest=0, payload="late", tag=1)
            else:
                yield Compute(1.0)
                yield Send(dest=0, payload="early", tag=1)

        res = run(prog, 3)
        assert res.values[0] == (2, 1)

    def test_any_source_ties_break_by_rank(self):
        def prog(rank):
            if rank.id == 0:
                got = []
                for _ in range(2):
                    msg = yield Recv(source=ANY_SOURCE, tag=1)
                    got.append(msg.source)
                return got
            else:
                yield Compute(1.0)  # identical clocks => identical arrivals
                yield Send(dest=0, payload=None, tag=1)

        res = run(prog, 3)
        assert res.values[0] == [1, 2]

    def test_any_tag_specific_source_fifo(self):
        """From one source, ANY_TAG receives in send order."""

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload="a", tag=5)
                yield Send(dest=1, payload="b", tag=3)
            else:
                m1 = yield Recv(source=0, tag=ANY_TAG)
                m2 = yield Recv(source=0, tag=ANY_TAG)
                return (m1.payload, m2.payload)

        res = run(prog, 2)
        assert res.values[1] == ("a", "b")

    def test_any_source_any_tag(self):
        def prog(rank):
            if rank.id == 0:
                msg = yield Recv(source=ANY_SOURCE, tag=ANY_TAG)
                return (msg.source, msg.tag)
            if rank.id == 1:
                yield Send(dest=0, payload=None, tag=9)

        res = run(prog, 2)
        assert res.values[0] == (1, 9)

    def test_mixed_wildcard_and_specific(self):
        """A wildcard receive must not steal a message a later specific
        receive needs, when arrivals identify them unambiguously."""

        def prog(rank):
            if rank.id == 0:
                any_msg = yield Recv(source=ANY_SOURCE, tag=1)
                spec_msg = yield Recv(source=1, tag=2)
                return (any_msg.source, spec_msg.payload)
            if rank.id == 1:
                yield Send(dest=0, payload=None, tag=1)
                yield Send(dest=0, payload="specific", tag=2)

        res = run(prog, 2)
        assert res.values[0] == (1, "specific")


class TestExecutorCombining:
    def _make(self, combine):
        from repro.core.context import KaliContext
        from repro.core.forall import Affine, AffineRead, AffineWrite, Forall, OnOwner
        from repro.distributions import Block

        n, p = 32, 4
        ctx = KaliContext(p, machine=NCUBE7, combine_messages=combine)
        rng = np.random.default_rng(0)
        a_init, b_init = rng.random(n), rng.random(n)
        ctx.array("A", n, dist=[Block()]).set(a_init)
        ctx.array("B", n, dist=[Block()]).set(b_init)
        ctx.array("C", n, dist=[Block()]).set(np.zeros(n))
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("C"),
            reads=[
                AffineRead("A", Affine(1, 1), name="a"),
                AffineRead("B", Affine(1, 1), name="b"),
            ],
            writes=[AffineWrite("C")],
            kernel=lambda i, o: o["a"] + o["b"],
            label=f"combine-{combine}",
        )

        def program(kr):
            yield from kr.forall(loop)

        res = ctx.run(program)
        return res, ctx.arrays["C"].data.copy(), a_init, b_init

    def test_combined_fewer_messages_same_result(self):
        res_c, out_c, a, b = self._make(True)
        res_s, out_s, _, _ = self._make(False)
        np.testing.assert_array_equal(out_c, out_s)
        expected = np.zeros(32)
        expected[:-1] = a[1:] + b[1:]
        np.testing.assert_allclose(out_c, expected)
        assert res_c.engine.total_messages() < res_s.engine.total_messages()

    def test_combined_wire_bytes_exclude_dict_overhead(self):
        res_c, _, _, _ = self._make(True)
        # 3 boundary exchanges, each 1 element x 8B per array + 8B symbol:
        # 2 arrays -> 32B per message.
        per_msg = res_c.engine.total_bytes() / res_c.engine.total_messages()
        assert per_msg == pytest.approx(32.0)


class TestEngineGuards:
    def test_max_ops_guard(self):
        from repro.errors import EngineError

        def prog(rank):
            while True:
                yield Compute(0.0)

        eng = Engine(IDEAL, topology=FullyConnected(1), max_ops=100)
        with pytest.raises(EngineError):
            eng.run(prog)

    def test_nranks_exceeding_topology(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Engine(IDEAL, topology=FullyConnected(2), nranks=4)

    def test_engine_without_topology_or_nranks(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Engine(IDEAL)

    def test_args_length_mismatch(self):
        from repro.errors import EngineError

        def prog(rank):
            yield Compute(0.0)

        eng = Engine(IDEAL, topology=FullyConnected(2))
        with pytest.raises(EngineError):
            eng.run(prog, args=[1])
