"""Tests for the comparison baselines (hand-coded, uncached, enumerated)."""

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.baselines import (
    amortization_ratio,
    build_enumerated_jacobi,
    build_uncached_jacobi,
    handcoded_jacobi,
    schedule_storage,
)
from repro.errors import KaliError
from repro.machine.cost import IDEAL, NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep


def oracle(mesh, init, sweeps):
    v = init.copy()
    for _ in range(sweeps):
        v = reference_sweep(mesh, v)
    return v


class TestHandCoded:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_oracle(self, p, rng):
        mesh = five_point_grid(16, 8)
        init = rng.random(mesh.n)
        hc = handcoded_jacobi(16, 8, p, IDEAL, sweeps=4, initial=init)
        np.testing.assert_allclose(hc.solution, oracle(mesh, init, 4))

    @pytest.mark.parametrize("p", [2, 4])
    def test_buffer_swap_same_numerics(self, p, rng):
        mesh = five_point_grid(8, 8)
        init = rng.random(mesh.n)
        hc = handcoded_jacobi(8, 8, p, IDEAL, sweeps=5, initial=init,
                              buffer_swap=True)
        np.testing.assert_allclose(hc.solution, oracle(mesh, init, 5))

    def test_buffer_swap_is_faster(self, rng):
        init = rng.random(64)
        plain = handcoded_jacobi(8, 8, 4, NCUBE7, sweeps=5, initial=init)
        swapped = handcoded_jacobi(8, 8, 4, NCUBE7, sweeps=5, initial=init,
                                   buffer_swap=True)
        assert swapped.executor_time < plain.executor_time

    def test_indivisible_rows_rejected(self):
        with pytest.raises(KaliError):
            handcoded_jacobi(10, 8, 4, IDEAL, sweeps=1)

    def test_kali_close_to_handcoded(self, rng):
        """The paper's §1 claim: Kali output is 'virtually identical' in
        performance to hand-written message passing.  At moderate P the
        executor gap (translation-search overhead) stays under ~25%."""
        mesh = five_point_grid(32, 32)
        init = rng.random(mesh.n)
        kali = build_jacobi(mesh, 4, machine=NCUBE7, initial=init)
        rk = kali.run(sweeps=10)
        hc = handcoded_jacobi(32, 32, 4, NCUBE7, sweeps=10, initial=init)
        assert rk.executor_time / hc.executor_time < 1.25
        np.testing.assert_allclose(kali.solution, hc.solution)


class TestUncached:
    def test_matches_oracle(self, rng):
        mesh = five_point_grid(8, 8)
        init = rng.random(mesh.n)
        prog = build_uncached_jacobi(mesh, 4, machine=IDEAL, initial=init)
        prog.run(sweeps=3)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 3))

    def test_inspector_cost_scales_with_sweeps(self):
        mesh = five_point_grid(8, 8)
        t = {}
        for s in (1, 4):
            prog = build_uncached_jacobi(mesh, 4, machine=NCUBE7)
            t[s] = prog.run(sweeps=s).inspector_time
        assert t[4] == pytest.approx(4 * t[1], rel=0.02)

    def test_cached_beats_uncached(self):
        mesh = five_point_grid(16, 16)
        cached = build_jacobi(mesh, 4, machine=NCUBE7).run(sweeps=10)
        uncached = build_uncached_jacobi(mesh, 4, machine=NCUBE7).run(sweeps=10)
        ratio = amortization_ratio(cached.total_time, uncached.total_time)
        assert ratio > 1.1
        # executor identical; only analysis differs
        assert uncached.executor_time == pytest.approx(cached.executor_time)

    def test_amortization_ratio_guard(self):
        assert amortization_ratio(0.0, 1.0) == float("inf")


class TestEnumerated:
    def test_matches_oracle(self, rng):
        mesh = five_point_grid(8, 8)
        init = rng.random(mesh.n)
        prog = build_enumerated_jacobi(mesh, 4, machine=IDEAL, initial=init)
        prog.run(sweeps=3)
        np.testing.assert_allclose(prog.solution, oracle(mesh, init, 3))

    def test_enumerated_faster_executor_on_ncube(self):
        """No binary search per remote ref -> cheaper executor (the Saltz
        trade: time for memory)."""
        mesh = five_point_grid(16, 16)
        ranged = build_jacobi(mesh, 8, machine=NCUBE7).run(sweeps=5)
        enum = build_enumerated_jacobi(mesh, 8, machine=NCUBE7).run(sweeps=5)
        assert enum.executor_time < ranged.executor_time

    def test_storage_tradeoff_reported(self):
        from repro.core.context import KaliContext
        mesh = five_point_grid(8, 8)
        prog = build_jacobi(mesh, 4, machine=IDEAL)
        schedules = []
        orig_forall = type(prog).__dict__  # noqa: F841 (documentation aid)

        def program(kr):
            yield from kr.forall(prog.copy_loop)
            yield from kr.forall(prog.relax_loop)
            schedules.append(kr.cache._store[prog.relax_loop.label])

        prog.ctx.run(program)
        stor = schedule_storage(schedules[0])
        assert stor["enumerated_entries"] >= stor["range_records"] > 0
