"""The serve front end: queue ordering, batching, the server loop, the
unix-socket protocol, and the CLI.

The expensive paths (warm mesh semantics, disk-tier equivalence) are
covered by test_serve_pool / test_serve_cache; here the jobs are small
and the assertions are about plumbing: FIFO vs priority order, the
consecutive-same-key batching rule, futures resolving with records,
failure isolation (a bad job fails *its* future, the server keeps
serving), stat/metrics shapes, and the JSON-lines socket round trip.
"""

import json
import threading
import time

import pytest

from repro.errors import KaliError
from repro.obs.registry import read_run_json
from repro.serve.__main__ import main as serve_main
from repro.serve.queue import Job, JobFuture, JobQueue, QueueClosed
from repro.serve.server import (
    JOB_KINDS,
    JobServer,
    ServeClient,
    register_job_kind,
)

pytestmark = pytest.mark.timeout(180)


def _job(kind="k", priority=0, batch_key=None, **spec):
    return Job(kind=kind, spec=spec, priority=priority, batch_key=batch_key)


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue("fifo")
        for name in ("a", "b", "c"):
            q.submit(_job(name=name, priority=99 if name == "c" else 0))
        popped = [q.next_batch()[0].spec["name"] for _ in range(3)]
        assert popped == ["a", "b", "c"]  # fifo ignores priority

    def test_priority_order_with_fifo_tiebreak(self):
        q = JobQueue("priority")
        q.submit(_job(name="low", priority=1))
        q.submit(_job(name="hi", priority=5))
        q.submit(_job(name="hi2", priority=5))
        popped = [q.next_batch()[0].spec["name"] for _ in range(3)]
        assert popped == ["hi", "hi2", "low"]

    def test_bad_policy_rejected(self):
        with pytest.raises(KaliError):
            JobQueue("lifo")

    def test_batching_consecutive_same_key(self):
        q = JobQueue("fifo")
        q.submit(_job(name="a1", batch_key="A"))
        q.submit(_job(name="a2", batch_key="A"))
        q.submit(_job(name="b", batch_key="B"))
        q.submit(_job(name="a3", batch_key="A"))
        batch = q.next_batch(max_batch=8)
        # a3 is behind b: batching never reorders past a different key
        assert [j.spec["name"] for j in batch] == ["a1", "a2"]
        assert [j.spec["name"] for j in q.next_batch(8)] == ["b"]
        assert [j.spec["name"] for j in q.next_batch(8)] == ["a3"]

    def test_batching_respects_max_batch(self):
        q = JobQueue("fifo")
        for i in range(5):
            q.submit(_job(name=i, batch_key="A"))
        assert len(q.next_batch(max_batch=3)) == 3
        assert len(q.next_batch(max_batch=3)) == 2

    def test_no_key_means_no_batching(self):
        q = JobQueue("fifo")
        q.submit(_job(name="a"))
        q.submit(_job(name="b"))
        assert len(q.next_batch(max_batch=8)) == 1

    def test_timeout_returns_empty(self):
        q = JobQueue("fifo")
        t0 = time.monotonic()
        assert q.next_batch(timeout=0.05) == []
        assert time.monotonic() - t0 < 5.0

    def test_close_semantics(self):
        q = JobQueue("fifo")
        q.submit(_job(name="pending"))
        q.close()
        with pytest.raises(QueueClosed):
            q.submit(_job(name="late"))
        # already-queued work still drains ...
        assert q.next_batch(timeout=0.0)[0].spec["name"] == "pending"
        # ... then the consumer sees end-of-queue immediately (no timeout)
        assert q.next_batch(timeout=30.0) == []
        assert q.closed

    def test_snapshot_in_scheduling_order(self):
        q = JobQueue("priority")
        q.submit(_job(name="low", priority=0))
        q.submit(_job(name="hi", priority=7))
        snap = q.snapshot()
        assert [s["spec"]["name"] for s in snap] == ["hi", "low"]
        assert q.pending() == 2

    def test_future_timeout_and_error(self):
        fut = JobFuture()
        with pytest.raises(TimeoutError):
            fut.result(timeout=0.01)
        fut.set_exception(KaliError("boom"))
        with pytest.raises(KaliError, match="boom"):
            fut.result(timeout=1.0)


JACOBI = {"rows": 8, "cols": 8, "sweeps": 2, "seed": 7}


class TestJobServer:
    def test_submit_resolves_future_with_record(self, tmp_path):
        with JobServer(2, cache_dir=str(tmp_path / "cache")) as server:
            record = server.submit("jacobi", JACOBI).result(timeout=120)
        assert record["ok"] is True
        assert record["kind"] == "jacobi"
        assert record["backend"] == "pool"
        assert record["inspector_runs"] == 2
        assert record["disk_stores"] == 2
        assert len(record["summary"]["solution_sha256"]) == 64

    def test_identical_jobs_batch_and_hit_disk(self, tmp_path):
        with JobServer(2, cache_dir=str(tmp_path / "cache")) as server:
            futures = [server.submit("jacobi", JACOBI) for _ in range(3)]
            records = [f.result(timeout=120) for f in futures]
        assert records[0]["inspector_runs"] == 2
        for r in records[1:]:
            assert r["inspector_runs"] == 0  # zero re-inspection on hits
            assert r["disk_hits"] == 2
            assert r["pool_reused"] is True
        hashes = {r["summary"]["solution_sha256"] for r in records}
        assert len(hashes) == 1  # identical jobs, identical answers
        # all three were submitted before the mesh warmed: one batch
        assert {r["batch_size"] for r in records} == {3}
        assert [r["batch_index"] for r in records] == [0, 1, 2]

    def test_failure_isolated_server_keeps_serving(self, tmp_path):
        with JobServer(2, cache_dir=str(tmp_path / "cache")) as server:
            bad = server.submit("kali", {"source": 42})  # not a string
            bad_record = bad.result(timeout=120)
            assert bad_record["ok"] is False
            assert "source" in bad_record["error"]
            good = server.submit("jacobi", JACOBI).result(timeout=120)
            assert good["ok"] is True
            assert server.failures == 1
            failed = [r for r in server.records if not r["ok"]]
            assert len(failed) == 1 and "source" in failed[0]["error"]

    def test_unknown_kind_rejected_at_submit(self):
        server = JobServer(2)
        try:
            with pytest.raises(KaliError, match="unknown job kind"):
                server.submit("fft", {})
        finally:
            server.close()

    def test_custom_job_kind(self):
        def runner(server, spec):
            from repro.apps.jacobi import build_jacobi
            from repro.meshes.regular import five_point_grid

            prog = build_jacobi(five_point_grid(6, 6), server.nranks,
                                machine=server.machine, pool=server.pool)
            res = prog.run(1)
            return res.engine, {"custom": spec.get("tag")}

        register_job_kind("custom-test", runner)
        try:
            with JobServer(2) as server:
                record = server.submit(
                    "custom-test", {"tag": "hello"}
                ).result(timeout=120)
            assert record["summary"]["custom"] == "hello"
        finally:
            del JOB_KINDS["custom-test"]

    def test_drain_and_stat(self, tmp_path):
        with JobServer(2, cache_dir=str(tmp_path / "cache"),
                       policy="priority") as server:
            for _ in range(2):
                server.submit("jacobi", JACOBI)
            done = server.drain(timeout=120)
            assert done == 2
            stat = server.stat()
        assert stat["nranks"] == 2
        assert stat["policy"] == "priority"
        assert stat["jobs_done"] == 2
        assert stat["queued"] == 0
        assert stat["pool"]["jobs_done"] == 2
        assert stat["pool"]["rebuilds"] == 0
        assert stat["disk_cache"]["entries"] == 2
        assert stat["disk_cache"]["disk_stores"] == 2

    def test_metrics_files_are_repro_run_v1(self, tmp_path):
        metrics = tmp_path / "metrics"
        with JobServer(2, cache_dir=str(tmp_path / "cache"),
                       metrics_dir=str(metrics)) as server:
            record = server.submit("jacobi", JACOBI).result(timeout=120)
        doc = json.loads(
            (metrics / f"job-{record['id']}.json").read_text()
        )
        assert doc["format"] == "repro-run-v1"
        assert doc["meta"]["source"] == "repro.serve"
        assert doc["meta"]["backend"] == "pool"
        assert doc["meta"]["pool_reused"] is False
        assert doc["nranks"] == 2
        # and the file round-trips through the registry reader
        assert read_run_json(record["metrics_file"]).nranks == 2
        reg = json.loads(
            (metrics / f"job-{record['id']}-metrics.json").read_text()
        )
        assert reg["serve.pool_reused"] == 0
        assert reg["serve.wall_s"] > 0
        assert reg["counter_sum.inspector_runs"] == 2
        assert reg["counter_sum.schedule_cache_disk_stores"] == 2

    def test_close_fails_unrun_jobs(self, tmp_path):
        server = JobServer(2)
        # never started: the queued job cannot run
        fut = server.submit("jacobi", JACOBI)
        server.close()
        with pytest.raises(KaliError, match="server closed"):
            fut.result(timeout=5)

    def test_bad_max_batch_rejected(self):
        with pytest.raises(KaliError):
            JobServer(2, max_batch=0)


@pytest.fixture
def live_server(tmp_path):
    """A JobServer answering on a unix socket, torn down via ``stop``."""
    socket_path = str(tmp_path / "serve.sock")
    server = JobServer(2, cache_dir=str(tmp_path / "cache"),
                       metrics_dir=str(tmp_path / "metrics"))
    thread = threading.Thread(
        target=server.serve_forever, args=(socket_path,), daemon=True,
    )
    thread.start()
    client = ServeClient(socket_path, timeout=120)
    for _ in range(200):  # wait for the socket to bind
        try:
            client.request("ping")
            break
        except (FileNotFoundError, ConnectionRefusedError, KaliError):
            time.sleep(0.05)
    else:
        pytest.fail("server socket never came up")
    yield socket_path, client
    client.request("stop")
    thread.join(30)
    assert not thread.is_alive()


class TestSocketFront:
    def test_protocol_round_trip(self, live_server):
        _, client = live_server
        pong = client.request("ping")
        assert pong["ok"] and pong["nranks"] == 2

        first = client.request("submit", kind="jacobi", spec=JACOBI)
        assert first["ok"] and first["job"]["inspector_runs"] == 2

        queued = client.request("submit", kind="jacobi", spec=JACOBI,
                                wait=False)
        assert queued == {"ok": True, "queued": True}
        drained = client.request("drain", timeout=120)
        assert drained["ok"] and drained["jobs_done"] == 2

        stat = client.request("stat")["stat"]
        assert stat["jobs_done"] == 2
        assert stat["disk_cache"]["disk_hits"] == 2  # second job warm

        unknown = client.request("frobnicate")
        assert not unknown["ok"] and "unknown command" in unknown["error"]

    def test_submit_error_reported_not_fatal(self, live_server):
        _, client = live_server
        bad = client.request("submit", kind="no-such-kind")
        assert not bad["ok"] and "unknown job kind" in bad["error"]
        assert client.request("ping")["ok"]  # still serving

    def test_unknown_kind_reply_is_structured(self, live_server):
        # Regression: an unknown kind used to surface as a stringified
        # exception; it must be a machine-readable rejection naming the
        # offending kind and what *is* registered.
        _, client = live_server
        bad = client.request("submit", kind="no-such-kind")
        assert bad["unknown_kind"] is True
        assert bad["kind"] == "no-such-kind"
        assert "jacobi" in bad["registered"]
        assert "dht_build" in bad["registered"]
        # A submit with no kind at all gets the same structured shape,
        # not a raw KeyError.
        missing = client.request("submit")
        assert not missing["ok"] and missing["unknown_kind"] is True
        assert missing["kind"] is None and "error" in missing
        assert client.request("ping")["ok"]  # still serving


class TestCli:
    def test_submit_stat_via_cli(self, live_server, capsys):
        socket_path, _ = live_server
        rc = serve_main([
            "submit", "--socket", socket_path,
            "--kind", "jacobi", "--spec", json.dumps(JACOBI),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[jacobi] ok" in out and "inspector_runs=2" in out

        rc = serve_main(["stat", "--socket", socket_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nranks=2" in out and "pool: warm=True" in out

        rc = serve_main(["ping", "--socket", socket_path, "--json"])
        out = capsys.readouterr().out
        assert rc == 0 and json.loads(out)["ok"] is True

    def test_cli_failure_exit_code(self, live_server, capsys):
        socket_path, _ = live_server
        rc = serve_main([
            "submit", "--socket", socket_path, "--kind", "kali",
            "--spec", '{"source": 5}',
        ])
        capsys.readouterr()
        assert rc == 1
