"""Fast calibration spot-checks: the simulated machines reproduce the
paper's measurements at selected table cells.

The full tables are regenerated (and band-asserted on every cell) by the
benchmark suite; these tests pick a handful of representative cells so
that plain ``pytest tests/`` also guards the calibration, in seconds.
"""

import pytest

from repro.apps.jacobi import build_jacobi
from repro.bench import calibration as cal
from repro.machine.cost import IPSC2, NCUBE7
from repro.meshes.regular import five_point_grid


def measure(machine, nprocs, side=128, sweeps=2, scale_to=100):
    mesh = five_point_grid(side, side)
    res = build_jacobi(mesh, nprocs, machine=machine).run(sweeps=sweeps)
    return res.executor_time * (scale_to / sweeps), res.inspector_time


@pytest.mark.parametrize("p", [2, 16, 128])
def test_ncube_cells(p):
    """Paper Figure 7 cells, NCUBE/7 at small, middle, and large P."""
    executor, inspector = measure(NCUBE7, p)
    pt, pe, pi = cal.PAPER_NCUBE_PROCS[p]
    assert executor == pytest.approx(pe, rel=0.15)
    assert inspector == pytest.approx(pi, rel=0.15)


@pytest.mark.parametrize("p", [2, 32])
def test_ipsc_cells(p):
    """Paper Figure 8 cells, iPSC/2."""
    executor, inspector = measure(IPSC2, p)
    pt, pe, pi = cal.PAPER_IPSC_PROCS[p]
    assert executor == pytest.approx(pe, rel=0.15)
    assert inspector == pytest.approx(pi, rel=0.35)


def test_small_mesh_cell():
    """Paper Figure 9's 64^2 row at P=128 (the high-overhead corner)."""
    executor, inspector = measure(NCUBE7, 128, side=64)
    pt, pe, pi, _ = cal.PAPER_NCUBE_SIZES[64]
    assert executor == pytest.approx(pe, rel=0.15)
    assert inspector == pytest.approx(pi, rel=0.15)
    overhead = inspector / (executor + inspector)
    assert overhead == pytest.approx(0.278, abs=0.06)  # paper: 27.8%


def test_single_sweep_worst_case_endpoints():
    """§4: 'from 45% on 2 processors to 93% on 128 processors'."""
    mesh = five_point_grid(128, 128)
    for p, expected in ((2, 0.45), (128, 0.93)):
        res = build_jacobi(mesh, p, machine=NCUBE7).run(sweeps=1)
        assert res.inspector_overhead == pytest.approx(expected, abs=0.05)


def test_machine_presets_sane():
    """Structural sanity of the calibrated constants."""
    for m in (NCUBE7, IPSC2):
        assert m.alpha_send > m.beta > 0
        assert m.search_base > m.ref_local > 0
        assert m.inspect_ref > 0 and m.combine_stage > 0
    # iPSC/2 is uniformly the faster machine.
    assert IPSC2.flop < NCUBE7.flop
    assert IPSC2.inspect_ref < NCUBE7.inspect_ref
    assert IPSC2.combine_stage < NCUBE7.combine_stage
    assert IPSC2.search_base < NCUBE7.search_base
