"""Tests for inspector behaviour, schedule caching, and cost charging."""

import numpy as np
import pytest

from repro.analysis.planner import Strategy, choose_strategy, explain_strategy
from repro.core.context import KaliContext
from repro.core.forall import (
    Affine,
    AffineRead,
    AffineWrite,
    Forall,
    IndirectRead,
    OnOwner,
)
from repro.distributions import Block, Custom, Cyclic, Replicated
from repro.machine.cost import IDEAL
from repro.runtime.cache import ScheduleCache
from repro.runtime.inspector import statically_local


def permutation_loop(n, label, table="perm"):
    return Forall(
        index_range=(0, n - 1),
        on=OnOwner("B"),
        reads=[IndirectRead("A", table=table, name="g")],
        writes=[AffineWrite("B")],
        kernel=lambda iters, ops: ops["g"].values[:, 0],
        label=label,
    )


def setup_ctx(n, p, perm, **kw):
    ctx = KaliContext(p, machine=IDEAL, **kw)
    ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
    ctx.array("B", n, dist=[Block()]).set(np.zeros(n))
    ctx.array("perm", n, dist=[Block()], dtype=np.int64).set(perm)
    return ctx


class TestScheduleCaching:
    def test_second_execution_hits_cache(self):
        n, p = 16, 4
        perm = np.roll(np.arange(n), 1).astype(np.int64)
        ctx = setup_ctx(n, p, perm)
        loop = permutation_loop(n, "cache-hit")

        def program(kr):
            yield from kr.forall(loop)
            yield from kr.forall(loop)
            yield from kr.forall(loop)

        res = ctx.run(program)
        stats = res.cache_stats()
        assert stats["misses"] == p          # one per rank, first execution
        assert stats["hits"] == 2 * p

    def test_inspector_runs_once_with_cache(self):
        n, p = 16, 4
        perm = np.roll(np.arange(n), 1).astype(np.int64)
        ctx = setup_ctx(n, p, perm)
        loop = permutation_loop(n, "insp-once")

        def program(kr):
            for _ in range(5):
                yield from kr.forall(loop)

        res = ctx.run(program)
        assert res.engine.counter_sum("inspector_runs") == p

    def test_inspector_reruns_without_cache(self):
        n, p = 16, 4
        perm = np.roll(np.arange(n), 1).astype(np.int64)
        ctx = setup_ctx(n, p, perm, cache_enabled=False)
        loop = permutation_loop(n, "insp-nocache")

        def program(kr):
            for _ in range(5):
                yield from kr.forall(loop)

        res = ctx.run(program)
        assert res.engine.counter_sum("inspector_runs") == 5 * p

    def test_mutating_indirection_invalidates(self):
        """Writing the adjacency/permutation array must force re-inspection
        — and the recomputed schedule must give correct results."""
        n, p = 16, 4
        perm1 = np.roll(np.arange(n), 1).astype(np.int64)
        perm2 = np.roll(np.arange(n), -1).astype(np.int64)
        ctx = setup_ctx(n, p, perm1)
        gather = permutation_loop(n, "inval-gather")
        flip = Forall(
            index_range=(0, n - 1),
            on=OnOwner("perm"),
            reads=[IndirectRead("A", table="perm", name="unused")],
            writes=[AffineWrite("perm")],
            kernel=lambda iters, ops: (iters + 1) % n,  # perm2
            label="inval-flip",
        )

        def program(kr):
            yield from kr.forall(gather)     # inspect + run with perm1
            yield from kr.forall(flip)       # rewrites perm
            yield from kr.forall(gather)     # must re-inspect

        res = ctx.run(program)
        stats = res.cache_stats()
        assert stats["invalidations"] == p
        init = np.arange(float(n))
        np.testing.assert_array_equal(ctx.arrays["B"].data, init[perm2])

    def test_float_data_change_does_not_invalidate(self):
        """Changing mesh *values* (not the indirection) keeps the schedule."""
        n, p = 16, 2
        perm = np.roll(np.arange(n), 1).astype(np.int64)
        ctx = setup_ctx(n, p, perm)
        gather = permutation_loop(n, "noninval-gather")
        bump = Forall(
            index_range=(0, n - 1),
            on=OnOwner("A"),
            reads=[AffineRead("A", name="a")],
            writes=[AffineWrite("A")],
            kernel=lambda iters, ops: ops["a"] + 1,
            label="noninval-bump",
        )

        def program(kr):
            yield from kr.forall(gather)
            yield from kr.forall(bump)
            yield from kr.forall(gather)

        res = ctx.run(program)
        assert res.cache_stats()["invalidations"] == 0
        assert res.engine.counter_sum("inspector_runs") == p

    def test_cache_unit(self):
        cache = ScheduleCache()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        cache_disabled = ScheduleCache(enabled=False)
        loop = permutation_loop(4, "unit")
        assert cache_disabled.lookup(loop, {}) is None
        assert cache_disabled.misses == 1


class TestPlanner:
    def _env(self, n=16, p=4, dist=None):
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[dist or Block()]).set(np.zeros(n))
        ctx.array("perm", n, dist=[Block()], dtype=np.int64).set(
            np.arange(n, dtype=np.int64)
        )
        return {name: arr.scatter(0) for name, arr in ctx.arrays.items()}

    def test_affine_block_is_compile_time(self):
        env = self._env()
        loop = Forall(
            index_range=(0, 14),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="n")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["n"],
            label="plan-ct",
        )
        assert choose_strategy(loop, env) is Strategy.COMPILE_TIME

    def test_indirect_forces_runtime(self):
        env = self._env()
        loop = permutation_loop(16, "plan-rt")
        env["B"] = env["A"]
        strategy, reasons = explain_strategy(loop, env)
        assert strategy is Strategy.RUNTIME
        assert any("data-dependent" in r for r in reasons)

    def test_custom_dist_forces_runtime(self):
        env = self._env(dist=Custom(np.zeros(16, dtype=np.int64)))
        loop = Forall(
            index_range=(0, 14),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="n")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["n"],
            label="plan-custom",
        )
        strategy, reasons = explain_strategy(loop, env)
        assert strategy is Strategy.RUNTIME
        assert reasons


class TestStaticLocality:
    def _env(self, p=4):
        n = 16
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()])
        ctx.array("B", n, dist=[Block()])
        ctx.array("C", n, dist=[Cyclic()])
        return {name: arr.scatter(1) for name, arr in ctx.arrays.items()}

    def _loop(self, read):
        return Forall(
            index_range=(0, 15),
            on=OnOwner("A"),
            reads=[read],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: list(o.values())[0],
            label="static-loc",
        )

    def test_aligned_identity_is_static(self):
        env = self._env()
        loop = self._loop(AffineRead("B", Affine(1, 0), name="b"))
        assert statically_local(loop.reads[0], loop, env)

    def test_shift_is_not_static(self):
        env = self._env()
        loop = self._loop(AffineRead("B", Affine(1, 1), name="b"))
        assert not statically_local(loop.reads[0], loop, env)

    def test_mismatched_dist_is_not_static(self):
        env = self._env()
        loop = self._loop(AffineRead("C", Affine(1, 0), name="c"))
        assert not statically_local(loop.reads[0], loop, env)

    def test_inspector_charges_zero_for_static_reads(self):
        """A loop with only statically-local reads checks nothing."""
        n, p = 16, 4
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()]).set(np.zeros(n))
        ctx.array("B", n, dist=[Block()]).set(np.ones(n))
        loop = Forall(
            index_range=(0, n - 1),
            on=OnOwner("A"),
            reads=[AffineRead("B", name="b")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["b"],
            label="static-zero",
        )

        def program(kr):
            yield from kr.forall(loop)

        ctx.force_strategy = Strategy.RUNTIME
        res = ctx.run(program)
        assert res.engine.counter_sum("inspector_checks") == 0


class TestCostCharging:
    def test_ideal_machine_counts_operations(self):
        """On the IDEAL machine every op costs 1s, making charges exact:
        executor time = iters*1 + refs*1 + writes*1 (+ flops, searches)."""
        n, p = 12, 1
        ctx = KaliContext(p, machine=IDEAL)
        ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["nxt"],
            label="cost-exact",
        )

        def program(kr):
            yield from kr.forall(loop)

        res = ctx.run(program)
        iters = n - 1
        # P=1: all refs local. iter_base + read ref + write ref each cost 1.
        assert res.executor_time == pytest.approx(iters * 3.0)

    def test_remote_refs_charge_search(self):
        n, p = 12, 2
        base = IDEAL.with_overrides(search_base=100.0)
        ctx = KaliContext(p, machine=base)
        ctx.array("A", n, dist=[Block()]).set(np.arange(float(n)))
        loop = Forall(
            index_range=(0, n - 2),
            on=OnOwner("A"),
            reads=[AffineRead("A", Affine(1, 1), name="nxt")],
            writes=[AffineWrite("A")],
            kernel=lambda i, o: o["nxt"],
            label="cost-search",
        )

        def program(kr):
            yield from kr.forall(loop)

        res = ctx.run(program)
        # Exactly one remote ref (rank 0 reads A[6]): one 100s search charge.
        assert res.engine.counter_sum("executor_remote_refs") == 1
        assert res.executor_time >= 100.0

    def test_inspector_checks_counted(self):
        n, p = 16, 4
        perm = np.roll(np.arange(n), 1).astype(np.int64)
        ctx = setup_ctx(n, p, perm)
        loop = permutation_loop(n, "cost-checks")

        def program(kr):
            yield from kr.forall(loop)

        res = ctx.run(program)
        # one check per (iteration, live column) = n total across ranks
        assert res.engine.counter_sum("inspector_checks") == n
