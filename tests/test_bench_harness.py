"""Tests for the benchmark harness drivers and the 3-d grid workload."""

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.bench import calibration as cal
from repro.bench.experiments import (
    ExperimentRow,
    caching_ablation,
    processor_scaling,
    single_processor_executor_time,
    size_scaling,
)
from repro.bench.tables import overhead_table, processor_table, size_table
from repro.machine.cost import IDEAL, IPSC2, NCUBE7
from repro.meshes.regular import five_point_grid, reference_sweep, seven_point_grid


class TestSevenPointGrid:
    def test_counts(self):
        mesh = seven_point_grid(3, 4, 5)
        assert mesh.n == 60 and mesh.width == 6
        # corners 3, interior 6
        assert mesh.count.min() == 3 and mesh.count.max() == 6

    def test_adjacency_symmetric(self):
        mesh = seven_point_grid(3, 3, 3)
        edges = set()
        for i in range(mesh.n):
            for j in range(mesh.count[i]):
                edges.add((i, int(mesh.adj[i, j])))
        assert all((b, a) in edges for a, b in edges)

    def test_degenerate_dimensions_match_2d(self):
        """nz=1 reduces to the five-point grid's adjacency counts."""
        m3 = seven_point_grid(6, 5, 1)
        m2 = five_point_grid(5, 6)  # rows=ny, cols=nx with x-major numbering
        np.testing.assert_array_equal(np.sort(m3.count), np.sort(m2.count))

    def test_jacobi_on_3d_grid_matches_oracle(self, rng):
        mesh = seven_point_grid(4, 4, 4)
        init = rng.random(mesh.n)
        prog = build_jacobi(mesh, 8, machine=IDEAL, initial=init)
        prog.run(sweeps=3)
        ref = init.copy()
        for _ in range(3):
            ref = reference_sweep(mesh, ref)
        np.testing.assert_allclose(prog.solution, ref)

    def test_3d_has_more_boundary_traffic_than_2d(self):
        """Same node count, higher connectivity => more elements exchanged
        (the paper's §4 remark about unstructured grids, in 3-d form)."""
        m2 = five_point_grid(16, 16)
        m3 = seven_point_grid(16, 4, 4)
        r2 = build_jacobi(m2, 8, machine=NCUBE7).run(sweeps=2)
        r3 = build_jacobi(m3, 8, machine=NCUBE7).run(sweeps=2)
        e2 = r2.engine.counter_sum("executor_elems_sent")
        e3 = r3.engine.counter_sum("executor_elems_sent")
        assert e3 > e2


class TestExperimentDrivers:
    def test_processor_scaling_rows(self):
        rows = processor_scaling(NCUBE7, [2, 4], mesh_side=16, sweeps=10)
        assert [r.key for r in rows] == [2, 4]
        for r in rows:
            assert r.total == pytest.approx(r.executor + r.inspector)
            assert 0 <= r.overhead < 1

    def test_size_scaling_rows_have_speedup(self):
        rows = size_scaling(IPSC2, 4, mesh_sides=[16, 32], sweeps=10)
        assert all(r.speedup is not None and r.speedup > 0 for r in rows)
        assert rows[0].key == 16 and rows[1].key == 32

    def test_single_processor_baseline_positive(self):
        mesh = five_point_grid(16, 16)
        t = single_processor_executor_time(mesh, NCUBE7, sweeps=10)
        assert t > 0

    def test_caching_ablation_rows(self):
        rows = caching_ablation(NCUBE7, 4, [1, 5], mesh_side=16)
        by = {r.key: r.values for r in rows}
        assert by[1]["ratio"] == pytest.approx(1.0, rel=0.02)
        assert by[5]["ratio"] > by[1]["ratio"]

    def test_measured_sweeps_extrapolation_consistent(self):
        """Extrapolated executor time matches a fully-measured run."""
        full = processor_scaling(IPSC2, [4], mesh_side=16, sweeps=12,
                                 measured_sweeps=12)[0]
        extra = processor_scaling(IPSC2, [4], mesh_side=16, sweeps=12,
                                  measured_sweeps=3)[0]
        assert extra.executor == pytest.approx(full.executor, rel=0.02)
        assert extra.inspector == pytest.approx(full.inspector, rel=1e-9)


class TestTableRendering:
    def test_processor_table_includes_paper_columns(self):
        rows = [ExperimentRow(key=2, total=10.0, executor=9.0, inspector=1.0,
                              overhead=0.1)]
        text = processor_table("T", rows, {2: (11.0, 10.0, 1.0)})
        assert "(paper)" in text and "11.00" in text and "10.1%" not in text

    def test_size_table_row(self):
        rows = [ExperimentRow(key=64, total=5.0, executor=4.0, inspector=1.0,
                              overhead=0.2, speedup=12.5)]
        text = size_table("S", rows, {64: (5.0, 4.0, 1.0, 12.0)})
        assert "64x64" in text and "12.5" in text and "12.0" in text

    def test_overhead_table(self):
        rows = [ExperimentRow(key=8, total=2.0, executor=1.0, inspector=1.0,
                              overhead=0.5)]
        text = overhead_table("O", rows)
        assert "50.0%" in text

    def test_missing_paper_cell_renders_nan(self):
        rows = [ExperimentRow(key=3, total=1.0, executor=0.9, inspector=0.1,
                              overhead=0.1)]
        text = processor_table("T", rows, {})
        assert "nan" in text


class TestCalibrationData:
    def test_reference_tables_complete(self):
        assert set(cal.PAPER_NCUBE_PROCS) == set(cal.NCUBE_PROC_COUNTS)
        assert set(cal.PAPER_IPSC_PROCS) == set(cal.IPSC_PROC_COUNTS)
        assert set(cal.PAPER_NCUBE_SIZES) == set(cal.MESH_SIDES)
        assert set(cal.PAPER_IPSC_SIZES) == set(cal.MESH_SIDES)

    def test_paper_totals_are_consistent(self):
        """total == executor + inspector in the transcribed tables (to the
        paper's own rounding)."""
        for table in (cal.PAPER_NCUBE_PROCS, cal.PAPER_IPSC_PROCS):
            for total, executor, inspector in table.values():
                assert total == pytest.approx(executor + inspector, abs=0.05)
