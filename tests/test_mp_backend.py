"""The real-parallelism backend, cross-checked against the simulator.

Two layers:

* **Raw engine semantics** — the op protocol (FIFO channels, wildcard
  receives, timeouts, counters, validation) behaves like the simulator
  where the contract requires it, on actual forked processes.
* **Differential acceptance** — jacobi, CG, redistribution, and a full
  Kali-language program produce bit-identical arrays and identical
  per-rank communication counters on ``backend="sim"`` and
  ``backend="mp"`` (see ``tests/differential.py``).

Every test carries a ``timeout`` mark: real processes can genuinely hang
where the simulator would detect deadlock, and CI must not.  (The
MpEngine watchdog is the first line of defence; the mark is the backstop
when pytest-timeout is installed.)
"""

import json

import numpy as np
import pytest

from tests.differential import (
    DifferentialPair,
    assert_arrays_identical,
    assert_counters_identical,
    assert_values_equal,
    run_differential,
)
from repro.apps.cg import CGSolver, dense_matrix
from repro.apps.jacobi import build_jacobi
from repro.core.context import KaliContext
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import (
    CommunicationError,
    DeadlockError,
    EngineError,
    KaliError,
)
from repro.lang import compile_kali
from repro.machine.api import ANY_SOURCE, ANY_TAG, Compute, Count, Now, Recv, Send
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine
from repro.machine.mp import MpEngine, run_spmd_mp
from repro.machine.topology import FullyConnected
from repro.meshes.regular import five_point_grid, reference_sweep

pytestmark = pytest.mark.timeout(120)

NRANKS = 4


def mp_engine(n=NRANKS, **kw):
    kw.setdefault("timeout", 60.0)
    return MpEngine(IDEAL, topology=FullyConnected(n), **kw)


def sim_engine(n=NRANKS, **kw):
    return Engine(IDEAL, topology=FullyConnected(n), **kw)


# --- raw engine semantics -------------------------------------------------


class TestOpProtocol:
    def test_ring_exchange_values_and_counters(self):
        def prog(rank):
            data = np.arange(4.0) + rank.id
            yield Send((rank.id + 1) % rank.size, data, tag=5)
            msg = yield Recv(source=(rank.id - 1) % rank.size, tag=5)
            yield Count("hops")
            return float(msg.payload.sum())

        sim = sim_engine().run(prog)
        mp = mp_engine().run(prog)
        assert sim.values == mp.values
        for a, b in zip(sim.stats, mp.stats):
            assert (a.messages_sent, a.bytes_sent) == (b.messages_sent, b.bytes_sent)
            assert a.counters["hops"] == b.counters["hops"] == 1

    def test_fifo_per_channel(self):
        """Messages on one (source, tag) channel arrive in send order."""
        def prog(rank):
            if rank.id == 0:
                for i in range(20):
                    yield Send(1, i, tag=2)
            elif rank.id == 1:
                got = []
                for _ in range(20):
                    m = yield Recv(source=0, tag=2)
                    got.append(m.payload)
                return got
            return None

        res = mp_engine(2).run(prog)
        assert res.values[1] == list(range(20))

    def test_tag_selectivity(self):
        """A tagged receive skips earlier-sent frames with other tags."""
        def prog(rank):
            if rank.id == 0:
                yield Send(1, "low", tag=1)
                yield Send(1, "high", tag=9)
            else:
                first = yield Recv(source=0, tag=9)
                second = yield Recv(source=0, tag=1)
                return first.payload, second.payload

        res = mp_engine(2).run(prog)
        assert res.values[1] == ("high", "low")

    def test_wildcard_source_receives_all(self):
        def prog(rank):
            if rank.id == 0:
                got = []
                for _ in range(rank.size - 1):
                    m = yield Recv(source=ANY_SOURCE, tag=ANY_TAG)
                    got.append((m.source, m.payload))
                return sorted(got)
            yield Send(0, rank.id * 100, tag=rank.id)
            return None

        res = mp_engine().run(prog)
        assert res.values[0] == [(1, 100), (2, 200), (3, 300)]

    def test_recv_timeout_resumes_with_none(self):
        def prog(rank):
            m = yield Recv(source=(rank.id + 1) % rank.size, tag=3,
                           timeout=0.2)
            return m

        res = mp_engine(2).run(prog)
        assert res.values == [None, None]
        assert all(s.counters["recv_timeouts"] == 1 for s in res.stats)

    def test_now_is_monotonic(self):
        def prog(rank):
            t1 = yield Now()
            yield Compute(0.0)
            t2 = yield Now()
            return t1, t2

        res = mp_engine(1).run(prog)
        t1, t2 = res.values[0]
        assert 0.0 <= t1 <= t2

    def test_numpy_payload_roundtrip_bit_identical(self):
        def prog(rank):
            data = np.linspace(0.0, 1.0, 257) * (rank.id + 1)
            yield Send((rank.id + 1) % rank.size, data, tag=0)
            m = yield Recv(source=(rank.id - 1) % rank.size, tag=0)
            return m.payload

        res = mp_engine().run(prog)
        for r in range(NRANKS):
            expected = np.linspace(0.0, 1.0, 257) * (((r - 1) % NRANKS) + 1)
            np.testing.assert_array_equal(res.values[r], expected)

    def test_args_reach_ranks(self):
        def prog(rank):
            yield Compute(0.0)
            return rank.arg * 2

        res = run_spmd_mp(prog, 3, IDEAL, args=[10, 20, 30], timeout=60.0)
        assert res.values == [20, 40, 60]


class TestFailureModes:
    def test_child_exception_propagates_with_traceback(self):
        def prog(rank):
            yield Compute(0.0)
            if rank.id == 1:
                raise ValueError("rank 1 exploded")
            yield Recv(source=1, tag=0, timeout=30.0)

        with pytest.raises(EngineError, match="rank 1 exploded"):
            mp_engine(2).run(prog)

    def test_watchdog_raises_deadlock_with_blocked_info(self):
        def prog(rank):
            m = yield Recv(source=(rank.id + 1) % rank.size, tag=7)
            return m

        with pytest.raises(DeadlockError) as exc:
            mp_engine(2, timeout=2.0).run(prog)
        assert sorted(exc.value.blocked) == [0, 1]
        assert all(w.tag == 7 for w in exc.value.blocked.values())

    def test_self_send_rejected_like_sim(self):
        def prog(rank):
            yield Send(rank.id, 1.0, tag=0)

        with pytest.raises(CommunicationError, match="cannot send to itself"):
            sim_engine(2).run(prog)
        with pytest.raises(EngineError, match="cannot send to itself"):
            mp_engine(2).run(prog)

    def test_bad_dest_rejected_like_sim(self):
        def prog(rank):
            yield Send(99, 1.0, tag=0)

        with pytest.raises(CommunicationError, match="outside world"):
            sim_engine(2).run(prog)
        with pytest.raises(EngineError, match="outside world"):
            mp_engine(2).run(prog)

    def test_exact_recv_from_finished_peer_fails_fast(self):
        """A receive that provably can't complete raises, not hangs."""
        def prog(rank):
            yield Compute(0.0)
            if rank.id == 0:
                m = yield Recv(source=1, tag=0)
                return m

        with pytest.raises(EngineError, match="can never complete"):
            mp_engine(2, timeout=60.0).run(prog)

    def test_finished_peer_does_not_break_others(self):
        """Rank 1 exits immediately; ranks 0<->2 keep communicating."""
        def prog(rank):
            if rank.id == 1:
                yield Compute(0.0)
                return "early"
            peer = 2 if rank.id == 0 else 0
            yield Send(peer, rank.id, tag=4)
            m = yield Recv(source=peer, tag=4)
            return m.payload

        res = mp_engine(3).run(prog)
        assert res.values == [2, "early", 0]

    def test_fork_required_validation(self):
        with pytest.raises(EngineError, match="timeout"):
            MpEngine(IDEAL, nranks=2, timeout=0.0)
        with pytest.raises(EngineError, match="topology or an explicit"):
            MpEngine(IDEAL)


class TestTraceAndObs:
    def test_trace_streams_back_and_pairs_sends(self):
        def prog(rank):
            yield Send((rank.id + 1) % rank.size, np.ones(8), tag=1,
                       phase="exchange")
            m = yield Recv(source=(rank.id - 1) % rank.size, tag=1,
                           phase="exchange")
            return m.nbytes

        res = mp_engine(trace=True).run(prog)
        kinds = {e.kind for e in res.trace}
        assert {"send", "recv", "finish"} <= kinds
        sends = {e.seq for e in res.trace if e.kind == "send"}
        recvs = {e.seq for e in res.trace if e.kind == "recv"}
        assert sends == recvs and len(sends) == NRANKS

    def test_comm_matrix_reconciles_on_real_run(self):
        from repro.obs.commgraph import CommMatrix

        mesh = five_point_grid(6, 6)
        prog = build_jacobi(mesh, NRANKS, machine=NCUBE7, trace=True,
                            backend="mp")
        res = prog.run(sweeps=2)
        matrix = CommMatrix.from_trace(res.engine.trace,
                                       nranks=res.engine.nranks)
        assert matrix.reconcile(res.engine.stats) == []

    def test_run_file_roundtrip_and_registry(self, tmp_path):
        from repro.obs.registry import (
            MetricsRegistry,
            read_run_json,
            write_run_json,
        )

        mesh = five_point_grid(6, 6)
        prog = build_jacobi(mesh, 2, machine=NCUBE7, trace=True, backend="mp")
        res = prog.run(sweeps=2)
        path = tmp_path / "mp.run.json"
        write_run_json(res.engine, str(path), meta={"backend": "mp"})
        loaded = read_run_json(str(path))
        reg = MetricsRegistry.from_run(loaded)
        assert reg.get("nranks") == 2
        assert reg.get("messages_total") == res.engine.total_messages()
        assert reg.get("makespan") == pytest.approx(res.engine.makespan)

    def test_chrome_export_validates(self, tmp_path):
        import json

        from repro.obs.chrome_trace import (
            validate_chrome_trace,
            write_chrome_trace,
        )

        mesh = five_point_grid(6, 6)
        prog = build_jacobi(mesh, 2, machine=NCUBE7, trace=True, backend="mp")
        res = prog.run(sweeps=1)
        out = tmp_path / "trace.json"
        write_chrome_trace(res.engine.trace, str(out), nranks=2)
        with open(out) as fh:
            assert validate_chrome_trace(json.load(fh)) == []


# --- differential acceptance ----------------------------------------------


class TestJacobiDifferential:
    @pytest.mark.parametrize("dist", [Block(), Cyclic()],
                             ids=["block", "cyclic"])
    def test_jacobi_identical_across_backends(self, dist):
        mesh = five_point_grid(8, 8)
        init = np.random.default_rng(42).random(mesh.n)

        pair = run_differential(
            lambda backend: build_jacobi(
                mesh, NRANKS, machine=NCUBE7, dist=dist._clone(),
                initial=init.copy(), backend=backend,
            ),
            lambda prog: prog.run(sweeps=5),
        )
        assert_arrays_identical(pair)
        assert_counters_identical(pair)

    def test_jacobi_matches_sequential_oracle_on_mp(self):
        mesh = five_point_grid(8, 8)
        init = np.random.default_rng(3).random(mesh.n)
        prog = build_jacobi(mesh, NRANKS, machine=NCUBE7,
                            initial=init.copy(), backend="mp")
        prog.run(sweeps=3)
        expected = init.copy()
        for _ in range(3):
            expected = reference_sweep(mesh, expected)
        np.testing.assert_array_equal(prog.solution, expected)

    def test_cache_and_strategy_accounting_cross_process(self):
        mesh = five_point_grid(8, 8)
        init = np.random.default_rng(5).random(mesh.n)

        pair = run_differential(
            lambda backend: build_jacobi(mesh, NRANKS, machine=NCUBE7,
                                         initial=init.copy(), backend=backend),
            lambda prog: prog.run(sweeps=4),
        )
        assert pair.sim_result.cache_stats() == pair.mp_result.cache_stats()
        assert pair.sim_result.strategies() == pair.mp_result.strategies()
        assert pair.mp_result.strategies()["jacobi-relax"] == "inspector"


class TestCGDifferential:
    def test_cg_identical_and_correct(self):
        mesh = five_point_grid(8, 8)
        b = np.random.default_rng(11).random(mesh.n)

        sim = CGSolver(mesh, NRANKS, machine=NCUBE7).solve(b, max_iter=60)
        mp = CGSolver(mesh, NRANKS, machine=NCUBE7,
                      backend="mp").solve(b, max_iter=60)
        np.testing.assert_array_equal(sim.solution, mp.solution)
        assert sim.iterations == mp.iterations
        assert sim.residual == mp.residual
        ref = np.linalg.solve(dense_matrix(mesh), b)
        np.testing.assert_allclose(mp.solution, ref, atol=1e-6)

    def test_cg_counters_identical(self):
        mesh = five_point_grid(8, 8)
        b = np.random.default_rng(13).random(mesh.n)

        def build(backend):
            solver = CGSolver(mesh, NRANKS, machine=NCUBE7, backend=backend)
            return solver

        sim_solver = build("sim")
        sim = sim_solver.solve(b, max_iter=40)
        mp_solver = build("mp")
        mp = mp_solver.solve(b, max_iter=40)
        pair = DifferentialPair(
            sim.timing, mp.timing,
            {n: a.data.copy() for n, a in sim_solver.ctx.arrays.items()},
            {n: a.data.copy() for n, a in mp_solver.ctx.arrays.items()},
        )
        assert_arrays_identical(pair)
        assert_counters_identical(pair)


class TestRedistributeDifferential:
    def test_redistribute_identical_across_backends(self):
        n = 24

        def program(kr):
            local = kr.local("A")
            # Deterministic update, then move block -> cyclic mid-run.
            local.data[:] = local.global_rows * 2.0
            yield from kr.barrier()
            yield from kr.redistribute("A", Cyclic())
            local = kr.local("A")
            local.data[:] = local.data + kr.id
            return None

        def build(backend):
            ctx = KaliContext(NRANKS, machine=NCUBE7, backend=backend)
            ctx.array("A", n, dist=[Block()]).set(np.zeros(n))

            class _P:  # minimal "program object" for run_differential
                def __init__(self, ctx):
                    self.ctx = ctx

                def run(self):
                    return self.ctx.run(program)

            return _P(ctx)

        pair = run_differential(build, lambda p: p.run())
        assert_arrays_identical(pair)
        assert_counters_identical(pair)
        assert_values_equal(pair)


class TestKaliLangDifferential:
    SRC = """processors Procs : array[1..P] with P in 1..64;
const n : integer := 24;
var A : array[1..n] of real dist by [ block ] on Procs;
var B : array[1..n] of real dist by [ cyclic ] on Procs;
var total : real;

forall i in 1..n on A[i].loc do
    A[i] := float(i) * 1.5;
end;
forall i in 1..n-1 on B[i].loc do
    B[i] := A[i+1];
end;
total := B[1] + A[n];
print("total", total);
"""

    def test_full_language_program_identical(self):
        prog = compile_kali(self.SRC)
        sim = prog.run(nprocs=NRANKS)
        mp = prog.run(nprocs=NRANKS, backend="mp")
        assert sim.output == mp.output
        assert sim.scalars == mp.scalars
        for name in sim.arrays:
            np.testing.assert_array_equal(sim.arrays[name], mp.arrays[name])
        for a, b in zip(sim.timing.engine.stats, mp.timing.engine.stats):
            assert a.messages_sent == b.messages_sent
            assert a.bytes_sent == b.bytes_sent


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(KaliError, match="unknown backend"):
            KaliContext(2, machine=NCUBE7, backend="threads")

    def test_faults_rejected_on_mp(self):
        from repro.faults import FaultPlan

        with pytest.raises(KaliError, match="backend='sim'"):
            KaliContext(2, machine=NCUBE7, backend="mp",
                        faults=FaultPlan.uniform(seed=1, drop=0.1))


class TestBenchCli:
    """`python -m repro.bench --backend mp` end to end."""

    def test_mp_bench_writes_valid_run_files(self, tmp_path, capsys):
        from repro.bench.__main__ import main
        from repro.obs.registry import MetricsRegistry, read_run_json

        rc = main(["--backend", "mp", "--fast",
                   "--metrics-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "identical" in out
        run_files = sorted(tmp_path.glob("M1_mp_jacobi_p*.run.json"))
        assert len(run_files) == 2  # --fast: p = 2, 4
        for path in run_files:
            result = read_run_json(path)
            meta = json.loads(path.read_text())["meta"]
            assert meta["backend"] == "mp"
            assert meta["workload"] == "jacobi"
            assert result.nranks == meta["nprocs"]
            reg = MetricsRegistry.from_run(result)
            assert reg.get("makespan") > 0
        assert (tmp_path / "M1_mp_jacobi.metrics.json").exists()
