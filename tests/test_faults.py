"""Tests for ``repro.faults``: plans, the faulted engine, retry, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps.jacobi import build_jacobi
from repro.comm.reliable import plan_transmissions
from repro.errors import (
    CommunicationError,
    DeadlockError,
    DeliveryError,
    FaultError,
)
from repro.faults import PLAN_FORMAT, FaultPlan, LinkFaults, RetryPolicy
from repro.faults.__main__ import main as faults_main
from repro.machine.api import Compute, Recv, Send
from repro.machine.cost import IDEAL, NCUBE7
from repro.machine.engine import Engine, run_spmd
from repro.meshes.regular import five_point_grid
from repro.obs.registry import run_to_dict


MESH = five_point_grid(16, 16)


def jacobi_run(faults=None, procs=8, sweeps=3, trace=False):
    prog = build_jacobi(MESH, procs, faults=faults, trace=trace)
    res = prog.run(sweeps)
    return res, prog.solution


class TestFaultPlan:
    def test_roundtrip_json(self, tmp_path):
        plan = FaultPlan(
            seed=11,
            default_link=LinkFaults(drop=0.1, duplicate=0.05, jitter=1e-4),
            links={(0, 1): LinkFaults(drop=0.5)},
            stragglers={2: 3.0},
            crashes={5: 1.25},
            retry=RetryPolicy(timeout=0.02, max_retries=4),
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = FaultPlan.from_json(str(path))
        assert loaded == plan
        assert loaded.to_dict()["format"] == PLAN_FORMAT

    def test_validation(self):
        with pytest.raises(FaultError):
            LinkFaults(drop=1.5)
        with pytest.raises(FaultError):
            LinkFaults(jitter=-1.0)
        with pytest.raises(FaultError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(FaultError):
            FaultPlan(stragglers={0: 0.5})
        with pytest.raises(FaultError):
            FaultPlan(crashes={0: -1.0})
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"format": "bogus"})

    def test_unit_is_pure_and_seed_sensitive(self):
        a = FaultPlan(seed=1)
        assert a.unit("drop", 0, 1, 7) == a.unit("drop", 0, 1, 7)
        assert a.unit("drop", 0, 1, 7) != a.unit("drop", 0, 1, 8)
        assert a.unit("drop", 0, 1, 7) != a.unit("dup", 0, 1, 7)
        b = FaultPlan(seed=2)
        assert a.unit("drop", 0, 1, 7) != b.unit("drop", 0, 1, 7)
        assert 0.0 <= a.unit("drop", 3, 4, 5) < 1.0

    def test_link_override_and_queries(self):
        plan = FaultPlan(
            default_link=LinkFaults(drop=0.1),
            links={(0, 1): LinkFaults(drop=0.9)},
            stragglers={3: 2.0},
            crashes={4: 0.5},
        )
        assert plan.link(0, 1).drop == 0.9
        assert plan.link(1, 0).drop == 0.1
        assert plan.slowdown(3) == 2.0 and plan.slowdown(0) == 1.0
        assert plan.crash_time(4) == 0.5 and plan.crash_time(0) is None
        assert plan.has_link_faults
        assert not FaultPlan().has_link_faults


class TestDeterminism:
    def test_same_plan_same_run_bytes(self):
        plan = lambda: FaultPlan.uniform(  # noqa: E731
            seed=7, drop=0.05, duplicate=0.02, jitter=1e-4,
            retry=RetryPolicy())
        r1, s1 = jacobi_run(plan())
        r2, s2 = jacobi_run(plan())
        assert r1.engine.clocks == r2.engine.clocks
        assert np.array_equal(s1, s2)
        d1 = json.dumps(run_to_dict(r1.engine), sort_keys=True)
        d2 = json.dumps(run_to_dict(r2.engine), sort_keys=True)
        assert d1 == d2  # byte-identical stats, counters, clocks

    def test_clean_plan_matches_no_plan(self):
        r0, s0 = jacobi_run(None)
        r1, s1 = jacobi_run(FaultPlan(seed=99))
        assert r0.engine.clocks == r1.engine.clocks
        assert np.array_equal(s0, s1)

    def test_different_seeds_differ(self):
        r1, _ = jacobi_run(FaultPlan.uniform(seed=1, drop=0.05,
                                             retry=RetryPolicy()))
        r2, _ = jacobi_run(FaultPlan.uniform(seed=2, drop=0.05,
                                             retry=RetryPolicy()))
        assert r1.engine.clocks != r2.engine.clocks


class TestRetryTransport:
    def test_jacobi_survives_drops_with_same_answer(self):
        r0, clean = jacobi_run(None)
        plan = FaultPlan.uniform(seed=7, drop=0.05, retry=RetryPolicy())
        res, faulted = jacobi_run(plan)
        assert np.array_equal(clean, faulted)
        assert res.makespan > r0.makespan  # retries cost virtual time
        assert res.engine.counter_sum("retry_retransmissions") > 0

    def test_duplicates_are_suppressed_not_delivered(self):
        plan = FaultPlan.uniform(seed=7, drop=0.05, retry=RetryPolicy())
        res, _ = jacobi_run(plan)
        # Every suppressed duplicate was counted; none reached a mailbox
        # unconsumed (the executor would have deadlocked or miscounted).
        assert res.engine.counter_sum("retry_duplicates_suppressed") > 0
        assert res.engine.counter_sum("undelivered_messages") == 0

    def test_budget_exhaustion_raises_delivery_error(self):
        plan = FaultPlan.uniform(seed=0, drop=0.95,
                                 retry=RetryPolicy(max_retries=1))

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=b"x" * 8, tag=1)
            else:
                yield Recv(source=0, tag=1)

        with pytest.raises(DeliveryError, match="retransmissions"):
            run_spmd(prog, 2, IDEAL, faults=plan)

    def test_plan_transmissions_is_pure(self):
        plan = FaultPlan.uniform(seed=3, drop=0.4, jitter=1e-3)
        pol = RetryPolicy(max_retries=6)
        a = plan_transmissions(plan, pol, 0, 1, 42)
        b = plan_transmissions(plan, pol, 0, 1, 42)
        assert a == b
        assert a.attempts[0].index == 0
        if not a.failed:
            assert a.attempts[-1].ack_ok

    def test_retry_on_clean_link_single_attempt(self):
        plan = FaultPlan.uniform(seed=0, retry=RetryPolicy())
        tp = plan_transmissions(plan, plan.retry, 0, 1, 0)
        assert len(tp.attempts) == 1 and tp.delivered == 0
        assert tp.retransmissions == 0 and tp.duplicates == 0


class TestDropWithoutRetry:
    def test_deadlock_names_blocked_ranks_with_context(self):
        plan = FaultPlan.uniform(seed=7, drop=0.2)
        with pytest.raises(DeadlockError) as excinfo:
            jacobi_run(plan)
        exc = excinfo.value
        assert exc.blocked  # at least one blocked rank reported
        msg = str(exc)
        for rank_id, info in exc.blocked.items():
            assert f"rank {rank_id} waiting on" in msg
            assert info.source >= -1 and info.tag >= -1
            assert info.phase  # runtime ops always carry a phase
            assert f"in {info.phase}" in msg
        assert exc.dropped > 0
        assert "dropped by the fault plan" in msg

    def test_drop_counters_and_trace_events(self):
        plan = FaultPlan.uniform(seed=7, drop=0.2)
        engine = Engine(IDEAL, nranks=2, trace=True, faults=plan)

        def prog(rank):
            if rank.id == 0:
                for i in range(40):
                    yield Send(dest=1, payload=b"x", tag=i)
            else:
                for i in range(40):
                    yield Recv(source=0, tag=i, timeout=1.0)

        res = engine.run(prog)
        dropped = res.stats[0].counters.get("fault_messages_dropped", 0)
        assert dropped > 0
        fault_events = [e for e in res.trace if e.kind == "fault"]
        assert len([e for e in fault_events if e.label == "drop"]) == dropped
        # dropped sends are still charged and counted as sent
        assert res.stats[0].messages_sent == 40


class TestJitterAndDuplication:
    def test_duplicate_messages_share_seq(self):
        # seed 2's draw for (dup, 0->1, seq 0) is ~0.53 < 0.9: it fires.
        plan = FaultPlan.uniform(seed=2, duplicate=0.9)

        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=b"d", tag=5)
            else:
                m = yield Recv(source=0, tag=5)
                return m.seq

        res = run_spmd(prog, 2, IDEAL, faults=plan)
        assert res.stats[0].counters.get("fault_messages_duplicated", 0) == 1
        # one copy consumed, one left over
        assert res.stats[1].counters.get("undelivered_messages", 0) == 1

    def test_jitter_delays_arrival_deterministically(self):
        def prog(rank):
            if rank.id == 0:
                yield Send(dest=1, payload=b"j", tag=1)
            else:
                m = yield Recv(source=0, tag=1)
                return m.arrival

        clean = run_spmd(prog, 2, NCUBE7)
        plan = FaultPlan.uniform(seed=5, jitter=0.01)
        jit1 = run_spmd(prog, 2, NCUBE7, faults=plan)
        jit2 = run_spmd(prog, 2, NCUBE7, faults=plan)
        assert jit1.values[1] > clean.values[1]
        assert jit1.values[1] == jit2.values[1]
        assert jit1.values[1] - clean.values[1] < 0.01


class TestStragglers:
    def test_straggler_slows_whole_run(self):
        r0, s0 = jacobi_run(None)
        plan = FaultPlan.uniform(seed=0, stragglers={3: 4.0})
        r1, s1 = jacobi_run(plan)
        assert r1.makespan > r0.makespan * 1.5
        assert np.array_equal(s0, s1)  # timing-only fault

    def test_only_the_straggler_computes_slower(self):
        plan = FaultPlan.uniform(seed=0, stragglers={1: 3.0})

        def prog(rank):
            yield Compute(1.0, phase="work")

        res = run_spmd(prog, 2, IDEAL, faults=plan)
        assert res.clocks == [1.0, 3.0]


class TestCrashes:
    def test_crash_surfaces_in_deadlock_diagnostics(self):
        plan = FaultPlan.uniform(seed=0, crashes={1: 0.5})

        def prog(rank):
            if rank.id == 0:
                m = yield Recv(source=1, tag=1)
                return m.payload
            else:
                yield Compute(1.0, phase="work")  # crashes mid-compute
                yield Send(dest=0, payload=b"never", tag=1)

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(prog, 2, IDEAL, faults=plan)
        exc = excinfo.value
        assert exc.crashed == {1: 0.5}
        assert 0 in exc.blocked
        assert "crashed ranks" in str(exc)

    def test_crash_before_start_runs_nothing(self):
        plan = FaultPlan.uniform(seed=0, crashes={0: 0.0})
        ran = []

        def prog(rank):
            ran.append(rank.id)
            yield Compute(1.0)

        res = Engine(IDEAL, nranks=1, faults=plan).run(prog)
        assert res.stats[0].counters.get("fault_crashes") == 1
        assert res.clocks == [0.0]


class TestRecvTimeout:
    def test_timeout_resumes_with_none(self):
        def prog(rank):
            if rank.id == 0:
                m = yield Recv(source=1, tag=1, timeout=0.25, phase="wait")
                return m
            else:
                yield Compute(0.01)

        res = run_spmd(prog, 2, NCUBE7)
        assert res.values[0] is None
        assert res.clocks[0] == pytest.approx(0.25)
        assert res.stats[0].counters.get("recv_timeouts") == 1

    def test_late_message_caught_by_later_recv(self):
        def prog(rank):
            if rank.id == 0:
                first = yield Recv(source=1, tag=1, timeout=0.001)
                second = yield Recv(source=1, tag=1)
                return (first, second.payload)
            else:
                yield Compute(0.5)
                yield Send(dest=0, payload="late", tag=1)

        res = run_spmd(prog, 2, NCUBE7)
        assert res.values[0] == (None, "late")

    def test_message_within_deadline_delivered(self):
        def prog(rank):
            if rank.id == 0:
                m = yield Recv(source=1, tag=1, timeout=10.0)
                return m.payload
            else:
                yield Compute(0.1)
                yield Send(dest=0, payload="ok", tag=1)

        res = run_spmd(prog, 2, NCUBE7)
        assert res.values[0] == "ok"

    def test_timeout_validation(self):
        with pytest.raises(CommunicationError):
            Recv(source=0, tag=1, timeout=0.0)


class TestFaultsCli:
    def test_replay_check_writes_run_file(self, tmp_path, capsys):
        out = tmp_path / "faulted.json"
        rc = faults_main([
            "replay", "--app", "jacobi", "--procs", "4", "--rows", "12",
            "--cols", "12", "--sweeps", "2", "--drop", "0.05", "--retry",
            "--seed", "7", "--check", "-o", str(out),
        ])
        assert rc == 0
        txt = capsys.readouterr().out
        assert "check OK" in txt and "fault overhead" in txt
        doc = json.loads(out.read_text())
        assert doc["meta"]["fault_plan"].startswith("seed=7")

    def test_template_then_replay(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert faults_main(["template", "-o", str(plan_path)]) == 0
        loaded = FaultPlan.from_json(str(plan_path))
        assert loaded.retry is not None
        rc = faults_main([
            "replay", "--plan", str(plan_path), "--app", "jacobi",
            "--procs", "4", "--rows", "12", "--cols", "12",
            "--sweeps", "2", "--check",
        ])
        assert rc == 0
        assert "check OK" in capsys.readouterr().out

    def test_replay_without_retry_reports_deadlock(self, capsys):
        rc = faults_main([
            "replay", "--app", "jacobi", "--procs", "4", "--rows", "12",
            "--cols", "12", "--sweeps", "2", "--drop", "0.3", "--seed", "7",
        ])
        assert rc == 1
        assert "deadlocked" in capsys.readouterr().out

    def test_bad_plan_is_cli_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = faults_main(["replay", "--plan", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestObsIntegration:
    def test_fault_events_exported_as_perfetto_instants(self):
        from repro.obs.chrome_trace import to_chrome_trace, validate_chrome_trace

        plan = FaultPlan.uniform(seed=7, drop=0.05, retry=RetryPolicy())
        res, _ = jacobi_run(plan, trace=True)
        doc = to_chrome_trace(res.trace, nranks=8)
        assert validate_chrome_trace(doc) == []
        instants = [e for e in doc["traceEvents"]
                    if e.get("cat") == "fault"]
        assert instants and all(e["ph"] == "i" for e in instants)
        assert any(e["name"] == "fault:retry" for e in instants)

    def test_fault_counters_reach_metrics_registry(self):
        from repro.obs.registry import MetricsRegistry

        plan = FaultPlan.uniform(seed=7, drop=0.05, retry=RetryPolicy())
        res, _ = jacobi_run(plan)
        reg = MetricsRegistry.from_run(res.engine)
        assert reg.get("counter_sum.retry_retransmissions") > 0

    def test_timeline_marks_faults(self):
        from repro.machine.trace import render_timeline

        plan = FaultPlan.uniform(seed=7, drop=0.2)
        engine = Engine(IDEAL, nranks=2, trace=True, faults=plan)

        def prog(rank):
            if rank.id == 0:
                for i in range(20):
                    yield Compute(0.1)
                    yield Send(dest=1, payload=b"x", tag=i)
            else:
                for i in range(20):
                    yield Recv(source=0, tag=i, timeout=50.0)

        res = engine.run(prog)
        art = render_timeline(res.trace, nranks=2)
        assert "!" in art and "! fault" in art

    def test_critical_path_ignores_fault_instants(self):
        from repro.obs.critical_path import critical_path

        plan = FaultPlan.uniform(seed=7, drop=0.05, retry=RetryPolicy())
        res, _ = jacobi_run(plan, trace=True)
        cp = critical_path(res.trace, nranks=8)
        assert cp.length > 0
        assert all(s.kind != "fault" for s in cp.steps)
