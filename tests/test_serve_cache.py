"""The persistent schedule-cache tier: keys, failure modes, equivalence.

Four promises under test:

* **content addressing** — the key is a function of the forall spec, the
  distributions, and the *bytes* of the communication-determining arrays;
  mesh values do not perturb it, indirection edits do, so invalidation
  works across process restarts where version counters cannot;
* **corruption tolerance** — truncated/garbled/foreign entries are a
  miss (plus deletion), never a wrong schedule;
* **LRU bound** — the directory respects ``max_bytes``, evicting the
  least-recently-used entries;
* **equivalence** — cold, warm (disk-hit), and restarted-server runs
  produce bit-identical arrays; and within the warm equivalence class
  {sim, fork-per-run, warm pool, restarted pool — all against a
  populated cache dir} the per-rank communication counters match
  exactly.  (Warm and cold runs legitimately differ from *each other*
  in counters: a disk hit skips the inspector's crystal-router
  messages — that is the whole point.)
"""

import pickle

import numpy as np
import pytest

from tests.differential import (
    DifferentialPair,
    assert_arrays_identical,
    assert_counters_identical,
)
from repro.apps.jacobi import build_jacobi
from repro.meshes.regular import five_point_grid
from repro.runtime.schedule import CommSchedule
from repro.serve.diskcache import (
    SCHEDCACHE_FORMAT,
    DiskScheduleCache,
    schedule_content_key,
)
from repro.serve.pool import RankPool

pytestmark = pytest.mark.timeout(180)


def _jacobi_env(nprocs=4, rank=0, rows=8, cols=8, seed=3):
    mesh = five_point_grid(rows, cols)
    init = np.random.default_rng(seed).random(mesh.n)
    prog = build_jacobi(mesh, nprocs, initial=init)
    env = {name: darr.scatter(rank) for name, darr in prog.ctx.arrays.items()}
    return prog, env


class TestContentKey:
    def test_deterministic(self):
        prog, env = _jacobi_env()
        k1 = schedule_content_key(prog.relax_loop, env)
        k2 = schedule_content_key(prog.relax_loop, env)
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_mesh_values_do_not_perturb_key(self):
        # 'a' and 'old_a' are read, but they are not communication-
        # determining: changing them must re-hit the same schedule.
        prog, env = _jacobi_env()
        k1 = schedule_content_key(prog.relax_loop, env)
        env["a"].data[:] += 1.0
        env["old_a"].data[:] *= 2.0
        assert schedule_content_key(prog.relax_loop, env) == k1

    def test_indirection_bytes_perturb_key(self):
        # Edits go through the driver array: the key hashes the *global*
        # content fingerprint (stamped at scatter), not local bytes, so
        # every rank reaches the same hit/miss verdict.
        prog, env = _jacobi_env()
        k1 = schedule_content_key(prog.relax_loop, env)
        adj = prog.ctx.arrays["adj"]
        edited = adj.data.copy()
        edited[0, 0] = (edited[0, 0] + 1) % edited.max()
        adj.set(edited)
        env["adj"] = adj.scatter(0)
        assert schedule_content_key(prog.relax_loop, env) != k1

    def test_count_bytes_perturb_key(self):
        prog, env = _jacobi_env()
        k1 = schedule_content_key(prog.relax_loop, env)
        count = prog.ctx.arrays["count"]
        edited = count.data.copy()
        edited[0] = max(0, edited[0] - 1)
        count.set(edited)
        env["count"] = count.scatter(0)
        assert schedule_content_key(prog.relax_loop, env) != k1

    def test_local_only_edit_does_not_perturb_key(self):
        # A mutation of one rank's local piece must NOT change the key:
        # the key is collective, derived from the global fingerprint.
        prog, env = _jacobi_env()
        k1 = schedule_content_key(prog.relax_loop, env)
        env["adj"].data[0, 0] += 1
        assert schedule_content_key(prog.relax_loop, env) == k1

    def test_missing_content_tag_disables_disk_tier(self):
        prog, env = _jacobi_env()
        env["adj"].content_tag = None
        assert schedule_content_key(prog.relax_loop, env) is None

    def test_rank_and_translation_in_key(self):
        prog, env0 = _jacobi_env(rank=0)
        _, env1 = _jacobi_env(rank=1)
        k0 = schedule_content_key(prog.relax_loop, env0)
        assert schedule_content_key(prog.relax_loop, env1) != k0
        assert schedule_content_key(
            prog.relax_loop, env0, translation="enumerated"
        ) != k0

    def test_label_in_key(self):
        prog, env = _jacobi_env()
        assert schedule_content_key(prog.copy_loop, env) != \
            schedule_content_key(prog.relax_loop, env)

    def test_missing_array_returns_none(self):
        prog, env = _jacobi_env()
        del env["adj"]
        assert schedule_content_key(prog.relax_loop, env) is None


def _dummy_schedule(label="x", payload_bytes=0):
    sched = CommSchedule(label=label, rank=0,
                         exec_local=np.arange(4),
                         exec_nonlocal=np.arange(0))
    if payload_bytes:
        sched._padding = b"p" * payload_bytes  # size filler for LRU tests
    return sched


class TestDiskCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = DiskScheduleCache(tmp_path)
        key = "k" * 64
        assert cache.load(key) is None
        assert cache.misses == 1
        cache.store(key, _dummy_schedule())
        loaded = cache.load(key)
        assert isinstance(loaded, CommSchedule)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == 1
        assert cache.stats()["entries"] == 1

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = DiskScheduleCache(tmp_path)
        key = "t" * 64
        cache.store(key, _dummy_schedule())
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.load(key) is None
        assert cache.corrupt == 1
        assert not path.exists()
        # and the slot is usable again
        cache.store(key, _dummy_schedule())
        assert cache.load(key) is not None

    def test_garbage_and_wrong_format_rejected(self, tmp_path):
        cache = DiskScheduleCache(tmp_path)
        k1, k2, k3 = "a" * 64, "b" * 64, "c" * 64
        cache._path(k1).write_bytes(b"not a pickle at all")
        cache._path(k2).write_bytes(
            pickle.dumps({"format": "something-else", "key": k2,
                          "schedule": _dummy_schedule()})
        )
        # right format, wrong key (renamed/collided file)
        cache._path(k3).write_bytes(
            pickle.dumps({"format": SCHEDCACHE_FORMAT, "key": "d" * 64,
                          "schedule": _dummy_schedule()})
        )
        for k in (k1, k2, k3):
            assert cache.load(k) is None
            assert not cache._path(k).exists()
        assert cache.corrupt == 3

    def test_lru_eviction_under_small_cap(self, tmp_path):
        import os
        import time

        probe = DiskScheduleCache(tmp_path / "probe")
        probe.store("p" * 64, _dummy_schedule(payload_bytes=1000))
        entry_size = probe.total_bytes()

        cache = DiskScheduleCache(tmp_path / "real",
                                  max_bytes=int(entry_size * 2.5))
        a, b, c, d = ("a" * 64, "b" * 64, "c" * 64, "d" * 64)
        base = time.time()
        for i, k in enumerate((a, b, c)):
            cache.store(k, _dummy_schedule(payload_bytes=1000))
            # mtime is the LRU clock; age the early entries explicitly
            os.utime(cache._path(k), (base - 300 + i, base - 300 + i))
        assert cache.evictions == 1  # storing c overflowed: a was oldest
        cache.store(d, _dummy_schedule(payload_bytes=1000))
        assert cache.evictions == 2  # storing d evicted b
        assert cache.total_bytes() <= cache.max_bytes
        assert not cache._path(a).exists()
        assert not cache._path(b).exists()
        assert cache._path(c).exists()
        assert cache._path(d).exists()

    def test_hit_refreshes_lru_position(self, tmp_path):
        import os
        import time

        cache = DiskScheduleCache(tmp_path, max_bytes=1 << 30)
        old, new = "a" * 64, "b" * 64
        cache.store(old, _dummy_schedule(payload_bytes=500))
        cache.store(new, _dummy_schedule(payload_bytes=500))
        base = time.time()
        os.utime(cache._path(old), (base - 100, base - 100))
        os.utime(cache._path(new), (base, base))
        assert cache.load(old) is not None  # touch: now most recent
        cache.max_bytes = cache.total_bytes()  # room for exactly two
        cache.store("c" * 64, _dummy_schedule(payload_bytes=500))
        assert cache._path(old).exists()
        assert not cache._path(new).exists()

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskScheduleCache(tmp_path, max_bytes=0)


def _build(cache_dir=None, backend="sim", pool=None, seed=11):
    mesh = five_point_grid(10, 10)
    init = np.random.default_rng(seed).random(mesh.n)
    return build_jacobi(
        mesh, 4, initial=init, backend=backend, pool=pool,
        schedule_cache_dir=str(cache_dir) if cache_dir else None,
    )


class TestTwoTierIntegration:
    def test_second_process_skips_inspection(self, tmp_path):
        cold = _build(tmp_path)
        cold_res = cold.run(3)
        assert cold_res.engine.counter_sum("inspector_runs") == 4
        assert cold_res.engine.counter_sum("schedule_cache_disk_stores") == 4

        warm = _build(tmp_path)  # fresh context = "new process" for sim
        warm_res = warm.run(3)
        assert warm_res.engine.counter_sum("inspector_runs") == 0
        assert warm_res.engine.counter_sum("schedule_cache_disk_hits") == 4
        assert np.array_equal(warm.solution, cold.solution)
        assert warm_res.strategies()["jacobi-relax"] == "disk-cache"

    def test_indirection_edit_invalidates_across_restart(self, tmp_path):
        cold = _build(tmp_path)
        cold.run(2)
        entries_before = len(DiskScheduleCache(tmp_path).entries())

        # "Restart" with different indirection content: the old entries
        # must not satisfy the lookup (content key differs), so the run
        # re-inspects and stores new entries alongside.
        mesh = five_point_grid(10, 10)
        adj = mesh.adj.copy()
        adj[0], adj[1] = mesh.adj[1].copy(), mesh.adj[0].copy()
        mesh.adj[:] = adj
        init = np.random.default_rng(11).random(mesh.n)
        prog = build_jacobi(mesh, 4, initial=init,
                            schedule_cache_dir=str(tmp_path))
        res = prog.run(2)
        assert res.engine.counter_sum("inspector_runs") == 4
        assert res.engine.counter_sum("schedule_cache_disk_hits") == 0
        assert len(DiskScheduleCache(tmp_path).entries()) > entries_before

    def test_indirection_edit_within_process_reinspects(self, tmp_path):
        prog = _build(tmp_path)
        prog.run(2)
        # Edit the indirection table through the driver API.  Each run()
        # scatters fresh local pieces, so the next run's lookup goes to
        # the disk tier — where the content key no longer matches.
        adj = prog.ctx.arrays["adj"].data.copy()
        adj[[0, 1]] = adj[[1, 0]]
        prog.ctx.arrays["adj"].set(adj)
        res = prog.run(2)
        assert res.engine.counter_sum("inspector_runs") == 4
        assert res.engine.counter_sum("schedule_cache_disk_hits") == 0
        assert res.engine.counter_sum("schedule_cache_disk_misses") >= 4

    def test_corrupt_entry_falls_back_to_reinspection(self, tmp_path):
        cold = _build(tmp_path)
        cold.run(2)
        for p in DiskScheduleCache(tmp_path).entries():
            p.write_bytes(b"garbage")
        warm = _build(tmp_path)
        res = warm.run(2)
        assert res.engine.counter_sum("inspector_runs") == 4
        assert res.engine.counter_sum("schedule_cache_disk_corrupt") == 4
        assert np.array_equal(warm.solution, cold.solution)

    def test_disk_disabled_without_dir(self):
        prog = _build(None)
        res = prog.run(2)
        assert res.engine.counter_sum("schedule_cache_disk_hits") == 0
        assert res.engine.counter_sum("schedule_cache_disk_stores") == 0


class TestServedDifferential:
    """The acceptance guarantee: bit-identical arrays and exact per-rank
    counters across backends, in both equivalence classes."""

    def _pair(self, ref_prog, ref_res, other_prog, other_res):
        return DifferentialPair(
            sim_result=ref_res,
            mp_result=other_res,
            sim_arrays={n: d.data.copy()
                        for n, d in ref_prog.ctx.arrays.items()},
            mp_arrays={n: d.data.copy()
                       for n, d in other_prog.ctx.arrays.items()},
        )

    def test_warm_class_identical(self, tmp_path):
        sweeps = 3
        # Cold sim run (no disk) is the correctness baseline ...
        cold = _build(None)
        cold_res = cold.run(sweeps)
        # ... and a throwaway cold run populates the shared cache dir.
        _build(tmp_path).run(sweeps)

        warm_sim = _build(tmp_path)
        warm_sim_res = warm_sim.run(sweeps)
        warm_fork = _build(tmp_path, backend="mp")
        warm_fork_res = warm_fork.run(sweeps)

        with RankPool(4, timeout=60) as pool:
            pool_1 = _build(tmp_path, pool=pool)
            pool_1_res = pool_1.run(sweeps)
            pool_2 = _build(tmp_path, pool=pool)
            pool_2_res = pool_2.run(sweeps)
            assert pool.last_pool_reused is True
        with RankPool(4, timeout=60) as restarted:
            restart = _build(tmp_path, pool=restarted)
            restart_res = restart.run(sweeps)

        # Arrays: identical everywhere, including vs the cold baseline.
        for prog, res in ((warm_sim, warm_sim_res),
                          (warm_fork, warm_fork_res),
                          (pool_1, pool_1_res), (pool_2, pool_2_res),
                          (restart, restart_res)):
            assert_arrays_identical(self._pair(cold, cold_res, prog, res))
            assert res.engine.counter_sum("inspector_runs") == 0

        # Counters: exact within the warm class (vs warm sim).
        for prog, res in ((warm_fork, warm_fork_res),
                          (pool_1, pool_1_res), (pool_2, pool_2_res),
                          (restart, restart_res)):
            pair = self._pair(warm_sim, warm_sim_res, prog, res)
            assert_counters_identical(pair)

    def test_warm_runs_skip_inspector_messages(self, tmp_path):
        sweeps = 2
        cold = _build(None)
        cold_res = cold.run(sweeps)
        _build(tmp_path).run(sweeps)
        warm = _build(tmp_path)
        warm_res = warm.run(sweeps)
        # The amortization argument, observable: the inspector's crystal-
        # router messages are gone from warm runs.
        assert warm_res.engine.total_messages() < \
            cold_res.engine.total_messages()
        assert np.array_equal(warm.solution, cold.solution)
