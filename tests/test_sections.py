"""Unit and property tests for strided-section algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sections import Section, union_to_interval_set
from repro.util.intsets import IntervalSet


class TestConstruction:
    def test_basic(self):
        s = Section(0, 10, 2)
        assert list(s) == [0, 2, 4, 6, 8, 10]
        assert len(s) == 6

    def test_hi_canonicalised_to_member(self):
        s = Section(0, 9, 2)
        assert s.hi == 8
        assert list(s) == [0, 2, 4, 6, 8]

    def test_empty(self):
        assert not Section(5, 3)
        assert len(Section.empty()) == 0

    def test_singleton_step_canonical(self):
        s = Section(4, 4, 7)
        assert s.step == 1
        assert list(s) == [4]

    def test_point(self):
        assert list(Section.point(-3)) == [-3]

    def test_bad_step(self):
        with pytest.raises(ValueError):
            Section(0, 10, 0)

    def test_contains(self):
        s = Section(1, 13, 3)
        assert 1 in s and 7 in s and 13 in s
        assert 2 not in s and 0 not in s and 16 not in s


class TestIntersect:
    def test_same_step(self):
        a = Section(0, 20, 2)
        b = Section(4, 16, 2)
        assert a.intersect(b) == Section(4, 16, 2)

    def test_offset_same_step_disjoint(self):
        a = Section(0, 20, 2)  # evens
        b = Section(1, 19, 2)  # odds
        assert not a.intersect(b)

    def test_coprime_steps(self):
        a = Section(0, 30, 2)
        b = Section(0, 30, 3)
        assert list(a.intersect(b)) == [0, 6, 12, 18, 24, 30]

    def test_crt_with_offsets(self):
        # x ≡ 1 (mod 4) and x ≡ 2 (mod 3) -> x ≡ 5 (mod 12)
        a = Section(1, 100, 4)
        b = Section(2, 100, 3)
        got = a.intersect(b)
        assert got.step == 12
        assert got.lo == 5
        assert list(got) == list(range(5, 101, 12))

    def test_incompatible_congruence(self):
        # x ≡ 0 (mod 2) and x ≡ 1 (mod 4): impossible
        assert not Section(0, 100, 2).intersect(Section(1, 100, 4)).step == 0 or \
            not Section(0, 100, 4).intersect(Section(1, 100, 4))

    def test_range_clipping(self):
        a = Section(0, 1000, 5)
        b = Section(10, 30, 1)
        assert list(a.intersect(b)) == [10, 15, 20, 25, 30]

    def test_with_empty(self):
        assert not Section(0, 10).intersect(Section.empty())

    def test_commutative(self):
        a = Section(3, 50, 7)
        b = Section(0, 60, 4)
        assert a.intersect(b) == b.intersect(a)


class TestTransforms:
    def test_clip(self):
        assert list(Section(0, 100, 10).clip(15, 55)) == [20, 30, 40, 50]

    def test_shift(self):
        assert Section(0, 10, 5).shift(3) == Section(3, 13, 5)

    def test_preimage_identity(self):
        s = Section(0, 20, 4)
        assert s.affine_preimage(1, 0) == s

    def test_preimage_shift(self):
        # i+2 in {0,4,..,20} <=> i in {-2, 2, ..., 18}
        s = Section(0, 20, 4).affine_preimage(1, 2)
        assert list(s) == [-2, 2, 6, 10, 14, 18]

    def test_preimage_scale(self):
        # 2i in {0..20 step 4} <=> i in {0..10 step 2}
        s = Section(0, 20, 4).affine_preimage(2, 0)
        assert list(s) == [0, 2, 4, 6, 8, 10]

    def test_preimage_scale_no_solution(self):
        # 2i in odds: impossible
        assert not Section(1, 21, 2).affine_preimage(2, 0)

    def test_preimage_negative_a(self):
        # -i + 10 in {0, 5, 10} (step 5, lo 0, hi 10) <=> i in {0, 5, 10}
        s = Section(0, 10, 5).affine_preimage(-1, 10)
        assert sorted(s) == [0, 5, 10]

    def test_preimage_zero_raises(self):
        with pytest.raises(ValueError):
            Section(0, 5).affine_preimage(0, 1)


class TestConversions:
    def test_to_interval_set_contiguous(self):
        assert Section(2, 6).to_interval_set() == IntervalSet.range(2, 6)

    def test_to_interval_set_strided(self):
        s = Section(0, 6, 3).to_interval_set()
        assert s.intervals == ((0, 0), (3, 3), (6, 6))

    def test_to_array(self):
        np.testing.assert_array_equal(Section(1, 9, 4).to_array(), [1, 5, 9])

    def test_union_to_interval_set(self):
        u = union_to_interval_set([Section(0, 2), Section(4, 6)])
        assert u.intervals == ((0, 2), (4, 6))


# --- property-based ----------------------------------------------------------

sections = st.builds(
    Section,
    st.integers(-100, 100),
    st.integers(-100, 200),
    st.integers(1, 12),
)


@given(sections, sections)
def test_intersect_matches_enumeration(a, b):
    got = set(a.intersect(b))
    expected = set(a) & set(b)
    assert got == expected


@given(sections, st.integers(-6, 6).filter(lambda x: x != 0), st.integers(-40, 40))
def test_preimage_matches_enumeration(s, a, b):
    pre = s.affine_preimage(a, b)
    window = range(-400, 400)
    expected = {i for i in window if a * i + b in s}
    got = {i for i in pre if -400 <= i < 400}
    assert got == expected


@given(sections)
def test_interval_set_roundtrip(s):
    assert set(s.to_interval_set()) == set(s)


@given(sections, st.integers(-50, 50))
def test_shift_is_bijection(s, k):
    assert len(s.shift(k)) == len(s)
    assert set(s.shift(k)) == {x + k for x in s}
