"""repro — a reproduction of Kali (Koelbel, Mehrotra & Van Rosendale, PPoPP 1990).

Kali provides a *global name space* for data-parallel programs on
distributed-memory machines: the programmer declares processor arrays,
distributes arrays across them, and writes ``forall`` loops against global
indices; the system generates the message passing, either by compile-time
set analysis or by the run-time inspector/executor strategy that is the
paper's core contribution.

Top-level convenience re-exports cover the common path::

    from repro import (ProcessorArray, Block, DistributedArray,
                       KaliContext, NCUBE7)

See README.md for a tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"

from repro.errors import KaliError
from repro.machine import NCUBE7, IPSC2, IDEAL, Hypercube, MachineModel
from repro.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Custom,
    Replicated,
    ProcessorArray,
    ArrayDistribution,
)
from repro.arrays import DistributedArray
from repro.core import KaliContext, Forall, OnOwner, OnProcessor, AffineRead, IndirectRead

__all__ = [
    "__version__",
    "KaliError",
    "NCUBE7",
    "IPSC2",
    "IDEAL",
    "Hypercube",
    "MachineModel",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "Custom",
    "Replicated",
    "ProcessorArray",
    "ArrayDistribution",
    "DistributedArray",
    "KaliContext",
    "Forall",
    "OnOwner",
    "OnProcessor",
    "AffineRead",
    "IndirectRead",
]
