"""Compile-time subscript analysis (paper §3.2 and reference [3]).

When subscripts are affine and distributions regular, the exec/ref/in/out
sets have closed forms and "no set computations need be done at run-time".
:mod:`repro.analysis.planner` decides per forall whether the closed-form
path applies; :mod:`repro.analysis.closedform` builds the communication
schedule symbolically (zero virtual-time charge, no inspector
communication).
"""

from repro.analysis.planner import Strategy, choose_strategy, explain_strategy
from repro.analysis.closedform import build_closed_form_schedule

__all__ = [
    "Strategy",
    "choose_strategy",
    "explain_strategy",
    "build_closed_form_schedule",
]
