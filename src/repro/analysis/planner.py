"""Choosing between compile-time and run-time analysis (paper §3.2).

"In some cases we can analyze the program at compile-time and precompute
the sets symbolically.  Such an analysis requires the subscripts and data
distribution patterns to be of a form such that closed form expressions
can be obtained for the communications sets."

The conditions checked here are exactly those: every read subscript is
affine, the ``on`` clause is an affine owner clause, and every referenced
distribution admits a cheap strided-section description of ``local(p)``
(block and cyclic always; block-cyclic while each processor owns few
blocks; user-defined maps never).
Anything else — in particular the data-dependent ``old_a[adj[i,j]]`` of
the paper's relaxation kernel — falls back to the run-time inspector.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.arrays.localview import LocalArray
from repro.core.forall import AffineRead, Forall, IndirectRead, OnOwner


class Strategy(enum.Enum):
    COMPILE_TIME = "compile-time"
    RUNTIME = "runtime"


def _reasons_against_compile_time(
    forall: Forall, env: Dict[str, LocalArray]
) -> List[str]:
    reasons: List[str] = []
    if not isinstance(forall.on, OnOwner):
        reasons.append("on clause does not name an owner array")
    else:
        target = env.get(forall.on.array)
        if target is None:
            reasons.append(f"on-clause array {forall.on.array!r} not in scope")
        else:
            if target.dist.procs.ndim != 1:
                reasons.append("processor array is not one-dimensional")
            dim0 = target.dist.dims[0]
            if not dim0.supports_closed_form():
                reasons.append(
                    f"distribution of {forall.on.array!r} has no closed form"
                )
    for read in forall.reads:
        if isinstance(read, IndirectRead):
            reasons.append(
                f"reference {read.operand_name()} is data-dependent "
                "(indirection array)"
            )
            continue
        arr = env.get(read.array)
        if arr is None:
            reasons.append(f"read array {read.array!r} not in scope")
            continue
        dim0 = arr.dist.dims[0]
        if not dim0.supports_closed_form():
            reasons.append(
                f"distribution of {read.array!r} admits no (cheap) closed form"
            )
    return reasons


def choose_strategy(forall: Forall, env: Dict[str, LocalArray]) -> Strategy:
    """Pick the analysis strategy the compiler would emit for this loop."""
    if _reasons_against_compile_time(forall, env):
        return Strategy.RUNTIME
    return Strategy.COMPILE_TIME


def explain_strategy(forall: Forall, env: Dict[str, LocalArray]) -> Tuple[Strategy, List[str]]:
    """Strategy plus the human-readable reasons for a runtime fallback."""
    reasons = _reasons_against_compile_time(forall, env)
    return (Strategy.RUNTIME if reasons else Strategy.COMPILE_TIME), reasons
