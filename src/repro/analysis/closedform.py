"""Closed-form construction of communication schedules (paper §3.2, [3]).

For affine subscripts over section-form distributions the sets of §3.1 are
computed symbolically::

    exec(p)  = f⁻¹(local(p)) ∩ Index_set          (a strided section)
    ref_k(p) = g_k⁻¹(local(p))                     (a strided section)
    in(p,q)  = g_k(exec(p)) ∩ local(q)             (a strided section)
    out(p,q) = in(q,p)                             (computed symmetrically)

so the schedule is built *without any communication and without charging
virtual time* — the run-time residue of the paper's compile-time analysis
is just evaluating these formulas, which it folds into code generation.

The resulting :class:`CommSchedule` is bit-identical in structure to what
the inspector would produce for the same loop (a property the test suite
asserts), so the executor is oblivious to which path built its schedule.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arrays.localview import LocalArray
from repro.core.forall import Affine, AffineRead, Forall, OnOwner
from repro.errors import AnalysisError
from repro.machine.api import Rank
from repro.runtime.schedule import ArraySchedule, CommSchedule, RangeRecord, coalesce_ranges
from repro.util.sections import Section


def _local_sections(arr: LocalArray, proc: int) -> List[Section]:
    secs = arr.dist.dims[0].analysis_sections(proc)
    if secs is None:
        raise AnalysisError(
            f"array {arr.name!r} has no closed-form local sets; use the "
            "run-time inspector"
        )
    return [s for s in secs if s]


def _exec_sections(forall: Forall, arr_on: LocalArray, proc: int) -> List[Section]:
    """``exec(p)`` as a union of sections (one per local section of the
    on-clause target; block-cyclic contributes one per owned block)."""
    lo, hi = forall.index_range
    f: Affine = forall.on.fn
    out = []
    for sec in _local_sections(arr_on, proc):
        pre = sec.affine_preimage(f.a, f.b).clip(lo, hi)
        if pre:
            out.append(pre)
    return out


def _image(sec: Section, g: Affine) -> Section:
    """Image of a section under an affine map (stays a section)."""
    if not sec:
        return Section.empty()
    if g.a > 0:
        return Section(g(sec.lo), g(sec.hi), g.a * sec.step)
    return Section(g(sec.hi), g(sec.lo), -g.a * sec.step)


def build_closed_form_schedule(
    rank: Rank, forall: Forall, env: Dict[str, LocalArray]
) -> CommSchedule:
    """Build this rank's schedule symbolically.  Pure function of the
    distributions and subscripts — no messages, no virtual-time charge."""
    if not isinstance(forall.on, OnOwner):
        raise AnalysisError("closed-form analysis needs an owner on-clause")
    for read in forall.reads:
        if not isinstance(read, AffineRead):
            raise AnalysisError(
                f"closed-form analysis cannot handle {read!r}"
            )
    on_arr = env[forall.on.array]
    me = rank.id
    P = rank.size

    exec_me = _exec_sections(forall, on_arr, me)
    exec_arr = (
        np.unique(np.concatenate([s.to_array() for s in exec_me]))
        if exec_me
        else np.empty(0, dtype=np.int64)
    )

    # Range checking (the same checks the inspector applies dynamically).
    for read in forall.reads:
        arr = env[read.array]
        for es in exec_me:
            img = _image(es, read.fn)
            if img.lo < 0 or img.hi >= arr.dist.shape[0]:
                raise AnalysisError(
                    f"{forall.label}: reference {read.operand_name()} "
                    f"subscript range [{img.lo}, {img.hi}] exceeds array "
                    f"bounds [0, {arr.dist.shape[0] - 1}]"
                )
    for w in forall.writes:
        arr = env[w.array]
        w_secs = _local_sections(arr, me)
        for es in exec_me:
            img = _image(es, w.fn)
            covered = sum(len(img.intersect(wl)) for wl in w_secs)
            if covered != len(img):
                raise AnalysisError(
                    f"{forall.label}: write to {w.array} targets remote "
                    "elements; Kali foralls follow owner-computes"
                )

    def _in_sections(values: np.ndarray, secs: List[Section]) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        for sec in secs:
            mask |= (
                (values >= sec.lo)
                & (values <= sec.hi)
                & ((values - sec.lo) % sec.step == 0)
            )
        return mask

    # ref(p) per read, and the local/nonlocal iteration split.
    local_iter_mask = np.ones(exec_arr.shape, dtype=bool)
    for read in forall.reads:
        arr = env[read.array]
        ref_secs = [
            ls.affine_preimage(read.fn.a, read.fn.b)
            for ls in _local_sections(arr, me)
        ]
        local_iter_mask &= _in_sections(exec_arr, [s for s in ref_secs if s])

    schedule = CommSchedule(
        label=forall.label,
        rank=me,
        exec_local=exec_arr[local_iter_mask],
        exec_nonlocal=exec_arr[~local_iter_mask],
        built_by="compile-time",
    )

    for name in sorted({r.array for r in forall.reads}):
        arr = env[name]
        reads_of = [r for r in forall.reads if r.array == name]
        asched = ArraySchedule(array=name)

        # in(me, q): elements of remote processors q that my iterations read.
        in_offsets: Dict[int, List[np.ndarray]] = {}
        for q in range(P):
            if q == me:
                continue
            for loc_q in _local_sections(arr, q):
                for read in reads_of:
                    for es in exec_me:
                        need = _image(es, read.fn).intersect(loc_q)
                        if need:
                            offs = np.asarray(
                                arr.dist.dims[0].to_local(need.to_array())
                            )
                            in_offsets.setdefault(q, []).append(offs)
        merged_in = {
            q: np.concatenate(chunks) for q, chunks in in_offsets.items()
        }
        asched.in_records = coalesce_ranges(merged_in, me, incoming=True)
        asched.finalize()

        # out(me, q) = in(q, me): what each q's iterations need from me.
        loc_me_secs = _local_sections(arr, me)
        out_offsets: Dict[int, List[np.ndarray]] = {}
        for q in range(P):
            if q == me:
                continue
            exec_q = _exec_sections(forall, on_arr, q)
            for es in exec_q:
                for read in reads_of:
                    for loc_me in loc_me_secs:
                        give = _image(es, read.fn).intersect(loc_me)
                        if give:
                            offs = np.asarray(
                                arr.dist.dims[0].to_local(give.to_array())
                            )
                            out_offsets.setdefault(q, []).append(offs)
        merged_out = {
            q: np.concatenate(chunks) for q, chunks in out_offsets.items()
        }
        asched.out_records = coalesce_ranges(merged_out, me, incoming=False)
        schedule.arrays[name] = asched

    # Affine loops have no data-dependent communication (empty data-version
    # map), but layout changes still invalidate them.
    for name in set(forall.arrays_read()) | set(forall.arrays_written()):
        schedule.dist_versions[name] = env[name].dist_version
    return schedule
