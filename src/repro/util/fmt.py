"""Plain-text table rendering for the benchmark harness.

The paper's evaluation is presented as fixed-width tables (its Figures
7–10).  ``render_table`` reproduces that presentation so benchmark output
can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_seconds(value: float) -> str:
    """Seconds with two decimals, as in the paper's tables."""
    return f"{value:.2f}"


def format_percent(value: float) -> str:
    """A ratio rendered as a percentage with one decimal, e.g. ``11.5%``."""
    return f"{100.0 * value:.1f}%"


def _to_str(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render a titled fixed-width table as a string."""
    str_rows: List[List[str]] = [[_to_str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
