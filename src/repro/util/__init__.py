"""Small self-contained utilities: integer set algebra, Gray codes, formatting."""

from repro.util.intsets import IntervalSet
from repro.util.sections import Section
from repro.util.gray import gray_encode, gray_decode, hypercube_neighbors

__all__ = [
    "IntervalSet",
    "Section",
    "gray_encode",
    "gray_decode",
    "hypercube_neighbors",
]
