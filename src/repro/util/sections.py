"""Strided regular sections and their algebra.

A *regular section* is an arithmetic progression ``{lo, lo+step, …, <= hi}``
— the natural description of the elements a cyclic distribution places on a
processor (paper §2.2: ``local_B(p) = {i : i ≡ p (mod P)}``) and of the
index sets touched by affine subscripts inside triangular/strided loops.

Closed-form intersection of two sections reduces to solving a pair of
congruences (CRT over non-coprime moduli); that is what lets the
compile-time analysis of cyclic distributions stay symbolic instead of
enumerating elements.
"""

from __future__ import annotations

from math import gcd
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.util.intsets import IntervalSet


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


class Section:
    """An arithmetic progression ``lo, lo+step, …`` capped at ``hi``.

    Canonical form: ``step >= 1``; ``hi`` is the *last member* (so
    ``(hi - lo) % step == 0``) or the section is empty (``lo > hi``).
    """

    __slots__ = ("lo", "hi", "step")

    def __init__(self, lo: int, hi: int, step: int = 1):
        lo, hi, step = int(lo), int(hi), int(step)
        if step < 1:
            raise ValueError(f"Section step must be >= 1, got {step}")
        if lo > hi:
            # Canonical empty section.
            lo, hi, step = 0, -1, 1
        else:
            hi = lo + ((hi - lo) // step) * step
            if lo == hi:
                step = 1
        self.lo, self.hi, self.step = lo, hi, step

    # --- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "Section":
        return cls(0, -1)

    @classmethod
    def point(cls, value: int) -> "Section":
        return cls(value, value)

    # --- protocol -----------------------------------------------------------

    def __len__(self) -> int:
        if self.lo > self.hi:
            return 0
        return (self.hi - self.lo) // self.step + 1

    def __bool__(self) -> bool:
        return self.lo <= self.hi

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1, self.step))

    def __contains__(self, value: int) -> bool:
        value = int(value)
        return self.lo <= value <= self.hi and (value - self.lo) % self.step == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Section):
            return NotImplemented
        return (self.lo, self.hi, self.step) == (other.lo, other.hi, other.step)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.step))

    def __repr__(self) -> str:
        if not self:
            return "Section(empty)"
        return f"Section({self.lo}:{self.hi}:{self.step})"

    # --- algebra ------------------------------------------------------------

    def intersect(self, other: "Section") -> "Section":
        """Closed-form intersection of two arithmetic progressions.

        Solves ``x ≡ lo₁ (mod s₁)`` and ``x ≡ lo₂ (mod s₂)``; the solution,
        when it exists, is a progression with step ``lcm(s₁, s₂)`` clipped
        to the overlap of the two ranges.
        """
        if not self or not other:
            return Section.empty()
        s1, s2 = self.step, other.step
        g, x, _ = _extended_gcd(s1, s2)
        diff = other.lo - self.lo
        if diff % g != 0:
            return Section.empty()
        lcm = s1 // g * s2
        # One solution: self.lo + s1 * x * (diff / g), then canonicalise mod lcm.
        sol = self.lo + s1 * (x * (diff // g))
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return Section.empty()
        # Smallest member of the solution class that is >= lo.
        first = sol + ((lo - sol + lcm - 1) // lcm) * lcm if sol < lo else sol - ((sol - lo) // lcm) * lcm
        if first > hi:
            return Section.empty()
        return Section(first, hi, lcm)

    def clip(self, lo: int, hi: int) -> "Section":
        """Restrict to the window ``[lo, hi]``."""
        return self.intersect(Section(lo, hi, 1)) if self else Section.empty()

    def shift(self, offset: int) -> "Section":
        if not self:
            return Section.empty()
        return Section(self.lo + offset, self.hi + offset, self.step)

    def affine_preimage(self, a: int, b: int) -> "Section":
        """``{i : a*i + b ∈ self}`` for ``a != 0`` — stays a section.

        Membership needs ``a*i + b ≡ lo (mod step)`` and range containment;
        the solutions in ``i`` form a progression with step
        ``step / gcd(a, step)``.
        """
        a, b = int(a), int(b)
        if a == 0:
            raise ValueError("affine_preimage requires a != 0")
        if not self:
            return Section.empty()
        if a < 0:
            # Reflect: a*i + b in S  <=>  (-a)*i + ... handled by negating i.
            mirrored = Section(-self.hi, -self.lo, self.step) if self.step else Section.empty()
            # (-a)*i - b in mirrored  <=>  a*i + b in self
            return mirrored.affine_preimage(-a, -b)
        g = gcd(a, self.step)
        if (self.lo - b) % g != 0:
            return Section.empty()
        # Solve a*i ≡ lo - b (mod step).
        step_i = self.step // g
        _, inv, _ = _extended_gcd(a // g, step_i)
        i0 = ((self.lo - b) // g * inv) % step_i if step_i > 1 else 0
        # Range bounds on i from lo <= a*i + b <= hi.
        ilo = -((-(self.lo - b)) // a)  # ceil
        ihi = (self.hi - b) // a        # floor
        if ilo > ihi:
            return Section.empty()
        # First i >= ilo congruent to i0 mod step_i.
        first = i0 + ((ilo - i0 + step_i - 1) // step_i) * step_i if i0 < ilo else i0 - ((i0 - ilo) // step_i) * step_i
        while first < ilo:
            first += step_i
        if first > ihi:
            return Section.empty()
        return Section(first, ihi, step_i)

    # --- conversions ----------------------------------------------------------

    def to_interval_set(self) -> IntervalSet:
        """Exact :class:`IntervalSet` equivalent (contiguous runs merge)."""
        if not self:
            return IntervalSet.empty()
        if self.step == 1:
            return IntervalSet.range(self.lo, self.hi)
        return IntervalSet((i, i) for i in self)

    def to_array(self) -> np.ndarray:
        if not self:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.lo, self.hi + 1, self.step, dtype=np.int64)


def union_to_interval_set(sections: List[Section]) -> IntervalSet:
    """Union a list of sections into one :class:`IntervalSet`."""
    out = IntervalSet.empty()
    for s in sections:
        out = out | s.to_interval_set()
    return out
