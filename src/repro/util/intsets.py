"""Exact integer set algebra over unions of closed intervals.

The compile-time analysis of the paper manipulates *sets of iteration
indices* and *sets of array elements* — ``exec(p)``, ``ref(p)``,
``in(p,q)``, ``out(p,q)`` (paper §3.1).  For block distributions and affine
subscripts these sets are finite unions of integer intervals, which this
module represents canonically as a sorted tuple of disjoint, non-adjacent
``(lo, hi)`` pairs (both bounds inclusive).

The representation is deliberately exact (no floating point, no
approximation): tests assert set identities such as
``in(p,q) == out(q,p)`` and the analysis must honour them to the element.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

Interval = Tuple[int, int]


def _normalize(pairs: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, drop empty intervals, and merge overlapping/adjacent ones."""
    items: List[Interval] = []
    for lo, hi in pairs:
        lo, hi = int(lo), int(hi)
        if lo <= hi:
            items.append((lo, hi))
    items.sort()
    merged: List[Interval] = []
    for lo, hi in items:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


class IntervalSet:
    """An immutable set of integers stored as disjoint closed intervals.

    Supports the usual set algebra (``|``, ``&``, ``-``), translation by a
    constant (``shift``), affine preimages (``affine_preimage``), and
    conversion to/from explicit index arrays.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._ivals = _normalize(intervals)

    # --- constructors --------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def range(cls, lo: int, hi: int) -> "IntervalSet":
        """The interval ``[lo, hi]`` inclusive; empty when ``lo > hi``."""
        return cls(((lo, hi),))

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        return cls(((value, value),))

    @classmethod
    def from_indices(cls, indices: Sequence[int]) -> "IntervalSet":
        """Build from an arbitrary (possibly unsorted) collection of ints."""
        arr = np.unique(np.asarray(list(indices), dtype=np.int64))
        if arr.size == 0:
            return cls.empty()
        # Split wherever consecutive values differ by more than one.
        breaks = np.nonzero(np.diff(arr) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [arr.size - 1]))
        return cls((int(arr[s]), int(arr[e])) for s, e in zip(starts, ends))

    # --- basic protocol --------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return self._ivals

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self._ivals:
            yield from range(lo, hi + 1)

    def __contains__(self, value: int) -> bool:
        value = int(value)
        # Binary search over interval starts.
        lo_idx, hi_idx = 0, len(self._ivals)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = self._ivals[mid]
            if value < lo:
                hi_idx = mid
            elif value > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        return hash(self._ivals)

    def __repr__(self) -> str:
        if not self._ivals:
            return "IntervalSet(empty)"
        parts = ", ".join(f"{lo}..{hi}" for lo, hi in self._ivals)
        return f"IntervalSet({parts})"

    # --- set algebra ------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._ivals + other._ivals)

    __or__ = union

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        a, b = self._ivals, other._ivals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    __and__ = intersection

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        for lo, hi in self._ivals:
            cur = lo
            for olo, ohi in other._ivals:
                if ohi < cur:
                    continue
                if olo > hi:
                    break
                if olo > cur:
                    out.append((cur, olo - 1))
                cur = max(cur, ohi + 1)
                if cur > hi:
                    break
            if cur <= hi:
                out.append((cur, hi))
        return IntervalSet(out)

    __sub__ = difference

    def isdisjoint(self, other: "IntervalSet") -> bool:
        return not self.intersection(other)

    def issubset(self, other: "IntervalSet") -> bool:
        return not self.difference(other)

    # --- arithmetic transforms -------------------------------------------

    def shift(self, offset: int) -> "IntervalSet":
        """Translate every element by ``offset``."""
        offset = int(offset)
        return IntervalSet((lo + offset, hi + offset) for lo, hi in self._ivals)

    def affine_image(self, a: int, b: int) -> "IntervalSet":
        """The image ``{a*i + b : i in self}`` for integer ``a != 0``.

        For ``|a| > 1`` the image is not contiguous; it is materialised
        element-wise, so this is intended for the moderate set sizes that
        occur in compile-time analysis.
        """
        a, b = int(a), int(b)
        if a == 0:
            raise ValueError("affine_image requires a != 0")
        if a == 1:
            return self.shift(b)
        if a == -1:
            return IntervalSet((-hi + b, -lo + b) for lo, hi in self._ivals)
        return IntervalSet.from_indices([a * i + b for i in self])

    def affine_preimage(self, a: int, b: int) -> "IntervalSet":
        """The preimage ``{i : a*i + b in self}`` for integer ``a != 0``.

        This is the workhorse of the paper's set formulation:
        ``ref(p) = g⁻¹(local(p))`` with ``g(i) = a*i + b``.
        Unlike :meth:`affine_image`, the preimage of an interval is always
        an interval (those ``i`` with ``lo <= a*i+b <= hi``), so this stays
        in closed form for any ``a``.
        """
        a, b = int(a), int(b)
        if a == 0:
            raise ValueError("affine_preimage requires a != 0")
        out: List[Interval] = []
        for lo, hi in self._ivals:
            # Solve lo <= a*i + b <= hi for integer i.
            if a > 0:
                ilo = -((-(lo - b)) // a)  # ceil((lo-b)/a)
                ihi = (hi - b) // a        # floor((hi-b)/a)
            else:
                ilo = -((-(hi - b)) // a)  # ceil((hi-b)/a) with a<0
                ihi = (lo - b) // a        # floor((lo-b)/a) with a<0
            if ilo <= ihi:
                out.append((ilo, ihi))
        return IntervalSet(out)

    # --- conversions -------------------------------------------------------

    def to_array(self) -> np.ndarray:
        """Materialise as a sorted ``int64`` NumPy array."""
        if not self._ivals:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in self._ivals])

    def bounds(self) -> Interval:
        """The smallest ``(lo, hi)`` covering the set; raises when empty."""
        if not self._ivals:
            raise ValueError("empty IntervalSet has no bounds")
        return self._ivals[0][0], self._ivals[-1][1]

    def num_ranges(self) -> int:
        """How many contiguous runs the set contains (the ``r`` of the
        paper's O(log r) search complexity discussion)."""
        return len(self._ivals)
