"""Binary-reflected Gray codes and hypercube helpers.

Both evaluation machines of the paper (NCUBE/7, iPSC/2) are hypercubes.
Gray codes give the standard embedding of rings and meshes into a
hypercube such that neighbouring grid points sit on physically adjacent
nodes — the embedding the Kali runtime relied on when laying processor
arrays (paper §2.1) onto the physical cube.
"""

from __future__ import annotations

from typing import List


def gray_encode(n: int) -> int:
    """The ``n``-th binary-reflected Gray code."""
    if n < 0:
        raise ValueError("gray_encode requires n >= 0")
    return n ^ (n >> 1)


def gray_decode(g: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if g < 0:
        raise ValueError("gray_decode requires g >= 0")
    n = 0
    while g:
        n ^= g
        g >>= 1
    return n


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits — hop count between hypercube nodes."""
    return bin(a ^ b).count("1")


def hypercube_neighbors(node: int, dimension: int) -> List[int]:
    """All nodes one bit-flip away from ``node`` in a ``dimension``-cube."""
    if node < 0 or node >= (1 << dimension):
        raise ValueError(f"node {node} outside {dimension}-cube")
    return [node ^ (1 << d) for d in range(dimension)]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """``log2(n)`` for exact powers of two; raises otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def ring_embedding(length: int, dimension: int) -> List[int]:
    """Embed a ring of ``length`` nodes into a ``dimension``-cube.

    Returns ``pos -> node`` using the Gray-code order, so successive ring
    positions are physical neighbours.  ``length`` must not exceed the cube
    size and must be a power of two for the wraparound edge to be a single
    hop (the classic constraint); other lengths are allowed but the closing
    edge may be longer.
    """
    size = 1 << dimension
    if length > size:
        raise ValueError(f"ring of {length} does not fit in {dimension}-cube")
    return [gray_encode(i) for i in range(length)]
