"""Saltz-style enumerated schedules: the Related-Work trade-off (§5).

"A major difference from our work is that they explicitly enumerate all
array references (local and nonlocal) in a 'list'.  This eliminates the
overhead of checking and searching for nonlocal references during the
loop execution but requires more storage than our implementation."

Building a Jacobi program with ``translation='enumerated'`` swaps every
schedule's sorted-range translation table for a full per-element
enumeration: remote references then cost two plain accesses instead of a
binary search, while schedule storage grows from O(ranges) to
O(elements).  The A2 ablation benchmark measures both sides of the trade.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.jacobi import JacobiProgram, build_jacobi
from repro.distributions.base import DimDistribution
from repro.machine.cost import MachineModel, NCUBE7
from repro.meshes.regular import MeshArrays
from repro.runtime.schedule import CommSchedule


def build_enumerated_jacobi(
    mesh: MeshArrays,
    nprocs: int,
    machine: MachineModel = NCUBE7,
    dist: Optional[DimDistribution] = None,
    initial: Optional[np.ndarray] = None,
) -> JacobiProgram:
    """The Figure 4 program with Saltz-style enumerated translation."""
    return build_jacobi(
        mesh,
        nprocs,
        machine=machine,
        dist=dist,
        initial=initial,
        translation="enumerated",
    )


def schedule_storage(schedule: CommSchedule) -> dict:
    """Storage footprint of a schedule under both representations.

    Returns counts of range records (the paper's representation) and of
    enumerated entries (Saltz's), for the memory side of the ablation.
    """
    ranges = sum(
        len(a.in_records) + len(a.out_records) for a in schedule.arrays.values()
    )
    elements = sum(a.buffer_len for a in schedule.arrays.values())
    return {"range_records": ranges, "enumerated_entries": elements}
