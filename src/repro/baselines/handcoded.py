"""Hand-coded message-passing Jacobi: the expert-programmer baseline.

The paper's headline claim (§1): "the performance of the resulting
message-passing code is in many cases virtually identical to that which
would be achieved had the user programmed directly in a message-passing
language".  This module is that direct program, written the way a careful
1990 programmer would write it against the raw message layer:

* the 5-point grid is block-distributed by node id (row bands),
* each rank keeps *ghost copies* of the boundary rows of its neighbours
  and swaps them with two messages per sweep,
* the relaxation indexes the ghost array directly — **no translation-table
  searches** — which is exactly the advantage the paper concedes to
  hand-coded programs ("the search overhead is unique to our system", §4).

The algorithm mirrors Figure 4 (explicit old/new copy each sweep); pass
``buffer_swap=True`` for the further hand optimisation of swapping array
pointers instead of copying, an edge the Kali version cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import KaliError
from repro.machine.api import Compute, Count, Rank, Recv, Send
from repro.machine.cost import MachineModel
from repro.machine.engine import Engine
from repro.machine.stats import RunResult
from repro.machine.topology import FullyConnected, Hypercube
from repro.meshes.regular import MeshArrays, five_point_grid
from repro.util.gray import is_power_of_two

_TAG_UP = 11
_TAG_DOWN = 12
PHASE = "executor"


@dataclass
class HandCodedResult:
    engine: RunResult
    solution: np.ndarray

    @property
    def executor_time(self) -> float:
        return self.engine.phase_max(PHASE)

    @property
    def total_time(self) -> float:
        return sum(self.engine.phase_max(p) for p in self.engine.phases())


def handcoded_jacobi(
    rows: int,
    cols: int,
    nprocs: int,
    machine: MachineModel,
    sweeps: int,
    initial: Optional[np.ndarray] = None,
    buffer_swap: bool = False,
) -> HandCodedResult:
    """Run the hand-written SPMD Jacobi and return timings + solution.

    Requires ``rows % nprocs == 0`` — the hand programmer picks a
    divisible decomposition (the paper's configurations all are).
    """
    if rows % nprocs != 0:
        raise KaliError(
            f"hand-coded version needs rows ({rows}) divisible by nprocs "
            f"({nprocs})"
        )
    n = rows * cols
    my_rows = rows // nprocs
    if initial is None:
        rng = np.random.default_rng(12345)
        initial = rng.random(n)
    initial = np.asarray(initial, dtype=np.float64).reshape(rows, cols)

    solution = np.zeros((rows, cols), dtype=np.float64)

    def rank_prog(rank: Rank):
        m = rank.machine
        me, P = rank.id, rank.size
        lo = me * my_rows
        a = initial[lo : lo + my_rows].copy()
        old = np.zeros_like(a)
        ghost_up = np.zeros(cols)  # row lo-1, owned by me-1
        ghost_down = np.zeros(cols)  # row lo+my_rows, owned by me+1

        # Precomputed 5-point stencil weights: interior nodes average 4
        # neighbours, edges fewer — identical numerics to the Figure 4
        # general-mesh program on this grid.
        mesh_counts = np.full((my_rows, cols), 4.0)
        r_global = np.arange(lo, lo + my_rows)[:, None] * np.ones((1, cols))
        c_global = np.ones((my_rows, 1)) * np.arange(cols)[None, :]
        mesh_counts -= (r_global == 0) * 1.0
        mesh_counts -= (r_global == rows - 1) * 1.0
        mesh_counts -= (c_global == 0) * 1.0
        mesh_counts -= (c_global == cols - 1) * 1.0
        inv_counts = 1.0 / mesh_counts

        for _ in range(sweeps):
            # -- copy mesh values (old := a), as in Figure 4.  The
            # buffer_swap variant replaces the copy loop with a pointer
            # swap (zero cost) — the hand optimisation Kali's copy-in/
            # copy-out forall cannot express.
            if not buffer_swap:
                old[...] = a
                yield Compute(
                    my_rows * cols * (m.iter_base + 2 * m.ref_local), phase=PHASE
                )
                src = old
            else:
                src = a

            # -- exchange boundary rows ------------------------------------------
            if me > 0:
                yield Send(dest=me - 1, payload=src[0].copy(), tag=_TAG_DOWN, phase=PHASE)
            if me < P - 1:
                yield Send(dest=me + 1, payload=src[-1].copy(), tag=_TAG_UP, phase=PHASE)
            if me > 0:
                msg = yield Recv(source=me - 1, tag=_TAG_UP, phase=PHASE)
                ghost_up = msg.payload
            if me < P - 1:
                msg = yield Recv(source=me + 1, tag=_TAG_DOWN, phase=PHASE)
                ghost_down = msg.payload

            # -- relaxation ------------------------------------------------------------
            up = np.vstack([ghost_up[None, :], src[:-1]])
            down = np.vstack([src[1:], ghost_down[None, :]])
            left = np.hstack([np.zeros((my_rows, 1)), src[:, :-1]])
            right = np.hstack([src[:, 1:], np.zeros((my_rows, 1))])
            if me == 0:
                up[0] = 0.0
            if me == P - 1:
                down[-1] = 0.0
            total = up + down + left + right
            new = total * inv_counts
            if buffer_swap:
                old[...] = new
                a, old = old, a
            else:
                a[...] = new
            # Same per-node reference/flop counts as the Kali executor
            # charges, but every access is a plain local/ghost reference.
            nodes = my_rows * cols
            refs = 4 * nodes + 3 * nodes  # 4 neighbour + coef/a/write refs
            flops = 2 * 4 * nodes
            yield Compute(
                nodes * m.iter_base + refs * m.ref_local + flops * m.flop,
                phase=PHASE,
            )
            yield Count("handcoded_sweeps", 1)
        return a

    topology = Hypercube(nprocs) if is_power_of_two(nprocs) else FullyConnected(nprocs)
    engine = Engine(machine, topology=topology)
    result = engine.run(rank_prog)
    for r, block in enumerate(result.values):
        solution[r * my_rows : (r + 1) * my_rows] = block
    return HandCodedResult(engine=result, solution=solution.ravel())
