"""Comparison baselines: hand-coded message passing, uncached runtime
resolution, and Saltz-style enumerated schedules."""

from repro.baselines.handcoded import HandCodedResult, handcoded_jacobi
from repro.baselines.naive import amortization_ratio, build_uncached_jacobi
from repro.baselines.enumerated import build_enumerated_jacobi, schedule_storage

__all__ = [
    "handcoded_jacobi",
    "HandCodedResult",
    "build_uncached_jacobi",
    "amortization_ratio",
    "build_enumerated_jacobi",
    "schedule_storage",
]
