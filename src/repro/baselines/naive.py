"""Uncached run-time resolution: the Rogers & Pingali comparison (§5).

"Rogers and Pingali suggest run-time resolution of communications ...
They do not attempt to save information between executions of their
parallel constructs ... Because the information is not saved, they label
run-time resolution as 'fairly inefficient'."

This baseline is Kali with the schedule cache disabled: the inspector
re-runs before *every* forall execution.  It exists to quantify exactly
how much the paper's saving of communication information buys (the A1
ablation benchmark), and doubles as a stress test that the inspector is
idempotent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.jacobi import JacobiProgram, build_jacobi
from repro.distributions.base import DimDistribution
from repro.machine.cost import MachineModel, NCUBE7
from repro.meshes.regular import MeshArrays


def build_uncached_jacobi(
    mesh: MeshArrays,
    nprocs: int,
    machine: MachineModel = NCUBE7,
    dist: Optional[DimDistribution] = None,
    initial: Optional[np.ndarray] = None,
) -> JacobiProgram:
    """The Figure 4 program with schedule caching switched off."""
    return build_jacobi(
        mesh,
        nprocs,
        machine=machine,
        dist=dist,
        initial=initial,
        cache_enabled=False,
    )


def amortization_ratio(cached_total: float, uncached_total: float) -> float:
    """How many times slower uncached resolution is (>= 1 in practice)."""
    return uncached_total / cached_total if cached_total else float("inf")
