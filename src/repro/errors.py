"""Exception hierarchy for the Kali reproduction.

All library-raised exceptions derive from :class:`KaliError` so callers can
catch everything from this package with a single ``except`` clause.  The
subclasses mirror the major subsystems: language front end, distribution
machinery, the SPMD simulation engine, and the inspector/executor runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BlockedOp:
    """Diagnostic snapshot of one rank's pending receive (see
    :class:`DeadlockError`)."""

    source: int
    tag: int
    phase: str = ""
    label: str = ""
    clock: float = 0.0
    timeout: Optional[float] = None


class KaliError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DistributionError(KaliError):
    """Invalid distribution specification or out-of-range index mapping."""


class TopologyError(KaliError):
    """Invalid machine topology (e.g. non-power-of-two hypercube)."""


class EngineError(KaliError):
    """SPMD engine failure (bad op sequence, unknown rank, etc.)."""


class DeadlockError(EngineError):
    """Every live rank is blocked on a receive that can never be satisfied.

    Carries a full diagnostic of the stuck state:

    ``blocked``
        ``{rank: info}`` for every blocked rank.  ``info`` is either a
        legacy ``(source, tag)`` tuple or a richer object with
        ``source``/``tag``/``phase``/``label``/``clock`` attributes (the
        engine passes the latter).
    ``undelivered``
        ``(source, dest, tag, arrival, nbytes)`` tuples for every message
        sitting in a mailbox that no receive ever consumed.
    ``crashed``
        ``{rank: virtual crash time}`` for ranks killed by a fault plan.
    ``dropped``
        Count of messages the fault plan dropped before the deadlock.
    """

    _SHOW_UNDELIVERED = 12

    def __init__(self, blocked: dict, undelivered=(), crashed=None,
                 dropped: int = 0):
        self.blocked = dict(blocked)
        self.undelivered = list(undelivered)
        self.crashed = dict(crashed or {})
        self.dropped = dropped
        parts = []
        for r, w in sorted(self.blocked.items()):
            if isinstance(w, tuple):
                parts.append(f"rank {r} waiting on (src={w[0]}, tag={w[1]})")
            else:
                where = f" in {w.phase}" if w.phase else ""
                what = f":{w.label}" if w.label else ""
                parts.append(
                    f"rank {r} waiting on (src={w.source}, tag={w.tag})"
                    f"{where}{what} since t={w.clock:.6f}"
                )
        lines = [f"SPMD deadlock: {', '.join(parts)}"]
        if self.crashed:
            lines.append(
                "crashed ranks: "
                + ", ".join(f"{r} at t={t:.6f}" for r, t in sorted(self.crashed.items()))
            )
        if self.undelivered:
            lines.append(f"undelivered messages ({len(self.undelivered)}):")
            for src, dst, tag, arrival, nbytes in self.undelivered[: self._SHOW_UNDELIVERED]:
                lines.append(
                    f"  {src} -> {dst} tag={tag} arrival={arrival:.6f} ({nbytes}B)"
                )
            extra = len(self.undelivered) - self._SHOW_UNDELIVERED
            if extra > 0:
                lines.append(f"  ... and {extra} more")
        if self.dropped:
            lines.append(f"messages dropped by the fault plan: {self.dropped}")
        super().__init__("\n".join(lines))


class CommunicationError(EngineError):
    """Malformed message operation (bad rank, negative size, tag misuse)."""


class DeliveryError(CommunicationError):
    """The ack/retry protocol exhausted its retransmission budget."""


class FaultError(KaliError):
    """Invalid fault-injection plan (bad rates, malformed JSON schema)."""


class AnalysisError(KaliError):
    """Subscript/distribution combination not handled by compile-time analysis."""


class InspectorError(KaliError):
    """Run-time analysis failure (reference outside the array, bad schedule)."""


class ForallError(KaliError):
    """Ill-formed forall specification."""


# --- language front end -----------------------------------------------------


class KaliSyntaxError(KaliError):
    """Lexical or syntactic error in Kali source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class KaliSemanticError(KaliError):
    """Semantic error (undeclared name, type mismatch, bad dist clause)."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"{message} (line {line})"
        super().__init__(message)


class KaliRuntimeError(KaliError):
    """Error raised while interpreting a Kali program."""
