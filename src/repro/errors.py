"""Exception hierarchy for the Kali reproduction.

All library-raised exceptions derive from :class:`KaliError` so callers can
catch everything from this package with a single ``except`` clause.  The
subclasses mirror the major subsystems: language front end, distribution
machinery, the SPMD simulation engine, and the inspector/executor runtime.
"""

from __future__ import annotations


class KaliError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DistributionError(KaliError):
    """Invalid distribution specification or out-of-range index mapping."""


class TopologyError(KaliError):
    """Invalid machine topology (e.g. non-power-of-two hypercube)."""


class EngineError(KaliError):
    """SPMD engine failure (bad op sequence, unknown rank, etc.)."""


class DeadlockError(EngineError):
    """Every live rank is blocked on a receive that can never be satisfied."""

    def __init__(self, blocked: dict):
        self.blocked = dict(blocked)
        detail = ", ".join(
            f"rank {r} waiting on (src={w[0]}, tag={w[1]})" for r, w in sorted(blocked.items())
        )
        super().__init__(f"SPMD deadlock: {detail}")


class CommunicationError(EngineError):
    """Malformed message operation (bad rank, negative size, tag misuse)."""


class AnalysisError(KaliError):
    """Subscript/distribution combination not handled by compile-time analysis."""


class InspectorError(KaliError):
    """Run-time analysis failure (reference outside the array, bad schedule)."""


class ForallError(KaliError):
    """Ill-formed forall specification."""


# --- language front end -----------------------------------------------------


class KaliSyntaxError(KaliError):
    """Lexical or syntactic error in Kali source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class KaliSemanticError(KaliError):
    """Semantic error (undeclared name, type mismatch, bad dist clause)."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"{message} (line {line})"
        super().__init__(message)


class KaliRuntimeError(KaliError):
    """Error raised while interpreting a Kali program."""
