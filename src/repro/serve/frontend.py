"""Asyncio front end: many JSON-lines clients, one sharded fleet.

The blocking front (`JobServer.serve_forever`) spends a thread per
connection and blocks it for the full wall time of every ``submit`` —
fine for a smoke test, hopeless for a fleet.  :class:`AsyncFrontend`
multiplexes every connection on one event loop:

* **submit** runs admission + routing inline (microseconds — it only
  touches the router and a queue lock) and then *awaits* the job's
  :class:`~repro.serve.queue.JobFuture` without holding a thread.  The
  bridge is ``add_done_callback`` → ``loop.call_soon_threadsafe``: the
  shard scheduler thread resolves the future, the loop wakes the one
  coroutine waiting on it.  A thousand in-flight jobs cost a thousand
  coroutines, not a thousand threads.
* **drain** genuinely blocks, so it is pushed to a worker thread via
  ``asyncio.to_thread`` — the loop keeps serving other clients while
  one connection waits for the fleet to go idle.
* everything else (``ping``, ``stat``, ``metrics``, ``scale``,
  ``stop``) is fast and handled inline via the same
  :meth:`JobServer.handle_request` the blocking front uses, so the two
  fronts cannot drift apart on protocol.

The wire protocol is unchanged: one JSON object per line in, one per
line out, ``{"ok": false, "shed": true, ...}`` for admission rejections,
``{"ok": true, "stopping": true}`` terminating the server.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Dict, Optional

from repro.serve.queue import DEFAULT_TENANT, JobFuture, ShedError
from repro.serve.server import JobServer, UnknownJobKindError, _jsonable


class AsyncFrontend:
    """Serve a :class:`JobServer` fleet on a unix socket, one event loop."""

    def __init__(self, server: JobServer, socket_path: str):
        self.server = server
        self.socket_path = socket_path
        self._stopping: Optional[asyncio.Event] = None

    # --- future bridge ---------------------------------------------------

    async def _await_future(self, future: JobFuture,
                            timeout: Optional[float] = None) -> Dict:
        """Await a thread-resolved JobFuture without burning a thread."""
        loop = asyncio.get_running_loop()
        afut: asyncio.Future = loop.create_future()

        def resolve(f: JobFuture) -> None:
            if afut.cancelled():
                return
            try:
                afut.set_result(f.result(timeout=0))
            except BaseException as exc:  # noqa: BLE001 — forward verbatim
                afut.set_exception(exc)

        future.add_done_callback(
            lambda f: loop.call_soon_threadsafe(resolve, f))
        if timeout is None:
            return await afut
        return await asyncio.wait_for(afut, timeout)

    # --- request dispatch ------------------------------------------------

    async def _dispatch(self, req: Dict) -> Dict:
        cmd = req.get("cmd")
        if cmd == "submit":
            if "kind" not in req:
                return UnknownJobKindError(None).reply()
            try:
                future = self.server.submit(
                    req["kind"], req.get("spec"),
                    priority=int(req.get("priority", 0)),
                    tenant=req.get("tenant", DEFAULT_TENANT),
                )
            except UnknownJobKindError as exc:
                return exc.reply()
            except ShedError as shed:
                return {"ok": False, "shed": True, "error": str(shed),
                        **shed.details}
            if not req.get("wait", True):
                return {"ok": True, "queued": True}
            try:
                record = await self._await_future(
                    future, timeout=req.get("timeout"))
            except asyncio.TimeoutError:
                return {"ok": False,
                        "error": "TimeoutError: job did not complete in time"}
            return {"ok": bool(record.get("ok")), "job": record}
        if cmd == "drain":
            done = await asyncio.to_thread(
                self.server.drain, timeout=req.get("timeout"))
            return {"ok": True, "jobs_done": done}
        return self.server.handle_request(req)

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                text = line.strip()
                if not text:
                    continue
                try:
                    response = await self._dispatch(json.loads(text))
                except Exception as exc:  # noqa: BLE001 — report, keep serving
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write((json.dumps(_jsonable(response)) + "\n")
                             .encode("utf-8"))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if response.get("stopping"):
                    if self._stopping is not None:
                        self._stopping.set()
                    return
        except asyncio.CancelledError:
            return  # loop shutting down while this client idled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    # --- lifecycle -------------------------------------------------------

    async def _main(self) -> None:
        self._stopping = asyncio.Event()
        self.server.start()
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        listener = await asyncio.start_unix_server(
            self._serve_client, path=self.socket_path)
        try:
            async with listener:
                await self._stopping.wait()
        finally:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self.server.close()

    def run(self) -> None:
        """Serve until a ``stop`` request arrives.  Blocks the caller
        (the CLI's foreground process) in ``asyncio.run``."""
        asyncio.run(self._main())


def serve_async(server: JobServer, socket_path: str) -> None:
    """Run ``server`` behind the asyncio front end on ``socket_path``."""
    AsyncFrontend(server, socket_path).run()
