"""Warm rank pool: the mp backend's forked mesh, reused across jobs.

``MpEngine`` pays the full cold-start bill on every run: fork one process
per rank, build the O(n²) pipe mesh, tear it all down.  For the paper's
target workload — the *same* forall executed over and over — that bill
dominates.  :class:`RankPool` forks the mesh **once** and runs many
successive jobs on it, with a reset protocol between jobs so each job
sees exactly the clean-slate semantics a fresh ``MpEngine.run`` provides:

1. the parent ships the job (program via :mod:`repro.serve.shipping`,
   machine model, topology, per-rank args, a fresh wall-clock epoch) down
   each rank's duplex control pipe;
2. each worker interprets the op stream with the *same* loop the
   fork-per-run backend uses (:func:`repro.machine.mp.worker._interpret`)
   against a per-process sender thread and inbox, then flushes its sender
   and reports ``finish`` with a fresh :class:`RankStats`;
3. after all ranks finish, the parent broadcasts ``reset``: every worker
   drains and discards frames still in its pipes (every peer flushed
   before reporting, so all leftovers are readable by then), clears its
   inbox, and acks — job N+1 cannot observe job N's messages.

Failure semantics: a rank error, watchdog expiry, or silent rank death
fails *the job* (same exception types as ``MpEngine``) and condemns the
mesh — pairwise pipes cannot be re-plumbed into a replacement process
after fork, so crashed ranks are replaced by rebuilding the whole mesh,
which the next ``run`` (or an explicit :meth:`check_health`) does
automatically.  ``pool.rebuilds`` counts how often that happened.

``RankPool.run`` returns the same :class:`RunResult` shape as both
engines, so ``repro.obs`` and the differential harness work on pooled
runs unchanged.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from multiprocessing.connection import wait as conn_wait
from typing import Any, List, Optional

from repro.errors import BlockedOp, DeadlockError, EngineError
from repro.machine.api import Rank
from repro.machine.cost import MachineModel
from repro.machine.mp.transport import SenderThread, build_pipe_mesh, close_mesh_except
from repro.machine.mp.worker import (
    ST_BLOCKED,
    ST_DONE,
    ST_RUNNING,
    _Inbox,
    _interpret,
)
from repro.machine.shm import (
    DEFAULT_SEGMENT_BYTES,
    ShmDataPlane,
    shm_enabled_default,
    shm_threshold_default,
)
from repro.machine.stats import RankStats, RunResult
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import TraceEvent
# Imported for the side effect: pool workers are forked, so anything the
# parent has already imported is inherited for free.  Without this the
# first disk-tier job pays the diskcache (+hashlib/pickle) import once
# per worker, serialized on oversubscribed hosts.
from repro.serve import diskcache as _diskcache  # noqa: F401
from repro.serve import shipping

_TRACE_FLUSH = 512

# Forking a mesh from a multi-threaded parent (the sharded server runs
# one scheduler thread per shard) is safe for *our* state because workers
# re-read everything from the job message — but two meshes forking
# concurrently could each inherit the other's half-built pipe fds.  One
# process-wide lock serializes mesh construction; it is held only while
# forking, never while running jobs.
_FORK_LOCK = threading.Lock()


class PoolCrashError(EngineError):
    """A pool worker died (or stopped answering) out from under a job.

    Raised instead of plain :class:`EngineError` when the failure is
    *infrastructural* — a rank process exited without reporting, closed
    its control pipe mid-job, or missed the reset barrier — as opposed
    to the rank *program* raising (which reports a traceback and is
    deterministic).  The serving layer retries crashed jobs against its
    retry budget; program errors it fails immediately, because re-running
    a deterministic failure buys nothing.
    """


def _pool_worker_main(rank_id, nranks, mesh, job_conns, shared_state,
                      dataplane=None):
    """Persistent rank process: serve jobs until ``stop`` (or parent EOF).

    One :class:`SenderThread` and one :class:`_Inbox` live for the whole
    pool; per-job state (stats, trace buffer, sequence counters, the rank
    object itself) is rebuilt from the job message every time.  The shm
    ``dataplane`` (when the pool has one) also lives pool-long: each
    worker's arena is rewound at the reset barrier, which is the
    pool-reset reclamation the obs counters report.
    """
    close_mesh_except(mesh, rank_id)
    for r, c in enumerate(job_conns):
        if r != rank_id:
            c.close()
    conn = job_conns[rank_id]
    sender = SenderThread()
    inbox = _Inbox(mesh[rank_id])
    if dataplane is not None:
        dataplane.attach(rank_id)
    jobs_done = 0

    def set_state(status, src=-2, tag=-2):
        base = 3 * rank_id
        shared_state[base] = status
        shared_state[base + 1] = src
        shared_state[base + 2] = tag

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone; nothing left to serve
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", msg[1], rank_id, jobs_done))
                continue
            if kind == "reset":
                inbox.drain_ready(time.monotonic)
                reclaimed = (dataplane.reset_party()
                             if dataplane is not None else 0)
                conn.send(("reset_done", inbox.reset(), reclaimed))
                continue
            if kind != "job":
                conn.send(("error", 0.0, f"unknown pool command {kind!r}",
                           RankStats(rank_id)))
                continue

            _, t0, payload, machine, topology, arg, trace, max_ops = msg

            def now():
                return time.monotonic() - t0

            stats = RankStats(rank_id)
            trace_buf: List[TraceEvent] = []

            def flush_trace(force=False):
                if trace and trace_buf and (force or
                                            len(trace_buf) >= _TRACE_FLUSH):
                    conn.send(("trace", list(trace_buf)))
                    trace_buf.clear()

            try:
                set_state(ST_RUNNING)
                program = shipping.loads_via(payload, dataplane)
                rank = Rank(rank_id, nranks, machine, topology, arg)
                gen = program(rank)
                if not hasattr(gen, "send"):
                    raise EngineError(
                        "rank program must be a generator function (did "
                        "you forget to 'yield'?)"
                    )
                value = _interpret(
                    rank_id, nranks, gen, stats,
                    trace_buf if trace else None, sender, inbox,
                    mesh[rank_id], now, set_state, max_ops, flush_trace,
                    dataplane=dataplane,
                )
                if dataplane is not None:
                    value, vbytes, vblocks, vfall = dataplane.encode(
                        value, (dataplane.parent_party,))
                    if vbytes:
                        stats.count("shm_bytes_sent", vbytes)
                        stats.count("shm_blocks_sent", vblocks)
                    if vfall:
                        stats.count("shm_fallbacks", vfall)
                    stats.counters["shm_hwm_bytes"] = dataplane.hwm_bytes
                # Everything this job queued must be on the wire before we
                # report: peers drain their pipes at the reset barrier, and
                # the barrier only starts after every rank reported.
                # Undelivered messages are counted there, not here — the
                # post-barrier drain is exact where a job-end drain would
                # race straggling peers.
                sender.flush()
                set_state(ST_DONE)
                flush_trace(force=True)
                conn.send(("finish", now(), value, stats))
                jobs_done += 1
            except Exception:
                import traceback

                set_state(ST_DONE)
                try:
                    flush_trace(force=True)
                    conn.send(("error", now(), traceback.format_exc(), stats))
                except Exception:
                    break
                # The parent fails the job and rebuilds the mesh; keep
                # answering the control pipe until it tears us down.
                continue
    finally:
        try:
            sender.flush_and_stop(timeout=5.0)
        except Exception:
            pass
        for c in mesh[rank_id]:
            if c is not None:
                try:
                    c.close()
                except OSError:
                    pass
        try:
            conn.close()
        except OSError:
            pass
    raise SystemExit(0)


class RankPool:
    """A persistent pool of ``nranks`` warm rank processes.

    Parameters
    ----------
    nranks:
        World size of every job this pool runs.
    timeout:
        Default per-job watchdog bound, wall seconds (overridable per
        ``run``).
    max_ops:
        Runaway-program bound handed to the op interpreter.

    Use as a context manager, or call :meth:`close` explicitly — teardown
    joins every worker (whose sender threads are flushed and stopped),
    closes every control pipe, and releases the process sentinels, so a
    pool's lifetime leaks no file descriptors.
    """

    _ids = itertools.count(1)

    def __init__(self, nranks: int, timeout: float = 120.0,
                 max_ops: int = 500_000_000,
                 shm: Optional[bool] = None,
                 shm_threshold: Optional[int] = None,
                 shm_segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        if nranks < 1:
            raise EngineError(f"pool needs nranks >= 1, got {nranks}")
        if timeout <= 0:
            raise EngineError(f"timeout must be > 0, got {timeout}")
        self.nranks = nranks
        self.timeout = timeout
        self.max_ops = max_ops
        #: shared-memory data plane knobs (see docs/dataplane.md);
        #: ``shm=None`` means on unless ``REPRO_SHM=0``
        self.shm = shm if shm is not None else shm_enabled_default()
        self.shm_threshold = (shm_threshold if shm_threshold is not None
                              else shm_threshold_default())
        self.shm_segment_bytes = shm_segment_bytes
        self._plane: Optional[ShmDataPlane] = None
        self.shm_ship_bytes = 0       # program payload bytes shipped via shm
        self.shm_reclaimed_bytes = 0  # arena bytes rewound at reset barriers
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise EngineError(
                "the warm pool needs the 'fork' start method (POSIX); "
                "use backend='sim' on this platform"
            ) from None
        self.name = f"pool-{next(RankPool._ids)}"
        self._procs: Optional[List] = None
        self._ctrls: Optional[List] = None
        self._shared = None
        self._mesh_jobs = 0       # jobs completed on the current mesh
        self.jobs_done = 0        # jobs completed over the pool's lifetime
        self.rebuilds = 0         # meshes rebuilt after a crash/failure
        self.meshes_built = 0
        self.last_pool_reused = False
        self._closed = False

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "RankPool":
        """Fork the mesh now (otherwise the first job does it lazily)."""
        self._ensure_started()
        return self

    @property
    def started(self) -> bool:
        return self._procs is not None

    def _ensure_started(self) -> None:
        if self._closed:
            raise EngineError(f"{self.name} is closed")
        if self._procs is not None:
            if all(p.is_alive() for p in self._procs):
                return
            self._teardown_mesh()   # a rank died between jobs
            self.rebuilds += 1
        n = self.nranks
        ctx = self._ctx
        with _FORK_LOCK:
            mesh = build_pipe_mesh(ctx, n)
            pairs = [ctx.Pipe(duplex=True) for _ in range(n)]
            parent_ends = [a for a, _b in pairs]
            child_ends = [b for _a, b in pairs]
            self._shared = ctx.RawArray("l", 3 * n)
            # Pre-fork so every worker inherits the primary segment
            # mapping.
            self._plane = (ShmDataPlane(n,
                                        segment_bytes=self.shm_segment_bytes,
                                        threshold=self.shm_threshold)
                           if self.shm else None)
            procs = []
            for r in range(n):
                p = ctx.Process(
                    target=_pool_worker_main,
                    args=(r, n, mesh, child_ends, self._shared, self._plane),
                    name=f"repro-{self.name}-rank-{r}",
                    daemon=True,
                )
                p.start()
                procs.append(p)
            close_mesh_except(mesh, None)
            for c in child_ends:
                c.close()
        self._procs = procs
        self._ctrls = parent_ends
        self._mesh_jobs = 0
        self.meshes_built += 1

    def _teardown_mesh(self) -> None:
        """Kill and fully release the current mesh (pipes, sentinels)."""
        if self._procs is None:
            return
        for c in self._ctrls:
            try:
                c.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for p in self._procs:
            p.join(2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(5.0)
        for p in self._procs:
            try:
                p.close()
            except ValueError:
                pass
        for c in self._ctrls:
            try:
                c.close()
            except OSError:
                pass
        self._procs = None
        self._ctrls = None
        self._shared = None
        if self._plane is not None:
            # All workers joined above: unlink everything, then sweep
            # the name prefix so a crashed worker's grown segments are
            # reclaimed too (the crash condemned this mesh, so nothing
            # can still reference them).
            self._plane.close(unlink=True)
            self._plane = None

    def close(self) -> None:
        """Drain the mesh and release every OS resource (idempotent)."""
        if self._closed:
            return
        self._teardown_mesh()
        self._closed = True

    def __enter__(self) -> "RankPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "warm" if self._procs is not None else "cold")
        return (f"RankPool({self.name}, nranks={self.nranks}, {state}, "
                f"jobs_done={self.jobs_done}, rebuilds={self.rebuilds})")

    # --- health ----------------------------------------------------------

    def check_health(self, timeout: float = 5.0) -> dict:
        """Ping every worker; rebuild the mesh if any is dead or mute.

        Returns ``{"healthy": bool, "alive": [...], "rebuilt": bool}``
        describing the state *before* any rebuild.  Only call between
        jobs (workers answer pings from their command loop).
        """
        if self._closed:
            raise EngineError(f"{self.name} is closed")
        if self._procs is None:
            self._ensure_started()
            return {"healthy": True, "alive": list(range(self.nranks)),
                    "rebuilt": False, "warm": False}
        nonce = time.monotonic_ns()
        alive = []
        for r, c in enumerate(self._ctrls):
            try:
                c.send(("ping", nonce))
                if c.poll(timeout):
                    reply = c.recv()
                    if reply[0] == "pong" and reply[1] == nonce:
                        alive.append(r)
            except (OSError, EOFError, BrokenPipeError):
                pass
        healthy = alive == list(range(self.nranks))
        rebuilt = False
        if not healthy:
            self._teardown_mesh()
            self.rebuilds += 1
            self._ensure_started()
            rebuilt = True
        return {"healthy": healthy, "alive": alive, "rebuilt": rebuilt,
                "warm": True}

    # --- job execution ---------------------------------------------------

    def run(
        self,
        program,
        machine: MachineModel,
        topology: Optional[Topology] = None,
        args: Optional[List[Any]] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
    ) -> RunResult:
        """Run one job on the warm mesh; returns an ``MpEngine``-shaped
        :class:`RunResult` (wall-clock seconds, real per-rank counters).

        On any job failure (rank error, death, watchdog) the mesh is
        condemned and rebuilt lazily by the next call; the failure is
        raised for *this* job with the same exception types the
        fork-per-run backend uses.
        """
        if args is not None and len(args) != self.nranks:
            raise EngineError(f"args must have length {self.nranks}")
        if topology is None:
            topology = FullyConnected(self.nranks)
        if self.nranks > topology.size:
            raise EngineError(
                f"nranks={self.nranks} exceeds topology size {topology.size}"
            )
        self._ensure_started()
        self.last_pool_reused = self._mesh_jobs > 0
        # Shipped schedules ride the data plane: serialize once, publish
        # one shared block every rank reads, send only the ref n times.
        payload, shipped = shipping.dumps_via(
            program, self._plane, range(self.nranks))
        self.shm_ship_bytes += shipped
        t0 = time.monotonic()
        job_timeout = timeout if timeout is not None else self.timeout
        try:
            try:
                for r, c in enumerate(self._ctrls):
                    c.send((
                        "job", t0, payload, machine, topology,
                        args[r] if args is not None else None,
                        trace, self.max_ops,
                    ))
                result = self._supervise(t0, job_timeout, trace)
                self._reset_barrier(result)
            except (BrokenPipeError, ConnectionResetError) as io_err:
                # A pipe endpoint vanished under us: some rank died
                # between health checks.  Infrastructure, not program.
                raise PoolCrashError(
                    f"a rank's pipe failed mid-job ({io_err})"
                ) from io_err
        except Exception:
            # Condemn the mesh: a failed job leaves workers in unknown
            # comm state.  The next run (or health check) rebuilds.
            self._teardown_mesh()
            self.rebuilds += 1
            raise
        self._mesh_jobs += 1
        self.jobs_done += 1
        return result

    def _supervise(self, t0: float, job_timeout: float, trace: bool) -> RunResult:
        n = self.nranks
        procs, ctrls = self._procs, self._ctrls
        deadline = time.monotonic() + job_timeout
        clocks: List[Optional[float]] = [None] * n
        stats: List[Optional[RankStats]] = [None] * n
        values: List[Any] = [None] * n
        trace_events: Optional[List[TraceEvent]] = [] if trace else None
        pending = set(range(n))

        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise self._deadlock(pending, t0)
            waitables = {ctrls[r]: ("ctrl", r) for r in pending}
            waitables.update({procs[r].sentinel: ("dead", r) for r in pending})
            ready = conn_wait(list(waitables), timeout=remaining)
            if not ready:
                raise self._deadlock(pending, t0)
            for obj in ready:
                what, r = waitables[obj]
                if r not in pending:
                    continue
                if what == "ctrl":
                    try:
                        msg = obj.recv()
                    except (EOFError, ConnectionResetError):
                        raise PoolCrashError(
                            f"rank {r} closed its control pipe mid-job"
                        ) from None
                    kind = msg[0]
                    if kind == "trace":
                        if trace_events is not None:
                            trace_events.extend(msg[1])
                    elif kind == "finish":
                        _, clock, value, rstats = msg
                        if self._plane is not None:
                            value, _b, _blk = self._plane.decode(value)
                        clocks[r] = clock
                        values[r] = value
                        stats[r] = rstats
                        pending.discard(r)
                    elif kind == "error":
                        _, clock, tb, _rstats = msg
                        # A rank that trips over a dead peer (EOF on a
                        # mesh pipe) reports an "error" like any other
                        # exception — but if some pool process has died,
                        # the root cause is the death, not the program.
                        dead = [i for i in range(n) if not procs[i].is_alive()]
                        if dead:
                            raise PoolCrashError(
                                f"rank {r} failed after rank(s) {dead} "
                                f"died mid-job:\n{tb}"
                            )
                        raise EngineError(
                            f"rank {r} failed after {clock:.3f}s wall:\n{tb}"
                        )
                    else:  # pragma: no cover - protocol future-proofing
                        raise EngineError(
                            f"unknown control message {kind!r} from rank {r}"
                        )
                else:  # the rank process died
                    ctrl = ctrls[r]
                    if ctrl.poll(0):
                        continue  # its last report is still in the pipe
                    procs[r].join(1.0)
                    raise PoolCrashError(
                        f"rank {r} died without reporting "
                        f"(exit code {procs[r].exitcode})"
                    )

        if trace_events is not None:
            for r in range(n):
                trace_events.append(TraceEvent(
                    rank=r, kind="finish", start=clocks[r], end=clocks[r]
                ))
            trace_events.sort(key=lambda e: (e.start, e.rank))
        result = RunResult(
            nranks=n,
            clocks=[c if c is not None else 0.0 for c in clocks],
            stats=stats,
            values=values,
        )
        result.trace = trace_events
        return result

    def _reset_barrier(self, result: RunResult, timeout: float = 30.0) -> None:
        """Broadcast ``reset``; workers discard frames job N left in the
        pipes (all readable: every sender flushed before its finish
        report).  Discards are accounted as that job's undelivered
        messages, exactly like the fork-per-run backend's post-run drain."""
        for c in self._ctrls:
            c.send(("reset",))
        deadline = time.monotonic() + timeout
        for r, c in enumerate(self._ctrls):
            remaining = max(deadline - time.monotonic(), 0.0)
            if not c.poll(remaining):
                raise PoolCrashError(
                    f"rank {r} failed to ack the inter-job reset within "
                    f"{timeout}s"
                )
            try:
                reply = c.recv()
            except (EOFError, ConnectionResetError):
                raise PoolCrashError(
                    f"rank {r} closed its control pipe at the reset barrier"
                ) from None
            if reply[0] != "reset_done":  # pragma: no cover - protocol guard
                raise EngineError(
                    f"rank {r} answered reset with {reply[0]!r}"
                )
            if reply[1]:
                result.stats[r].count("undelivered_messages", reply[1])
            reclaimed = reply[2] if len(reply) > 2 else 0
            if reclaimed:
                self.shm_reclaimed_bytes += reclaimed
                result.stats[r].count("shm_reclaimed_bytes", reclaimed)
        if self._plane is not None:
            # Parent-side housekeeping: every rank has read the ship
            # block by now, so rewind the parent arena as well.
            self.shm_reclaimed_bytes += self._plane.reset_party()

    def _deadlock(self, pending, t0) -> DeadlockError:
        wall = time.monotonic() - t0
        blocked = {}
        for r in sorted(pending):
            base = 3 * r
            status = self._shared[base]
            if status == ST_BLOCKED:
                blocked[r] = BlockedOp(
                    source=int(self._shared[base + 1]),
                    tag=int(self._shared[base + 2]),
                    phase="(pool)",
                    clock=wall,
                )
            elif status != ST_DONE:
                blocked[r] = BlockedOp(source=-9, tag=-9, phase="(running)",
                                       clock=wall)
        return DeadlockError(
            blocked or {r: (-9, -9) for r in sorted(pending)},
        )
