"""Shard router: rendezvous (highest-random-weight) hashing for the fleet.

The sharded server keeps N independent :class:`~repro.serve.pool.RankPool`
shards, each with its own warm mesh, its own in-memory schedule caches
(inside its forked workers) and its own disk-cache directory.  Those
caches only pay off if the *same* job family keeps landing on the *same*
shard — so placement is content-based, not load-based: the route key is
the job kind plus every shape-determining field of the spec (the same
fingerprint idea the disk schedule cache keys on), and the router maps
each key to a shard with rendezvous hashing.

Rendezvous hashing (Thaler & Ravishankar) scores every ``(shard, key)``
pair with an independent hash and picks the highest score.  Properties
this module's tests pin down:

* **deterministic across processes** — scores are SHA-256 of the bytes
  of ``shard_name | key``; no ``PYTHONHASHSEED`` dependence, no state;
* **balanced** — for k distinct keys and n shards each shard expects
  k/n keys, with binomial concentration around it;
* **minimally disruptive** — adding a shard moves only the keys whose
  new highest score belongs to the new shard (≈ 1/(n+1) of them), and
  *every* moved key moves *to* the new shard; removing a shard moves
  only the keys that lived on it.  Cache warmth on surviving shards is
  untouched by a scale-up/down event.

The router is intentionally tiny and lock-free for reads: membership
changes swap the shard tuple atomically (Python reference assignment),
so concurrent ``route`` calls see either the old or the new fleet,
never a torn one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import KaliError


def route_key(kind: str, spec: Optional[Dict[str, Any]] = None) -> str:
    """The content fingerprint a job routes by: kind + canonical spec.

    Identical ``(kind, spec)`` pairs — the jobs that share schedules,
    learned plans, and batch keys — always produce identical route keys,
    in any process, on any platform.
    """
    return f"{kind}:{json.dumps(spec or {}, sort_keys=True, default=str)}"


def _score(shard: str, key: str) -> int:
    h = hashlib.sha256(f"{shard}|{key}".encode("utf-8")).digest()
    return int.from_bytes(h[:8], "big")


class ShardRouter:
    """Rendezvous-hash membership: names in, winning shard name out."""

    def __init__(self, shards: Optional[List[str]] = None):
        self._shards: Tuple[str, ...] = tuple(shards or ())
        if len(set(self._shards)) != len(self._shards):
            raise KaliError("duplicate shard names in router membership")

    # --- membership ------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def add(self, shard: str) -> None:
        if shard in self._shards:
            raise KaliError(f"shard {shard!r} already routed")
        self._shards = self._shards + (shard,)

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            raise KaliError(f"shard {shard!r} not in the router")
        self._shards = tuple(s for s in self._shards if s != shard)

    # --- routing ---------------------------------------------------------

    def route(self, key: str, exclude: Tuple[str, ...] = ()) -> str:
        """The shard owning ``key``: highest rendezvous score wins.

        ``exclude`` names shards temporarily out of contention (a
        condemned pool whose in-flight jobs are being replayed); when it
        would empty the fleet it is ignored rather than failing the job.
        """
        shards = self._shards
        if exclude:
            survivors = tuple(s for s in shards if s not in exclude)
            if survivors:
                shards = survivors
        if not shards:
            raise KaliError("router has no shards to route to")
        return max(shards, key=lambda s: (_score(s, key), s))

    def pin_exclusions(self, target: str) -> Tuple[str, ...]:
        """The exclude tuple that pins routing onto ``target``: every
        other member.  The autopilot's A/B promoter routes its twin
        jobs through the normal rendezvous path with this set — one
        arm pinned to the incumbent-plan shard, one to the candidate —
        so pinning composes with crash-replay exclusion instead of
        bypassing the router."""
        if target not in self._shards:
            raise KaliError(f"shard {target!r} not in the router")
        return tuple(s for s in self._shards if s != target)

    def table(self, keys: List[str]) -> Dict[str, str]:
        """Route many keys at once (test/diagnostic convenience)."""
        return {k: self.route(k) for k in keys}
