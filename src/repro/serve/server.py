"""The job server: a sharded fleet of warm rank pools behind one front.

A :class:`JobServer` owns N :class:`Shard` s (``shards=`` — each shard is
one :class:`~repro.serve.pool.RankPool`, one tenant-fair
:class:`~repro.serve.queue.JobQueue`, one scheduler thread, and one disk
schedule-cache directory), a :class:`~repro.serve.router.ShardRouter`
mapping jobs to shards by rendezvous hash over the job's content
fingerprint (kind + canonical spec), and the admission-control state for
per-tenant quotas and fleet-wide load shedding.  Routing is content-
based so identical job families always land on the same shard — that
shard's warm mesh, memory/disk schedule caches, and learned layout plans
stay hot, which is the whole argument for scaling this way (the caches
amortize *per shard*, exactly as they did for the single pool).

Job kinds are a registry: ``jacobi`` and ``cg`` run the paper's two
workloads from shape parameters; ``kali`` compiles and runs Kali source
shipped in the spec.  :func:`register_job_kind` adds more.  A runner
receives the *shard* executing the job (duck-compatible with the old
single-pool server: ``nranks``, ``machine``, ``pool``, ``cache_dir``,
``tune_dir``).

Serving-layer failure semantics (see docs/serving.md):

* a rank *program* error fails the job immediately — deterministic
  failures are not retried;
* a pool *crash* (:class:`~repro.serve.pool.PoolCrashError`: a worker
  died, went mute, or missed the reset barrier) condemns that shard's
  mesh and re-dispatches the job — onto a *surviving* shard when the
  fleet has one — against a per-job ``retry_budget``; budget exhausted
  resolves the future with a structured ``retry_exhausted`` record;
* jobs that were queued behind the crash in the same batch replay the
  same way without consuming their budgets (they never started);
* an accepted job always terminates in exactly one record — never lost,
  never double-completed — which the chaos suite pins down under
  seeded worker kills.

The blocking socket front (`serve_forever`) speaks JSON-lines over a
unix socket — ``ping``, ``submit``, ``stat``, ``drain``, ``scale``,
``stop`` — and survives for compatibility; the asyncio front end in
:mod:`repro.serve.frontend` multiplexes many connections over the same
protocol and is what ``python -m repro.serve start`` runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import KaliError
from repro.machine.cost import MachineModel, NCUBE7
from repro.machine.stats import RunResult
from repro.obs.registry import MetricsRegistry, write_run_json
from repro.serve.pool import PoolCrashError, RankPool
from repro.serve.queue import (
    DEFAULT_TENANT,
    Job,
    JobFuture,
    JobQueue,
    QueueClosed,
    ShedError,
)
from repro.serve.router import ShardRouter, route_key

# --- job kinds -------------------------------------------------------------

JobRunner = Callable[["Shard", Dict[str, Any]], Tuple[RunResult, Dict]]

JOB_KINDS: Dict[str, JobRunner] = {}


def register_job_kind(name: str, runner: JobRunner) -> None:
    """Register (or replace) a job family; the runner receives the shard
    executing the job and the job spec and returns ``(engine RunResult,
    summary dict)``."""
    JOB_KINDS[name] = runner


class UnknownJobKindError(KaliError):
    """A submitted job kind is not in the registry.

    Carries the offending kind and the registered list so the protocol
    fronts can return a structured reply instead of a stringified
    exception."""

    def __init__(self, kind: Any):
        self.kind = kind
        self.registered = sorted(JOB_KINDS)
        super().__init__(
            f"unknown job kind {kind!r} "
            f"(registered: {', '.join(self.registered)})"
        )

    def reply(self) -> Dict[str, Any]:
        """The structured protocol reply for this rejection."""
        return {"ok": False, "unknown_kind": True, "error": str(self),
                "kind": self.kind, "registered": self.registered}


def _sha256(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _jsonable(value):
    """Numpy scalars/arrays → plain Python, recursively."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _run_jacobi(server: "Shard", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.apps.jacobi import build_jacobi
    from repro.meshes.regular import five_point_grid

    rows = int(spec.get("rows", 16))
    cols = int(spec.get("cols", rows))
    sweeps = int(spec.get("sweeps", 10))
    seed = int(spec.get("seed", 12345))
    mesh = five_point_grid(rows, cols)
    init = np.random.default_rng(seed).random(mesh.n)
    prog = build_jacobi(
        mesh, server.nranks, machine=server.machine, initial=init,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    result = prog.run(sweeps)
    summary = {
        "n": mesh.n, "sweeps": sweeps,
        "solution_sha256": _sha256(prog.solution),
    }
    return result.engine, summary


def _run_cg(server: "Shard", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.apps.cg import CGSolver
    from repro.meshes.regular import five_point_grid

    rows = int(spec.get("rows", 10))
    cols = int(spec.get("cols", rows))
    max_iter = int(spec.get("max_iter", 100))
    tol = float(spec.get("tol", 1e-8))
    seed = int(spec.get("seed", 12345))
    mesh = five_point_grid(rows, cols)
    b = np.random.default_rng(seed).random(mesh.n)
    solver = CGSolver(
        mesh, server.nranks, machine=server.machine,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    r = solver.solve(b, tol=tol, max_iter=max_iter)
    summary = {
        "n": mesh.n, "iterations": r.iterations,
        "residual": float(r.residual),
        "solution_sha256": _sha256(r.solution),
    }
    return r.timing.engine, summary


def _run_kali(server: "Shard", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.lang.interp import compile_kali

    source = spec.get("source")
    if not isinstance(source, str):
        raise KaliError("kali jobs need a 'source' string in the spec")
    inputs = {
        name: np.asarray(values)
        for name, values in (spec.get("inputs") or {}).items()
    }
    res = compile_kali(source).run(
        server.nranks, machine=server.machine, inputs=inputs,
        consts=spec.get("consts") or None,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    summary = {
        "scalars": _jsonable(res.scalars),
        "output": list(res.output),
        "arrays_sha256": {n: _sha256(a) for n, a in sorted(res.arrays.items())},
    }
    return res.timing.engine, summary


def _run_jacobi_adaptive(server: "Shard",
                         spec: Dict) -> Tuple[RunResult, Dict]:
    """Shuffled unstructured-mesh Jacobi under the adaptive layout tuner.

    Submitted with a deliberately scrambled owner map, so the first job
    of a kind pays for profiling sweeps plus a redistribution — and, when
    the server has a ``tune_dir``, persists the winning layout.  Repeat
    jobs with the same fingerprint then warm-start directly in the
    learned layout (``tune_applied`` True, ``tune_moves`` 0).
    """
    from repro.apps.jacobi import build_jacobi
    from repro.distributions.custom import Custom
    from repro.meshes.unstructured import random_unstructured_mesh
    from repro.tune import AdaptiveRunner, TunePolicy, TuneSpec

    nodes = int(spec.get("nodes", 600))
    sweeps = int(spec.get("sweeps", 16))
    seed = int(spec.get("seed", 7))
    mesh, points = random_unstructured_mesh(nodes, seed=seed,
                                            locality_sort=False)
    rng = np.random.default_rng(seed + 1)
    bad = Custom(rng.integers(0, server.nranks, size=mesh.n))
    init = np.random.default_rng(int(spec.get("init_seed", 12345))).random(
        mesh.n)
    prog = build_jacobi(
        mesh, server.nranks, machine=server.machine, dist=bad, initial=init,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
        tune=server.tune_dir,
    )
    runner = AdaptiveRunner(
        TuneSpec(arrays=["a", "old_a", "count", "adj", "coef"],
                 table="adj", count="count", points=points),
        TunePolicy(interval=int(spec.get("interval", 4)),
                   warmup=int(spec.get("warmup", 4))),
    )
    result = runner.run(prog.ctx, [prog.copy_loop, prog.relax_loop], sweeps)
    report = result.tune_report
    final = (report["layout"]["name"] if report["layout"]
             else ("learned" if prog.ctx.tune_applied else "initial"))
    summary = {
        "n": mesh.n, "sweeps": sweeps,
        "tune_moves": report["moves"],
        "tune_decisions": report["decisions"],
        "tune_applied": prog.ctx.tune_applied,
        "final_layout": final,
        "solution_sha256": _sha256(prog.solution),
    }
    return result.engine, summary


def _run_jacobi_served(server: "Shard",
                       spec: Dict) -> Tuple[RunResult, Dict]:
    """Frozen-plan unstructured-mesh Jacobi: the autopilot's workload.

    Submitted with a deliberately scrambled (spec-seeded) owner map and
    **no online tuner** — the job replays whatever layout the shard's
    plan store holds for its fingerprint (zero mid-run moves) and runs
    scrambled forever otherwise.  That frozen-ness is the point: only
    the server-resident autopilot can rescue a family after a workload
    shift, by learning a plan offline and hot-swapping the store.  The
    relax kernel's summation order is layout-independent, so the
    solution hash is bit-identical whichever layout the job lands in.

    Runs on the simulated machine (not the shard's warm pool), so the
    record carries the *modeled* service time (``virtual_s``) the paper
    reports — the quantity a layout change moves, and the one the
    autopilot's A/B compares deterministically.
    """
    from repro.apps.jacobi import build_jacobi
    from repro.distributions.custom import Custom
    from repro.meshes.unstructured import random_unstructured_mesh

    nodes = int(spec.get("nodes", 400))
    sweeps = int(spec.get("sweeps", 8))
    seed = int(spec.get("seed", 7))
    mesh, points = random_unstructured_mesh(nodes, seed=seed,
                                            locality_sort=False)
    rng = np.random.default_rng(seed + 1)
    scrambled = Custom(rng.integers(0, server.nranks, size=mesh.n))
    init = np.random.default_rng(int(spec.get("init_seed", 12345))).random(
        mesh.n)
    prog = build_jacobi(
        mesh, server.nranks, machine=server.machine, dist=scrambled,
        initial=init,
        schedule_cache_dir=server.cache_dir, tune=server.tune_dir,
    )
    plan_key = (prog.ctx.tune_fingerprint()
                if server.tune_dir is not None else None)
    result = prog.run(sweeps)
    summary = {
        "n": mesh.n, "sweeps": sweeps,
        "plan_key": plan_key,
        "plan_applied": prog.ctx.tune_applied,
        "virtual_s": result.engine.makespan,
        "solution_sha256": _sha256(prog.solution),
    }
    return result.engine, summary


register_job_kind("jacobi", _run_jacobi)
register_job_kind("cg", _run_cg)
register_job_kind("kali", _run_kali)
register_job_kind("jacobi_adaptive", _run_jacobi_adaptive)
register_job_kind("jacobi_served", _run_jacobi_served)

_DISK_COUNTERS = (
    "schedule_cache_disk_hits",
    "schedule_cache_disk_misses",
    "schedule_cache_disk_stores",
    "schedule_cache_disk_evictions",
    "schedule_cache_disk_corrupt",
)


# --- one shard -------------------------------------------------------------


class Shard:
    """One warm pool + one tenant-fair queue + one scheduler thread.

    Runners receive the shard as their first argument, so everything a
    job needs at execution time — ``nranks``, ``machine``, ``pool``,
    ``cache_dir`` (this shard's private disk-cache directory),
    ``tune_dir`` (the fleet-shared learned-plan store) — resolves
    against the shard that actually owns the mesh.
    """

    def __init__(self, server: "JobServer", index: int):
        self.server = server
        self.index = index
        self.name = f"shard-{index}"
        self.nranks = server.nranks
        self.machine = server.machine
        self.cache_dir = (os.path.join(server.cache_dir, self.name)
                          if server.cache_dir else None)
        self.tune_dir = server.tune_dir
        self.pool = RankPool(server.nranks, timeout=server.job_timeout)
        self.queue = JobQueue(
            server.policy,
            max_depth=server.shard_depth,
            tenant_weights=server.tenant_weights,
        )
        self.jobs_done = 0
        self.failures = 0
        self.retries = 0      # crashed dispatches retried off this shard
        self.replays_in = 0   # jobs replayed *onto* this shard
        self._busy = False
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "Shard":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"repro-serve-{self.name}", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, join_timeout: float = 30.0) -> None:
        """Close the queue, join the scheduler, tear the pool down."""
        self.queue.close()
        if self._thread is not None:
            self._thread.join(join_timeout)
            self._thread = None
        self.pool.close()

    def retire(self) -> List[Job]:
        """Pull this shard's backlog for replay elsewhere, then stop.

        The job currently executing (if any) completes here; everything
        still queued is returned in scheduling order for the server to
        re-route.  After ``retire`` the shard accepts nothing."""
        backlog = self.queue.drain_jobs()
        self.stop()
        return backlog

    @property
    def busy(self) -> bool:
        with self._lock:
            return self._busy

    # --- scheduling ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        server = self.server
        while not server._stop.is_set():
            batch = self.queue.next_batch(server.max_batch, timeout=0.2)
            if not batch:
                if self.queue.closed:
                    return
                continue
            with self._lock:
                self._busy = True
            try:
                self._run_batch(batch)
            finally:
                with self._lock:
                    self._busy = False

    def _run_batch(self, batch: List[Job]) -> None:
        server = self.server
        for i, job in enumerate(batch):
            try:
                record = self._execute(job, batch_size=len(batch),
                                       batch_index=i)
            except PoolCrashError as crash:
                # The mesh is condemned.  This job retries against its
                # budget; the rest of the batch never started, so it
                # replays without consuming any budget.  Both paths
                # prefer a surviving shard.
                survivors = batch[i + 1:]
                if job.retries < server.retry_budget:
                    job.retries += 1
                    with server._lock:
                        self.retries += 1
                    server._replay([job], exclude=self.name,
                                   reason="pool-crash")
                else:
                    server._finish(job, self._crash_record(
                        job, crash, batch_size=len(batch), batch_index=i))
                if survivors:
                    server._replay(survivors, exclude=self.name,
                                   reason="condemned-batch")
                return
            server._finish(job, record)

    def _crash_record(self, job: Job, crash: PoolCrashError,
                      batch_size: int, batch_index: int) -> Dict:
        # Counter accounting happens in server._finish, the single
        # terminal point, under the server lock (stat-sum invariant).
        return {
            "id": job.job_id,
            "kind": job.kind,
            "spec": job.spec,
            "tenant": job.tenant,
            "shard": self.name,
            "backend": "pool",
            "batch_size": batch_size,
            "batch_index": batch_index,
            "ok": False,
            "retry_exhausted": True,
            "retries": job.retries,
            "error": f"{type(crash).__name__}: {crash}",
        }

    def _execute(self, job: Job, batch_size: int, batch_index: int) -> Dict:
        server = self.server
        if server.chaos_hook is not None:
            server.chaos_hook(job, self)
        runner = JOB_KINDS[job.kind]
        t0 = time.monotonic()
        record: Dict[str, Any] = {
            "id": job.job_id,
            "kind": job.kind,
            "spec": job.spec,
            "tenant": job.tenant,
            "shard": self.name,
            "backend": "pool",
            "batch_size": batch_size,
            "batch_index": batch_index,
            "retries": job.retries,
        }
        try:
            result, summary = runner(self, job.spec)
        except PoolCrashError:
            raise  # infrastructure death: the batch loop handles retry
        except Exception as exc:
            record.update(
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                wall_s=time.monotonic() - t0,
                pool_reused=self.pool.last_pool_reused,
            )
            return record
        record.update(
            ok=True,
            wall_s=time.monotonic() - t0,
            pool_reused=self.pool.last_pool_reused,
            summary=summary,
            inspector_runs=result.counter_sum("inspector_runs"),
        )
        for name in _DISK_COUNTERS:
            record[name.replace("schedule_cache_", "")] = (
                result.counter_sum(name)
            )
        # Data-plane accounting: payload bytes that crossed process
        # boundaries through the shm segments vs the control pipes.
        record["shm_bytes"] = result.counter_sum("shm_bytes_sent")
        record["pipe_bytes"] = result.counter_sum("pipe_bytes_sent")
        if server.metrics_dir:
            record["metrics_file"] = server._write_metrics(job, record,
                                                           result)
        server._observe(record, result)
        return record

    # --- introspection ---------------------------------------------------

    def counter_snapshot(self) -> Dict[str, int]:
        """This shard's job counters.  Callers that need cross-shard
        consistency (``stat``) take one snapshot per shard under the
        *server* lock — the lock every mutation holds — so the sums a
        reply reports can never tear against ``jobs_done``/``failures``
        totals taken in the same hold."""
        return {
            "jobs_done": self.jobs_done,
            "failures": self.failures,
            "retries": self.retries,
            "replays_in": self.replays_in,
        }

    def describe(self,
                 counters: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        if counters is None:
            with self.server._lock:
                counters = self.counter_snapshot()
        entry: Dict[str, Any] = {
            "name": self.name,
            "warm": self.pool.started,
            "busy": self.busy,
            "queued": self.queue.pending(),
            **counters,
            "sheds": self.queue.sheds,
            "rebuilds": self.pool.rebuilds,
            "meshes_built": self.pool.meshes_built,
            "pool_jobs_done": self.pool.jobs_done,
            "shm_ship_bytes": self.pool.shm_ship_bytes,
            "shm_reclaimed_bytes": self.pool.shm_reclaimed_bytes,
            "cache_dir": self.cache_dir,
        }
        if self.cache_dir is not None and os.path.isdir(self.cache_dir):
            from repro.serve.diskcache import DiskScheduleCache

            store = DiskScheduleCache(self.cache_dir)
            entry["disk_entries"] = len(store.entries())
            entry["disk_bytes"] = store.total_bytes()
        else:
            entry["disk_entries"] = 0
            entry["disk_bytes"] = 0
        return entry


# --- the server ------------------------------------------------------------


class JobServer:
    """A sharded fleet of warm pools serving a routed stream of jobs.

    Parameters
    ----------
    nranks:
        World size of every pool (and of every job).
    shards:
        Initial shard count.  ``1`` reproduces the single-pool server
        exactly (one queue, one mesh, same records).
    policy:
        Per-tenant-lane queue policy, ``fifo`` or ``priority``.
    cache_dir:
        Root of the persistent schedule-cache tier; each shard keeps its
        own subdirectory (``<cache_dir>/shard-<i>``) so per-shard LRU
        eviction and hit rates never interfere.  None disables the disk
        tier.
    metrics_dir:
        When set, every job writes a ``repro-run-v1`` file
        ``job-<id>.json`` there, with serve provenance (shard, tenant,
        retries) in ``meta``.
    tune_dir:
        Directory of the learned layout-plan store (``repro.tune``),
        shared by the whole fleet — plans are tiny, immutable, and
        content-addressed, so sharing only increases reuse.
    max_batch:
        Upper bound on how many identical-``batch_key`` jobs one queue
        pull may run back-to-back.
    retry_budget:
        How many times one job may be re-dispatched after a pool crash
        before it fails with ``retry_exhausted``.
    tenants:
        tenant → ``{"weight": w, "quota": q}``: ``weight`` biases the
        fair queues, ``quota`` bounds the tenant's queued jobs fleet-
        wide.  ``default_quota`` caps unlisted tenants.
    max_pending:
        Fleet-wide bound on queued jobs; submissions past it are shed.
    shard_depth:
        Per-shard queue-depth bound (sheds on a hot shard even when the
        fleet as a whole has room).
    autoscale:
        An :class:`~repro.serve.autoscale.AutoscalePolicy` to grow and
        shrink the fleet on sustained queue depth (None = fixed fleet).
    autopilot:
        Truthy enables the server-resident online tuning daemon
        (:mod:`repro.autopilot`): pass ``True`` for defaults or an
        :class:`~repro.autopilot.daemon.AutopilotPolicy`.  The daemon
        mines per-job profiles, detects drift, shadow re-plans on a
        spare shard, and A/B-promotes winning plans into ``tune_dir``.
    chaos_hook:
        Test-only: ``hook(job, shard)`` called as each job starts
        executing.  The chaos suite uses it to kill pool workers
        mid-job deterministically.
    """

    def __init__(
        self,
        nranks: int,
        policy: str = "fifo",
        cache_dir: Optional[str] = None,
        metrics_dir: Optional[str] = None,
        machine: MachineModel = NCUBE7,
        max_batch: int = 8,
        job_timeout: float = 120.0,
        tune_dir: Optional[str] = None,
        shards: int = 1,
        retry_budget: int = 2,
        tenants: Optional[Dict[str, Dict[str, Any]]] = None,
        default_quota: Optional[int] = None,
        max_pending: Optional[int] = None,
        shard_depth: Optional[int] = None,
        autoscale=None,
        autopilot=None,
        chaos_hook: Optional[Callable[[Job, Shard], None]] = None,
    ):
        if max_batch < 1:
            raise KaliError(f"max_batch must be >= 1, got {max_batch}")
        if shards < 1:
            raise KaliError(f"shards must be >= 1, got {shards}")
        if retry_budget < 0:
            raise KaliError(f"retry_budget must be >= 0, got {retry_budget}")
        self.nranks = nranks
        self.machine = machine
        self.policy = policy
        self.cache_dir = cache_dir
        self.metrics_dir = metrics_dir
        self.tune_dir = tune_dir
        self.max_batch = max_batch
        self.job_timeout = job_timeout
        self.retry_budget = retry_budget
        self.tenants = {t: dict(cfg) for t, cfg in (tenants or {}).items()}
        self.tenant_weights = {
            t: float(cfg.get("weight", 1.0))
            for t, cfg in self.tenants.items() if "weight" in cfg
        }
        self.default_quota = default_quota
        self.max_pending = max_pending
        self.shard_depth = shard_depth
        self.chaos_hook = chaos_hook
        self.records: List[Dict] = []
        self.failures = 0
        self.sheds = 0
        self.sheds_by_tenant: Dict[str, int] = {}
        self.retries_total = 0
        self.replays_total = 0
        self._tenant_pending: Dict[str, int] = {}
        self._job_seq = 0
        self._lock = threading.Lock()
        self._fleet_lock = threading.RLock()
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._started_at = time.monotonic()
        self._next_shard_index = 0
        self.router = ShardRouter()
        self.shards: List[Shard] = []
        for _ in range(shards):
            self._spawn_shard()
        self.autoscaler = None
        if autoscale is not None:
            from repro.serve.autoscale import Autoscaler

            self.autoscaler = Autoscaler(self, autoscale)
        self.autopilot = None
        if autopilot:
            from repro.autopilot.daemon import Autopilot, AutopilotPolicy

            policy_obj = (autopilot if isinstance(autopilot, AutopilotPolicy)
                          else AutopilotPolicy())
            self.autopilot = Autopilot(self, policy_obj)
        if metrics_dir:
            os.makedirs(metrics_dir, exist_ok=True)

    # --- compat accessors (single-pool era) ------------------------------

    @property
    def pool(self) -> RankPool:
        """The first shard's pool (single-shard compatibility)."""
        return self.shards[0].pool

    @property
    def queue(self) -> JobQueue:
        """The first shard's queue (single-shard compatibility)."""
        return self.shards[0].queue

    # --- fleet membership ------------------------------------------------

    def _spawn_shard(self) -> Shard:
        with self._fleet_lock:
            shard = Shard(self, self._next_shard_index)
            self._next_shard_index += 1
            self.shards.append(shard)
            self.router.add(shard.name)
            return shard

    def add_shard(self) -> Shard:
        """Grow the fleet by one shard (autoscaler's scale-up)."""
        shard = self._spawn_shard()
        shard.start()
        return shard

    def retire_shard(self, name: Optional[str] = None) -> str:
        """Shrink the fleet: route away, replay the backlog, tear down.

        The youngest shard retires unless ``name`` picks one.  Its
        queued jobs replay onto surviving shards; the job it is
        executing (if any) completes before the pool closes."""
        with self._fleet_lock:
            if len(self.shards) <= 1:
                raise KaliError("cannot retire the last shard")
            shard = (self.shards[-1] if name is None else
                     next((s for s in self.shards if s.name == name), None))
            if shard is None:
                raise KaliError(f"no shard named {name!r}")
            self.router.remove(shard.name)
            self.shards.remove(shard)
        backlog = shard.retire()
        if backlog:
            self._replay(backlog, exclude=shard.name, reason="retired")
        return shard.name

    def shard_for(self, key: str,
                  exclude: Tuple[str, ...] = ()) -> Shard:
        with self._fleet_lock:
            name = self.router.route(key, exclude=exclude)
            for shard in self.shards:
                if shard.name == name:
                    return shard
        raise KaliError(f"router chose unknown shard {name!r}")

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "JobServer":
        """Start every shard's scheduler thread (pools fork lazily on
        their first job) and the autoscaler, if configured."""
        for shard in list(self.shards):
            shard.start()
        if self.autoscaler is not None:
            self.autoscaler.start()
        if self.autopilot is not None:
            self.autopilot.start()
        return self

    def close(self) -> None:
        """Stop scheduling and tear every shard down (idempotent).
        Queued jobs that never ran resolve with an error."""
        self._stop.set()
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.autopilot is not None:
            self.autopilot.stop()
        with self._fleet_lock:
            shards = list(self.shards)
        for shard in shards:
            shard.queue.close()
        for shard in shards:
            shard.stop()
            for job in shard.queue.drain_jobs():
                job.future.set_exception(KaliError("server closed"))

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # --- submission ------------------------------------------------------

    def submit(self, kind: str, spec: Optional[Dict] = None,
               priority: int = 0, tenant: str = DEFAULT_TENANT) -> JobFuture:
        """Admit, route, and queue one job; the future resolves with its
        record dict.  Raises :class:`ShedError` when admission control
        rejects it (fleet full, or the tenant is over quota)."""
        if kind not in JOB_KINDS:
            raise UnknownJobKindError(kind)
        spec = dict(spec or {})
        # Identical-spec jobs share shapes and indirection data, so they
        # may batch back-to-back on the warm mesh — and they route to
        # the same shard, where their schedules are already cached.
        key = route_key(kind, spec)
        job = Job(kind=kind, spec=spec, priority=priority,
                  batch_key=key, tenant=tenant)
        self._admit(job)
        shard = self.shard_for(key)
        job.shard = shard.name
        with self._lock:
            self._job_seq += 1
            job.job_id = self._job_seq
        try:
            shard.queue.submit(job)
        except ShedError as shed:
            with self._lock:
                self.sheds += 1
                self.sheds_by_tenant[tenant] = (
                    self.sheds_by_tenant.get(tenant, 0) + 1)
                self._tenant_pending[tenant] -= 1
            shed.details["shard"] = shard.name
            raise
        except QueueClosed:
            with self._lock:
                self._tenant_pending[tenant] -= 1
            raise
        return job.future

    def submit_internal(self, kind: str, spec: Optional[Dict] = None,
                        shard_name: Optional[str] = None,
                        tenant: str = "__autopilot__",
                        priority: int = 0) -> JobFuture:
        """Queue one *internal* job, optionally pinned to one shard.

        The autopilot's shadow and A/B traffic goes through here: it
        bypasses tenant admission entirely (never counted against any
        quota or the fleet depth bound — the work is the server's own),
        and pinning goes *through* the rendezvous router via
        :meth:`~repro.serve.router.ShardRouter.pin_exclusions`, so it
        composes with crash-replay exclusion instead of sidestepping
        routing.  Internal jobs still terminate through ``_finish``
        like any other job (their records carry the internal tenant).
        """
        if kind not in JOB_KINDS:
            raise UnknownJobKindError(kind)
        spec = dict(spec or {})
        key = route_key(kind, spec)
        exclude: Tuple[str, ...] = ()
        if shard_name is not None:
            with self._fleet_lock:
                exclude = self.router.pin_exclusions(shard_name)
        shard = self.shard_for(key, exclude=exclude)
        job = Job(kind=kind, spec=spec, priority=priority,
                  batch_key=key, tenant=tenant)
        job.shard = shard.name
        with self._lock:
            self._job_seq += 1
            job.job_id = self._job_seq
        shard.queue.submit(job)
        return job.future

    def _admit(self, job: Job) -> None:
        """Fleet-wide admission: global depth and per-tenant quota."""
        with self._lock:
            pending = sum(self._tenant_pending.values())
            if self.max_pending is not None and pending >= self.max_pending:
                self.sheds += 1
                self.sheds_by_tenant[job.tenant] = (
                    self.sheds_by_tenant.get(job.tenant, 0) + 1)
                raise ShedError(
                    f"shed {job.kind} job for tenant {job.tenant!r}: "
                    f"fleet queue full ({pending} >= {self.max_pending})",
                    reason="queue-depth", tenant=job.tenant,
                    depth=pending, limit=self.max_pending,
                )
            quota = self.tenants.get(job.tenant, {}).get(
                "quota", self.default_quota)
            mine = self._tenant_pending.get(job.tenant, 0)
            if quota is not None and mine >= quota:
                self.sheds += 1
                self.sheds_by_tenant[job.tenant] = (
                    self.sheds_by_tenant.get(job.tenant, 0) + 1)
                raise ShedError(
                    f"shed {job.kind} job for tenant {job.tenant!r}: "
                    f"tenant over quota ({mine} >= {quota})",
                    reason="tenant-quota", tenant=job.tenant,
                    depth=mine, limit=quota,
                )
            self._tenant_pending[job.tenant] = mine + 1

    def _replay(self, jobs: List[Job], exclude: str, reason: str) -> None:
        """Re-route accepted jobs off a condemned/retired shard.  Replay
        bypasses admission — these jobs were admitted once and must
        terminate; when the fleet is down to the excluded shard they
        requeue there (its next run rebuilds the mesh)."""
        for job in jobs:
            try:
                shard = self.shard_for(job.batch_key or job.kind,
                                       exclude=(exclude,))
                job.shard = shard.name
                with self._lock:
                    shard.replays_in += 1
                    self.replays_total += 1
                    if reason == "pool-crash":
                        self.retries_total += 1
                shard.queue.submit(job)
            except (QueueClosed, KaliError):
                job.future.set_exception(
                    KaliError(f"server closed while replaying job "
                              f"{job.job_id} ({reason})"))

    def _observe(self, record: Dict, result: RunResult) -> None:
        """Feed a finished job's record + engine result to the autopilot
        miner (cheap, and never allowed to fail the job)."""
        if self.autopilot is None:
            return
        try:
            self.autopilot.observe_job(record, result)
        except Exception:
            pass

    def _shard_named(self, name: Optional[str]) -> Optional[Shard]:
        with self._fleet_lock:
            for shard in self.shards:
                if shard.name == name:
                    return shard
        return None

    def _finish(self, job: Job, record: Dict) -> None:
        """The single terminal point of every accepted job: record it,
        bump the producing shard's counters, release the tenant slot,
        resolve the future — exactly once, all under one lock hold, so
        a concurrent ``stat`` snapshot always sees shard counters that
        sum to the fleet totals (the stat-sum invariant)."""
        shard = self._shard_named(record.get("shard"))
        with self._lock:
            if record.get("ok"):
                if shard is not None:
                    shard.jobs_done += 1
            else:
                self.failures += 1
                if shard is not None:
                    shard.failures += 1
            self.records.append(record)
            left = self._tenant_pending.get(job.tenant, 1) - 1
            self._tenant_pending[job.tenant] = max(left, 0)
        job.future.set_result(record)

    def drain(self, timeout: Optional[float] = None) -> int:
        """Block until every queued job has run; returns jobs completed.
        The queue stays open (``drain`` is a checkpoint, not shutdown)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._fleet_lock:
                shards = list(self.shards)
            idle = all(not s.busy and s.queue.pending() == 0
                       for s in shards)
            if idle:
                return len(self.records)
            if deadline is not None and time.monotonic() > deadline:
                queued = sum(s.queue.pending() for s in shards)
                raise TimeoutError(
                    f"drain: {queued} jobs still queued"
                )
            time.sleep(0.01)

    # --- metrics ---------------------------------------------------------

    def _write_metrics(self, job: Job, record: Dict,
                       result: RunResult) -> str:
        """One ``repro-run-v1`` file per job, with serve provenance in
        meta and the serve scalars folded into the metrics registry."""
        meta = {
            "source": "repro.serve",
            "backend": "pool",
            "job_id": job.job_id,
            "kind": job.kind,
            "workload": _jsonable(job.spec),
            "pool_reused": record["pool_reused"],
            "batch_size": record["batch_size"],
            "shard": record["shard"],
            "tenant": record["tenant"],
            "retries": record["retries"],
        }
        path = os.path.join(self.metrics_dir, f"job-{job.job_id}.json")
        write_run_json(result, path, meta=meta)
        registry = MetricsRegistry.from_run(result, extra={
            "serve.pool_reused": int(record["pool_reused"]),
            "serve.wall_s": record["wall_s"],
            "serve.batch_size": record["batch_size"],
            "serve.shard_index": int(record["shard"].split("-")[-1]),
            "serve.retries": record["retries"],
        })
        with open(os.path.join(self.metrics_dir,
                               f"job-{job.job_id}-metrics.json"), "w") as fh:
            fh.write(registry.to_json(indent=2))
        return path

    def fleet_registry(self) -> MetricsRegistry:
        """The fleet's health as ``serve.*`` / ``shard.*`` metrics — the
        serving-layer counterpart of ``MetricsRegistry.from_run``."""
        return MetricsRegistry.from_fleet(self.stat())

    # --- introspection ---------------------------------------------------

    def stat(self) -> Dict[str, Any]:
        with self._fleet_lock:
            shards = list(self.shards)
        with self._lock:
            records = list(self.records)
            failures = self.failures
            sheds = self.sheds
            sheds_by_tenant = dict(self.sheds_by_tenant)
            retries = self.retries_total
            replays = self.replays_total
            tenant_pending = {t: n for t, n in self._tenant_pending.items()
                              if n}
            # Same hold as the record list: every shard-counter mutation
            # happens under this lock, so these snapshots cannot tear
            # against the totals above (the stat-sum invariant).
            shard_counters = {s.name: s.counter_snapshot() for s in shards}
        done = [r for r in records if r.get("ok")]
        shard_entries = [s.describe(counters=shard_counters[s.name])
                        for s in shards]
        snapshot: List[Dict[str, Any]] = []
        for s in shards:
            snapshot.extend(s.queue.snapshot())
        disk: Dict[str, Any] = {"dir": self.cache_dir}
        if self.cache_dir is not None:
            disk["entries"] = sum(e["disk_entries"] for e in shard_entries)
            disk["bytes"] = sum(e["disk_bytes"] for e in shard_entries)
            for name in _DISK_COUNTERS:
                short = name.replace("schedule_cache_", "")
                disk[short] = sum(r.get(short, 0) for r in done)
        tune: Dict[str, Any] = {"dir": self.tune_dir}
        if self.tune_dir is not None:
            from repro.tune.store import PlanStore

            tune["entries"] = len(PlanStore(self.tune_dir).entries())
        # The aggregate "pool" block: the per-shard sums, under the same
        # keys the single-pool stat always reported, so dashboards and
        # scripts keyed on stat()["pool"] read fleet totals unchanged.
        pool = {
            "warm": any(e["warm"] for e in shard_entries),
            "jobs_done": sum(e["pool_jobs_done"] for e in shard_entries),
            "rebuilds": sum(e["rebuilds"] for e in shard_entries),
            "meshes_built": sum(e["meshes_built"] for e in shard_entries),
            "shm_ship_bytes": sum(e["shm_ship_bytes"]
                                  for e in shard_entries),
            "shm_reclaimed_bytes": sum(e["shm_reclaimed_bytes"]
                                       for e in shard_entries),
        }
        stat = {
            "nranks": self.nranks,
            "policy": self.policy,
            "uptime_s": time.monotonic() - self._started_at,
            "busy": any(e["busy"] for e in shard_entries),
            "queued": sum(e["queued"] for e in shard_entries),
            "queue_snapshot": snapshot,
            "jobs_done": len(done),
            "failures": failures,
            "sheds": sheds,
            "sheds_by_tenant": sheds_by_tenant,
            "retries": retries,
            "replays": replays,
            "tenant_pending": tenant_pending,
            "shards": shard_entries,
            "router": {"shards": list(self.router.shards)},
            "pool": pool,
            "disk_cache": disk,
            "tune_store": tune,
        }
        if self.autoscaler is not None:
            stat["autoscale"] = self.autoscaler.describe()
        if self.autopilot is not None:
            stat["autopilot"] = self.autopilot.describe()
        return stat

    # --- the blocking unix-socket front ----------------------------------

    def serve_forever(self, socket_path: str) -> None:
        """Accept JSON-lines clients on ``socket_path`` until a ``stop``
        request (or :meth:`close`).  Blocks; one thread per connection.
        The asyncio front end (:mod:`repro.serve.frontend`) is the
        scalable replacement; this one survives for compatibility."""
        self.start()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(socket_path)
        sock.listen(16)
        sock.settimeout(0.25)
        self._sock = sock
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                threading.Thread(
                    target=self._serve_client, args=(conn,), daemon=True,
                ).start()
        finally:
            sock.close()
            self._sock = None
            try:
                os.unlink(socket_path)
            except OSError:
                pass
            self.close()

    def _serve_client(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rw", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    response = self.handle_request(json.loads(line))
                except Exception as exc:
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                try:
                    fh.write(json.dumps(_jsonable(response)) + "\n")
                    fh.flush()
                except (BrokenPipeError, OSError):
                    return
                if response.get("stopping"):
                    return

    def handle_request(self, req: Dict) -> Dict:
        """One protocol request → one reply dict (shared by the blocking
        and asyncio fronts; ``submit`` with ``wait`` blocks and belongs
        on a worker thread in the async case)."""
        cmd = req.get("cmd")
        if cmd == "ping":
            return {"ok": True, "pid": os.getpid(), "nranks": self.nranks,
                    "shards": len(self.shards)}
        if cmd == "submit":
            if "kind" not in req:
                return UnknownJobKindError(None).reply()
            try:
                future = self.submit(
                    req["kind"], req.get("spec"),
                    priority=int(req.get("priority", 0)),
                    tenant=req.get("tenant", DEFAULT_TENANT),
                )
            except UnknownJobKindError as exc:
                return exc.reply()
            except ShedError as shed:
                return {"ok": False, "shed": True, "error": str(shed),
                        **shed.details}
            if not req.get("wait", True):
                return {"ok": True, "queued": True}
            record = future.result(timeout=req.get("timeout"))
            return {"ok": bool(record.get("ok")), "job": record}
        if cmd == "stat":
            return {"ok": True, "stat": self.stat()}
        if cmd == "metrics":
            return {"ok": True, "metrics": self.fleet_registry().as_dict()}
        if cmd == "drain":
            done = self.drain(timeout=req.get("timeout"))
            return {"ok": True, "jobs_done": done}
        if cmd == "scale":
            n = int(req["shards"])
            if n < 1:
                return {"ok": False, "error": "shards must be >= 1"}
            while len(self.shards) < n:
                self.add_shard()
            while len(self.shards) > n:
                self.retire_shard()
            return {"ok": True, "shards": len(self.shards)}
        if cmd == "autopilot":
            if self.autopilot is None:
                return {"ok": False, "error": "autopilot is not enabled "
                                              "(start with autopilot=)"}
            op = req.get("op", "status")
            if op == "status":
                return {"ok": True, "autopilot": self.autopilot.describe()}
            if op == "explain":
                return {"ok": True,
                        "explain": self.autopilot.explain(req.get("family"))}
            if op == "force-replan":
                if "kind" not in req:
                    return {"ok": False,
                            "error": "force-replan needs a 'kind'"}
                family = self.autopilot.force_replan(req["kind"],
                                                     req.get("spec"))
                return {"ok": True, "family": family}
            return {"ok": False, "error": f"unknown autopilot op {op!r}"}
        if cmd == "stop":
            self._stop.set()  # accept loop exits and closes everything
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown command {cmd!r}"}

    # kept under the old name for anything that subclassed/patched it
    _handle = handle_request


# --- the client ------------------------------------------------------------


class ServeClient:
    """Minimal JSON-lines client for the unix-socket front.

    One short-lived connection per :meth:`request`; :meth:`connect`
    yields a persistent :class:`ServeConnection` for callers that
    multiplex many requests over one socket (what the asyncio front end
    is built to absorb)."""

    def __init__(self, socket_path: str, timeout: float = 300.0):
        self.socket_path = socket_path
        self.timeout = timeout

    def request(self, cmd: str, **fields) -> Dict:
        req = {"cmd": cmd, **fields}
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            with sock.makefile("rw", encoding="utf-8") as fh:
                fh.write(json.dumps(req) + "\n")
                fh.flush()
                line = fh.readline()
        if not line:
            raise KaliError("server closed the connection without replying")
        return json.loads(line)

    def connect(self) -> "ServeConnection":
        return ServeConnection(self.socket_path, self.timeout)


class ServeConnection:
    """A persistent JSON-lines connection (context manager)."""

    def __init__(self, socket_path: str, timeout: float = 300.0):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._fh = self._sock.makefile("rw", encoding="utf-8")

    def request(self, cmd: str, **fields) -> Dict:
        self._fh.write(json.dumps({"cmd": cmd, **fields}) + "\n")
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise KaliError("server closed the connection without replying")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# Structure job kinds (dht_build / dht_lookup / queue_stream / dht_wordcount)
# register themselves on import; the module needs register_job_kind above,
# so this import must stay at the bottom.
import repro.structs.jobs  # noqa: E402,F401  (registration side effect)
