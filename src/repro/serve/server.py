"""The job server: warm rank pool + job queue + unix-socket front end.

A :class:`JobServer` owns one :class:`~repro.serve.pool.RankPool` (all
jobs share its world size), one :class:`~repro.serve.queue.JobQueue`, and
a directory for the persistent schedule-cache tier.  A scheduler thread
pulls batches off the queue and executes them back-to-back on the warm
mesh; identical-spec jobs batch together (same ``batch_key``), so the
second and later jobs of a batch re-execute with every schedule hot.

Job kinds are a registry: ``jacobi`` and ``cg`` run the paper's two
workloads from shape parameters; ``kali`` compiles and runs Kali source
shipped in the spec.  :func:`register_job_kind` adds more.

The socket front speaks JSON-lines over a unix socket — one request
object per line, one response per line — with commands ``ping``,
``submit`` (optionally waiting for the result record), ``stat``,
``drain``, and ``stop``.  ``python -m repro.serve`` is the CLI over it.

Failure semantics: a failing job resolves *its* future with the error and
condemns the pool mesh (next job triggers a rebuild — that is the crash
replacement path); the server itself keeps serving.  ``drain`` completes
queued work without accepting more; ``stop`` drains nothing and tears the
pool down.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import KaliError
from repro.machine.cost import MachineModel, NCUBE7
from repro.machine.stats import RunResult
from repro.obs.registry import MetricsRegistry, write_run_json
from repro.serve.pool import RankPool
from repro.serve.queue import Job, JobFuture, JobQueue

# --- job kinds -------------------------------------------------------------

JobRunner = Callable[["JobServer", Dict[str, Any]], Tuple[RunResult, Dict]]

JOB_KINDS: Dict[str, JobRunner] = {}


def register_job_kind(name: str, runner: JobRunner) -> None:
    """Register (or replace) a job family; the runner receives the server
    and the job spec and returns ``(engine RunResult, summary dict)``."""
    JOB_KINDS[name] = runner


def _sha256(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _jsonable(value):
    """Numpy scalars/arrays → plain Python, recursively."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _run_jacobi(server: "JobServer", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.apps.jacobi import build_jacobi
    from repro.meshes.regular import five_point_grid

    rows = int(spec.get("rows", 16))
    cols = int(spec.get("cols", rows))
    sweeps = int(spec.get("sweeps", 10))
    seed = int(spec.get("seed", 12345))
    mesh = five_point_grid(rows, cols)
    init = np.random.default_rng(seed).random(mesh.n)
    prog = build_jacobi(
        mesh, server.nranks, machine=server.machine, initial=init,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    result = prog.run(sweeps)
    summary = {
        "n": mesh.n, "sweeps": sweeps,
        "solution_sha256": _sha256(prog.solution),
    }
    return result.engine, summary


def _run_cg(server: "JobServer", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.apps.cg import CGSolver
    from repro.meshes.regular import five_point_grid

    rows = int(spec.get("rows", 10))
    cols = int(spec.get("cols", rows))
    max_iter = int(spec.get("max_iter", 100))
    tol = float(spec.get("tol", 1e-8))
    seed = int(spec.get("seed", 12345))
    mesh = five_point_grid(rows, cols)
    b = np.random.default_rng(seed).random(mesh.n)
    solver = CGSolver(
        mesh, server.nranks, machine=server.machine,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    r = solver.solve(b, tol=tol, max_iter=max_iter)
    summary = {
        "n": mesh.n, "iterations": r.iterations,
        "residual": float(r.residual),
        "solution_sha256": _sha256(r.solution),
    }
    return r.timing.engine, summary


def _run_kali(server: "JobServer", spec: Dict) -> Tuple[RunResult, Dict]:
    from repro.lang.interp import compile_kali

    source = spec.get("source")
    if not isinstance(source, str):
        raise KaliError("kali jobs need a 'source' string in the spec")
    inputs = {
        name: np.asarray(values)
        for name, values in (spec.get("inputs") or {}).items()
    }
    res = compile_kali(source).run(
        server.nranks, machine=server.machine, inputs=inputs,
        consts=spec.get("consts") or None,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
    )
    summary = {
        "scalars": _jsonable(res.scalars),
        "output": list(res.output),
        "arrays_sha256": {n: _sha256(a) for n, a in sorted(res.arrays.items())},
    }
    return res.timing.engine, summary


def _run_jacobi_adaptive(server: "JobServer",
                         spec: Dict) -> Tuple[RunResult, Dict]:
    """Shuffled unstructured-mesh Jacobi under the adaptive layout tuner.

    Submitted with a deliberately scrambled owner map, so the first job
    of a kind pays for profiling sweeps plus a redistribution — and, when
    the server has a ``tune_dir``, persists the winning layout.  Repeat
    jobs with the same fingerprint then warm-start directly in the
    learned layout (``tune_applied`` True, ``tune_moves`` 0).
    """
    from repro.apps.jacobi import build_jacobi
    from repro.distributions.custom import Custom
    from repro.meshes.unstructured import random_unstructured_mesh
    from repro.tune import AdaptiveRunner, TunePolicy, TuneSpec

    nodes = int(spec.get("nodes", 600))
    sweeps = int(spec.get("sweeps", 16))
    seed = int(spec.get("seed", 7))
    mesh, points = random_unstructured_mesh(nodes, seed=seed,
                                            locality_sort=False)
    rng = np.random.default_rng(seed + 1)
    bad = Custom(rng.integers(0, server.nranks, size=mesh.n))
    init = np.random.default_rng(int(spec.get("init_seed", 12345))).random(
        mesh.n)
    prog = build_jacobi(
        mesh, server.nranks, machine=server.machine, dist=bad, initial=init,
        pool=server.pool, schedule_cache_dir=server.cache_dir,
        tune=server.tune_dir,
    )
    runner = AdaptiveRunner(
        TuneSpec(arrays=["a", "old_a", "count", "adj", "coef"],
                 table="adj", count="count", points=points),
        TunePolicy(interval=int(spec.get("interval", 4)),
                   warmup=int(spec.get("warmup", 4))),
    )
    result = runner.run(prog.ctx, [prog.copy_loop, prog.relax_loop], sweeps)
    report = result.tune_report
    final = (report["layout"]["name"] if report["layout"]
             else ("learned" if prog.ctx.tune_applied else "initial"))
    summary = {
        "n": mesh.n, "sweeps": sweeps,
        "tune_moves": report["moves"],
        "tune_decisions": report["decisions"],
        "tune_applied": prog.ctx.tune_applied,
        "final_layout": final,
        "solution_sha256": _sha256(prog.solution),
    }
    return result.engine, summary


register_job_kind("jacobi", _run_jacobi)
register_job_kind("cg", _run_cg)
register_job_kind("kali", _run_kali)
register_job_kind("jacobi_adaptive", _run_jacobi_adaptive)

_DISK_COUNTERS = (
    "schedule_cache_disk_hits",
    "schedule_cache_disk_misses",
    "schedule_cache_disk_stores",
    "schedule_cache_disk_evictions",
    "schedule_cache_disk_corrupt",
)


# --- the server ------------------------------------------------------------


class JobServer:
    """One warm pool serving a queue of jobs.

    Parameters
    ----------
    nranks:
        World size of the pool (and of every job).
    policy:
        Queue policy, ``fifo`` or ``priority``.
    cache_dir:
        Directory of the persistent schedule-cache tier (None disables
        the disk tier; the in-memory tier still works within each job).
    metrics_dir:
        When set, every job writes a ``repro-run-v1`` file
        ``job-<id>.json`` there, with serve provenance in ``meta``.
    tune_dir:
        Directory of the learned layout-plan store (``repro.tune``);
        tuner-aware job kinds persist winning layouts there and repeat
        jobs warm-start from them.  None disables the store.
    max_batch:
        Upper bound on how many identical-``batch_key`` jobs one queue
        pull may run back-to-back.
    """

    def __init__(
        self,
        nranks: int,
        policy: str = "fifo",
        cache_dir: Optional[str] = None,
        metrics_dir: Optional[str] = None,
        machine: MachineModel = NCUBE7,
        max_batch: int = 8,
        job_timeout: float = 120.0,
        tune_dir: Optional[str] = None,
    ):
        if max_batch < 1:
            raise KaliError(f"max_batch must be >= 1, got {max_batch}")
        self.nranks = nranks
        self.machine = machine
        self.cache_dir = cache_dir
        self.metrics_dir = metrics_dir
        self.tune_dir = tune_dir
        self.max_batch = max_batch
        self.pool = RankPool(nranks, timeout=job_timeout)
        self.queue = JobQueue(policy)
        self.records: List[Dict] = []
        self.failures = 0
        self._lock = threading.Lock()
        self._busy = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sock: Optional[socket.socket] = None
        self._started_at = time.monotonic()
        if metrics_dir:
            os.makedirs(metrics_dir, exist_ok=True)

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "JobServer":
        """Start the scheduler thread (the pool forks on first job)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._scheduler_loop, name="repro-serve-scheduler",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop scheduling and tear the pool down (idempotent).  Queued
        jobs that never ran resolve with an error."""
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(30.0)
            self._thread = None
        while True:
            batch = self.queue.next_batch(self.max_batch, timeout=0.0)
            if not batch:
                break
            for job in batch:
                job.future.set_exception(KaliError("server closed"))
        self.pool.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # --- submission ------------------------------------------------------

    def submit(self, kind: str, spec: Optional[Dict] = None,
               priority: int = 0) -> JobFuture:
        """Queue one job; the future resolves with its record dict."""
        if kind not in JOB_KINDS:
            raise KaliError(
                f"unknown job kind {kind!r} "
                f"(registered: {', '.join(sorted(JOB_KINDS))})"
            )
        spec = dict(spec or {})
        # Identical-spec jobs share shapes and indirection data, so they
        # may batch back-to-back on the warm mesh.
        batch_key = f"{kind}:{json.dumps(spec, sort_keys=True, default=str)}"
        job = Job(kind=kind, spec=spec, priority=priority,
                  batch_key=batch_key)
        return self.queue.submit(job)

    def drain(self, timeout: Optional[float] = None) -> int:
        """Block until every queued job has run; returns jobs completed.
        The queue stays open (``drain`` is a checkpoint, not shutdown)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                idle = not self._busy and self.queue.pending() == 0
            if idle:
                return len(self.records)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"drain: {self.queue.pending()} jobs still queued"
                )
            time.sleep(0.01)

    # --- scheduling ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.next_batch(self.max_batch, timeout=0.2)
            if not batch:
                if self.queue.closed:
                    return
                continue
            with self._lock:
                self._busy = True
            try:
                for i, job in enumerate(batch):
                    record = self._execute(job, batch_size=len(batch),
                                           batch_index=i)
                    job.future.set_result(record)
            finally:
                with self._lock:
                    self._busy = False

    def _execute(self, job: Job, batch_size: int, batch_index: int) -> Dict:
        runner = JOB_KINDS[job.kind]
        t0 = time.monotonic()
        record: Dict[str, Any] = {
            "id": job.job_id,
            "kind": job.kind,
            "spec": job.spec,
            "backend": "pool",
            "batch_size": batch_size,
            "batch_index": batch_index,
        }
        try:
            result, summary = runner(self, job.spec)
        except Exception as exc:
            record.update(
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                wall_s=time.monotonic() - t0,
                pool_reused=self.pool.last_pool_reused,
            )
            self.failures += 1
            with self._lock:
                self.records.append(record)
            return record
        record.update(
            ok=True,
            wall_s=time.monotonic() - t0,
            pool_reused=self.pool.last_pool_reused,
            summary=summary,
            inspector_runs=result.counter_sum("inspector_runs"),
        )
        for name in _DISK_COUNTERS:
            record[name.replace("schedule_cache_", "")] = (
                result.counter_sum(name)
            )
        # Data-plane accounting: payload bytes that crossed process
        # boundaries through the shm segments vs the control pipes.
        record["shm_bytes"] = result.counter_sum("shm_bytes_sent")
        record["pipe_bytes"] = result.counter_sum("pipe_bytes_sent")
        if self.metrics_dir:
            record["metrics_file"] = self._write_metrics(job, record, result)
        with self._lock:
            self.records.append(record)
        return record

    def _write_metrics(self, job: Job, record: Dict,
                       result: RunResult) -> str:
        """One ``repro-run-v1`` file per job, with serve provenance in
        meta and the serve scalars folded into the metrics registry."""
        meta = {
            "source": "repro.serve",
            "backend": "pool",
            "job_id": job.job_id,
            "kind": job.kind,
            "workload": _jsonable(job.spec),
            "pool_reused": record["pool_reused"],
            "batch_size": record["batch_size"],
        }
        path = os.path.join(self.metrics_dir, f"job-{job.job_id}.json")
        write_run_json(result, path, meta=meta)
        registry = MetricsRegistry.from_run(result, extra={
            "serve.pool_reused": int(record["pool_reused"]),
            "serve.wall_s": record["wall_s"],
            "serve.batch_size": record["batch_size"],
        })
        with open(os.path.join(self.metrics_dir,
                               f"job-{job.job_id}-metrics.json"), "w") as fh:
            fh.write(registry.to_json(indent=2))
        return path

    # --- introspection ---------------------------------------------------

    def stat(self) -> Dict[str, Any]:
        with self._lock:
            records = list(self.records)
            busy = self._busy
        done = [r for r in records if r.get("ok")]
        disk: Dict[str, Any] = {"dir": self.cache_dir}
        if self.cache_dir is not None:
            from repro.serve.diskcache import DiskScheduleCache

            store = DiskScheduleCache(self.cache_dir)
            disk.update(entries=len(store.entries()),
                        bytes=store.total_bytes())
            for name in _DISK_COUNTERS:
                short = name.replace("schedule_cache_", "")
                disk[short] = sum(r.get(short, 0) for r in done)
        tune: Dict[str, Any] = {"dir": self.tune_dir}
        if self.tune_dir is not None:
            from repro.tune.store import PlanStore

            tune["entries"] = len(PlanStore(self.tune_dir).entries())
        return {
            "nranks": self.nranks,
            "policy": self.queue.policy,
            "uptime_s": time.monotonic() - self._started_at,
            "busy": busy,
            "queued": self.queue.pending(),
            "queue_snapshot": self.queue.snapshot(),
            "jobs_done": len(done),
            "failures": self.failures,
            "pool": {
                "warm": self.pool.started,
                "jobs_done": self.pool.jobs_done,
                "rebuilds": self.pool.rebuilds,
                "meshes_built": self.pool.meshes_built,
                "shm_ship_bytes": self.pool.shm_ship_bytes,
                "shm_reclaimed_bytes": self.pool.shm_reclaimed_bytes,
            },
            "disk_cache": disk,
            "tune_store": tune,
        }

    # --- the unix-socket front -------------------------------------------

    def serve_forever(self, socket_path: str) -> None:
        """Accept JSON-lines clients on ``socket_path`` until a ``stop``
        request (or :meth:`close`).  Blocks; run the scheduler first via
        :meth:`start`."""
        self.start()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(socket_path)
        sock.listen(16)
        sock.settimeout(0.25)
        self._sock = sock
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                threading.Thread(
                    target=self._serve_client, args=(conn,), daemon=True,
                ).start()
        finally:
            sock.close()
            self._sock = None
            try:
                os.unlink(socket_path)
            except OSError:
                pass
            self.close()

    def _serve_client(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rw", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    response = self._handle(json.loads(line))
                except Exception as exc:
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                try:
                    fh.write(json.dumps(_jsonable(response)) + "\n")
                    fh.flush()
                except (BrokenPipeError, OSError):
                    return
                if response.get("stopping"):
                    return

    def _handle(self, req: Dict) -> Dict:
        cmd = req.get("cmd")
        if cmd == "ping":
            return {"ok": True, "pid": os.getpid(), "nranks": self.nranks}
        if cmd == "submit":
            future = self.submit(req["kind"], req.get("spec"),
                                 priority=int(req.get("priority", 0)))
            if not req.get("wait", True):
                return {"ok": True, "queued": True}
            record = future.result(timeout=req.get("timeout"))
            return {"ok": bool(record.get("ok")), "job": record}
        if cmd == "stat":
            return {"ok": True, "stat": self.stat()}
        if cmd == "drain":
            done = self.drain(timeout=req.get("timeout"))
            return {"ok": True, "jobs_done": done}
        if cmd == "stop":
            self._stop.set()  # accept loop exits and closes everything
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown command {cmd!r}"}


# --- the client ------------------------------------------------------------


class ServeClient:
    """Minimal JSON-lines client for the unix-socket front."""

    def __init__(self, socket_path: str, timeout: float = 300.0):
        self.socket_path = socket_path
        self.timeout = timeout

    def request(self, cmd: str, **fields) -> Dict:
        req = {"cmd": cmd, **fields}
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            with sock.makefile("rw", encoding="utf-8") as fh:
                fh.write(json.dumps(req) + "\n")
                fh.flush()
                line = fh.readline()
        if not line:
            raise KaliError("server closed the connection without replying")
        return json.loads(line)
