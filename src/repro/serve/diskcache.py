"""On-disk, content-addressed schedule cache (format ``repro-schedcache-v1``).

The in-memory :class:`~repro.runtime.cache.ScheduleCache` amortizes
inspector cost over repetitions of a forall *within one process* (paper
§3.2).  This module is the second tier: inspected schedules persist on
disk, keyed by **content**, so a restarted server — or a brand-new
process anywhere on the same machine — re-executes a known forall with
zero inspector cost.

Cache key
---------
A schedule is a deterministic function of everything the inspector read.
The key is the SHA-256 of a canonical encoding of exactly that:

* the format tag (``repro-schedcache-v1`` — bump to invalidate the world),
* the forall's label, index bounds, ``on`` clause, and per-read/write
  descriptors (affine coefficients, table/count names),
* ``rank`` and ``nranks`` (schedules are per-rank objects),
* the distribution spec, dtype, and global shape of every referenced
  array (``repr(ArrayDistribution)`` covers dims, parameters, and the
  processor grid),
* the **global content fingerprint of the communication-determining
  arrays** — the SHA-256 of the whole indirection table / count array,
  stamped onto every local piece at scatter time
  (``LocalArray.content_tag``).  Hashing content rather than version
  counters is what survives restarts: version stamps are process-local,
  array contents are not.  A version bump that changes the data changes
  the key (a miss — correct), and one that rewrites identical data
  re-hits (also correct: the schedule is still valid).  It must be the
  *global* content — schedules are collective, and per-rank local bytes
  would let ranks disagree about a hit and diverge,
* the translation kind (``ranges`` vs ``enumerated`` tables are different
  artifacts).

Failure semantics
-----------------
Loads are corruption-tolerant: a truncated, garbled, or wrong-format
entry counts as a miss, is deleted, and the caller re-inspects — the
cache can never poison a result, only fail to accelerate one.  Stores
are atomic (temp file + ``os.replace``), so concurrent rank processes
sharing one directory at worst both write the same bytes.  Eviction is
LRU by file mtime (hits ``utime`` their entry), size-capped by
``max_bytes``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.arrays.localview import LocalArray
from repro.core.forall import (
    AffineRead,
    Forall,
    IndirectRead,
    OnOwner,
    OnProcessor,
)
from repro.runtime.schedule import CommSchedule

SCHEDCACHE_FORMAT = "repro-schedcache-v1"

_ENTRY_SUFFIX = ".sched"


def _hash_update_str(h, s: str) -> None:
    b = s.encode()
    h.update(struct.pack("<q", len(b)))
    h.update(b)


def _static_digest(forall: Forall) -> "hashlib._Hash":
    """The forall-only prefix of the content key, memoized on the forall.

    Everything here is a pure function of the (immutable in practice)
    forall spec — label, bounds, on clause, read/write descriptors — so
    it is hashed once per forall object and ``copy()``-ed per lookup.
    The per-rank / per-data suffix is appended by the caller."""
    h = getattr(forall, "_schedcache_static", None)
    if h is None:
        h = hashlib.sha256()
        _hash_update_str(h, SCHEDCACHE_FORMAT)
        _hash_update_str(h, forall.label)
        h.update(struct.pack("<qq", *forall.index_range))
        _hash_update_str(h, _on_token(forall))
        for read in forall.reads:
            if isinstance(read, AffineRead):
                _hash_update_str(
                    h, f"affine({read.array},{read.fn.a},{read.fn.b})"
                )
            elif isinstance(read, IndirectRead):
                _hash_update_str(
                    h, f"indirect({read.array},{read.table},{read.count})"
                )
            else:  # pragma: no cover - future read kinds
                _hash_update_str(h, repr(read))
        for w in forall.writes:
            _hash_update_str(h, f"write({w.array})")
        try:
            forall._schedcache_static = h
        except AttributeError:  # pragma: no cover - slotted/frozen foralls
            pass
    return h.copy()


def _on_token(forall: Forall) -> str:
    on = forall.on
    if isinstance(on, OnOwner):
        return f"owner({on.array},{on.fn.a},{on.fn.b})"
    if isinstance(on, OnProcessor):
        # An arbitrary mapping function: identify it by its compiled body
        # so two structurally different mappings never collide.
        code = getattr(on.fn, "__code__", None)
        body = code.co_code.hex() if code is not None else repr(on.fn)
        return f"proc({body})"
    return repr(on)  # pragma: no cover - future on-clauses


def schedule_content_key(
    forall: Forall,
    env: Dict[str, LocalArray],
    translation: str = "ranges",
) -> Optional[str]:
    """The content-addressed key of ``forall``'s schedule on this rank.

    None when the forall references arrays not in scope (the runtime will
    fail with a better error than a cache ever could), or when any
    communication-determining array lacks a global ``content_tag`` (e.g.
    after a redistribute) — the key must be a pure function of data every
    rank agrees on, so no tag means no disk tier for this lookup.
    """
    names = sorted(set(
        forall.arrays_read() + forall.arrays_written()
        + ([forall.on.array] if isinstance(forall.on, OnOwner) else [])
    ))
    locals_ = []
    for name in names:
        local = env.get(name)
        if local is None:
            return None
        locals_.append((name, local))
    comm_deps = set(forall.comm_dependency_arrays())
    for name, local in locals_:
        if name in comm_deps and local.content_tag is None:
            return None

    h = _static_digest(forall)
    any_local = locals_[0][1]
    h.update(struct.pack("<qq", any_local.rank, any_local.dist.procs.size))
    _hash_update_str(h, translation)
    for name, local in locals_:
        _hash_update_str(h, f"array({name})")
        _hash_update_str(h, repr(local.dist))
        # repr() names the pattern but not every placement parameter — a
        # Custom owner map in particular.  Two custom layouts of the same
        # extent must never share a key (a redistributed array would hit
        # the old layout's schedule), so hash the layout params directly.
        for dim in local.dist.dims:
            for param in dim._layout_params():
                h.update(param if isinstance(param, bytes)
                         else str(param).encode())
        _hash_update_str(h, str(local.data.dtype))
        if name in comm_deps:
            # Global fingerprint, not local bytes: schedules are
            # collective, and every rank must reach the same hit/miss
            # verdict or the SPMD ranks diverge (deadlock).
            _hash_update_str(h, local.content_tag)
    return h.hexdigest()


class DiskScheduleCache:
    """One directory of content-addressed schedule entries.

    Many rank processes (and many servers) may share a directory; keys
    embed the rank id, so entries never collide across ranks.  All
    counters are since-construction totals; the in-memory cache drains
    them into engine ``Count`` events (see ``ScheduleCache.take_counts``).
    """

    #: loaded-schedule memo entries kept per instance (LRU)
    MEMO_CAP = 128

    def __init__(self, path, max_bytes: int = 256 * 1024 * 1024):
        self.dir = Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        # key -> ((mtime_ns, size), schedule): repeat hits skip the
        # unpickle but never trust stale bytes — the stamp is checked
        # against the file on every load, so an on-disk rewrite (another
        # process storing, a corruption) forces the real load path.
        self._memo: "OrderedDict[str, Tuple[Tuple[int, int], CommSchedule]]" = (
            OrderedDict()
        )

    # --- paths -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}{_ENTRY_SUFFIX}"

    @staticmethod
    def _stamp(path: Path) -> Optional[Tuple[int, int]]:
        try:
            st = path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _remember(self, key: str, path: Path, schedule: CommSchedule) -> None:
        stamp = self._stamp(path)
        if stamp is None:
            self._memo.pop(key, None)
            return
        self._memo[key] = (stamp, schedule)
        self._memo.move_to_end(key)
        while len(self._memo) > self.MEMO_CAP:
            self._memo.popitem(last=False)

    def entries(self):
        return sorted(self.dir.glob(f"*{_ENTRY_SUFFIX}"))

    def total_bytes(self) -> int:
        total = 0
        for p in self.entries():
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return total

    # --- load / store ----------------------------------------------------

    def load(self, key: str) -> Optional[CommSchedule]:
        """The schedule stored under ``key``, or None.  Anything
        unreadable — truncated write, garbage, foreign format — is
        deleted and counted as ``corrupt`` (plus a miss)."""
        path = self._path(key)
        memo = self._memo.get(key)
        if memo is not None:
            stamp, sched = memo
            if self._stamp(path) == stamp:
                self.hits += 1
                try:
                    os.utime(path)  # LRU touch
                except OSError:
                    pass
                self._remember(key, path, sched)  # re-stamp after utime
                return sched
            self._memo.pop(key, None)  # file changed under us: real load
        try:
            with open(path, "rb") as fh:
                doc = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.corrupt += 1
            self.misses += 1
            self._unlink(path)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("format") != SCHEDCACHE_FORMAT
            or doc.get("key") != key
            or not isinstance(doc.get("schedule"), CommSchedule)
        ):
            self.corrupt += 1
            self.misses += 1
            self._unlink(path)
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self._remember(key, path, doc["schedule"])
        return doc["schedule"]

    def store(self, key: str, schedule: CommSchedule) -> None:
        """Atomically persist ``schedule`` under ``key``, then evict
        oldest entries until the directory fits ``max_bytes``."""
        doc = {"format": SCHEDCACHE_FORMAT, "key": key, "schedule": schedule}
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=self.dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(doc, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            self._unlink(Path(tmp))
            raise
        self.stores += 1
        self._remember(key, self._path(key), schedule)
        self._evict_to_cap()

    def _evict_to_cap(self) -> None:
        total = self.total_bytes()
        if total <= self.max_bytes:
            return
        aged = []
        for p in self.entries():
            try:
                st = p.stat()
            except OSError:
                continue
            aged.append((st.st_mtime, st.st_size, p))
        aged.sort()
        for _mtime, size, p in aged:
            if total <= self.max_bytes:
                break
            if self._unlink(p):
                total -= size
                self.evictions += 1

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # --- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": len(self.entries()),
            "bytes": self.total_bytes(),
        }

    def __repr__(self) -> str:
        return (f"DiskScheduleCache({str(self.dir)!r}, "
                f"entries={len(self.entries())}, hits={self.hits}, "
                f"misses={self.misses})")


_SHARED: Dict[Tuple[str, int, int], DiskScheduleCache] = {}


def shared_disk_cache(path, rank: int,
                      max_bytes: int = 256 * 1024 * 1024) -> DiskScheduleCache:
    """The process-wide :class:`DiskScheduleCache` for ``(path, rank)``.

    A warm pool worker builds a fresh ``KaliRank`` per job; reusing one
    store keeps the loaded-schedule memo warm across jobs, so a repeat
    hit costs two ``stat`` calls instead of an unpickle.  Keyed per rank
    because the sim backend runs every rank in one process and each
    rank's ``ScheduleCache`` drains counter *deltas* — sharing one
    instance across ranks would bleed one rank's hits into another's
    counters and break sim/mp differential exactness.  Callers that need
    an unshared view (tests, ``stat`` reporting) construct
    :class:`DiskScheduleCache` directly."""
    cache_key = (os.path.abspath(str(path)), int(rank), int(max_bytes))
    inst = _SHARED.get(cache_key)
    if inst is None:
        inst = _SHARED[cache_key] = DiskScheduleCache(path,
                                                      max_bytes=max_bytes)
    return inst
