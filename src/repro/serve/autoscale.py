"""Autoscaler: grow and shrink the shard fleet on sustained queue depth.

The serving cost model is simple: a shard is a warm mesh of ``nranks``
processes, so shards cost memory and cores whether or not they run jobs,
while queue depth costs latency.  The autoscaler trades one for the
other with deliberate sluggishness — every decision is *hysteretic*:

* **scale up** when the average queued-jobs-per-shard stays at or above
  ``high_depth`` for ``up_after`` consecutive seconds;
* **scale down** when it stays at or below ``low_depth`` for
  ``down_after`` seconds (down_after >> up_after by default: adding a
  shard is cheap and helps immediately, retiring one throws away a warm
  mesh and hot caches);
* ``cooldown`` seconds must pass between *any* two membership changes,
  so one burst cannot staircase the fleet to ``max_shards`` and back;
* the watermarks must be separated (``high_depth > low_depth``) so the
  fleet cannot oscillate when depth sits between them — that band is
  the "leave it alone" region.

Scale-down retires the youngest shard via
:meth:`~repro.serve.server.JobServer.retire_shard`, which re-routes the
router away, replays the retiree's backlog onto survivors, and only then
tears the pool down — retirement never loses an accepted job (the chaos
suite leans on the same replay path).

Every decision is recorded in a bounded event log surfaced through
``stat()["autoscale"]`` so a soak run can be audited after the fact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import KaliError


class HysteresisLatch:
    """Two-watermark comparator with sustain clocks.

    The shared hysteresis primitive of the fleet: the autoscaler drives
    one with wall time, the autopilot's drift detector drives one per
    signal with a job-sample clock.  :meth:`observe` notes which side of
    the band ``value`` sits on at time ``now`` (the band between the
    watermarks clears both sides — "leave it alone"); ``high_held`` /
    ``low_held`` answer whether a side has been held for a dwell.  The
    clock is whatever the caller passes — seconds, samples — which is
    what makes the latch testable without sleeping.
    """

    __slots__ = ("high", "low", "high_since", "low_since")

    def __init__(self, high: float, low: float):
        if high <= low:
            raise KaliError(
                f"high watermark ({high}) must exceed low ({low}) — "
                f"the gap is the hysteresis band")
        self.high = high
        self.low = low
        self.high_since: Optional[float] = None
        self.low_since: Optional[float] = None

    def observe(self, value: float, now: float) -> None:
        if value >= self.high:
            if self.high_since is None:
                self.high_since = now
            self.low_since = None
        elif value <= self.low:
            if self.low_since is None:
                self.low_since = now
            self.high_since = None
        else:
            self.high_since = None
            self.low_since = None

    def high_held(self, now: float, dwell: float) -> bool:
        return self.high_since is not None and now - self.high_since >= dwell

    def low_held(self, now: float, dwell: float) -> bool:
        return self.low_since is not None and now - self.low_since >= dwell

    def clear_high(self) -> None:
        self.high_since = None

    def clear_low(self) -> None:
        self.low_since = None


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks and timing for fleet scaling (see module docstring)."""

    min_shards: int = 1
    max_shards: int = 4
    high_depth: float = 8.0   # avg queued per shard that demands growth
    low_depth: float = 1.0    # avg queued per shard that tolerates shrink
    up_after: float = 0.5     # seconds the high watermark must hold
    down_after: float = 3.0   # seconds the low watermark must hold
    cooldown: float = 1.0     # min seconds between membership changes
    interval: float = 0.1     # sampling period

    def __post_init__(self):
        if self.min_shards < 1:
            raise KaliError(
                f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise KaliError(
                f"max_shards ({self.max_shards}) < min_shards "
                f"({self.min_shards})")
        if self.high_depth <= self.low_depth:
            raise KaliError(
                f"high_depth ({self.high_depth}) must exceed low_depth "
                f"({self.low_depth}) — the gap is the hysteresis band")
        for name in ("up_after", "down_after", "cooldown", "interval"):
            if getattr(self, name) < 0:
                raise KaliError(f"{name} must be >= 0")


class Autoscaler:
    """Samples fleet depth on a daemon thread and applies the policy."""

    MAX_EVENTS = 32

    def __init__(self, server, policy: AutoscalePolicy):
        self.server = server
        self.policy = policy
        self.events: List[Dict[str, Any]] = []
        self.decisions = 0
        self._latch = HysteresisLatch(policy.high_depth, policy.low_depth)
        self._last_change = float("-inf")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "Autoscaler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-serve-autoscaler",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    # --- the control loop ------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.policy.interval):
            try:
                self.step()
            except KaliError:
                # A race with manual scale/retire (e.g. the fleet is at
                # one shard by the time retire fires) is not fatal; the
                # next sample re-evaluates from current membership.
                continue

    def step(self, now: Optional[float] = None) -> Optional[str]:
        """One sampling/decision step; returns ``"up"``/``"down"`` when
        it changed the fleet, else None.  Separated from the thread loop
        so tests can drive the policy deterministically with a fake
        clock."""
        now = time.monotonic() if now is None else now
        server = self.server
        shards = list(server.shards)
        nshards = len(shards)
        depth = sum(s.queue.pending() for s in shards)
        avg = depth / max(nshards, 1)
        pol = self.policy

        self._latch.observe(avg, now)

        if now - self._last_change < pol.cooldown:
            return None

        if (self._latch.high_held(now, pol.up_after)
                and nshards < pol.max_shards):
            shard = server.add_shard()
            self._record(now, "up", nshards + 1, avg, shard.name)
            self._latch.clear_high()
            self._last_change = now
            return "up"

        if (self._latch.low_held(now, pol.down_after)
                and nshards > pol.min_shards
                and not any(s.busy for s in shards)):
            name = server.retire_shard()
            self._record(now, "down", nshards - 1, avg, name)
            self._latch.clear_low()
            self._last_change = now
            return "down"
        return None

    def _record(self, now: float, action: str, nshards: int,
                avg_depth: float, shard: str) -> None:
        with self._lock:
            self.decisions += 1
            self.events.append({
                "t": now,
                "action": action,
                "shards": nshards,
                "avg_depth": round(avg_depth, 3),
                "shard": shard,
            })
            del self.events[:-self.MAX_EVENTS]

    # --- introspection ---------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "min_shards": self.policy.min_shards,
                "max_shards": self.policy.max_shards,
                "high_depth": self.policy.high_depth,
                "low_depth": self.policy.low_depth,
                "decisions": self.decisions,
                "events": list(self.events),
            }
