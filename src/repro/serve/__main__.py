"""``python -m repro.serve`` — job-server CLI over the unix socket.

::

    python -m repro.serve start  --nranks 4 --socket /tmp/repro.sock \\
                                 --cache-dir /tmp/schedcache
    python -m repro.serve submit --socket /tmp/repro.sock --kind jacobi \\
                                 --spec '{"rows": 16, "sweeps": 10}'
    python -m repro.serve stat   --socket /tmp/repro.sock
    python -m repro.serve drain  --socket /tmp/repro.sock
    python -m repro.serve stop   --socket /tmp/repro.sock

``start`` runs in the foreground (background it with ``&`` or a service
manager).  Every other command is a thin JSON-lines client; ``--json``
prints raw responses for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_socket(p: argparse.ArgumentParser) -> None:
    p.add_argument("--socket", required=True,
                   help="unix socket path of the server")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="warm rank-pool job server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run a server in the foreground")
    _add_socket(p)
    p.add_argument("--nranks", type=int, default=4)
    p.add_argument("--policy", choices=("fifo", "priority"), default="fifo")
    p.add_argument("--cache-dir", default=None,
                   help="directory of the persistent schedule cache")
    p.add_argument("--metrics-dir", default=None,
                   help="write one repro-run-v1 file per job here")
    p.add_argument("--tune-dir", default=None,
                   help="directory of the learned layout-plan store "
                        "(repro.tune warm starts)")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--job-timeout", type=float, default=120.0)

    p = sub.add_parser("submit", help="submit one job")
    _add_socket(p)
    p.add_argument("--kind", required=True,
                   help="job kind (jacobi, cg, kali, ...)")
    p.add_argument("--spec", default="{}",
                   help="job parameters as a JSON object")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and return instead of waiting")
    p.add_argument("--json", action="store_true", dest="as_json")

    for name, help_ in (("stat", "show server/queue/cache state"),
                        ("drain", "wait for every queued job"),
                        ("stop", "shut the server down"),
                        ("ping", "check the server is answering")):
        p = sub.add_parser(name, help=help_)
        _add_socket(p)
        p.add_argument("--json", action="store_true", dest="as_json")

    return parser


def _cmd_start(args) -> int:
    from repro.serve.server import JobServer

    server = JobServer(
        nranks=args.nranks,
        policy=args.policy,
        cache_dir=args.cache_dir,
        metrics_dir=args.metrics_dir,
        max_batch=args.max_batch,
        job_timeout=args.job_timeout,
        tune_dir=args.tune_dir,
    )
    print(f"repro.serve: {args.nranks} ranks, policy={args.policy}, "
          f"cache={args.cache_dir or '(memory only)'}, "
          f"socket={args.socket}", flush=True)
    try:
        server.serve_forever(args.socket)
    except KeyboardInterrupt:
        server.close()
    return 0


def _print_record(record: dict) -> None:
    state = "ok" if record.get("ok") else f"FAILED: {record.get('error')}"
    print(f"job {record['id']} [{record['kind']}] {state}  "
          f"wall={record.get('wall_s', 0):.3f}s "
          f"pool_reused={record.get('pool_reused')} "
          f"disk_hits={record.get('disk_hits', 0)} "
          f"inspector_runs={record.get('inspector_runs', 0)}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)

    from repro.serve.server import ServeClient

    client = ServeClient(args.socket)
    if args.command == "submit":
        response = client.request(
            "submit", kind=args.kind, spec=json.loads(args.spec),
            priority=args.priority, wait=not args.no_wait,
        )
    else:
        response = client.request(args.command)

    if getattr(args, "as_json", False):
        print(json.dumps(response, indent=2))
    elif args.command == "submit" and "job" in response:
        _print_record(response["job"])
    elif args.command == "stat" and response.get("ok"):
        stat = response["stat"]
        pool, disk = stat["pool"], stat["disk_cache"]
        print(f"nranks={stat['nranks']} policy={stat['policy']} "
              f"queued={stat['queued']} done={stat['jobs_done']} "
              f"failures={stat['failures']}")
        print(f"pool: warm={pool['warm']} jobs={pool['jobs_done']} "
              f"rebuilds={pool['rebuilds']} meshes={pool['meshes_built']} "
              f"shm_ship_bytes={pool.get('shm_ship_bytes', 0)} "
              f"shm_reclaimed_bytes={pool.get('shm_reclaimed_bytes', 0)}")
        print(f"disk: dir={disk.get('dir')} entries={disk.get('entries', 0)} "
              f"bytes={disk.get('bytes', 0)} hits={disk.get('disk_hits', 0)} "
              f"stores={disk.get('disk_stores', 0)}")
        tune = stat.get("tune_store", {})
        print(f"tune: dir={tune.get('dir')} "
              f"plans={tune.get('entries', 0)}")
    else:
        print(json.dumps(response))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main())
