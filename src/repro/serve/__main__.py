"""``python -m repro.serve`` — sharded job-server CLI over the unix socket.

::

    python -m repro.serve start  --nranks 4 --shards 2 \\
                                 --socket /tmp/repro.sock \\
                                 --cache-dir /tmp/schedcache
    python -m repro.serve submit --socket /tmp/repro.sock --kind jacobi \\
                                 --spec '{"rows": 16, "sweeps": 10}' \\
                                 --tenant alice
    python -m repro.serve stat   --socket /tmp/repro.sock
    python -m repro.serve scale  --socket /tmp/repro.sock --shards 4
    python -m repro.serve drain  --socket /tmp/repro.sock
    python -m repro.serve stop   --socket /tmp/repro.sock

``start`` runs in the foreground (background it with ``&`` or a service
manager) behind the asyncio front end; ``--threaded-front`` selects the
legacy one-thread-per-connection front.  Every other command is a thin
JSON-lines client; ``--json`` prints raw responses for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_socket(p: argparse.ArgumentParser) -> None:
    p.add_argument("--socket", required=True,
                   help="unix socket path of the server")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="sharded warm rank-pool job server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run a server in the foreground")
    _add_socket(p)
    p.add_argument("--nranks", type=int, default=4)
    p.add_argument("--shards", type=int, default=1,
                   help="rank-pool shards behind the router")
    p.add_argument("--policy", choices=("fifo", "priority"), default="fifo")
    p.add_argument("--cache-dir", default=None,
                   help="root of the persistent schedule cache "
                        "(each shard keeps a subdirectory)")
    p.add_argument("--metrics-dir", default=None,
                   help="write one repro-run-v1 file per job here")
    p.add_argument("--tune-dir", default=None,
                   help="directory of the learned layout-plan store "
                        "(repro.tune warm starts, shared by the fleet)")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--job-timeout", type=float, default=120.0)
    p.add_argument("--retry-budget", type=int, default=2,
                   help="re-dispatches allowed per job after pool crashes")
    p.add_argument("--max-pending", type=int, default=None,
                   help="fleet-wide queued-job bound (shed past it)")
    p.add_argument("--shard-depth", type=int, default=None,
                   help="per-shard queue-depth bound (shed past it)")
    p.add_argument("--tenant-weight", action="append", default=[],
                   metavar="TENANT=W",
                   help="fair-queueing weight for a tenant (repeatable)")
    p.add_argument("--tenant-quota", action="append", default=[],
                   metavar="TENANT=N",
                   help="max queued jobs for a tenant (repeatable)")
    p.add_argument("--autoscale", action="store_true",
                   help="grow/shrink the fleet on sustained queue depth")
    p.add_argument("--max-shards", type=int, default=4,
                   help="autoscaler ceiling (with --autoscale)")
    p.add_argument("--autopilot", action="store_true",
                   help="run the online tuning daemon (drift detection, "
                        "shadow re-planning, A/B plan promotion; needs "
                        "--tune-dir)")
    p.add_argument("--threaded-front", action="store_true",
                   help="serve with the legacy thread-per-connection "
                        "front instead of the asyncio front end")

    p = sub.add_parser("submit", help="submit one job")
    _add_socket(p)
    p.add_argument("--kind", required=True,
                   help="job kind (jacobi, cg, kali, ...)")
    p.add_argument("--spec", default="{}",
                   help="job parameters as a JSON object")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--tenant", default="default",
                   help="fair-queueing lane / quota bucket for the job")
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and return instead of waiting")
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser("scale", help="set the shard count")
    _add_socket(p)
    p.add_argument("--shards", type=int, required=True)
    p.add_argument("--json", action="store_true", dest="as_json")

    for name, help_ in (("stat", "show server/queue/cache state"),
                        ("metrics", "dump the serve./shard. registry"),
                        ("drain", "wait for every queued job"),
                        ("stop", "shut the server down"),
                        ("ping", "check the server is answering")):
        p = sub.add_parser(name, help=help_)
        _add_socket(p)
        p.add_argument("--json", action="store_true", dest="as_json")

    return parser


def _parse_kv(pairs, cast, what):
    out = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"bad {what} {pair!r} (expected TENANT=VALUE)")
        out[name] = cast(value)
    return out


def _cmd_start(args) -> int:
    from repro.serve.server import JobServer

    tenants = {}
    for t, w in _parse_kv(args.tenant_weight, float, "--tenant-weight").items():
        tenants.setdefault(t, {})["weight"] = w
    for t, q in _parse_kv(args.tenant_quota, int, "--tenant-quota").items():
        tenants.setdefault(t, {})["quota"] = q

    autoscale = None
    if args.autoscale:
        from repro.serve.autoscale import AutoscalePolicy

        autoscale = AutoscalePolicy(min_shards=args.shards,
                                    max_shards=args.max_shards)

    server = JobServer(
        nranks=args.nranks,
        policy=args.policy,
        cache_dir=args.cache_dir,
        metrics_dir=args.metrics_dir,
        max_batch=args.max_batch,
        job_timeout=args.job_timeout,
        tune_dir=args.tune_dir,
        shards=args.shards,
        retry_budget=args.retry_budget,
        tenants=tenants or None,
        max_pending=args.max_pending,
        shard_depth=args.shard_depth,
        autoscale=autoscale,
        autopilot=args.autopilot,
    )
    front = "threaded" if args.threaded_front else "async"
    print(f"repro.serve: {args.nranks} ranks x {args.shards} shards, "
          f"policy={args.policy}, front={front}, "
          f"cache={args.cache_dir or '(memory only)'}, "
          f"socket={args.socket}", flush=True)
    try:
        if args.threaded_front:
            server.serve_forever(args.socket)
        else:
            from repro.serve.frontend import serve_async

            serve_async(server, args.socket)
    except KeyboardInterrupt:
        server.close()
    return 0


def _print_record(record: dict) -> None:
    state = "ok" if record.get("ok") else f"FAILED: {record.get('error')}"
    print(f"job {record['id']} [{record['kind']}] {state}  "
          f"wall={record.get('wall_s', 0):.3f}s "
          f"shard={record.get('shard')} "
          f"pool_reused={record.get('pool_reused')} "
          f"disk_hits={record.get('disk_hits', 0)} "
          f"inspector_runs={record.get('inspector_runs', 0)}")


def _print_stat(stat: dict) -> None:
    pool, disk = stat["pool"], stat["disk_cache"]
    print(f"nranks={stat['nranks']} policy={stat['policy']} "
          f"shards={len(stat.get('shards', []))} "
          f"queued={stat['queued']} done={stat['jobs_done']} "
          f"failures={stat['failures']} sheds={stat.get('sheds', 0)} "
          f"retries={stat.get('retries', 0)}")
    print(f"pool: warm={pool['warm']} jobs={pool['jobs_done']} "
          f"rebuilds={pool['rebuilds']} meshes={pool['meshes_built']} "
          f"shm_ship_bytes={pool.get('shm_ship_bytes', 0)} "
          f"shm_reclaimed_bytes={pool.get('shm_reclaimed_bytes', 0)}")
    for entry in stat.get("shards", []):
        print(f"  {entry['name']}: warm={entry['warm']} "
              f"queued={entry['queued']} done={entry['jobs_done']} "
              f"retries={entry['retries']} replays_in={entry['replays_in']} "
              f"disk_entries={entry['disk_entries']}")
    print(f"disk: dir={disk.get('dir')} entries={disk.get('entries', 0)} "
          f"bytes={disk.get('bytes', 0)} hits={disk.get('disk_hits', 0)} "
          f"stores={disk.get('disk_stores', 0)}")
    tune = stat.get("tune_store", {})
    print(f"tune: dir={tune.get('dir')} "
          f"plans={tune.get('entries', 0)}")
    if "autoscale" in stat:
        a = stat["autoscale"]
        print(f"autoscale: decisions={a['decisions']} "
              f"band=[{a['low_depth']}, {a['high_depth']}] "
              f"shards<=[{a['min_shards']}, {a['max_shards']}]")
    if "autopilot" in stat:
        ap = stat["autopilot"]
        print(f"autopilot: families={ap['families']} "
              f"drift={ap['drift_events']} shadow={ap['shadow_runs']} "
              f"ab_jobs={ap['ab_jobs']} promoted={ap['promoted']} "
              f"rejected={ap['rejected']} rolled_back={ap['rolled_back']}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)

    from repro.serve.server import ServeClient

    client = ServeClient(args.socket)
    if args.command == "submit":
        response = client.request(
            "submit", kind=args.kind, spec=json.loads(args.spec),
            priority=args.priority, tenant=args.tenant,
            wait=not args.no_wait,
        )
    elif args.command == "scale":
        response = client.request("scale", shards=args.shards)
    else:
        response = client.request(args.command)

    if getattr(args, "as_json", False):
        print(json.dumps(response, indent=2))
    elif args.command == "submit" and "job" in response:
        _print_record(response["job"])
    elif args.command == "submit" and response.get("shed"):
        print(f"SHED [{response.get('reason')}] tenant={response.get('tenant')} "
              f"depth={response.get('depth')} limit={response.get('limit')} "
              f"shard={response.get('shard')}")
    elif args.command == "stat" and response.get("ok"):
        _print_stat(response["stat"])
    else:
        print(json.dumps(response))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main())
