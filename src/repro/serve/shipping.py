"""Shipping rank programs to already-forked pool workers.

The fork-per-run backend never serializes the rank program: children
inherit it through ``fork()``.  A warm pool breaks that trick — workers
fork *once*, and every later job must cross a pipe.  Plain :mod:`pickle`
refuses closures and lambdas (it pickles functions by reference), and the
rank programs the runtime builds are exactly that: nested generator
functions capturing array data, Forall objects whose kernels may be
lambdas, and app state.

:func:`dumps`/:func:`loads` extend pickle with a by-value fallback for
functions that cannot be found by import path:

* the code object travels via :mod:`marshal` (safe here: the pool worker
  is forked from the very interpreter that produced it),
* closure cells are unwrapped and their contents recursively shipped
  through the same pickler (so a closure may capture another closure),
* globals are **re-bound by module name** on the receiving side.  The
  worker was forked from the submitting process, so any module imported
  before the pool started is present; a program defined in a module
  imported *after* the fork raises a clear error instead of a silent
  NameError at call time.

Importable functions (``module.qualname`` resolves back to the same
object) still pickle by reference — cheap, and robust to code that was
already importable.  This is deliberately a minimal, same-interpreter
shipping layer, not a general cloudpickle: it never crosses interpreter
versions (marshal would break) and it does not ship module source.
"""

from __future__ import annotations

import io
import marshal
import pickle
import sys
import types
from typing import Any, Optional, Tuple

from repro.errors import KaliError


class ShippingError(KaliError):
    """A program could not be shipped to (or rebuilt on) a pool worker."""


#: sentinel for closure cells that are still empty (e.g. a not-yet-bound
#: recursive inner function); rebuilt as empty cells on the far side
_EMPTY_CELL = "__repro_empty_cell__"


def _lookup_importable(module: Optional[str], qualname: Optional[str]):
    """The object ``module.qualname`` resolves to, or None."""
    if not module or not qualname or "<locals>" in qualname:
        return None
    mod = sys.modules.get(module)
    if mod is None:
        return None
    obj = mod
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return obj


def _make_skeleton(
    code_bytes: bytes,
    module: str,
    qualname: str,
    ncells: int,
):
    """Rebuild a shipped function with *empty* cells.  The skeleton exists
    (and is memoized by the unpickler) before any cell contents unpickle,
    so self-referential closures — a recursive inner function whose cell
    holds the function itself — resolve to the skeleton instead of
    recursing forever.  :func:`_fill_function` populates it afterwards."""
    try:
        code = marshal.loads(code_bytes)
    except (ValueError, EOFError, TypeError) as exc:  # pragma: no cover
        raise ShippingError(
            f"cannot rebuild shipped function {module}.{qualname}: {exc}"
        ) from exc
    mod = sys.modules.get(module)
    if mod is None:
        raise ShippingError(
            f"shipped function {qualname} needs module {module!r}, which is "
            "not imported in the pool worker — create the pool after "
            "importing the module that defines the program, or restart it"
        )
    closure = tuple(types.CellType() for _ in range(ncells))
    fn = types.FunctionType(code, mod.__dict__, code.co_name, None, closure)
    fn.__qualname__ = qualname
    return fn


def _fill_function(fn, state):
    """State setter applied after the skeleton is memoized."""
    cell_values, defaults, kwdefaults, fn_dict = state
    for cell, value in zip(fn.__closure__ or (), cell_values):
        if not (isinstance(value, str) and value == _EMPTY_CELL):
            cell.cell_contents = value
    fn.__defaults__ = defaults
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    if fn_dict:
        fn.__dict__.update(fn_dict)
    return fn


class _ShippingPickler(pickle.Pickler):
    """Pickler that falls back to by-value shipping for local functions."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if _lookup_importable(obj.__module__, obj.__qualname__) is obj:
                return NotImplemented  # plain by-reference pickling
            cells = []
            for cell in obj.__closure__ or ():
                try:
                    cells.append(cell.cell_contents)
                except ValueError:
                    cells.append(_EMPTY_CELL)
            ncells = len(obj.__closure__ or ())
            return (
                _make_skeleton,
                (
                    marshal.dumps(obj.__code__),
                    obj.__module__ or "builtins",
                    obj.__qualname__,
                    ncells,
                ),
                (
                    tuple(cells),
                    obj.__defaults__,
                    obj.__kwdefaults__,
                    dict(obj.__dict__) or None,
                ),
                None,
                None,
                _fill_function,
            )
        return NotImplemented


def dumps(obj: Any) -> bytes:
    """Serialize ``obj`` (closures and lambdas included) for a pool worker."""
    buf = io.BytesIO()
    try:
        _ShippingPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except (pickle.PicklingError, TypeError, ValueError, AttributeError) as exc:
        raise ShippingError(
            f"cannot ship object to pool worker: {exc!r} — pool jobs must "
            "close over picklable state (no open files, sockets, or pools)"
        ) from exc
    return buf.getvalue()


def loads(data: bytes) -> Any:
    return pickle.loads(data)


def dumps_via(obj: Any, plane, consumers) -> Tuple[Any, int]:
    """Serialize ``obj`` and, when a shm data plane is available and the
    payload clears its threshold, publish the bytes **once** as a shared
    block every consumer reads — the job message then carries only the
    :class:`~repro.machine.shm.ShmRef`.  This is how shipped schedules
    (rank programs closing over scattered operands) cross the control
    pipes without ``nranks`` pickled copies.

    Returns ``(payload_or_ref, shm_bytes)`` where ``shm_bytes`` is the
    serialized size if it went via shm, else 0."""
    payload = dumps(obj)
    if plane is not None and len(payload) >= plane.threshold:
        ref = plane.publish_bytes(payload, consumers)
        if ref is not None:
            return ref, len(payload)
    return payload, 0


def loads_via(payload: Any, plane) -> Any:
    """Inverse of :func:`dumps_via` on the worker side: resolve a shm ref
    (one copy out of the shared block) or unpickle inline bytes."""
    if not isinstance(payload, (bytes, bytearray)):
        if plane is None:
            raise ShippingError(
                "job payload is a shm ref but this worker has no data plane"
            )
        payload = plane.read(payload)
    return loads(payload)
