"""Job queue for the serve tier: FIFO / priority scheduling plus futures.

The queue is deliberately dumb about *what* a job is — a :class:`Job`
carries an opaque ``spec`` and a ``batch_key``; the server decides how to
execute it.  What the queue owns is ordering (FIFO by submission, or
highest ``priority`` first with FIFO tie-break), blocking handoff to the
scheduler thread, and the shape-affinity batching rule: when the head job
has a non-None ``batch_key``, :meth:`next_batch` may hand over up to
``max_batch`` *consecutive-in-order* jobs with the same key, so the
server runs them back-to-back on the warm mesh while every schedule is
hot in cache.  Batching never reorders: a job with a different key (or no
key) ends the batch.

:class:`JobFuture` is the submission handle — ``result(timeout)`` blocks
until the server resolves it, re-raising the job's failure if it had one.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import KaliError


class QueueClosed(KaliError):
    """Raised by submit/pop once the queue has been closed."""


class JobFuture:
    """Write-once result slot shared between submitter and scheduler."""

    def __init__(self):
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._done.is_set()

    def set_result(self, value: Any) -> None:
        self._result = value
        self._done.set()

    def set_exception(self, exc: BaseException) -> None:
        self._error = exc
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("job did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result


@dataclass
class Job:
    """One unit of serve work.

    ``kind`` names a registered job family (``jacobi``, ``cg``, ...);
    ``spec`` is its parameters.  ``batch_key`` marks jobs the server may
    run back-to-back as one batch — by convention the kind plus every
    shape-determining parameter, so batched jobs share schedules.
    """

    kind: str
    spec: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    batch_key: Optional[str] = None
    job_id: int = 0
    future: JobFuture = field(default_factory=JobFuture)

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "kind": self.kind,
            "priority": self.priority,
            "batch_key": self.batch_key,
            "spec": self.spec,
        }


class JobQueue:
    """Thread-safe job queue with ``fifo`` or ``priority`` policy."""

    def __init__(self, policy: str = "fifo"):
        if policy not in ("fifo", "priority"):
            raise KaliError(
                f"unknown queue policy {policy!r} "
                "(expected 'fifo' or 'priority')"
            )
        self.policy = policy
        self._heap: List = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = itertools.count(1)
        self._closed = False
        self.submitted = 0

    def _sort_key(self, job: Job) -> int:
        # FIFO ignores priority entirely; priority mode schedules the
        # highest number first (heapq is a min-heap, hence the negation).
        return -job.priority if self.policy == "priority" else 0

    def submit(self, job: Job) -> JobFuture:
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed to new submissions")
            job.job_id = next(self._seq)
            heapq.heappush(self._heap, (self._sort_key(job), job.job_id, job))
            self.submitted += 1
            self._not_empty.notify()
        return job.future

    def next_batch(self, max_batch: int = 1,
                   timeout: Optional[float] = None) -> List[Job]:
        """Block for the next job; return it plus up to ``max_batch - 1``
        same-``batch_key`` successors.  Empty list on timeout, or when the
        queue was closed and drained."""
        with self._lock:
            deadline = None
            while not self._heap:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout):
                    return []
                deadline = 0  # woke once; don't re-wait the full timeout
                timeout = deadline
            batch = [heapq.heappop(self._heap)[2]]
            key = batch[0].batch_key
            while (
                key is not None
                and len(batch) < max_batch
                and self._heap
                and self._heap[0][2].batch_key == key
            ):
                batch.append(heapq.heappop(self._heap)[2])
            return batch

    def pending(self) -> int:
        with self._lock:
            return len(self._heap)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Queued jobs in scheduling order (for ``stat``)."""
        with self._lock:
            return [job.describe() for _, _, job in sorted(self._heap)]

    def close(self) -> None:
        """Refuse new submissions and wake any blocked consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
