"""Job queue for the serve tier: tenant-fair scheduling, quotas, futures.

The queue is deliberately dumb about *what* a job is — a :class:`Job`
carries an opaque ``spec`` and a ``batch_key``; the server decides how to
execute it.  What the queue owns is:

* **ordering** — FIFO by submission, or highest ``priority`` first with
  FIFO tie-break, *within each tenant's lane*;
* **tenant fairness** — each tenant submits into its own lane and lanes
  are served weighted-fair: the next batch comes from the active lane
  with the least normalized service (jobs served divided by the tenant's
  weight), so a weight-3 tenant gets three slots for every one a
  weight-1 tenant gets, and no tenant can starve another by flooding.
  A lane that was idle re-enters at the current service floor rather
  than bursting through its backlog;
* **admission control** — ``max_depth`` bounds total queued jobs and
  per-tenant quotas bound each lane; a submission over either limit is
  *shed*: :meth:`submit` raises :class:`ShedError` carrying a structured
  description (reason, tenant, depth, limit) that the socket front
  returns verbatim as a ``SHED`` reply.  Shedding is accounted
  (``sheds``, ``sheds_by_tenant``) but never silently drops an
  *accepted* job — rejection happens at the door or not at all;
* **blocking handoff** to the scheduler thread, and the shape-affinity
  batching rule: when the head job has a non-None ``batch_key``,
  :meth:`next_batch` may hand over up to ``max_batch``
  *consecutive-in-order* jobs from the same lane with the same key, so
  the server runs them back-to-back on the warm mesh while every
  schedule is hot in cache.  Batching never reorders: a job with a
  different key (or no key) ends the batch.

:class:`JobFuture` is the submission handle — ``result(timeout)`` blocks
until the server resolves it, re-raising the job's failure if it had
one; ``add_done_callback`` is the bridge the asyncio front end uses to
await thread-resolved futures without burning a thread per connection.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import KaliError

DEFAULT_TENANT = "default"


class QueueClosed(KaliError):
    """Raised by submit/pop once the queue has been closed."""


class ShedError(KaliError):
    """An admission-control rejection (load shed), with structure.

    ``details`` is the JSON-able payload of the ``SHED`` reply: at least
    ``reason`` (``"queue-depth"`` or ``"tenant-quota"``), ``tenant``,
    ``depth`` and ``limit``; the server adds ``shard`` before replying.
    """

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.details: Dict[str, Any] = dict(details)


class JobFuture:
    """Write-once result slot shared between submitter and scheduler."""

    def __init__(self):
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["JobFuture"], None]] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._done.is_set()

    def _finish(self) -> None:
        with self._lock:
            callbacks, self._callbacks = self._callbacks, []
            self._done.set()
        for cb in callbacks:
            cb(self)

    def set_result(self, value: Any) -> None:
        self._result = value
        self._finish()

    def set_exception(self, exc: BaseException) -> None:
        self._error = exc
        self._finish()

    def add_done_callback(self, fn: Callable[["JobFuture"], None]) -> None:
        """Run ``fn(self)`` when the future resolves (immediately if it
        already has).  Callbacks run on the resolving thread — keep them
        cheap and exception-free (the asyncio bridge just schedules a
        loop callback)."""
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("job did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result


@dataclass
class Job:
    """One unit of serve work.

    ``kind`` names a registered job family (``jacobi``, ``cg``, ...);
    ``spec`` is its parameters.  ``batch_key`` marks jobs the server may
    run back-to-back as one batch — by convention the kind plus every
    shape-determining parameter, so batched jobs share schedules.
    ``tenant`` selects the fair-queueing lane; ``shard`` is stamped by
    the router at submission (and re-stamped on replay); ``retries``
    counts *re-dispatches after a pool crash* — 0 on the first attempt.
    """

    kind: str
    spec: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    batch_key: Optional[str] = None
    tenant: str = DEFAULT_TENANT
    shard: Optional[str] = None
    retries: int = 0
    job_id: int = 0
    future: JobFuture = field(default_factory=JobFuture)

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "kind": self.kind,
            "priority": self.priority,
            "batch_key": self.batch_key,
            "tenant": self.tenant,
            "shard": self.shard,
            "retries": self.retries,
            "spec": self.spec,
        }


class JobQueue:
    """Thread-safe tenant-fair job queue, ``fifo`` or ``priority``.

    Parameters
    ----------
    policy:
        Ordering *within* a tenant lane: ``fifo`` or ``priority``.
    max_depth:
        Total queued-job bound; a submission past it is shed.  None
        disables the depth check.
    tenant_weights:
        tenant → relative service weight (default 1.0 for any tenant
        not listed).  With one tenant (or no weights) scheduling reduces
        exactly to the single-lane policy order.
    tenant_quotas:
        tenant → max queued jobs for that tenant in this queue; a
        submission past it is shed.  ``default_quota`` caps tenants not
        listed (None = unlimited).
    """

    def __init__(self, policy: str = "fifo",
                 max_depth: Optional[int] = None,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 tenant_quotas: Optional[Dict[str, int]] = None,
                 default_quota: Optional[int] = None):
        if policy not in ("fifo", "priority"):
            raise KaliError(
                f"unknown queue policy {policy!r} "
                "(expected 'fifo' or 'priority')"
            )
        if max_depth is not None and max_depth < 1:
            raise KaliError(f"max_depth must be >= 1, got {max_depth}")
        for t, w in (tenant_weights or {}).items():
            if w <= 0:
                raise KaliError(f"tenant {t!r} weight must be > 0, got {w}")
        for t, q in (tenant_quotas or {}).items():
            if q < 0:
                raise KaliError(f"tenant {t!r} quota must be >= 0, got {q}")
        self.policy = policy
        self.max_depth = max_depth
        self.tenant_weights = dict(tenant_weights or {})
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_quota = default_quota
        self._lanes: Dict[str, List] = {}
        self._served: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = itertools.count(1)     # job ids (when unassigned)
        self._order = itertools.count(1)   # submission order, heap tiebreak
        self._closed = False
        self.submitted = 0
        self.sheds = 0
        self.sheds_by_tenant: Dict[str, int] = {}

    def _weight(self, tenant: str) -> float:
        return float(self.tenant_weights.get(tenant, 1.0))

    def _quota(self, tenant: str) -> Optional[int]:
        return self.tenant_quotas.get(tenant, self.default_quota)

    def _sort_key(self, job: Job) -> int:
        # FIFO ignores priority entirely; priority mode schedules the
        # highest number first (heapq is a min-heap, hence the negation).
        return -job.priority if self.policy == "priority" else 0

    def _pending_locked(self) -> int:
        return sum(len(h) for h in self._lanes.values())

    def _shed(self, job: Job, reason: str, depth: int,
              limit: int) -> ShedError:
        self.sheds += 1
        self.sheds_by_tenant[job.tenant] = (
            self.sheds_by_tenant.get(job.tenant, 0) + 1)
        return ShedError(
            f"shed {job.kind} job for tenant {job.tenant!r}: "
            f"{reason} ({depth} >= {limit})",
            reason=reason, tenant=job.tenant, depth=depth, limit=limit,
        )

    def submit(self, job: Job) -> JobFuture:
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed to new submissions")
            depth = self._pending_locked()
            if self.max_depth is not None and depth >= self.max_depth:
                raise self._shed(job, "queue-depth", depth, self.max_depth)
            quota = self._quota(job.tenant)
            lane = self._lanes.get(job.tenant)
            lane_depth = len(lane) if lane else 0
            if quota is not None and lane_depth >= quota:
                raise self._shed(job, "tenant-quota", lane_depth, quota)
            if job.job_id == 0:
                job.job_id = next(self._seq)
            if lane is None:
                lane = self._lanes[job.tenant] = []
                # A re-activating lane enters at the current service
                # floor: it gets its fair share from now on, not a
                # catch-up burst for the time it was idle.
                active = [self._served[t] / self._weight(t)
                          for t, h in self._lanes.items()
                          if h and t != job.tenant]
                floor = min(active) if active else 0.0
                self._served[job.tenant] = max(
                    self._served.get(job.tenant, 0.0),
                    floor * self._weight(job.tenant),
                )
            heapq.heappush(
                lane, (self._sort_key(job), next(self._order), job))
            self.submitted += 1
            self._not_empty.notify()
        return job.future

    def _pick_lane_locked(self) -> Optional[str]:
        best, best_rank = None, None
        for tenant, lane in self._lanes.items():
            if not lane:
                continue
            # Least normalized service first; ties break toward the lane
            # whose head would schedule first under the policy, so one
            # tenant (the common case) reduces to plain policy order.
            rank = (self._served[tenant] / self._weight(tenant),
                    lane[0][0], lane[0][1])
            if best_rank is None or rank < best_rank:
                best, best_rank = tenant, rank
        return best

    def next_batch(self, max_batch: int = 1,
                   timeout: Optional[float] = None) -> List[Job]:
        """Block for the next job; return it plus up to ``max_batch - 1``
        same-``batch_key`` successors from the same tenant lane.  Empty
        list on timeout, or when the queue was closed and drained."""
        with self._lock:
            while self._pending_locked() == 0:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout):
                    return []
                timeout = 0  # woke once; don't re-wait the full timeout
            tenant = self._pick_lane_locked()
            lane = self._lanes[tenant]
            batch = [heapq.heappop(lane)[2]]
            key = batch[0].batch_key
            while (
                key is not None
                and len(batch) < max_batch
                and lane
                and lane[0][2].batch_key == key
            ):
                batch.append(heapq.heappop(lane)[2])
            self._served[tenant] = self._served.get(tenant, 0.0) + len(batch)
            return batch

    def pending(self) -> int:
        with self._lock:
            return self._pending_locked()

    def pending_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return {t: len(h) for t, h in self._lanes.items() if h}

    def snapshot(self) -> List[Dict[str, Any]]:
        """Queued jobs in approximate scheduling order (for ``stat``):
        lanes by normalized service, policy order within each."""
        with self._lock:
            lanes = sorted(
                ((self._served[t] / self._weight(t), t, h)
                 for t, h in self._lanes.items() if h),
            )
            out: List[Dict[str, Any]] = []
            for _, _, lane in lanes:
                out.extend(entry[2].describe() for entry in sorted(lane))
            return out

    def drain_jobs(self) -> List[Job]:
        """Remove and return every queued job, in scheduling order.  Used
        by shard retirement to replay a condemned shard's backlog."""
        with self._lock:
            jobs: List[Job] = []
            while self._pending_locked():
                tenant = self._pick_lane_locked()
                lane = self._lanes[tenant]
                jobs.append(heapq.heappop(lane)[2])
                self._served[tenant] = self._served.get(tenant, 0.0) + 1
            return jobs

    def close(self) -> None:
        """Refuse new submissions and wake any blocked consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
