"""repro.serve — sharded warm rank-pool job server with schedule caching.

The layers, composable independently:

* :class:`RankPool` (``serve.pool``) — the mp backend's forked pipe mesh,
  kept warm and reused across jobs, with health checks and crash-rebuild;
* :class:`ShardRouter` (``serve.router``) — rendezvous hashing of jobs
  onto pool shards by (kind, content fingerprint), so each shard's
  schedule caches and learned plans stay hot;
* :class:`JobServer` / :class:`JobQueue` (``serve.server`` / ``serve.queue``)
  — tenant-fair FIFO/priority scheduling with futures, quotas and load
  shedding (:class:`ShedError`), batching of same-shape jobs, per-job
  retry budgets with condemned-pool replay, and a unix-socket CLI
  (``python -m repro.serve``);
* :class:`AsyncFrontend` (``serve.frontend``) — the asyncio front end
  multiplexing many JSON-lines clients over one event loop;
* :class:`Autoscaler` (``serve.autoscale``) — fleet growth/shrink on
  sustained queue depth, with hysteresis;
* :class:`DiskScheduleCache` (``serve.diskcache``) — the on-disk,
  content-addressed second tier of the schedule cache, so a restarted
  server re-executes known foralls with zero inspector cost.

Attributes resolve lazily: ``repro.runtime.cache`` imports this package's
``diskcache`` module while ``serve.server`` imports ``repro.core.context``
— eager re-exports here would tie that knot into a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "RankPool": ("repro.serve.pool", "RankPool"),
    "DiskScheduleCache": ("repro.serve.diskcache", "DiskScheduleCache"),
    "schedule_content_key": ("repro.serve.diskcache", "schedule_content_key"),
    "SCHEDCACHE_FORMAT": ("repro.serve.diskcache", "SCHEDCACHE_FORMAT"),
    "JobQueue": ("repro.serve.queue", "JobQueue"),
    "Job": ("repro.serve.queue", "Job"),
    "JobFuture": ("repro.serve.queue", "JobFuture"),
    "ShedError": ("repro.serve.queue", "ShedError"),
    "QueueClosed": ("repro.serve.queue", "QueueClosed"),
    "PoolCrashError": ("repro.serve.pool", "PoolCrashError"),
    "ShardRouter": ("repro.serve.router", "ShardRouter"),
    "route_key": ("repro.serve.router", "route_key"),
    "JobServer": ("repro.serve.server", "JobServer"),
    "Shard": ("repro.serve.server", "Shard"),
    "ServeClient": ("repro.serve.server", "ServeClient"),
    "AsyncFrontend": ("repro.serve.frontend", "AsyncFrontend"),
    "serve_async": ("repro.serve.frontend", "serve_async"),
    "Autoscaler": ("repro.serve.autoscale", "Autoscaler"),
    "AutoscalePolicy": ("repro.serve.autoscale", "AutoscalePolicy"),
    "shipping": ("repro.serve.shipping", None),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.serve' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
