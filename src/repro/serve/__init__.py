"""repro.serve — warm rank-pool job server with a persistent schedule cache.

Three layers, composable independently:

* :class:`RankPool` (``serve.pool``) — the mp backend's forked pipe mesh,
  kept warm and reused across jobs, with health checks and crash-rebuild;
* :class:`JobServer` / :class:`JobQueue` (``serve.server`` / ``serve.queue``)
  — FIFO/priority job scheduling with futures, batching of same-shape
  jobs, and a unix-socket CLI (``python -m repro.serve``);
* :class:`DiskScheduleCache` (``serve.diskcache``) — the on-disk,
  content-addressed second tier of the schedule cache, so a restarted
  server re-executes known foralls with zero inspector cost.

Attributes resolve lazily: ``repro.runtime.cache`` imports this package's
``diskcache`` module while ``serve.server`` imports ``repro.core.context``
— eager re-exports here would tie that knot into a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "RankPool": ("repro.serve.pool", "RankPool"),
    "DiskScheduleCache": ("repro.serve.diskcache", "DiskScheduleCache"),
    "schedule_content_key": ("repro.serve.diskcache", "schedule_content_key"),
    "SCHEDCACHE_FORMAT": ("repro.serve.diskcache", "SCHEDCACHE_FORMAT"),
    "JobQueue": ("repro.serve.queue", "JobQueue"),
    "Job": ("repro.serve.queue", "Job"),
    "JobFuture": ("repro.serve.queue", "JobFuture"),
    "JobServer": ("repro.serve.server", "JobServer"),
    "ServeClient": ("repro.serve.server", "ServeClient"),
    "shipping": ("repro.serve.shipping", None),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.serve' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
