"""Real-parallelism engine: one OS process per rank.

:class:`MpEngine` mirrors the virtual-time :class:`~repro.machine.engine.
Engine` API — ``run(program, args) -> RunResult`` — but executes the rank
generators concurrently on forked OS processes connected by a pipe mesh.
Clocks, phase times, and trace events are **wall-clock seconds since run
start** (one monotonic epoch captured before forking; ``CLOCK_MONOTONIC``
is process-wide on the platforms fork exists on, so child timestamps are
comparable).

The parent is a supervisor, not a router: data moves directly between
rank processes.  Over the per-rank control pipe each child streams trace
chunks and finally its ``("finish", clock, value, stats)`` record; the
parent assembles the same :class:`RunResult` the simulator produces, so
``repro.obs`` (reports, Perfetto export, run-metrics registry) works on
real runs unchanged.

A watchdog bounds the whole run in wall time: real execution cannot
prove a deadlock the way the virtual-time engine can (it *knows* when
every rank is blocked), so after ``timeout`` seconds the parent kills
the ranks and raises :class:`~repro.errors.DeadlockError` with each
rank's last self-reported blocked receive from a shared-memory status
board.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Generator, List, Optional

from repro.errors import BlockedOp, DeadlockError, EngineError
from repro.machine.api import Op, Rank
from repro.machine.cost import MachineModel
from repro.machine.mp.transport import build_pipe_mesh, close_mesh_except
from repro.machine.mp.worker import ST_BLOCKED, ST_DONE, worker_main
from repro.machine.shm import (
    DEFAULT_SEGMENT_BYTES,
    ShmDataPlane,
    shm_enabled_default,
    shm_threshold_default,
)
from repro.machine.stats import RankStats, RunResult
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import TraceEvent

RankProgram = Callable[[Rank], Generator[Op, Any, Any]]


class MpEngine:
    """Run an SPMD program with real parallelism (fork + pipes).

    Parameters
    ----------
    machine:
        Cost model handed to ``rank.machine`` so runtime code computing
        charges runs unchanged; the modelled seconds are **not** slept.
    topology:
        Interconnect metadata for ``rank.topology`` (hop counts still
        inform the runtime's combining decisions; defaults to
        :class:`FullyConnected`, which all-OS-process execution really is).
    nranks:
        World size; defaults to ``topology.size``.
    timeout:
        Watchdog bound on the whole run, wall seconds.  On expiry every
        rank is killed and :class:`DeadlockError` is raised.
    trace:
        Stream :class:`TraceEvent` records (wall-clock times) back from
        every rank.
    shm:
        Route bulk payloads through a :class:`~repro.machine.shm.
        ShmDataPlane` (shared-memory blocks; pipes carry only control
        frames).  Defaults to on; ``REPRO_SHM=0`` is the environment
        kill switch.  Semantics are identical either way — only the
        transport (and the ``shm_*``/``pipe_*`` counters) change.
    shm_threshold:
        Payload size in bytes below which the pickle path is kept
        (default 2048, or ``REPRO_SHM_THRESHOLD``).
    """

    def __init__(
        self,
        machine: MachineModel,
        topology: Optional[Topology] = None,
        nranks: Optional[int] = None,
        max_ops: int = 500_000_000,
        trace: bool = False,
        timeout: float = 120.0,
        shm: Optional[bool] = None,
        shm_threshold: Optional[int] = None,
        shm_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        if topology is None:
            if nranks is None:
                raise EngineError("MpEngine needs a topology or an explicit nranks")
            topology = FullyConnected(nranks)
        self.machine = machine
        self.topology = topology
        self.nranks = nranks if nranks is not None else topology.size
        if self.nranks > topology.size:
            raise EngineError(
                f"nranks={self.nranks} exceeds topology size {topology.size}"
            )
        self.max_ops = max_ops
        self.trace = trace
        if timeout <= 0:
            raise EngineError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.shm = shm if shm is not None else shm_enabled_default()
        self.shm_threshold = (shm_threshold if shm_threshold is not None
                              else shm_threshold_default())
        self.shm_segment_bytes = shm_segment_bytes
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise EngineError(
                "the mp backend needs the 'fork' start method (POSIX); "
                "use backend='sim' on this platform"
            ) from None

    # --- public API ------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[List[Any]] = None,
    ) -> RunResult:
        """Execute ``program`` on ``nranks`` OS processes; returns the
        same :class:`RunResult` shape the simulator does, with wall-clock
        seconds in place of virtual time."""
        if args is not None and len(args) != self.nranks:
            raise EngineError(f"args must have length {self.nranks}")
        n = self.nranks
        ctx = self._ctx

        mesh = build_pipe_mesh(ctx, n)
        ctrl_pairs = [ctx.Pipe(duplex=False) for _ in range(n)]
        parent_ctrls = [recv for recv, _send in ctrl_pairs]
        child_ctrls = [send for _recv, send in ctrl_pairs]
        # Status board: (status, blocked_src, blocked_tag) per rank,
        # written by children, read by the parent on watchdog expiry.
        shared_state = ctx.RawArray("l", 3 * n)
        # The shm data plane is created *before* forking so children
        # inherit the primary mapping; the parent is the extra party
        # that decodes gathered results out of finish records.
        plane = (ShmDataPlane(n, segment_bytes=self.shm_segment_bytes,
                              threshold=self.shm_threshold)
                 if self.shm else None)

        t0 = time.monotonic()
        procs = []
        for r in range(n):
            p = ctx.Process(
                target=worker_main,
                args=(
                    r, n, program,
                    args[r] if args is not None else None,
                    self.machine, self.topology, mesh,
                    child_ctrls[r], child_ctrls, shared_state, t0,
                    self.trace, self.max_ops, plane,
                ),
                name=f"repro-mp-rank-{r}",
                daemon=True,
            )
            p.start()
            procs.append(p)
        # The parent keeps no data-plane ends and no child control ends.
        close_mesh_except(mesh, None)
        for c in child_ctrls:
            c.close()

        try:
            return self._supervise(procs, parent_ctrls, shared_state, t0,
                                   plane)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(5.0)
            for p in procs:
                try:  # releases the sentinel fd now, not at GC time
                    p.close()
                except ValueError:
                    pass  # still alive after terminate+join; GC reaps it
            for c in parent_ctrls:
                try:
                    c.close()
                except OSError:
                    pass
            if plane is not None:
                # Every child is joined: unlink all segments (including
                # any a crashed rank grew) via the prefix sweep.
                plane.close(unlink=True)

    # --- supervisor loop -------------------------------------------------

    def _supervise(self, procs, parent_ctrls, shared_state, t0,
                   plane=None) -> RunResult:
        n = self.nranks
        deadline = time.monotonic() + self.timeout
        clocks: List[Optional[float]] = [None] * n
        stats: List[Optional[RankStats]] = [None] * n
        values: List[Any] = [None] * n
        trace_events: Optional[List[TraceEvent]] = [] if self.trace else None
        open_ctrls = {parent_ctrls[r]: r for r in range(n)}
        pending = set(range(n))

        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise self._deadlock(procs, shared_state, pending, t0)
            sentinels = {procs[r].sentinel: r for r in pending}
            ready = conn_wait(
                list(open_ctrls) + list(sentinels), timeout=remaining
            )
            if not ready:
                raise self._deadlock(procs, shared_state, pending, t0)
            for obj in ready:
                if obj in open_ctrls:
                    r = open_ctrls[obj]
                    try:
                        msg = obj.recv()
                    except EOFError:
                        del open_ctrls[obj]
                        continue
                    kind = msg[0]
                    if kind == "trace":
                        if trace_events is not None:
                            trace_events.extend(msg[1])
                    elif kind == "finish":
                        _, clock, value, rstats = msg
                        if plane is not None:
                            value, _b, _blk = plane.decode(value)
                        clocks[r] = clock
                        values[r] = value
                        stats[r] = rstats
                        pending.discard(r)
                    elif kind == "error":
                        _, clock, tb, rstats = msg
                        raise EngineError(
                            f"rank {r} failed after {clock:.3f}s "
                            f"wall:\n{tb}"
                        )
                    else:  # pragma: no cover - protocol future-proofing
                        raise EngineError(
                            f"unknown control message {kind!r} from rank {r}"
                        )
                elif obj in sentinels:
                    r = sentinels[obj]
                    if r not in pending:
                        continue
                    # A finish/error may still sit in the control pipe,
                    # racing the process exit; let the next pass read it.
                    ctrl = parent_ctrls[r]
                    if ctrl in open_ctrls and ctrl.poll(0):
                        continue
                    procs[r].join(1.0)
                    raise EngineError(
                        f"rank {r} died without reporting "
                        f"(exit code {procs[r].exitcode})"
                    )

        for p in procs:
            p.join(10.0)
        if trace_events is not None:
            for r in range(n):
                trace_events.append(TraceEvent(
                    rank=r, kind="finish", start=clocks[r], end=clocks[r]
                ))
            trace_events.sort(key=lambda e: (e.start, e.rank))
        result = RunResult(
            nranks=n,
            clocks=[c if c is not None else 0.0 for c in clocks],
            stats=stats,
            values=values,
        )
        result.trace = trace_events
        return result

    def _deadlock(self, procs, shared_state, pending, t0) -> DeadlockError:
        """Build the diagnostic from each stuck rank's status board entry."""
        wall = time.monotonic() - t0
        blocked = {}
        for r in sorted(pending):
            base = 3 * r
            status = shared_state[base]
            if status == ST_BLOCKED:
                blocked[r] = BlockedOp(
                    source=int(shared_state[base + 1]),
                    tag=int(shared_state[base + 2]),
                    phase="(mp)",
                    clock=wall,
                )
            elif status != ST_DONE:
                blocked[r] = BlockedOp(source=-9, tag=-9, phase="(running)",
                                       clock=wall)
        return DeadlockError(
            blocked or {r: (-9, -9) for r in sorted(pending)},
        )


def run_spmd_mp(
    program: RankProgram,
    nranks: int,
    machine: MachineModel,
    topology: Optional[Topology] = None,
    args: Optional[List[Any]] = None,
    timeout: float = 120.0,
) -> RunResult:
    """One-shot convenience wrapper around :class:`MpEngine`."""
    engine = MpEngine(machine, topology=topology, nranks=nranks,
                      timeout=timeout)
    return engine.run(program, args=args)
