"""Child-process rank loop for the real-process backend.

Interprets the same op stream the virtual-time engine does — ``Send``,
``Recv``, ``Compute``, ``Now``, ``Count`` — but against OS pipes and the
wall clock:

* ``Send`` pickles a frame to the pairwise pipe (eager-buffered, never
  blocks the rank program) and counts messages/bytes exactly as the
  simulator does (``nbytes = op.wire_size()``, computed identically).
* ``Recv`` drains the source pipe into per-``(source, tag)`` FIFO
  buffers until a matching frame appears.  Wildcard receives pick the
  earliest *locally arrived* candidate — real execution cannot know
  global arrival order, the one simulator guarantee this backend relaxes
  (see docs/internals.md §10).
* ``Compute`` charges **no** time: the virtual seconds describe the 1990
  machine, not this host.  Instead the wall-clock time the rank program
  actually spent between op boundaries is attributed to each op's phase,
  so phase tables and traces describe the real run.
* ``Now`` resumes with wall-clock seconds since run start.

Per-rank counters, trace events, the final return value, and the wall
clock stream back to the parent over the control pipe; trace events are
flushed in chunks so long runs do not accumulate in child memory.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from multiprocessing.connection import wait as conn_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import CommunicationError, EngineError
from repro.machine.api import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Count,
    Message,
    Now,
    Op,
    Rank,
    Recv,
    Send,
    validate_peer,
    validate_send,
)
from repro.machine.mp.transport import (
    FRAME_NBYTES,
    FRAME_PAYLOAD,
    FRAME_SEQ,
    FRAME_TAG,
    FRAME_WALL,
    SenderThread,
    close_mesh_except,
)
from repro.machine.stats import RankStats
from repro.machine.trace import TraceEvent

# Shared-state slot layout (parent reads these on watchdog timeout).
ST_RUNNING = 0
ST_BLOCKED = 1
ST_DONE = 2

_TRACE_FLUSH = 512


class _Inbox:
    """Per-(source, tag) FIFO buffers over the pairwise pipes."""

    def __init__(self, conns: List[Optional[Any]]):
        self.conns = list(conns)
        self.buffered: Dict[Tuple[int, int], Deque[Tuple[int, tuple]]] = {}
        self._arrival_counter = 0
        #: wall time each buffered frame was drained (arrival proxy)
        self.arrival_wall: Dict[int, float] = {}
        #: peers whose pipe hit EOF (finished or died).  Pipes deliver all
        #: buffered frames before EOF, so nothing from them is lost.
        self.dead: set = set()

    def _mark_dead(self, src: int) -> None:
        conn = self.conns[src]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self.conns[src] = None
        self.dead.add(src)

    def _buffer(self, src: int, frame: tuple, wall: float) -> int:
        idx = self._arrival_counter
        self._arrival_counter += 1
        self.buffered.setdefault((src, frame[FRAME_TAG]), deque()).append(
            (idx, frame)
        )
        self.arrival_wall[idx] = wall
        return idx

    def drain_one(self, src: int, timeout: Optional[float], now_fn) -> bool:
        """Block until one frame from ``src`` is drained (True) or the
        timeout expires (False).  A dead peer can never satisfy the
        receive, so it raises instead of hanging forever."""
        conn = self.conns[src]
        if conn is None:
            raise CommunicationError(
                f"receive from rank {src} can never complete: the peer "
                "process has exited"
            )
        if timeout is not None and not conn.poll(timeout):
            return False
        try:
            frame = conn.recv()
        except EOFError:
            self._mark_dead(src)
            raise CommunicationError(
                f"receive from rank {src} can never complete: the peer "
                "process has exited"
            ) from None
        self._buffer(src, frame, now_fn())
        return True

    def drain_ready(self, now_fn) -> None:
        """Drain every frame currently readable on any pipe (no blocking).
        Peers at EOF are retired silently — a finished rank is normal."""
        live = [c for c in self.conns if c is not None]
        for conn in conn_wait(live, timeout=0):
            src = self.conns.index(conn)
            while conn is not None and conn.poll(0):
                try:
                    frame = conn.recv()
                except EOFError:
                    self._mark_dead(src)
                    break
                self._buffer(src, frame, now_fn())

    def wait_any(self, deadline: Optional[float], now_fn) -> bool:
        """Block until any pipe is readable; False on deadline expiry.
        Raises once every peer is gone (nothing can ever arrive)."""
        while True:
            live = [c for c in self.conns if c is not None]
            if not live:
                raise CommunicationError(
                    "wildcard receive can never complete: every peer "
                    "process has exited"
                )
            timeout = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            ready = conn_wait(live, timeout=timeout)
            if not ready:
                return False
            before = self._arrival_counter
            self.drain_ready(now_fn)
            if self._arrival_counter > before:
                return True
            # Only EOFs were ready; loop (retired conns leave `live`).

    def pop_match(self, source: int, tag: int) -> Optional[Tuple[int, int, tuple]]:
        """Pop the matching frame with the earliest local arrival, or None.

        Returns ``(arrival_idx, src, frame)``.  Exact ``(source, tag)``
        receives take the channel head (send-order FIFO); wildcard
        receives compare candidates by local arrival index — the relaxed
        ordering real hardware provides.
        """
        best_key = None
        best_chan = None
        for (src, t), q in self.buffered.items():
            if not q:
                continue
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and t != tag:
                continue
            idx = q[0][0]
            if best_key is None or idx < best_key:
                best_key = idx
                best_chan = (src, t)
        if best_chan is None:
            return None
        idx, frame = self.buffered[best_chan].popleft()
        return idx, best_chan[0], frame

    def leftover(self) -> int:
        return sum(len(q) for q in self.buffered.values())

    def reset(self) -> int:
        """Discard every buffered frame (warm-pool job boundary); returns
        the number discarded.  Connections and dead-peer state persist —
        only per-job message state is cleared."""
        discarded = self.leftover()
        self.buffered.clear()
        self.arrival_wall.clear()
        return discarded


def worker_main(
    rank_id: int,
    nranks: int,
    program,
    arg: Any,
    machine,
    topology,
    mesh,
    ctrl,
    parent_ctrls,
    shared_state,
    t0: float,
    trace: bool,
    max_ops: int,
    dataplane=None,
) -> None:
    """Entry point of one forked rank process.  Never returns normally:
    reports ``("finish", ...)`` or ``("error", ...)`` on the control pipe
    and exits.

    ``dataplane`` is an optional :class:`repro.machine.shm.ShmDataPlane`
    inherited from the parent; when present, bulk payloads travel as
    shared-memory blocks and pipes carry only control frames."""
    close_mesh_except(mesh, rank_id)
    for r, pc in enumerate(parent_ctrls):
        if r != rank_id:
            pc.close()
    if dataplane is not None:
        dataplane.attach(rank_id)

    def now() -> float:
        return time.monotonic() - t0

    def set_state(status: int, src: int = -2, tag: int = -2) -> None:
        base = 3 * rank_id
        shared_state[base] = status
        shared_state[base + 1] = src
        shared_state[base + 2] = tag

    stats = RankStats(rank_id)
    trace_buf: List[TraceEvent] = []
    sender = SenderThread()
    inbox = _Inbox(mesh[rank_id])

    def flush_trace(force: bool = False) -> None:
        if trace and trace_buf and (force or len(trace_buf) >= _TRACE_FLUSH):
            ctrl.send(("trace", list(trace_buf)))
            trace_buf.clear()

    try:
        set_state(ST_RUNNING)
        rank = Rank(rank_id, nranks, machine, topology, arg)
        gen = program(rank)
        if not hasattr(gen, "send"):
            raise EngineError(
                "rank program must be a generator function (did you forget "
                "to 'yield'?)"
            )
        value = _interpret(
            rank_id, nranks, gen, stats, trace_buf if trace else None,
            sender, inbox, mesh[rank_id], now, set_state, max_ops,
            flush_trace, dataplane=dataplane,
        )
        if dataplane is not None:
            # Gathered results ride the data plane too: the parent (the
            # plane's extra party) decodes the refs out of the finish
            # record.  Counted before the stats object is shipped.
            value, vbytes, vblocks, vfall = dataplane.encode(
                value, (dataplane.parent_party,))
            if vbytes:
                stats.count("shm_bytes_sent", vbytes)
                stats.count("shm_blocks_sent", vblocks)
            if vfall:
                stats.count("shm_fallbacks", vfall)
            stats.counters["shm_hwm_bytes"] = dataplane.hwm_bytes
        sender.flush_and_stop()
        # Anything still buffered (or readable) was sent but never
        # received — the simulator's "undelivered_messages" accounting,
        # best-effort: frames still in flight from a straggling peer are
        # missed (documented relaxation).
        inbox.drain_ready(now)
        left = inbox.leftover()
        if left:
            stats.count("undelivered_messages", left)
        set_state(ST_DONE)
        flush_trace(force=True)
        ctrl.send(("finish", now(), value, stats))
        ctrl.close()
    except BaseException:
        set_state(ST_DONE)
        try:
            flush_trace(force=True)
            ctrl.send(("error", now(), traceback.format_exc(), stats))
            ctrl.close()
        except Exception:
            pass
        try:  # deterministic teardown: no sender thread outlives the report
            sender.flush_and_stop(timeout=5.0)
        except Exception:
            pass
        raise SystemExit(1)
    raise SystemExit(0)


def _interpret(
    rank_id: int,
    nranks: int,
    gen,
    stats: RankStats,
    trace_events: Optional[List[TraceEvent]],
    sender: SenderThread,
    inbox: _Inbox,
    conns: List[Optional[Any]],
    now,
    set_state,
    max_ops: int,
    flush_trace,
    dataplane=None,
) -> Any:
    """Drive the rank generator over real pipes; returns its value.

    With a ``dataplane``, large payload leaves are hoisted into shared
    memory before the frame is pickled (and resolved after receive);
    ``nbytes``/``bytes_sent`` still come from the *original* payload via
    ``op.wire_size()``, so traffic accounting is transport-independent.
    """
    resume: Any = None
    seq_counter = 0
    ops = 0
    # Wall time spent *inside the generator* since the last op completed;
    # attributed to the phase of the op it led up to.  Ops without a
    # phase (Now/Count) roll their elapsed time into the next phased op.
    pending_since = now()

    def charge(phase: str, start: float, end: float) -> None:
        stats.charge(phase, end - start)

    while True:
        try:
            op = gen.send(resume)
        except StopIteration as stop:
            return stop.value
        resume = None
        ops += 1
        if ops > max_ops:
            raise EngineError(
                f"exceeded max_ops={max_ops}; runaway rank program?"
            )
        sender.check()
        op_start = now()

        if isinstance(op, Compute):
            # No sleep: the modelled seconds describe the 1990 machine.
            # The *host* time the generator just spent computing is what
            # gets charged to this op's phase.
            charge(op.phase, pending_since, op_start)
            if trace_events is not None and op_start - pending_since > 0:
                trace_events.append(TraceEvent(
                    rank=rank_id, kind="compute", start=pending_since,
                    end=op_start, phase=op.phase, label=op.label,
                ))
                flush_trace()
            pending_since = op_start

        elif isinstance(op, Send):
            validate_send(rank_id, op, nranks)
            nbytes = op.wire_size()
            seq = rank_id + nranks * seq_counter  # globally unique
            seq_counter += 1
            payload = op.payload
            if dataplane is not None:
                payload, sbytes, sblocks, sfall = dataplane.encode(
                    payload, (op.dest,))
                if sbytes:
                    stats.count("shm_bytes_sent", sbytes)
                    stats.count("shm_blocks_sent", sblocks)
                if sfall:
                    stats.count("shm_fallbacks", sfall)
            framelen = sender.send(
                conns[op.dest],
                (op.tag, seq, nbytes, op_start, payload),
            )
            stats.count("pipe_bytes_sent", framelen)
            end = now()
            charge(op.phase, pending_since, end)
            stats.messages_sent += 1
            stats.bytes_sent += nbytes
            if trace_events is not None:
                trace_events.append(TraceEvent(
                    rank=rank_id, kind="send", start=op_start, end=end,
                    phase=op.phase, peer=op.dest, tag=op.tag, nbytes=nbytes,
                    label=op.label, seq=seq,
                ))
                flush_trace()
            pending_since = end

        elif isinstance(op, Recv):
            if op.source != ANY_SOURCE:
                validate_peer(op.source, nranks)
            msg = _do_recv(
                rank_id, op, inbox, now, set_state, dataplane, stats,
            )
            end = now()
            charge(op.phase, pending_since, end)
            if msg is None:
                stats.count("recv_timeouts", 1)
                if trace_events is not None:
                    trace_events.append(TraceEvent(
                        rank=rank_id, kind="recv_timeout", start=op_start,
                        end=end, phase=op.phase,
                        peer=(op.source if op.source != ANY_SOURCE else None),
                        tag=(op.tag if op.tag != ANY_TAG else None),
                        label=op.label,
                    ))
                    flush_trace()
            else:
                stats.messages_received += 1
                stats.bytes_received += msg[1].nbytes
                resume = msg[1]
                if trace_events is not None:
                    trace_events.append(TraceEvent(
                        rank=rank_id, kind="recv", start=op_start, end=end,
                        phase=op.phase, peer=msg[1].source, tag=msg[1].tag,
                        nbytes=msg[1].nbytes, label=op.label, seq=msg[1].seq,
                        busy_start=max(min(msg[0], end), op_start),
                    ))
                    flush_trace()
            pending_since = end

        elif isinstance(op, Now):
            resume = now()

        elif isinstance(op, Count):
            stats.count(op.name, op.amount)

        elif isinstance(op, Op):
            raise EngineError(
                f"rank {rank_id} yielded unsupported op {op!r} on the mp "
                "backend"
            )
        else:
            raise EngineError(f"rank {rank_id} yielded non-op {op!r}")


def _do_recv(
    rank_id: int,
    op: Recv,
    inbox: _Inbox,
    now,
    set_state,
    dataplane=None,
    stats: Optional[RankStats] = None,
) -> Optional[Tuple[float, Message]]:
    """Blocking receive with optional timeout.  Returns ``(arrival_wall,
    Message)`` or None on timeout."""
    deadline = None if op.timeout is None else time.monotonic() + op.timeout
    set_state(ST_BLOCKED, op.source, op.tag)
    try:
        while True:
            got = inbox.pop_match(op.source, op.tag)
            if got is not None:
                idx, src, frame = got
                arrival = inbox.arrival_wall.pop(idx, now())
                payload = frame[FRAME_PAYLOAD]
                if dataplane is not None:
                    payload, rbytes, rblocks = dataplane.decode(payload)
                    if rbytes and stats is not None:
                        stats.count("shm_bytes_recv", rbytes)
                        stats.count("shm_blocks_recv", rblocks)
                return arrival, Message(
                    source=src,
                    dest=rank_id,
                    tag=frame[FRAME_TAG],
                    payload=payload,
                    nbytes=frame[FRAME_NBYTES],
                    arrival=arrival,
                    seq=frame[FRAME_SEQ],
                )
            if op.source != ANY_SOURCE:
                timeout = (
                    None if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                if not inbox.drain_one(op.source, timeout, now):
                    return None
            else:
                if not inbox.wait_any(deadline, now):
                    return None
    finally:
        set_state(ST_RUNNING)
