"""Pipe-mesh transport for the real-process backend.

Every pair of ranks shares one duplex OS pipe, and every rank shares one
*control* pipe with the parent.  A message is one pickled frame

    (tag, seq, nbytes, send_wall, payload)

written to the pairwise pipe; per ``(source, tag)`` FIFO order follows
directly from pipe FIFO order, exactly the guarantee the virtual-time
engine provides.  Sends never block the rank program: a per-process
sender thread drains an unbounded queue (MPI-style eager buffering), so
the head-to-head exchange pattern the executor emits (all sends before
all receives) cannot deadlock on a full pipe buffer.

The receive side buffers drained frames per ``(source, tag)`` channel
and stamps each with a local arrival index, which is what wildcard
receives order by — see :mod:`repro.machine.mp.worker` for the exact
(relaxed) wildcard semantics.
"""

from __future__ import annotations

import queue
import struct
import threading
from multiprocessing.reduction import ForkingPickler
from typing import Any, List, Optional, Tuple

try:
    import fcntl
    import termios
    _TIOCOUTQ: Optional[int] = getattr(termios, "TIOCOUTQ", None)
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None
    _TIOCOUTQ = None

from repro.errors import CommunicationError

# Frame field indices (plain tuples keep pickling cheap).
FRAME_TAG = 0
FRAME_SEQ = 1
FRAME_NBYTES = 2
FRAME_WALL = 3
FRAME_PAYLOAD = 4

#: sentinel enqueued to stop a sender thread
_STOP = object()

#: sentinel enqueued to mark a flush point (payload: threading.Event)
_FLUSH = object()

#: largest frame the sender may write inline: PIPE_BUF (4096 on Linux)
#: minus the 4-byte length header Connection.send_bytes prepends, so the
#: whole write is one atomic, provably non-blocking syscall
_INLINE_MAX = 4092


def _outq_empty(conn) -> bool:
    """True when ``conn``'s kernel send queue is provably empty.

    The duplex mesh pipes are AF_UNIX socket pairs; ``TIOCOUTQ`` reports
    the sender-side unconsumed byte count, so zero means the full send
    buffer (>= 4 KiB on any Linux) is free and a small blocking write
    cannot stall.  Anything unqueryable answers False — the caller falls
    back to the sender thread, which is always safe."""
    if fcntl is None or _TIOCOUTQ is None:
        return False
    try:
        data = fcntl.ioctl(conn.fileno(), _TIOCOUTQ, b"\x00\x00\x00\x00")
        return struct.unpack("@i", data)[0] == 0
    except (OSError, ValueError):
        return False


def build_pipe_mesh(ctx, nranks: int) -> List[List[Optional[Any]]]:
    """``mesh[i][j]`` is rank *i*'s connection to rank *j* (None on the
    diagonal).  Built in the parent before forking; children inherit the
    whole mesh and close every end that is not theirs."""
    mesh: List[List[Optional[Any]]] = [
        [None] * nranks for _ in range(nranks)
    ]
    for i in range(nranks):
        for j in range(i + 1, nranks):
            a, b = ctx.Pipe(duplex=True)
            mesh[i][j] = a
            mesh[j][i] = b
    return mesh


def close_mesh_except(mesh: List[List[Optional[Any]]], keep_rank: Optional[int]) -> None:
    """Close every connection in the mesh except ``keep_rank``'s row.
    ``keep_rank=None`` (the parent) closes everything."""
    for i, row in enumerate(mesh):
        if i == keep_rank:
            continue
        # Row i belongs to rank i.  Closing our inherited copies of every
        # other rank's ends (including peers' ends of our own pipes) is
        # what makes a dead peer observable as EOF instead of a hang.
        for conn in row:
            if conn is not None:
                conn.close()


class SenderThread:
    """Eager-buffered outbound path: one thread, one FIFO queue.

    ``send(conn, frame)`` returns immediately; frames are pickled in the
    caller and written in order, so per-destination frame order equals
    enqueue order.  Errors (a dead peer's broken pipe) are latched and
    re-raised on the rank program's next op boundary.

    Fast path: a small frame headed for a connection with nothing queued
    *and* an empty kernel send buffer is written inline by the calling
    thread — one atomic ``<= PIPE_BUF`` write that provably cannot block.
    This skips the thread handoff entirely, which matters most on
    oversubscribed hosts where waking the sender thread costs a scheduler
    round trip per message.  Everything else takes the queue, preserving
    the never-blocks-the-rank guarantee for bulk traffic."""

    def __init__(self) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._queued: dict = {}   # conn -> frames handed to the thread
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                return
            if isinstance(item, tuple) and item[0] is _FLUSH:
                item[1].set()
                continue
            conn, buf = item
            try:
                conn.send_bytes(buf)
            except BaseException as exc:  # latch; the main thread raises
                self._error = exc
                return
            with self._lock:
                self._queued[conn] -= 1

    def send(self, conn, frame: Tuple) -> int:
        """Enqueue one frame; returns the pickled frame size in bytes —
        the *pipe* traffic this message costs, which the shm data plane's
        accounting compares against the payload bytes it hoisted."""
        self.check()
        buf = bytes(ForkingPickler.dumps(frame))
        with self._lock:
            if (
                len(buf) <= _INLINE_MAX
                and not self._queued.get(conn)
                and _outq_empty(conn)
            ):
                # Nothing in flight to this peer, whole frame fits one
                # atomic pipe write: send inline, no thread wakeup.
                try:
                    conn.send_bytes(buf)
                except BaseException as exc:
                    self._error = exc
                return len(buf)
            self._queued[conn] = self._queued.get(conn, 0) + 1
        self._q.put((conn, buf))
        return len(buf)

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything queued so far is on the wire, without
        stopping the thread (pool workers flush between jobs and keep the
        sender for the next one)."""
        event = threading.Event()
        self._q.put((_FLUSH, event))
        if not event.wait(timeout):
            self.check()
            raise CommunicationError(
                f"sender thread failed to flush outbound messages within "
                f"{timeout}s (peer not draining?)"
            )
        self.check()

    def check(self) -> None:
        if self._error is not None:
            raise CommunicationError(
                f"send to peer failed: {self._error!r} (peer process died?)"
            )

    def flush_and_stop(self, timeout: float = 30.0) -> None:
        """Stop the thread after everything queued so far is on the wire."""
        self._q.put(_STOP)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise CommunicationError(
                "sender thread failed to flush outbound messages "
                f"within {timeout}s (peer not draining?)"
            )
        self.check()
