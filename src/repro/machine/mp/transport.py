"""Pipe-mesh transport for the real-process backend.

Every pair of ranks shares one duplex OS pipe, and every rank shares one
*control* pipe with the parent.  A message is one pickled frame

    (tag, seq, nbytes, send_wall, payload)

written to the pairwise pipe; per ``(source, tag)`` FIFO order follows
directly from pipe FIFO order, exactly the guarantee the virtual-time
engine provides.  Sends never block the rank program: a per-process
sender thread drains an unbounded queue (MPI-style eager buffering), so
the head-to-head exchange pattern the executor emits (all sends before
all receives) cannot deadlock on a full pipe buffer.

The receive side buffers drained frames per ``(source, tag)`` channel
and stamps each with a local arrival index, which is what wildcard
receives order by — see :mod:`repro.machine.mp.worker` for the exact
(relaxed) wildcard semantics.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, List, Optional, Tuple

from repro.errors import CommunicationError

# Frame field indices (plain tuples keep pickling cheap).
FRAME_TAG = 0
FRAME_SEQ = 1
FRAME_NBYTES = 2
FRAME_WALL = 3
FRAME_PAYLOAD = 4

#: sentinel enqueued to stop a sender thread
_STOP = object()


def build_pipe_mesh(ctx, nranks: int) -> List[List[Optional[Any]]]:
    """``mesh[i][j]`` is rank *i*'s connection to rank *j* (None on the
    diagonal).  Built in the parent before forking; children inherit the
    whole mesh and close every end that is not theirs."""
    mesh: List[List[Optional[Any]]] = [
        [None] * nranks for _ in range(nranks)
    ]
    for i in range(nranks):
        for j in range(i + 1, nranks):
            a, b = ctx.Pipe(duplex=True)
            mesh[i][j] = a
            mesh[j][i] = b
    return mesh


def close_mesh_except(mesh: List[List[Optional[Any]]], keep_rank: Optional[int]) -> None:
    """Close every connection in the mesh except ``keep_rank``'s row.
    ``keep_rank=None`` (the parent) closes everything."""
    for i, row in enumerate(mesh):
        if i == keep_rank:
            continue
        # Row i belongs to rank i.  Closing our inherited copies of every
        # other rank's ends (including peers' ends of our own pipes) is
        # what makes a dead peer observable as EOF instead of a hang.
        for conn in row:
            if conn is not None:
                conn.close()


class SenderThread:
    """Eager-buffered outbound path: one thread, one FIFO queue.

    ``send(conn, frame)`` enqueues and returns immediately; the thread
    pickles and writes in order, so per-destination frame order equals
    enqueue order.  Errors (a dead peer's broken pipe) are latched and
    re-raised on the rank program's next op boundary."""

    def __init__(self) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                return
            conn, frame = item
            try:
                conn.send(frame)
            except BaseException as exc:  # latch; the main thread raises
                self._error = exc
                return

    def send(self, conn, frame: Tuple) -> None:
        self.check()
        self._q.put((conn, frame))

    def check(self) -> None:
        if self._error is not None:
            raise CommunicationError(
                f"send to peer failed: {self._error!r} (peer process died?)"
            )

    def flush_and_stop(self, timeout: float = 30.0) -> None:
        """Stop the thread after everything queued so far is on the wire."""
        self._q.put(_STOP)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise CommunicationError(
                "sender thread failed to flush outbound messages "
                f"within {timeout}s (peer not draining?)"
            )
        self.check()
