"""Real-parallelism backend: one OS process per rank.

Same op protocol as the virtual-time simulator (:mod:`repro.machine.api`),
so rank programs — the Kali interpreter, the inspector/executor runtime,
collectives, redistribution, the apps — run unchanged::

    from repro.machine.mp import MpEngine
    result = MpEngine(machine, nranks=4).run(program)

See :mod:`repro.machine.mp.engine` for semantics (wall-clock time,
relaxed wildcard ordering) and docs/internals.md §10 for the protocol.
"""

from repro.machine.mp.engine import MpEngine, run_spmd_mp
from repro.machine.shm import ShmDataPlane, ShmError, ShmRef

__all__ = ["MpEngine", "run_spmd_mp", "ShmDataPlane", "ShmError", "ShmRef"]
