"""Simulated distributed-memory machine.

This package replaces the paper's physical NCUBE/7 and iPSC/2 hypercubes
with a deterministic discrete-event SPMD simulator:

* :mod:`repro.machine.topology` — interconnect topologies (hypercube, mesh),
* :mod:`repro.machine.cost`     — calibrated per-machine cost models,
* :mod:`repro.machine.engine`   — the event-driven engine running one Python
  generator per rank under virtual time,
* :mod:`repro.machine.api`      — the rank-side facade (ops to ``yield``),
* :mod:`repro.machine.stats`    — per-rank phase timers and counters.

Rank programs are ordinary generator functions: they ``yield`` communication
and compute *ops* and the engine advances per-rank virtual clocks according
to the cost model.  All results are exactly reproducible run-to-run.
"""

from repro.machine.topology import Hypercube, Mesh2D, FullyConnected, Topology
from repro.machine.cost import MachineModel, NCUBE7, IPSC2, MODERN, IDEAL
from repro.machine.engine import Engine, RunResult
from repro.machine.api import Send, Recv, Compute, Now, ANY_SOURCE, ANY_TAG, Rank

__all__ = [
    "Topology",
    "Hypercube",
    "Mesh2D",
    "FullyConnected",
    "MachineModel",
    "NCUBE7",
    "IPSC2",
    "MODERN",
    "IDEAL",
    "Engine",
    "RunResult",
    "Send",
    "Recv",
    "Compute",
    "Now",
    "ANY_SOURCE",
    "ANY_TAG",
    "Rank",
]
