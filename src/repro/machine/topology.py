"""Interconnect topologies.

The engine charges a per-hop transit latency for each message, so the
topology's only job is to answer *how many hops* separate two nodes and who
the physical neighbours of a node are.  Both evaluation machines of the
paper are binary hypercubes; a 2-D mesh and a fully connected (crossbar)
topology are provided for experiments and tests.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.util.gray import hamming_distance, is_power_of_two, log2_exact


class Topology:
    """Abstract interconnect: node count, hop distances, neighbour lists."""

    def __init__(self, size: int):
        if size < 1:
            raise TopologyError(f"topology needs >= 1 node, got {size}")
        self.size = int(size)

    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between two nodes."""
        raise NotImplementedError

    def neighbors(self, node: int) -> List[int]:
        """Directly connected nodes."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum hop distance over all node pairs."""
        raise NotImplementedError

    def _check(self, node: int) -> None:
        if not (0 <= node < self.size):
            raise TopologyError(f"node {node} outside topology of size {self.size}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self.size})"


class Hypercube(Topology):
    """Binary d-cube: node ids are bit strings; hops = Hamming distance.

    This is the interconnect of the NCUBE/7 (up to d=10) and iPSC/2
    (up to d=7) used in the paper's evaluation.
    """

    def __init__(self, size: int):
        if not is_power_of_two(size):
            raise TopologyError(f"hypercube size must be a power of two, got {size}")
        super().__init__(size)
        self.dimension = log2_exact(size)

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return hamming_distance(src, dst)

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        return [node ^ (1 << d) for d in range(self.dimension)]

    def diameter(self) -> int:
        return self.dimension


class Mesh2D(Topology):
    """``rows x cols`` mesh without wraparound; hops = Manhattan distance."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise TopologyError("mesh dimensions must be >= 1")
        super().__init__(rows * cols)
        self.rows, self.cols = int(rows), int(cols)

    def _coords(self, node: int):
        return divmod(node, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        r1, c1 = self._coords(src)
        r2, c2 = self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        r, c = self._coords(node)
        out = []
        if r > 0:
            out.append(node - self.cols)
        if r < self.rows - 1:
            out.append(node + self.cols)
        if c > 0:
            out.append(node - 1)
        if c < self.cols - 1:
            out.append(node + 1)
        return out

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)


class FullyConnected(Topology):
    """Crossbar: every pair one hop apart.  Useful as an idealised network."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        return [n for n in range(self.size) if n != node]

    def diameter(self) -> int:
        return 0 if self.size == 1 else 1
