"""Per-rank timing and counter accounting.

The paper reports *phase* times — "inspector time", "executor time", total
— as observed on the parallel machine.  The engine therefore attributes
every virtual-time charge to a named phase, and :class:`RunResult`
aggregates per-rank phase clocks the same way the paper's instrumentation
did (a phase's parallel time is the maximum over ranks).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RankStats:
    """Virtual-time and event accounting for a single rank."""

    rank: int
    phase_time: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def charge(self, phase: str, seconds: float) -> None:
        self.phase_time[phase] += seconds

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def total_time(self) -> float:
        return sum(self.phase_time.values())


@dataclass
class RunResult:
    """Outcome of one SPMD run: per-rank stats, clocks, and return values.

    ``trace`` holds :class:`repro.machine.trace.TraceEvent` records when
    the engine ran with ``trace=True`` (None otherwise).
    """

    nranks: int
    clocks: List[float]
    stats: List[RankStats]
    values: List[object]
    trace: Optional[list] = None

    @property
    def makespan(self) -> float:
        """Virtual completion time of the whole program (max rank clock)."""
        return max(self.clocks) if self.clocks else 0.0

    def phase_max(self, phase: str) -> float:
        """Parallel time of a phase: the maximum charge over ranks.

        This matches how the paper's tables report inspector/executor time
        (all ranks run the phase concurrently; the slowest determines it).
        """
        return max((s.phase_time.get(phase, 0.0) for s in self.stats), default=0.0)

    def phase_sum(self, phase: str) -> float:
        """Aggregate work in a phase across all ranks (for efficiency calc)."""
        return sum(s.phase_time.get(phase, 0.0) for s in self.stats)

    def phases(self) -> List[str]:
        names = set()
        for s in self.stats:
            names.update(s.phase_time)
        return sorted(names)

    def counter_sum(self, name: str) -> int:
        return sum(s.counters.get(name, 0) for s in self.stats)

    def counter_max(self, name: str) -> int:
        return max((s.counters.get(name, 0) for s in self.stats), default=0)

    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    def summary(self) -> str:
        lines = [
            f"ranks={self.nranks} makespan={self.makespan:.6f}s "
            f"msgs={self.total_messages()} bytes={self.total_bytes()}"
        ]
        for phase in self.phases():
            lines.append(
                f"  phase {phase:<16} max={self.phase_max(phase):.6f}s "
                f"sum={self.phase_sum(phase):.6f}s"
            )
        return "\n".join(lines)
