"""Calibrated machine cost models.

The simulator charges virtual time from *operation counts*, so reproducing
the paper's tables reduces to choosing per-operation constants for each
machine.  The constants below were calibrated against the paper's own
measurements (its Figures 7-10); the derivation is documented in
``repro.bench.calibration`` and EXPERIMENTS.md.  In brief, from the
128x128-mesh runs:

* NCUBE/7 executor, P=2: 244.04 s / 100 sweeps / 8192 node-updates per rank
  gives ~298 us per node per sweep covering BOTH foralls of Figure 4 (the
  old_a copy plus the relaxation).  Per node that is 2 iteration bases,
  9 charged array references (4 neighbours + coef + a + write in the
  relaxation; read + write in the copy) and 8 flops:
  298 = 2*iter_base + 9*ref_local + 8*flop.
* The speedup deficit at large P is a *constant* ~85 ms/sweep independent
  of P — exactly the 2x128 boundary references each rank resolves through
  the O(log r) search structure, giving ~330 us per nonlocal access on the
  NCUBE (the paper blames slow procedure calls; §4).
* NCUBE/7 inspector time decomposes into a per-reference locality check
  (~55 us) plus a per-stage crystal-router combine cost (~190 ms/stage,
  log2 P stages) — this reproduces the U-shaped inspector curve with its
  minimum near P=16.
* iPSC/2 numbers decompose the same way with a ~4x faster node, ~6x faster
  locality check and a far cheaper combine stage, matching the paper's
  remark that small-message communication is much cheaper on the iPSC.

All times are in seconds; ``beta`` is seconds per byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import log2


@dataclass(frozen=True)
class MachineModel:
    """Per-operation virtual-time costs for one machine.

    Hardware parameters
    -------------------
    alpha_send / alpha_recv : message startup cost on sender / receiver.
    beta                    : per-byte transfer cost (charged to the sender).
    hop                     : per-hop wire latency added to arrival time.
    flop                    : one floating-point operation.

    Runtime (software) parameters
    -----------------------------
    ref_local      : executor cost of one local array reference (indexing,
                     address arithmetic; Fig. 6's local loop body overhead).
    iter_base      : per-iteration loop overhead in the executor.
    search_base    : fixed cost of resolving one nonlocal reference via the
                     sorted-range table (procedure calls etc.; §4).
    search_factor  : additional cost per level of the O(log r) binary search.
    inspect_ref    : inspector cost of one locality check (Fig. 6 first loop).
    insert_elem    : inspector cost of inserting one nonlocal element into
                     the sorted range arrays ("the disadvantage of sorted
                     arrays is the insertion time of O(r)"; §3.3).
    combine_stage  : fixed software cost of one crystal-router combine stage
                     (list merge + buffer management; §3.3).
    combine_byte   : per-byte cost during a combine stage.
    copy_elem      : per-element cost of packing/unpacking message buffers.
    """

    name: str
    alpha_send: float
    alpha_recv: float
    beta: float
    hop: float
    flop: float
    ref_local: float
    iter_base: float
    search_base: float
    search_factor: float
    inspect_ref: float
    insert_elem: float
    combine_stage: float
    combine_byte: float
    copy_elem: float

    # --- communication -----------------------------------------------------

    def send_busy(self, nbytes: int) -> float:
        """Time the *sender* is occupied injecting a message."""
        return self.alpha_send + self.beta * nbytes

    def transit(self, nbytes: int, hops: int) -> float:
        """Extra wire time before the message is available at the receiver."""
        return self.hop * max(hops, 0)

    def recv_busy(self, nbytes: int) -> float:
        """Time the *receiver* is occupied draining a matched message."""
        return self.alpha_recv

    # --- runtime operations ---------------------------------------------------

    def search_cost(self, num_ranges: int) -> float:
        """Cost of one nonlocal-element lookup among ``num_ranges`` ranges."""
        levels = log2(num_ranges) if num_ranges > 1 else 0.0
        return self.search_base + self.search_factor * levels

    def with_overrides(self, **kwargs) -> "MachineModel":
        """A copy with some parameters replaced (for ablations)."""
        return replace(self, **kwargs)


# --- presets -------------------------------------------------------------------
#
# Calibration targets (paper Figures 7-10) are reproduced in
# tests/test_calibration.py; see repro/bench/calibration.py for the full
# derivation of each constant.

NCUBE7 = MachineModel(
    name="NCUBE/7",
    alpha_send=384e-6,
    alpha_recv=150e-6,
    beta=2.6e-6,
    hop=5e-6,
    flop=10e-6,
    ref_local=17.6e-6,
    iter_base=30e-6,
    search_base=318e-6,
    search_factor=8e-6,
    inspect_ref=55e-6,
    insert_elem=200e-6,
    combine_stage=0.190,
    combine_byte=2.6e-6,
    copy_elem=2e-6,
)

IPSC2 = MachineModel(
    name="iPSC/2",
    alpha_send=350e-6,
    alpha_recv=100e-6,
    beta=0.4e-6,
    hop=2e-6,
    flop=2.5e-6,
    ref_local=4.2e-6,
    iter_base=8e-6,
    search_base=53e-6,
    search_factor=2e-6,
    inspect_ref=9.8e-6,
    insert_elem=20e-6,
    combine_stage=3.5e-3,
    combine_byte=0.4e-6,
    copy_elem=0.5e-6,
)

# A 2020s commodity cluster node (per-core figures; ~2 us RDMA-ish startup,
# 25 GbE bandwidth, superscalar core).  Not calibrated against any paper —
# it exists for the "then vs now" extension benchmark, which shows how the
# trade-offs the paper agonised over (inspector overhead, O(log r) search
# cost) all but vanish when compute and messaging get 4-6 orders of
# magnitude faster while the *algorithmic structure* stays identical.
MODERN = MachineModel(
    name="modern-cluster",
    alpha_send=2e-6,
    alpha_recv=1e-6,
    beta=4e-11,
    hop=2e-7,
    flop=5e-10,
    ref_local=1.5e-9,
    iter_base=2e-9,
    search_base=2.5e-8,
    search_factor=2e-9,
    inspect_ref=3e-9,
    insert_elem=8e-9,
    combine_stage=6e-6,
    combine_byte=4e-11,
    copy_elem=1e-9,
)

# A zero-latency, unit-cost machine for unit tests: virtual times become
# simple operation counts, which makes assertions exact.
IDEAL = MachineModel(
    name="ideal",
    alpha_send=0.0,
    alpha_recv=0.0,
    beta=0.0,
    hop=0.0,
    flop=1.0,
    ref_local=1.0,
    iter_base=1.0,
    search_base=1.0,
    search_factor=0.0,
    inspect_ref=1.0,
    insert_elem=0.0,
    combine_stage=0.0,
    combine_byte=0.0,
    copy_elem=0.0,
)

PRESETS = {m.name: m for m in (NCUBE7, IPSC2, MODERN, IDEAL)}
