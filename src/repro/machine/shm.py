"""Shared-memory data plane for the real-process backends.

The mp backend and the warm pool move every payload as a pickled frame
through a pipe: serialize, copy into the kernel, copy back out,
deserialize.  For the bulk traffic the runtime generates — scattered
operands inside shipped closures, gathered result environments,
redistribute all-to-alls, whole-schedule ship lists — that is three
copies too many.  :class:`ShmDataPlane` replaces the payload bytes with
*index writes*: large contiguous ``ndarray`` (and raw ``bytes``) payloads
are copied once into a ``multiprocessing.shared_memory`` segment mapped
by every process, and the pipe frame carries only a :class:`ShmRef` —
segment name, offset, dtype, shape, content tag.  Small payloads keep
the pickle path (and its ``PIPE_BUF``-atomic inline-send fast path): the
crossover is ``threshold`` bytes.

Design (docs/dataplane.md has the full treatment):

* **Parties.**  ``nranks`` rank processes plus the parent supervisor
  (party id ``nranks``).  The plane is created in the parent *before*
  forking, so every party inherits the primary segment mapping for free.
* **Single-writer slots instead of locks.**  Pure Python has no
  cross-process atomic read-modify-write, so the layout never needs one:
  every shared int64 slot has exactly one writer.  The segment header is
  an aligned int64 array with a per-party group of monotonic indices
  (blocks/bytes published, blocks/bytes consumed, arena high-water mark)
  written only by that party; each block header is one content-tag slot
  (written by the block's owner) plus one ack slot per party (written
  only by that consumer).  Torn reads cannot happen — aligned 8-byte
  loads/stores are atomic on every platform ``fork`` exists on.
* **Arenas.**  The primary segment is split into one arena per party;
  a party allocates blocks only from its own arena (bump pointer + a
  size-split free list), so allocation needs no coordination at all.
  On exhaustion the owner first *reclaims* — frees every outstanding
  block whose consumers have all set their ack slots — then *grows* by
  creating a fresh named segment; consumers attach on first reference.
* **Content tags.**  Every block carries an owner-unique tag, checked on
  read and zeroed on free.  A stale :class:`ShmRef` (use after reclaim)
  or a second read by the same party (double free of the consumer side)
  raises :class:`ShmError` instead of silently reading recycled bytes.
* **Failure semantics.**  Segments are named ``repro-shm-<token>-…``.
  The creator unlinks its own on :meth:`close`; ``sweep_orphans`` then
  unlinks anything left under the prefix, which is how a pool reclaims
  the grown segments of a crashed worker (the crash condemned the mesh,
  so nothing can still reference them).

The plane changes *transport only*: message counts, ``nbytes``, and
virtual/wall phase accounting are computed from the original payload
exactly as before, so the sim/mp differential harness and the obs comm
matrix reconcile bit-for-bit with the plane on or off.
"""

from __future__ import annotations

import copy
import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import KaliError

__all__ = [
    "ShmError",
    "ShmRef",
    "ShmDataPlane",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_THRESHOLD",
    "shm_enabled_default",
    "shm_threshold_default",
]


class ShmError(KaliError):
    """Shared-memory data-plane misuse or exhaustion."""


#: total size of the primary segment (header + one arena per party).
#: Pages are allocated lazily by the kernel, so an oversized segment
#: costs address space, not memory.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

#: payloads smaller than this stay on the pickle path — below a few KiB
#: the pipe write is one atomic syscall and beats the block bookkeeping.
DEFAULT_THRESHOLD = 2048

_MAGIC = 0x4B414C49_53484D01  # "KALISHM" v1
_ALIGN = 64
#: per-party header slots: blocks/bytes published, blocks/bytes
#: consumed, arena high-water mark
_PARTY_SLOTS = 5
_SLOT_PUB_BLOCKS, _SLOT_PUB_BYTES, _SLOT_CON_BLOCKS, _SLOT_CON_BYTES, \
    _SLOT_HWM = range(_PARTY_SLOTS)

#: minimum leftover worth keeping as a free-list entry after a split
_MIN_SPLIT = 256

_token_counter = itertools.count(1)


def shm_enabled_default() -> bool:
    """Data-plane default: on, unless ``REPRO_SHM=0`` (kill switch)."""
    return os.environ.get("REPRO_SHM", "1").lower() not in ("0", "off", "no")


def shm_threshold_default() -> int:
    try:
        return int(os.environ.get("REPRO_SHM_THRESHOLD", DEFAULT_THRESHOLD))
    except ValueError:
        return DEFAULT_THRESHOLD


def _align(n: int, a: int = _ALIGN) -> int:
    return (n + a - 1) // a * a


def _untrack(name: str) -> None:
    """Opt this process's resource tracker out of ``name``.

    The plane manages segment lifetime itself (explicit unlinks plus a
    prefix sweep at teardown); leaving segments registered makes the
    tracker warn about — or double-unlink — segments another process
    already cleaned up."""
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _unlink_segment(name: str) -> None:
    """Remove a segment by name without touching the resource tracker
    (``SharedMemory.unlink`` would send an unregister for a name we
    already unregistered at create time)."""
    try:
        import _posixshmem

        _posixshmem.shm_unlink("/" + name)
    except FileNotFoundError:
        pass
    except ImportError:  # pragma: no cover - non-POSIX fallback
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass
    except OSError:  # pragma: no cover - platform quirks
        pass


@dataclass(frozen=True)
class ShmRef:
    """A pipe-sized stand-in for a payload living in shared memory.

    ``dtype`` is a numpy dtype string for array payloads and ``None``
    for raw bytes.  ``tag`` is the owner-unique content tag checked on
    every read."""

    segment: str
    offset: int
    nbytes: int
    tag: int
    dtype: Optional[str] = None
    shape: Optional[Tuple[int, ...]] = None


class _Seg:
    """One mapped segment: the SharedMemory plus an int64 view for the
    single-writer header/tag/ack slots (all offsets are 8-aligned)."""

    __slots__ = ("shm", "buf", "i64", "size", "owned")

    def __init__(self, shm: shared_memory.SharedMemory, owned: bool):
        self.shm = shm
        self.buf = shm.buf
        self.size = shm.size
        self.i64 = np.frombuffer(shm.buf, dtype=np.int64,
                                 count=shm.size // 8)
        self.owned = owned

    def close(self, unlink: bool = False) -> None:
        # Drop numpy/memoryview references before closing the mapping —
        # SharedMemory.close() raises if exported pointers remain.
        self.i64 = None
        self.buf = None
        name = self.shm.name
        try:
            self.shm.close()
        except Exception:
            pass
        if unlink:
            _unlink_segment(name)


class _Arena:
    """One allocation region owned by a single party (no sharing)."""

    __slots__ = ("segment", "base", "size", "bump", "free")

    def __init__(self, segment: str, base: int, size: int):
        self.segment = segment
        self.base = base
        self.size = size
        self.bump = 0                      # next never-used offset
        self.free: List[Tuple[int, int]] = []   # (abs offset, size)

    def alloc(self, need: int) -> Optional[int]:
        for i, (off, sz) in enumerate(self.free):
            if sz >= need:
                del self.free[i]
                if sz - need >= _MIN_SPLIT:
                    self.free.append((off + need, sz - need))
                return off
        if self.size - self.bump >= need:
            off = self.base + self.bump
            self.bump += need
            return off
        return None

    def release(self, off: int, size: int) -> None:
        if off - self.base + size == self.bump:
            self.bump -= size          # give the tail back to the bump
        else:
            self.free.append((off, size))

    def in_use(self) -> int:
        return self.bump - sum(sz for _off, sz in self.free)


class ShmDataPlane:
    """Per-mesh shared-memory transport for bulk payloads.

    Create in the parent **before** forking (children inherit the
    primary mapping); each process then calls :meth:`attach` with its
    party id — rank ids ``0..nranks-1``, or :attr:`parent_party` for the
    supervisor — before publishing or reading blocks.
    """

    def __init__(
        self,
        nranks: int,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        threshold: int = DEFAULT_THRESHOLD,
    ):
        if nranks < 1:
            raise ShmError(f"data plane needs nranks >= 1, got {nranks}")
        self.nranks = nranks
        self.nparties = nranks + 1
        self.threshold = max(int(threshold), 64)
        #: block header: one tag slot + one ack slot per party
        self._blk_hdr = _align(8 * (1 + self.nparties), 8)
        self._hdr_len = 2 + _PARTY_SLOTS * self.nparties     # int64 slots
        hdr_bytes = _align(8 * self._hdr_len)
        arena = _align(max(segment_bytes - hdr_bytes, 0) // self.nparties
                       - _ALIGN)
        if arena < 4 * self._blk_hdr:
            raise ShmError(
                f"segment_bytes={segment_bytes} leaves no room for "
                f"{self.nparties} arenas"
            )
        self._arena_bytes = arena
        self._grow_bytes = max(arena, 1 << 20)
        self.token = f"{os.getpid():x}-{next(_token_counter)}"
        self.prefix = f"repro-shm-{self.token}"
        self.primary = f"{self.prefix}-s0"
        total = hdr_bytes + self.nparties * self._arena_bytes
        shm = shared_memory.SharedMemory(
            name=self.primary, create=True, size=total)
        _untrack(self.primary)
        self._primary_seg = _Seg(shm, owned=True)
        self._primary_seg.i64[: self._hdr_len] = 0
        self._primary_seg.i64[0] = _MAGIC
        self._primary_seg.i64[1] = self.nparties
        self._hdr_bytes = hdr_bytes
        self._creator_pid = os.getpid()
        self._closed = False
        self.attach(self.parent_party)

    # --- identity ---------------------------------------------------------

    @property
    def parent_party(self) -> int:
        """Party id of the supervisor process."""
        return self.nranks

    @property
    def party(self) -> int:
        return self._party

    # --- per-process state ------------------------------------------------

    def attach(self, party: int) -> "ShmDataPlane":
        """(Re)initialise this *process's* view of the plane as ``party``.

        Called once per process after fork.  Resets all process-local
        allocator state — safe because a fork duplicates the parent's
        bookkeeping, which describes blocks this party does not own."""
        if not 0 <= party < self.nparties:
            raise ShmError(f"party {party} out of range 0..{self.nparties - 1}")
        self._party = party
        base = self._hdr_bytes + party * self._arena_bytes
        self._arenas: List[_Arena] = [
            _Arena(self.primary, base, self._arena_bytes)
        ]
        self._segments: Dict[str, _Seg] = {self.primary: self._primary_seg}
        self._own_grown: List[str] = []
        self._grow_counter = 0
        self._tag_counter = 0
        #: blocks this party published and has not yet reclaimed:
        #: tag -> (segment, offset, size, consumers)
        self._outstanding: Dict[int, Tuple[str, int, int, Tuple[int, ...]]] = {}
        self.hwm_bytes = 0
        self.fallbacks = 0
        return self

    # --- allocation (owner side) -----------------------------------------

    def _hdr_slot(self, party: int, slot: int) -> int:
        return 2 + _PARTY_SLOTS * party + slot

    def _next_tag(self) -> int:
        # Owner-unique and never zero: party in the low bits, a local
        # monotonic counter above.  Zero marks a freed block.
        self._tag_counter += 1
        return self._tag_counter * self.nparties + self._party + 1

    def _alloc(self, need: int) -> Optional[Tuple[str, int]]:
        for arena in self._arenas:
            off = arena.alloc(need)
            if off is not None:
                return arena.segment, off
        return None

    def _grow(self, need: int) -> None:
        size = _align(max(self._grow_bytes, need + _ALIGN))
        self._grow_counter += 1
        name = f"{self.prefix}-p{self._party}-g{self._grow_counter}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        _untrack(name)
        self._segments[name] = _Seg(shm, owned=True)
        self._own_grown.append(name)
        self._arenas.append(_Arena(name, 0, size))

    def _publish(
        self,
        nbytes: int,
        consumers: Sequence[int],
        write,          # callable(np.uint8 view of the payload region)
        dtype: Optional[str],
        shape: Optional[Tuple[int, ...]],
    ) -> Optional[ShmRef]:
        """Allocate + fill one block; None when allocation fails (the
        caller falls back to the pickle path)."""
        consumers = tuple(sorted(set(consumers)))
        if not consumers:
            raise ShmError("publish needs at least one consumer")
        for c in consumers:
            if not 0 <= c < self.nparties or c == self._party:
                raise ShmError(f"bad consumer party {c}")
        need = _align(self._blk_hdr + nbytes)
        addr = self._alloc(need)
        if addr is None:
            self.reclaim()
            addr = self._alloc(need)
        if addr is None:
            try:
                self._grow(need)
            except Exception:
                return None     # host /dev/shm exhausted: fall back
            addr = self._alloc(need)
        if addr is None:  # pragma: no cover - grow sized to fit
            return None
        segname, off = addr
        seg = self._segments[segname]
        h = off // 8
        tag = self._next_tag()
        seg.i64[h + 1: h + 1 + self.nparties] = 0    # acks before tag
        seg.i64[h] = tag
        write(np.frombuffer(seg.buf, dtype=np.uint8, count=nbytes,
                            offset=off + self._blk_hdr))
        self._outstanding[tag] = (segname, off, need, consumers)
        i64 = self._primary_seg.i64
        i64[self._hdr_slot(self._party, _SLOT_PUB_BLOCKS)] += 1
        i64[self._hdr_slot(self._party, _SLOT_PUB_BYTES)] += nbytes
        in_use = sum(a.in_use() for a in self._arenas)
        if in_use > self.hwm_bytes:
            self.hwm_bytes = in_use
            i64[self._hdr_slot(self._party, _SLOT_HWM)] = in_use
        return ShmRef(segment=segname, offset=off, nbytes=nbytes, tag=tag,
                      dtype=dtype, shape=shape)

    def reclaim(self) -> Tuple[int, int]:
        """Free every outstanding block whose consumers have all acked.
        Returns ``(blocks, bytes)`` reclaimed."""
        blocks = freed = 0
        for tag, (segname, off, size, consumers) in list(
                self._outstanding.items()):
            seg = self._segments[segname]
            h = off // 8
            if all(seg.i64[h + 1 + c] for c in consumers):
                seg.i64[h] = 0      # kill the tag: stale refs now fail
                self._arena_for(segname).release(off, size)
                del self._outstanding[tag]
                blocks += 1
                freed += size
        return blocks, freed

    def _arena_for(self, segname: str) -> _Arena:
        for arena in self._arenas:
            if arena.segment == segname:
                return arena
        raise ShmError(f"no arena for segment {segname!r}")  # pragma: no cover

    # --- publish / read ---------------------------------------------------

    def publish_array(self, arr: np.ndarray,
                      consumers: Sequence[int]) -> Optional[ShmRef]:
        c = np.ascontiguousarray(arr)
        return self._publish(
            c.nbytes, consumers,
            lambda view: np.copyto(
                view.view(c.dtype)[: c.size].reshape(c.shape), c),
            dtype=c.dtype.str, shape=tuple(c.shape),
        )

    def publish_bytes(self, data: bytes,
                      consumers: Sequence[int]) -> Optional[ShmRef]:
        return self._publish(
            len(data), consumers,
            lambda view: view.__setitem__(slice(None),
                                          np.frombuffer(data, np.uint8)),
            dtype=None, shape=None,
        )

    def _attach_seg(self, name: str) -> _Seg:
        seg = self._segments.get(name)
        if seg is None:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                raise ShmError(
                    f"shm segment {name!r} is gone (reclaimed after a "
                    "crash or reset?)"
                ) from None
            _untrack(name)
            seg = _Seg(shm, owned=False)
            self._segments[name] = seg
        return seg

    def read(self, ref: ShmRef) -> Any:
        """Consume one block: verify the tag, copy the payload out, set
        this party's ack slot.  Each party may read a ref exactly once."""
        seg = self._attach_seg(ref.segment)
        h = ref.offset // 8
        if int(seg.i64[h]) != ref.tag:
            raise ShmError(
                f"stale shm ref (tag {ref.tag} != block tag "
                f"{int(seg.i64[h])}): block was reclaimed or never published"
            )
        ack = h + 1 + self._party
        if seg.i64[ack]:
            raise ShmError(
                f"double consume: party {self._party} already read block "
                f"tag {ref.tag}"
            )
        payload_off = ref.offset + self._blk_hdr
        if ref.dtype is None:
            out: Any = bytes(seg.buf[payload_off: payload_off + ref.nbytes])
        else:
            dt = np.dtype(ref.dtype)
            out = np.frombuffer(
                seg.buf, dtype=dt, count=ref.nbytes // dt.itemsize,
                offset=payload_off,
            ).reshape(ref.shape).copy()
        seg.i64[ack] = 1
        i64 = self._primary_seg.i64
        i64[self._hdr_slot(self._party, _SLOT_CON_BLOCKS)] += 1
        i64[self._hdr_slot(self._party, _SLOT_CON_BYTES)] += ref.nbytes
        return out

    # --- payload walking --------------------------------------------------

    def encode(self, obj: Any,
               consumers: Sequence[int]) -> Tuple[Any, int, int, int]:
        """Hoist large arrays/bytes in ``obj`` into shm blocks readable by
        ``consumers``.  Returns ``(encoded, bytes, blocks, fallbacks)``;
        the encoded object mirrors ``obj`` with :class:`ShmRef` leaves."""
        state = [0, 0, 0]
        out = self._enc(obj, tuple(consumers), state)
        return out, state[0], state[1], state[2]

    def _enc(self, o: Any, consumers: Tuple[int, ...], state: List[int]):
        if isinstance(o, np.ndarray):
            if o.nbytes >= self.threshold and not o.dtype.hasobject:
                ref = self.publish_array(o, consumers)
                if ref is None:
                    state[2] += 1
                    return o
                state[0] += o.nbytes
                state[1] += 1
                return ref
            return o
        if isinstance(o, (bytes, bytearray)) and len(o) >= self.threshold:
            ref = self.publish_bytes(bytes(o), consumers)
            if ref is None:
                state[2] += 1
                return o
            state[0] += len(o)
            state[1] += 1
            return ref
        if type(o) is dict:
            enc = {k: self._enc(v, consumers, state) for k, v in o.items()}
            return enc if any(enc[k] is not o[k] for k in o) else o
        if type(o) in (tuple, list):
            enc = [self._enc(v, consumers, state) for v in o]
            if all(a is b for a, b in zip(enc, o)):
                return o
            return tuple(enc) if type(o) is tuple else enc
        fields = getattr(type(o), "__shm_fields__", None)
        if fields:
            # Opt-in hoist protocol: a class lists the attributes that may
            # hold bulk data (LocalArray.data, _RankOutcome.env/value).
            # The original object is never mutated — hoisted attributes go
            # on a shallow copy, so driver/sim aliasing is preserved.
            enc_attrs = {f: self._enc(getattr(o, f), consumers, state)
                         for f in fields}
            if all(enc_attrs[f] is getattr(o, f) for f in fields):
                return o
            c = copy.copy(o)
            for f, v in enc_attrs.items():
                setattr(c, f, v)
            return c
        return o

    def decode(self, obj: Any) -> Tuple[Any, int, int]:
        """Inverse of :meth:`encode`: resolve every :class:`ShmRef` leaf.
        Returns ``(decoded, bytes, blocks)``."""
        state = [0, 0]
        out = self._dec(obj, state)
        return out, state[0], state[1]

    def _dec(self, o: Any, state: List[int]):
        if isinstance(o, ShmRef):
            state[0] += o.nbytes
            state[1] += 1
            return self.read(o)
        if type(o) is dict:
            dec = {k: self._dec(v, state) for k, v in o.items()}
            return dec if any(dec[k] is not o[k] for k in o) else o
        if type(o) in (tuple, list):
            dec = [self._dec(v, state) for v in o]
            if all(a is b for a, b in zip(dec, o)):
                return o
            return tuple(dec) if type(o) is tuple else dec
        fields = getattr(type(o), "__shm_fields__", None)
        if fields:
            dec_attrs = {f: self._dec(getattr(o, f), state) for f in fields}
            if all(dec_attrs[f] is getattr(o, f) for f in fields):
                return o
            c = copy.copy(o)
            for f, v in dec_attrs.items():
                setattr(c, f, v)
            return c
        return o

    # --- lifecycle --------------------------------------------------------

    def reset_party(self) -> int:
        """Job boundary (warm pool): drop every block this party still
        owns, rewind the primary arena, unlink own grown segments, and
        forget attachments to peers' grown segments (their owners are
        resetting too, so the names are about to disappear).  Returns the
        bytes reclaimed — the pool surfaces this as the per-rank
        ``shm_reclaimed_bytes`` counter."""
        reclaimed = 0
        for tag, (segname, off, size, _consumers) in self._outstanding.items():
            seg = self._segments.get(segname)
            if seg is not None and seg.i64 is not None:
                seg.i64[off // 8] = 0
            reclaimed += size
        self._outstanding.clear()
        primary_arena = self._arenas[0]
        primary_arena.bump = 0
        primary_arena.free.clear()
        for name, seg in list(self._segments.items()):
            if name == self.primary:
                continue
            seg.close(unlink=seg.owned)
            del self._segments[name]
        self._own_grown.clear()
        self._arenas = [primary_arena]
        return reclaimed

    def sweep_orphans(self) -> int:
        """Unlink every ``/dev/shm`` entry under this plane's prefix —
        grown segments of workers that crashed before cleaning up.  Call
        only after every worker process has been joined."""
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
            return 0
        swept = 0
        try:
            names = os.listdir(shm_dir)
        except OSError:  # pragma: no cover
            return 0
        for name in names:
            if name.startswith(self.prefix):
                try:
                    os.unlink(os.path.join(shm_dir, name))
                    swept += 1
                except OSError:
                    pass
        return swept

    def close(self, unlink: bool = False) -> None:
        """Release this process's mappings; with ``unlink=True`` also
        remove every owned segment and sweep the prefix (creator only,
        after all workers are joined)."""
        if self._closed:
            return
        self._closed = True
        self._outstanding.clear()
        for name, seg in list(self._segments.items()):
            own = seg.owned or (unlink
                                and os.getpid() == self._creator_pid
                                and name == self.primary)
            seg.close(unlink=unlink and own)
        self._segments.clear()
        self._arenas = []
        if unlink and os.getpid() == self._creator_pid:
            self.sweep_orphans()

    # --- introspection ----------------------------------------------------

    def header_stats(self) -> Dict[str, List[int]]:
        """Cross-process view of the lock-free header indices."""
        i64 = self._primary_seg.i64
        out: Dict[str, List[int]] = {
            "pub_blocks": [], "pub_bytes": [], "con_blocks": [],
            "con_bytes": [], "hwm_bytes": [],
        }
        for p in range(self.nparties):
            out["pub_blocks"].append(int(i64[self._hdr_slot(p, _SLOT_PUB_BLOCKS)]))
            out["pub_bytes"].append(int(i64[self._hdr_slot(p, _SLOT_PUB_BYTES)]))
            out["con_blocks"].append(int(i64[self._hdr_slot(p, _SLOT_CON_BLOCKS)]))
            out["con_bytes"].append(int(i64[self._hdr_slot(p, _SLOT_CON_BYTES)]))
            out["hwm_bytes"].append(int(i64[self._hdr_slot(p, _SLOT_HWM)]))
        return out

    def __repr__(self) -> str:
        return (f"ShmDataPlane({self.primary}, nranks={self.nranks}, "
                f"party={getattr(self, '_party', None)}, "
                f"threshold={self.threshold})")
