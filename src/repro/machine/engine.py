"""Deterministic discrete-event SPMD engine.

The engine runs one generator per rank under *virtual time*.  Each rank has
its own clock; communication ops advance clocks according to the machine
cost model, and a blocking receive completes at
``max(receiver clock, message arrival) + alpha_recv``.

Scheduling is event-driven: a rank runs until it blocks on an unsatisfied
:class:`~repro.machine.api.Recv` or finishes.  A send to a rank blocked on
a matching receive makes that rank runnable again.  Because message
matching per ``(source, tag)`` channel is FIFO and arrival times are
functions only of sender clocks (never of host execution order), the
resulting virtual clocks are exactly reproducible.

Wildcard-*source* receives are resolved conservatively: only when every
other rank is blocked or finished does the engine match the candidate
message with the earliest arrival time (ties broken by source rank, then
sequence number).  The generated Kali runtime never needs wildcard sources
— schedules name their peers — but collectives tests and user programs may
use them.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import CommunicationError, DeadlockError, EngineError
from repro.machine.api import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Count,
    Message,
    Now,
    Op,
    Rank,
    Recv,
    Send,
)
from repro.machine.cost import MachineModel
from repro.machine.stats import RankStats, RunResult
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import TraceEvent

RankProgram = Callable[[Rank], Generator[Op, Any, Any]]

_RUNNABLE = 0
_BLOCKED = 1
_FINISHED = 2


class _RankState:
    __slots__ = (
        "rank_id",
        "gen",
        "clock",
        "status",
        "waiting",  # the Recv op this rank is blocked on (if _BLOCKED)
        "resume_value",
        "value",
        "stats",
    )

    def __init__(self, rank_id: int, gen: Generator, stats: RankStats):
        self.rank_id = rank_id
        self.gen = gen
        self.clock = 0.0
        self.status = _RUNNABLE
        self.waiting: Optional[Recv] = None
        self.resume_value: Any = None
        self.value: Any = None
        self.stats = stats


class Engine:
    """Run an SPMD program (one generator per rank) to completion.

    Parameters
    ----------
    machine:
        Cost model used to charge virtual time.
    topology:
        Interconnect (defaults to :class:`FullyConnected` over ``nranks``).
    nranks:
        World size; defaults to ``topology.size``.
    max_ops:
        Safety valve: abort after this many interpreted ops (guards against
        accidentally non-terminating rank programs in tests).
    """

    def __init__(
        self,
        machine: MachineModel,
        topology: Optional[Topology] = None,
        nranks: Optional[int] = None,
        max_ops: int = 500_000_000,
        trace: bool = False,
    ):
        if topology is None:
            if nranks is None:
                raise EngineError("Engine needs a topology or an explicit nranks")
            topology = FullyConnected(nranks)
        self.machine = machine
        self.topology = topology
        self.nranks = nranks if nranks is not None else topology.size
        if self.nranks > topology.size:
            raise EngineError(
                f"nranks={self.nranks} exceeds topology size {topology.size}"
            )
        self.max_ops = max_ops
        self.trace = trace

    # --- public API ------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[List[Any]] = None,
    ) -> RunResult:
        """Execute ``program`` on every rank and return the :class:`RunResult`.

        ``args`` optionally supplies a per-rank argument object exposed as
        ``rank.arg``.
        """
        if args is not None and len(args) != self.nranks:
            raise EngineError(f"args must have length {self.nranks}")

        states: List[_RankState] = []
        for r in range(self.nranks):
            ctx = Rank(r, self.nranks, self.machine, self.topology,
                       args[r] if args is not None else None)
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise EngineError(
                    "rank program must be a generator function (did you forget "
                    "to 'yield'?)"
                )
            states.append(_RankState(r, gen, RankStats(r)))

        # mailbox[(dst, src, tag)] -> FIFO of messages
        mailbox: Dict[Tuple[int, int, int], Deque[Message]] = defaultdict(deque)
        ready: Deque[int] = deque(range(self.nranks))
        seq_counter = 0
        ops_interpreted = 0
        trace_events: List[TraceEvent] = [] if self.trace else None

        def try_match(state: _RankState, recv: Recv) -> Optional[Message]:
            """Match a receive against the mailbox; wildcard-source receives
            are only matched here during the resolution phase."""
            dst = state.rank_id
            if recv.source != ANY_SOURCE and recv.tag != ANY_TAG:
                q = mailbox.get((dst, recv.source, recv.tag))
                return q[0] if q else None
            candidates: List[Message] = []
            if recv.source != ANY_SOURCE:
                for (d, s, t), q in mailbox.items():
                    if d == dst and s == recv.source and q:
                        candidates.append(q[0])
            else:
                for (d, s, t), q in mailbox.items():
                    if d == dst and q and (recv.tag == ANY_TAG or t == recv.tag):
                        candidates.append(q[0])
            if not candidates:
                return None
            # Ties break by source, then send order (seq) — never by tag,
            # which would reorder same-arrival messages from one sender.
            return min(candidates, key=lambda m: (m.arrival, m.source, m.seq))

        def consume(msg: Message) -> None:
            q = mailbox[(msg.dest, msg.source, msg.tag)]
            assert q and q[0] is msg
            q.popleft()
            if not q:
                del mailbox[(msg.dest, msg.source, msg.tag)]

        def deliver(state: _RankState, recv: Recv, msg: Message) -> None:
            consume(msg)
            wait_start = state.clock
            busy_start = max(state.clock, msg.arrival)
            completion = busy_start + self.machine.recv_busy(msg.nbytes)
            state.stats.charge(recv.phase, completion - wait_start)
            state.clock = completion
            state.stats.messages_received += 1
            state.stats.bytes_received += msg.nbytes
            state.resume_value = msg
            if trace_events is not None:
                trace_events.append(TraceEvent(
                    rank=state.rank_id, kind="recv", start=wait_start,
                    end=completion, phase=recv.phase, peer=msg.source,
                    tag=msg.tag, nbytes=msg.nbytes, label=recv.label,
                    seq=msg.seq, busy_start=busy_start,
                ))

        def step(state: _RankState) -> None:
            """Advance one rank until it blocks or finishes."""
            nonlocal seq_counter, ops_interpreted
            while True:
                try:
                    op = state.gen.send(state.resume_value)
                except StopIteration as stop:
                    state.status = _FINISHED
                    state.value = stop.value
                    return
                state.resume_value = None
                ops_interpreted += 1
                if ops_interpreted > self.max_ops:
                    raise EngineError(
                        f"exceeded max_ops={self.max_ops}; runaway rank program?"
                    )
                if isinstance(op, Compute):
                    if trace_events is not None and op.seconds > 0:
                        trace_events.append(TraceEvent(
                            rank=state.rank_id, kind="compute",
                            start=state.clock, end=state.clock + op.seconds,
                            phase=op.phase, label=op.label,
                        ))
                    state.clock += op.seconds
                    state.stats.charge(op.phase, op.seconds)
                elif isinstance(op, Send):
                    self._validate_peer(op.dest)
                    nbytes = op.wire_size()
                    busy = self.machine.send_busy(nbytes)
                    if trace_events is not None:
                        trace_events.append(TraceEvent(
                            rank=state.rank_id, kind="send",
                            start=state.clock, end=state.clock + busy,
                            phase=op.phase, peer=op.dest, tag=op.tag,
                            nbytes=nbytes, label=op.label, seq=seq_counter,
                        ))
                    state.clock += busy
                    state.stats.charge(op.phase, busy)
                    hops = self.topology.hops(state.rank_id, op.dest) if op.dest != state.rank_id else 0
                    arrival = state.clock + self.machine.transit(nbytes, hops)
                    msg = Message(
                        source=state.rank_id,
                        dest=op.dest,
                        tag=op.tag,
                        payload=op.payload,
                        nbytes=nbytes,
                        arrival=arrival,
                        seq=seq_counter,
                    )
                    seq_counter += 1
                    mailbox[(op.dest, state.rank_id, op.tag)].append(msg)
                    state.stats.messages_sent += 1
                    state.stats.bytes_sent += nbytes
                    # Wake the destination if it is blocked on a match.  A
                    # wildcard-source receiver is woken too: it re-enters the
                    # resolution path, which stays conservative because the
                    # resolution phase only runs when nothing else can.
                    dst_state = states[op.dest]
                    if dst_state.status == _BLOCKED:
                        w = dst_state.waiting
                        if w is not None and w.source == state.rank_id and (
                            w.tag == ANY_TAG or w.tag == op.tag
                        ):
                            m = try_match(dst_state, w)
                            if m is not None:
                                dst_state.status = _RUNNABLE
                                dst_state.waiting = None
                                deliver(dst_state, w, m)
                                ready.append(dst_state.rank_id)
                elif isinstance(op, Recv):
                    if op.source != ANY_SOURCE:
                        self._validate_peer(op.source)
                        msg = try_match(state, op)
                        if msg is not None:
                            deliver(state, op, msg)
                            continue
                    state.status = _BLOCKED
                    state.waiting = op
                    return
                elif isinstance(op, Now):
                    state.resume_value = state.clock
                elif isinstance(op, Count):
                    state.stats.count(op.name, op.amount)
                else:
                    raise EngineError(f"rank {state.rank_id} yielded non-op {op!r}")

        while True:
            while ready:
                rid = ready.popleft()
                state = states[rid]
                if state.status != _RUNNABLE:
                    continue
                step(state)
            # Resolution phase: everyone is blocked or finished.
            blocked = [s for s in states if s.status == _BLOCKED]
            if not blocked:
                break
            progressed = False
            for state in blocked:
                recv = state.waiting
                assert recv is not None
                msg = try_match(state, recv)
                if msg is not None:
                    state.status = _RUNNABLE
                    state.waiting = None
                    deliver(state, recv, msg)
                    ready.append(state.rank_id)
                    progressed = True
                    break  # re-run the progress phase before matching more
            if not progressed:
                raise DeadlockError(
                    {s.rank_id: (s.waiting.source, s.waiting.tag) for s in blocked}
                )

        # Leftover messages are not an error per se (MPI allows it), but
        # they usually indicate a bug in generated schedules; charge each
        # count to the rank the messages were addressed to.
        for (dst, _src, _tag), q in mailbox.items():
            if q:
                states[dst].stats.count("undelivered_messages", len(q))

        if trace_events is not None:
            for s_ in states:
                trace_events.append(TraceEvent(
                    rank=s_.rank_id, kind="finish", start=s_.clock, end=s_.clock
                ))
            trace_events.sort(key=lambda e: (e.start, e.rank))
        result = RunResult(
            nranks=self.nranks,
            clocks=[s.clock for s in states],
            stats=[s.stats for s in states],
            values=[s.value for s in states],
        )
        result.trace = trace_events
        return result

    # --- helpers -------------------------------------------------------------

    def _validate_peer(self, peer: int) -> None:
        if not (0 <= peer < self.nranks):
            raise CommunicationError(
                f"peer rank {peer} outside world of size {self.nranks}"
            )


def run_spmd(
    program: RankProgram,
    nranks: int,
    machine: MachineModel,
    topology: Optional[Topology] = None,
    args: Optional[List[Any]] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    engine = Engine(machine, topology=topology, nranks=nranks)
    return engine.run(program, args=args)
