"""Deterministic discrete-event SPMD engine.

The engine runs one generator per rank under *virtual time*.  Each rank has
its own clock; communication ops advance clocks according to the machine
cost model, and a blocking receive completes at
``max(receiver clock, message arrival) + alpha_recv``.

Scheduling is event-driven: a rank runs until it blocks on an unsatisfied
:class:`~repro.machine.api.Recv` or finishes.  A send to a rank blocked on
a matching receive makes that rank runnable again.  Because message
matching per ``(source, tag)`` channel is FIFO and arrival times are
functions only of sender clocks (never of host execution order), the
resulting virtual clocks are exactly reproducible.

Wildcard-*source* receives are resolved conservatively: only when every
other rank is blocked or finished does the engine match the candidate
message with the earliest arrival time (ties broken by source rank, then
sequence number).  The generated Kali runtime never needs wildcard sources
— schedules name their peers — but collectives tests and user programs may
use them.

Fault injection
---------------

An optional :class:`~repro.faults.FaultPlan` makes the simulated machine
misbehave deterministically.  The plan hooks into exactly two places:

* **Compute charging** — straggler ranks multiply every
  :class:`~repro.machine.api.Compute` charge by their slowdown factor,
  and a rank whose crash time has passed stops executing at its next op
  boundary.
* **Message injection** — each send consults the plan for the link's
  fate: *drop* (the message never reaches the mailbox; the sender is
  still charged), *duplicate* (a second copy with the same sequence
  number arrives), and *jitter* (extra arrival delay).  With
  ``plan.retry`` set, the engine instead simulates the ack/retry
  transport from :mod:`repro.comm.reliable`: the whole exchange is
  precomputed as a pure function of the plan seed and the message
  identity, the sender's clock is charged for every frame injection plus
  one ack receipt, and the surviving copy arrives after the appropriate
  number of timeout periods.  Exhausting the retry budget raises
  :class:`~repro.errors.DeliveryError`.

Every fault decision keys on ``(seed, salt, src, dst, seq)`` — never on
host execution order — so a faulted run is exactly as reproducible as a
clean one, and a plan whose links are clean leaves virtual clocks
byte-identical to running with no plan at all.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    BlockedOp,
    DeadlockError,
    DeliveryError,
    EngineError,
)
from repro.faults.plan import FaultPlan
from repro.machine.api import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Count,
    Message,
    Now,
    Op,
    Rank,
    Recv,
    Send,
    validate_peer,
    validate_send,
)
from repro.machine.cost import MachineModel
from repro.machine.stats import RankStats, RunResult
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import TraceEvent

RankProgram = Callable[[Rank], Generator[Op, Any, Any]]

_RUNNABLE = 0
_BLOCKED = 1
_FINISHED = 2
_CRASHED = 3


class _RankState:
    __slots__ = (
        "rank_id",
        "gen",
        "clock",
        "status",
        "waiting",  # the Recv op this rank is blocked on (if _BLOCKED)
        "resume_value",
        "value",
        "stats",
    )

    def __init__(self, rank_id: int, gen: Generator, stats: RankStats):
        self.rank_id = rank_id
        self.gen = gen
        self.clock = 0.0
        self.status = _RUNNABLE
        self.waiting: Optional[Recv] = None
        self.resume_value: Any = None
        self.value: Any = None
        self.stats = stats


class Engine:
    """Run an SPMD program (one generator per rank) to completion.

    Parameters
    ----------
    machine:
        Cost model used to charge virtual time.
    topology:
        Interconnect (defaults to :class:`FullyConnected` over ``nranks``).
    nranks:
        World size; defaults to ``topology.size``.
    max_ops:
        Safety valve: abort after this many interpreted ops (guards against
        accidentally non-terminating rank programs in tests).
    faults:
        Optional :class:`~repro.faults.FaultPlan` describing link faults,
        stragglers, and crashes (see module docstring).
    """

    def __init__(
        self,
        machine: MachineModel,
        topology: Optional[Topology] = None,
        nranks: Optional[int] = None,
        max_ops: int = 500_000_000,
        trace: bool = False,
        faults: Optional[FaultPlan] = None,
    ):
        if topology is None:
            if nranks is None:
                raise EngineError("Engine needs a topology or an explicit nranks")
            topology = FullyConnected(nranks)
        self.machine = machine
        self.topology = topology
        self.nranks = nranks if nranks is not None else topology.size
        if self.nranks > topology.size:
            raise EngineError(
                f"nranks={self.nranks} exceeds topology size {topology.size}"
            )
        self.max_ops = max_ops
        self.trace = trace
        self.faults = faults

    # --- public API ------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[List[Any]] = None,
    ) -> RunResult:
        """Execute ``program`` on every rank and return the :class:`RunResult`.

        ``args`` optionally supplies a per-rank argument object exposed as
        ``rank.arg``.
        """
        if args is not None and len(args) != self.nranks:
            raise EngineError(f"args must have length {self.nranks}")

        states: List[_RankState] = []
        for r in range(self.nranks):
            ctx = Rank(r, self.nranks, self.machine, self.topology,
                       args[r] if args is not None else None)
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise EngineError(
                    "rank program must be a generator function (did you forget "
                    "to 'yield'?)"
                )
            states.append(_RankState(r, gen, RankStats(r)))

        faults = self.faults
        retry = faults.retry if faults is not None else None
        if retry is not None:
            # Imported lazily: repro.comm.reliable imports repro.faults,
            # which must stay importable without the comm package.
            from repro.comm.reliable import plan_transmissions
        crash_at: Dict[int, float] = dict(faults.crashes) if faults else {}
        dropped_total = 0

        # mailbox[(dst, src, tag)] -> FIFO of messages
        mailbox: Dict[Tuple[int, int, int], Deque[Message]] = defaultdict(deque)
        ready: Deque[int] = deque(range(self.nranks))
        seq_counter = 0
        ops_interpreted = 0
        trace_events: List[TraceEvent] = [] if self.trace else None

        def fault_event(rank: int, label: str, t: float, peer=None, tag=None,
                        nbytes: int = 0, phase: str = "") -> None:
            if trace_events is not None:
                trace_events.append(TraceEvent(
                    rank=rank, kind="fault", start=t, end=t, phase=phase,
                    peer=peer, tag=tag, nbytes=nbytes, label=label,
                ))

        def crash(state: _RankState, at: float) -> None:
            state.status = _CRASHED
            state.clock = max(state.clock, at)
            state.waiting = None
            try:
                state.gen.close()
            except Exception:
                pass  # a crash must not be masked by generator cleanup
            state.stats.count("fault_crashes", 1)
            fault_event(state.rank_id, "crash", state.clock)

        def try_match(state: _RankState, recv: Recv) -> Optional[Message]:
            """Match a receive against the mailbox; wildcard-source receives
            are only matched here during the resolution phase."""
            dst = state.rank_id
            if recv.source != ANY_SOURCE and recv.tag != ANY_TAG:
                q = mailbox.get((dst, recv.source, recv.tag))
                return q[0] if q else None
            candidates: List[Message] = []
            if recv.source != ANY_SOURCE:
                for (d, s, t), q in mailbox.items():
                    if d == dst and s == recv.source and q:
                        candidates.append(q[0])
            else:
                for (d, s, t), q in mailbox.items():
                    if d == dst and q and (recv.tag == ANY_TAG or t == recv.tag):
                        candidates.append(q[0])
            if not candidates:
                return None
            # Ties break by source, then send order (seq) — never by tag,
            # which would reorder same-arrival messages from one sender.
            return min(candidates, key=lambda m: (m.arrival, m.source, m.seq))

        def can_deliver(state: _RankState, recv: Recv, msg: Message) -> bool:
            """Would delivering ``msg`` respect the receive's timeout and
            the rank's crash time?"""
            ready_at = max(state.clock, msg.arrival)
            ct = crash_at.get(state.rank_id)
            if ct is not None and ready_at >= ct:
                return False
            if recv.timeout is not None and msg.arrival > state.clock + recv.timeout:
                return False
            return True

        def consume(msg: Message) -> None:
            q = mailbox[(msg.dest, msg.source, msg.tag)]
            assert q and q[0] is msg
            q.popleft()
            if not q:
                del mailbox[(msg.dest, msg.source, msg.tag)]

        def deliver(state: _RankState, recv: Recv, msg: Message) -> None:
            consume(msg)
            wait_start = state.clock
            busy_start = max(state.clock, msg.arrival)
            completion = busy_start + self.machine.recv_busy(msg.nbytes)
            state.stats.charge(recv.phase, completion - wait_start)
            state.clock = completion
            state.stats.messages_received += 1
            state.stats.bytes_received += msg.nbytes
            state.resume_value = msg
            if trace_events is not None:
                trace_events.append(TraceEvent(
                    rank=state.rank_id, kind="recv", start=wait_start,
                    end=completion, phase=recv.phase, peer=msg.source,
                    tag=msg.tag, nbytes=msg.nbytes, label=recv.label,
                    seq=msg.seq, busy_start=busy_start,
                ))

        def wake_receiver(dest: int, source: int, tag: int) -> None:
            """Wake ``dest`` if it is blocked on a matching receive.  A
            wildcard-source receiver is woken too: it re-enters the
            resolution path, which stays conservative because the
            resolution phase only runs when nothing else can."""
            dst_state = states[dest]
            if dst_state.status != _BLOCKED:
                return
            w = dst_state.waiting
            if w is None or w.source != source:
                return
            if not (w.tag == ANY_TAG or w.tag == tag):
                return
            m = try_match(dst_state, w)
            if m is not None and can_deliver(dst_state, w, m):
                dst_state.status = _RUNNABLE
                dst_state.waiting = None
                deliver(dst_state, w, m)
                ready.append(dst_state.rank_id)

        def inject(state: _RankState, op: Send) -> None:
            """Charge a send and place its message (if any survives the
            fault plan) into the destination mailbox."""
            nonlocal seq_counter, dropped_total
            me = state.rank_id
            self._validate_send(me, op)
            m = self.machine
            nbytes = op.wire_size()
            hops = self.topology.hops(me, op.dest)
            link = faults.link(me, op.dest) if faults is not None else None
            send_start = state.clock
            seq = seq_counter
            seq_counter += 1
            arrivals: List[float] = []

            if retry is not None:
                tp = plan_transmissions(faults, retry, me, op.dest, seq)
                if tp.failed:
                    raise DeliveryError(
                        f"rank {me} -> {op.dest} tag {op.tag}: no "
                        f"acknowledgement after {retry.max_retries} "
                        f"retransmissions (seed {faults.seed}, seq {seq})"
                    )
                frame = nbytes + retry.header_nbytes
                busy = (len(tp.attempts) * m.send_busy(frame)
                        + m.recv_busy(retry.ack_nbytes))
                d = tp.attempts[tp.delivered]
                arrivals.append(
                    send_start + tp.delivered * retry.timeout
                    + m.send_busy(frame) + m.transit(frame, hops) + d.jitter
                )
                if tp.retransmissions:
                    state.stats.count("retry_retransmissions",
                                      tp.retransmissions)
                    for a in tp.attempts[1:]:
                        fault_event(me, "retry",
                                    send_start + a.index * retry.timeout,
                                    peer=op.dest, tag=op.tag, nbytes=frame,
                                    phase=op.phase)
                if tp.duplicates:
                    states[op.dest].stats.count("retry_duplicates_suppressed",
                                                tp.duplicates)
            else:
                busy = m.send_busy(nbytes)
                jitter = 0.0
                if link is not None and link.jitter > 0.0:
                    jitter = faults.unit("jitter", me, op.dest, seq) * link.jitter
                    if jitter > 0.0:
                        state.stats.count("fault_messages_delayed", 1)
                if (link is not None and link.drop > 0.0
                        and faults.unit("drop", me, op.dest, seq) < link.drop):
                    dropped_total += 1
                    state.stats.count("fault_messages_dropped", 1)
                    fault_event(me, "drop", send_start + busy, peer=op.dest,
                                tag=op.tag, nbytes=nbytes, phase=op.phase)
                else:
                    arrivals.append(
                        send_start + busy + m.transit(nbytes, hops) + jitter)
                    if (link is not None and link.duplicate > 0.0
                            and faults.unit("dup", me, op.dest, seq)
                            < link.duplicate):
                        dj = (faults.unit("dup-jit", me, op.dest, seq)
                              * link.jitter if link.jitter > 0.0 else 0.0)
                        arrivals.append(
                            send_start + busy + m.transit(nbytes, hops) + dj)
                        state.stats.count("fault_messages_duplicated", 1)
                        fault_event(me, "duplicate", send_start + busy,
                                    peer=op.dest, tag=op.tag, nbytes=nbytes,
                                    phase=op.phase)

            if trace_events is not None:
                trace_events.append(TraceEvent(
                    rank=me, kind="send", start=send_start,
                    end=send_start + busy, phase=op.phase, peer=op.dest,
                    tag=op.tag, nbytes=nbytes, label=op.label, seq=seq,
                ))
            state.clock = send_start + busy
            state.stats.charge(op.phase, busy)
            state.stats.messages_sent += 1
            state.stats.bytes_sent += nbytes
            # A dropped message is charged but never enqueued; duplicates
            # share the original's sequence number.
            for arrival in arrivals:
                mailbox[(op.dest, me, op.tag)].append(Message(
                    source=me, dest=op.dest, tag=op.tag, payload=op.payload,
                    nbytes=nbytes, arrival=arrival, seq=seq,
                ))
            if arrivals:
                wake_receiver(op.dest, me, op.tag)

        def step(state: _RankState) -> None:
            """Advance one rank until it blocks, finishes, or crashes."""
            nonlocal ops_interpreted
            slowdown = faults.slowdown(state.rank_id) if faults is not None else 1.0
            ct = crash_at.get(state.rank_id)
            while True:
                if ct is not None and state.clock >= ct:
                    crash(state, ct)
                    return
                try:
                    op = state.gen.send(state.resume_value)
                except StopIteration as stop:
                    state.status = _FINISHED
                    state.value = stop.value
                    return
                state.resume_value = None
                ops_interpreted += 1
                if ops_interpreted > self.max_ops:
                    raise EngineError(
                        f"exceeded max_ops={self.max_ops}; runaway rank program?"
                    )
                if isinstance(op, Compute):
                    seconds = op.seconds * slowdown
                    if trace_events is not None and seconds > 0:
                        trace_events.append(TraceEvent(
                            rank=state.rank_id, kind="compute",
                            start=state.clock, end=state.clock + seconds,
                            phase=op.phase, label=op.label,
                        ))
                    state.clock += seconds
                    state.stats.charge(op.phase, seconds)
                elif isinstance(op, Send):
                    inject(state, op)
                elif isinstance(op, Recv):
                    if op.source != ANY_SOURCE:
                        self._validate_peer(op.source)
                        msg = try_match(state, op)
                        if msg is not None and can_deliver(state, op, msg):
                            deliver(state, op, msg)
                            continue
                    state.status = _BLOCKED
                    state.waiting = op
                    return
                elif isinstance(op, Now):
                    state.resume_value = state.clock
                elif isinstance(op, Count):
                    state.stats.count(op.name, op.amount)
                else:
                    raise EngineError(f"rank {state.rank_id} yielded non-op {op!r}")

        while True:
            while ready:
                rid = ready.popleft()
                state = states[rid]
                if state.status != _RUNNABLE:
                    continue
                step(state)
            # Resolution phase: everyone is blocked, finished, or crashed.
            blocked = [s for s in states if s.status == _BLOCKED]
            if not blocked:
                break
            progressed = False
            for state in blocked:
                recv = state.waiting
                assert recv is not None
                msg = try_match(state, recv)
                if msg is not None and can_deliver(state, recv, msg):
                    state.status = _RUNNABLE
                    state.waiting = None
                    deliver(state, recv, msg)
                    ready.append(state.rank_id)
                    progressed = True
                    break  # re-run the progress phase before matching more
            if not progressed:
                # No message can complete any blocked receive.  Fire the
                # earliest pending receive timeout (ties by rank id), one
                # at a time so the woken rank's sends get first claim.
                candidates = []
                for state in blocked:
                    recv = state.waiting
                    if recv.timeout is None:
                        continue
                    deadline = state.clock + recv.timeout
                    ct = crash_at.get(state.rank_id)
                    if ct is not None and ct <= deadline:
                        continue  # the crash preempts the timeout
                    candidates.append((deadline, state.rank_id, state))
                if candidates:
                    deadline, _, state = min(
                        candidates, key=lambda c: (c[0], c[1]))
                    recv = state.waiting
                    state.stats.charge(recv.phase, deadline - state.clock)
                    state.stats.count("recv_timeouts", 1)
                    if trace_events is not None:
                        trace_events.append(TraceEvent(
                            rank=state.rank_id, kind="recv_timeout",
                            start=state.clock, end=deadline, phase=recv.phase,
                            peer=(recv.source if recv.source != ANY_SOURCE
                                  else None),
                            tag=(recv.tag if recv.tag != ANY_TAG else None),
                            label=recv.label,
                        ))
                    state.clock = deadline
                    state.status = _RUNNABLE
                    state.waiting = None
                    state.resume_value = None
                    ready.append(state.rank_id)
                    progressed = True
            if not progressed:
                # Blocked ranks with a pending crash die now: nothing can
                # wake them before their crash time.
                for state in blocked:
                    ct = crash_at.get(state.rank_id)
                    if ct is not None:
                        crash(state, ct)
                        progressed = True
            if not progressed:
                raise DeadlockError(
                    {
                        s.rank_id: BlockedOp(
                            source=s.waiting.source, tag=s.waiting.tag,
                            phase=s.waiting.phase, label=s.waiting.label,
                            clock=s.clock, timeout=s.waiting.timeout,
                        )
                        for s in blocked
                    },
                    undelivered=[
                        (msg.source, msg.dest, msg.tag, msg.arrival, msg.nbytes)
                        for q in mailbox.values() for msg in q
                    ],
                    crashed={
                        s.rank_id: crash_at[s.rank_id]
                        for s in states
                        if s.status == _CRASHED and s.rank_id in crash_at
                    },
                    dropped=dropped_total,
                )

        # Leftover messages are not an error per se (MPI allows it), but
        # they usually indicate a bug in generated schedules; charge each
        # count to the rank the messages were addressed to.
        for (dst, _src, _tag), q in mailbox.items():
            if q:
                states[dst].stats.count("undelivered_messages", len(q))

        if trace_events is not None:
            for s_ in states:
                trace_events.append(TraceEvent(
                    rank=s_.rank_id, kind="finish", start=s_.clock, end=s_.clock
                ))
            trace_events.sort(key=lambda e: (e.start, e.rank))
        result = RunResult(
            nranks=self.nranks,
            clocks=[s.clock for s in states],
            stats=[s.stats for s in states],
            values=[s.value for s in states],
        )
        result.trace = trace_events
        return result

    # --- helpers -------------------------------------------------------------

    def _validate_peer(self, peer: int) -> None:
        validate_peer(peer, self.nranks)

    def _validate_send(self, sender: int, op: Send) -> None:
        validate_send(sender, op, self.nranks)


def run_spmd(
    program: RankProgram,
    nranks: int,
    machine: MachineModel,
    topology: Optional[Topology] = None,
    args: Optional[List[Any]] = None,
    faults: Optional[FaultPlan] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    engine = Engine(machine, topology=topology, nranks=nranks, faults=faults)
    return engine.run(program, args=args)
