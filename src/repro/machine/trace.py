"""Execution tracing: what every rank did, when, in virtual time.

Enable with ``Engine(..., trace=True)``; the :class:`RunResult` then
carries a list of :class:`TraceEvent` records, and
:func:`render_timeline` draws a compact per-rank ASCII Gantt chart —
handy when debugging generated schedules (who waited on whom, where a
deadlock built up, how phases interleave).

Receive events carry ``busy_start``: the instant the awaited message was
actually available, splitting the span into *wait* (``start ..
busy_start``, the rank was idle) and *busy* (``busy_start .. end``, the
rank drained the message).  Send/recv events also carry the engine's
message sequence number (``seq``), which pairs each receive with the
exact send that produced its message — the basis for the flow arrows in
:mod:`repro.obs.chrome_trace` and the dependency walk in
:mod:`repro.obs.critical_path`.

Tracing exists for diagnosis, not measurement: it changes no virtual
times and is off by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One traced engine event.

    kind is one of ``compute``, ``send``, ``recv`` (completion, with the
    wait included in [start, end]), ``recv_timeout`` (a bounded wait that
    expired; [start, end] is the wait), ``fault`` (zero-duration instant
    recording a fault-plan action — the label says which: ``drop``,
    ``duplicate``, ``retry``, or ``crash``), or ``finish``.

    ``label`` is the schedule label the op was issued under (the forall
    label for runtime-generated communication, empty otherwise).  For
    ``recv`` events ``busy_start`` marks the end of the wait portion and
    ``seq`` identifies the matched message; for ``send`` events ``seq``
    is the sequence number of the message injected.
    """

    rank: int
    kind: str
    start: float
    end: float
    phase: str = ""
    peer: Optional[int] = None
    tag: Optional[int] = None
    nbytes: int = 0
    label: str = ""
    seq: Optional[int] = None
    busy_start: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Idle wait inside a recv span (0 for every other kind)."""
        if self.kind == "recv" and self.busy_start is not None:
            return max(self.busy_start - self.start, 0.0)
        return 0.0

    @property
    def busy_time(self) -> float:
        """Occupied time: the full span minus any recv wait."""
        return (self.end - self.start) - self.wait_time

    def describe(self) -> str:
        extra = ""
        if self.peer is not None:
            arrow = "->" if self.kind == "send" else "<-"
            extra = f" {arrow} rank {self.peer} (tag {self.tag}, {self.nbytes}B)"
        what = self.phase if not self.label else f"{self.phase}:{self.label}"
        return (
            f"[{self.start:.6f}..{self.end:.6f}] rank {self.rank} "
            f"{self.kind}{extra} ({what})"
        )


_KIND_GLYPH = {
    "compute": "#",
    "send": ">",
    "recv": "<",
    "recv_wait": "-",
    "recv_timeout": "x",
    "finish": "|",
    "fault": "!",
}


def render_timeline(
    events: Sequence[TraceEvent],
    width: int = 72,
    nranks: Optional[int] = None,
) -> str:
    """Per-rank ASCII Gantt chart of a traced run.

    Each row is a rank; columns are equal slices of virtual time.  The
    glyph shows what dominated the slice: ``#`` compute, ``>`` send,
    ``<`` receive drain, ``-`` recv wait (rank idle, message in flight),
    ``x`` expired receive timeout, ``.`` idle.  A ``|`` marks each rank's
    finish instant, so ranks that complete long before the makespan stay
    visible; a ``!`` overlays the instant of each injected fault (drop,
    duplicate, retransmission, crash).
    """
    if not events:
        return "(no trace events)"
    t_end = max(e.end for e in events)
    if t_end <= 0:
        return "(trace has zero duration)"
    ranks = nranks if nranks is not None else max(e.rank for e in events) + 1
    # For each (rank, column), pick the kind with the most time in it.
    grid = [[{} for _ in range(width)] for _ in range(ranks)]
    finish_col = [None] * ranks
    fault_cols = [set() for _ in range(ranks)]
    scale = width / t_end

    def paint(rank: int, kind: str, start: float, end: float) -> None:
        c0 = min(int(start * scale), width - 1)
        c1 = min(int(end * scale), width - 1)
        for c in range(c0, c1 + 1):
            cell = grid[rank][c]
            lo = max(start, c / scale)
            hi = min(end, (c + 1) / scale)
            cell[kind] = cell.get(kind, 0.0) + max(hi - lo, 1e-12)

    for e in events:
        if e.kind == "finish":
            finish_col[e.rank] = min(int(e.start * scale), width - 1)
            continue
        if e.kind == "fault":
            fault_cols[e.rank].add(min(int(e.start * scale), width - 1))
            continue
        if e.kind == "recv" and e.busy_start is not None and e.wait_time > 0:
            paint(e.rank, "recv_wait", e.start, e.busy_start)
            paint(e.rank, "recv", e.busy_start, e.end)
        else:
            paint(e.rank, e.kind, e.start, e.end)

    lines = [f"virtual time 0 .. {t_end:.6f}s ({width} columns)"]
    for r in range(ranks):
        row = []
        for c in range(width):
            cell = grid[r][c]
            if not cell:
                row.append(".")
            else:
                kind = max(cell, key=cell.get)
                row.append(_KIND_GLYPH.get(kind, "?"))
        for c in fault_cols[r]:
            row[c] = "!"
        if finish_col[r] is not None:
            row[finish_col[r]] = "|"
        lines.append(f"rank {r:3d} |{''.join(row)}|")
    lines.append(
        "legend: # compute   > send   < recv   - recv wait   x recv timeout"
        "   ! fault   | finish   . idle"
    )
    return "\n".join(lines)


def phase_spans(events: Sequence[TraceEvent], rank: int) -> List[TraceEvent]:
    """Events of one rank, time-ordered (for fine-grained inspection)."""
    return sorted((e for e in events if e.rank == rank), key=lambda e: e.start)
