"""Execution tracing: what every rank did, when, in virtual time.

Enable with ``Engine(..., trace=True)``; the :class:`RunResult` then
carries a list of :class:`TraceEvent` records, and
:func:`render_timeline` draws a compact per-rank ASCII Gantt chart —
handy when debugging generated schedules (who waited on whom, where a
deadlock built up, how phases interleave).

Tracing exists for diagnosis, not measurement: it changes no virtual
times and is off by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One traced engine event.

    kind is one of ``compute``, ``send``, ``recv`` (completion, with the
    wait included in [start, end]), or ``finish``.
    """

    rank: int
    kind: str
    start: float
    end: float
    phase: str = ""
    peer: Optional[int] = None
    tag: Optional[int] = None
    nbytes: int = 0

    def describe(self) -> str:
        extra = ""
        if self.peer is not None:
            arrow = "->" if self.kind == "send" else "<-"
            extra = f" {arrow} rank {self.peer} (tag {self.tag}, {self.nbytes}B)"
        return (
            f"[{self.start:.6f}..{self.end:.6f}] rank {self.rank} "
            f"{self.kind}{extra} ({self.phase})"
        )


_KIND_GLYPH = {"compute": "#", "send": ">", "recv": "<", "finish": "|"}


def render_timeline(
    events: Sequence[TraceEvent],
    width: int = 72,
    nranks: Optional[int] = None,
) -> str:
    """Per-rank ASCII Gantt chart of a traced run.

    Each row is a rank; columns are equal slices of virtual time.  The
    glyph shows what dominated the slice: ``#`` compute, ``>`` send,
    ``<`` receive (including wait), ``.`` idle.
    """
    if not events:
        return "(no trace events)"
    t_end = max(e.end for e in events)
    if t_end <= 0:
        return "(trace has zero duration)"
    ranks = nranks if nranks is not None else max(e.rank for e in events) + 1
    # For each (rank, column), pick the kind with the most time in it.
    grid = [[{} for _ in range(width)] for _ in range(ranks)]
    scale = width / t_end
    for e in events:
        if e.kind == "finish":
            continue
        c0 = min(int(e.start * scale), width - 1)
        c1 = min(int(e.end * scale), width - 1)
        for c in range(c0, c1 + 1):
            cell = grid[e.rank][c]
            lo = max(e.start, c / scale)
            hi = min(e.end, (c + 1) / scale)
            cell[e.kind] = cell.get(e.kind, 0.0) + max(hi - lo, 1e-12)
    lines = [f"virtual time 0 .. {t_end:.6f}s ({width} columns)"]
    for r in range(ranks):
        row = []
        for c in range(width):
            cell = grid[r][c]
            if not cell:
                row.append(".")
            else:
                kind = max(cell, key=cell.get)
                row.append(_KIND_GLYPH.get(kind, "?"))
        lines.append(f"rank {r:3d} |{''.join(row)}|")
    lines.append("legend: # compute   > send   < recv/wait   . idle")
    return "\n".join(lines)


def phase_spans(events: Sequence[TraceEvent], rank: int) -> List[TraceEvent]:
    """Events of one rank, time-ordered (for fine-grained inspection)."""
    return sorted((e for e in events if e.rank == rank), key=lambda e: e.start)
