"""Rank-side programming interface for the SPMD engine.

A rank program is a generator function ``def prog(rank: Rank): ...`` that
``yield``\\ s *ops*.  The engine interprets each op, advances the rank's
virtual clock, and resumes the generator with the op's result (a
:class:`Message` for receives, the current clock for :class:`Now`).

Nested helpers (collectives, the inspector/executor runtime) are themselves
generator functions invoked with ``yield from``, exactly like SimPy-style
process models::

    def prog(rank):
        data = np.arange(4.0)
        total = yield from allreduce(rank, data.sum())
        yield Compute(1e-6, phase="work")

The separation between *ops* (pure data, below) and the :class:`Rank`
facade keeps rank programs testable without an engine: tests can drive a
generator by hand and inspect the ops it yields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import CommunicationError

ANY_SOURCE = -1
ANY_TAG = -1

DEFAULT_PHASE = "compute"


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload (NumPy fast path, pickle-free)."""
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return 64  # conservative default for opaque objects


class Op:
    """Base class of everything a rank program may ``yield``."""

    __slots__ = ()


@dataclass
class Send(Op):
    """Send ``payload`` to rank ``dest`` with a matching ``tag``.

    The sender is charged ``alpha_send + beta * nbytes``; the message
    becomes available at the destination after the additional per-hop
    transit latency.  ``nbytes`` defaults to the payload's wire size.
    """

    dest: int
    payload: Any = None
    tag: int = 0
    nbytes: Optional[int] = None
    phase: str = DEFAULT_PHASE
    label: str = ""

    def __post_init__(self):
        if self.dest < 0:
            raise CommunicationError(
                f"Send dest must be a valid rank (>= 0), got {self.dest}"
            )
        if self.tag < 0:
            raise CommunicationError(
                f"Send tag must be >= 0 (wildcards are receive-side only), "
                f"got {self.tag}"
            )
        if self.nbytes is not None and self.nbytes < 0:
            raise CommunicationError(
                f"Send nbytes must be >= 0, got {self.nbytes}"
            )

    def wire_size(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.payload)


@dataclass
class Recv(Op):
    """Blocking receive.  Resumes the generator with a :class:`Message`.

    ``source``/``tag`` may be :data:`ANY_SOURCE`/:data:`ANY_TAG`.  Wildcard
    *sources* are resolved conservatively (only once every other rank is
    blocked or finished) so results stay deterministic.

    ``timeout`` bounds the wait in virtual seconds: if no matching message
    can complete by ``block time + timeout``, the receive resumes the
    generator with ``None`` instead of a :class:`Message` — the primitive
    that timeout-based recovery protocols are built from.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    phase: str = DEFAULT_PHASE
    label: str = ""
    timeout: Optional[float] = None

    def __post_init__(self):
        if self.source < ANY_SOURCE:
            raise CommunicationError(
                f"Recv source must be a rank or ANY_SOURCE, got {self.source}"
            )
        if self.tag < ANY_TAG:
            raise CommunicationError(
                f"Recv tag must be >= 0 or ANY_TAG, got {self.tag}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise CommunicationError(
                f"Recv timeout must be > 0, got {self.timeout}"
            )


@dataclass
class Compute(Op):
    """Advance this rank's virtual clock by ``seconds`` of local work."""

    seconds: float
    phase: str = DEFAULT_PHASE
    label: str = ""

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError(f"Compute seconds must be >= 0, got {self.seconds}")


@dataclass
class Now(Op):
    """Resume the generator with the rank's current virtual clock."""


@dataclass
class Count(Op):
    """Increment a named statistics counter (no time charged)."""

    name: str
    amount: int = 1


@dataclass
class Message:
    """A delivered message, as returned by :class:`Recv`."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float
    seq: int


def validate_peer(peer: int, nranks: int) -> None:
    """Reject receives naming a rank outside the world (both backends)."""
    if not (0 <= peer < nranks):
        raise CommunicationError(
            f"peer rank {peer} outside world of size {nranks}"
        )


def validate_send(sender: int, op: "Send", nranks: int) -> None:
    """The send-side legality checks shared by the simulator and the
    real-process backend, so a program that is rejected on one backend is
    rejected identically on the other."""
    if not (0 <= op.dest < nranks):
        raise CommunicationError(
            f"peer rank {op.dest} outside world of size {nranks}"
        )
    if op.dest == sender:
        raise CommunicationError(
            f"rank {sender} cannot send to itself: a self-send can never "
            f"be received (the rank would have to block on its own "
            f"message) — handle local data without the engine"
        )
    if op.tag < 0:
        raise CommunicationError(
            f"message tag must be >= 0, got {op.tag} "
            f"(rank {sender} -> {op.dest})"
        )


class Rank:
    """Per-rank context handed to rank programs.

    Carries the rank id, world size, the machine cost model and topology
    (so runtime code can *compute* cost charges), plus an arbitrary
    user-supplied argument object.
    """

    __slots__ = ("id", "size", "machine", "topology", "arg")

    def __init__(self, rank_id: int, size: int, machine, topology, arg: Any = None):
        self.id = rank_id
        self.size = size
        self.machine = machine
        self.topology = topology
        self.arg = arg

    def __repr__(self) -> str:
        return f"Rank({self.id}/{self.size})"
