"""Driver-side distributed arrays.

The simulation runs in one host process, so a :class:`DistributedArray`
keeps a *global* backing NumPy array for initialisation and verification;
``scatter`` cuts per-rank local pieces when an SPMD program launches and
``gather_from`` reassembles them afterwards.  On a real machine the global
copy would not exist — nothing in the runtime reads it during simulated
execution (ranks only touch their :class:`~repro.arrays.localview.LocalArray`
pieces), which tests assert.

Arrays carry a *version* counter, bumped on every global write.  The
schedule cache (paper §3.2: "computing the exec(p) and ref(p) sets only
the first time they are needed and saving them for later loop executions")
keys on the versions of the arrays a loop's communication pattern depends
on, so mutating an indirection array (e.g. the mesh adjacency) correctly
invalidates saved schedules.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.arrays.localview import LocalArray
from repro.distributions.base import DimDistribution
from repro.distributions.multidim import ArrayDistribution
from repro.distributions.procs import ProcessorArray
from repro.errors import DistributionError


class DistributedArray:
    """A globally-indexed array with a distribution clause.

    Parameters
    ----------
    name:
        Identifier used in diagnostics and schedule-cache keys.
    shape:
        Global shape.
    dists:
        One :class:`DimDistribution` per dimension (``Replicated()`` for
        ``*``).
    procs:
        The processor array of the ``on`` clause.
    dtype:
        NumPy dtype (default ``float64``).
    """

    def __init__(
        self,
        name: str,
        shape: Union[int, Sequence[int]],
        dists: Sequence[DimDistribution],
        procs: ProcessorArray,
        dtype=np.float64,
    ):
        self.name = name
        self.dist = ArrayDistribution(shape, dists, procs)
        self.shape = self.dist.shape
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(self.shape, dtype=self.dtype)
        self._version = 0
        self._fingerprint: Optional[tuple] = None  # (version, sha256 hex)

    # --- global access (driver side) ---------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the global backing array."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    def set(self, values: np.ndarray) -> None:
        """Replace the global contents (bumps the version)."""
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != self.shape:
            raise DistributionError(
                f"{self.name}: cannot assign shape {values.shape} to {self.shape}"
            )
        self._data[...] = values
        self._version += 1

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value):
        self._data[key] = value
        self._version += 1

    # --- scatter / gather -------------------------------------------------------

    def content_fingerprint(self) -> str:
        """SHA-256 of the *global* content (cached per version).

        Stamped onto every scattered :class:`LocalArray` so content-
        addressed schedule keys hash what schedules actually depend on —
        the whole array, identically on every rank — rather than the
        rank's local piece.
        """
        if self._fingerprint is None or self._fingerprint[0] != self._version:
            digest = hashlib.sha256(
                np.ascontiguousarray(self._data).tobytes()
            ).hexdigest()
            self._fingerprint = (self._version, digest)
        return self._fingerprint[1]

    def scatter(self, rank: int) -> LocalArray:
        """Cut the local piece for ``rank`` (a copy — ranks own their data)."""
        dist = self.dist
        if dist.ndim == 1:
            idx = dist.global_indices_of(rank)
            local = self._data[idx].copy()
        else:
            coords = dist.procs.coords_of(rank)
            slicers = []
            for dim, pdim in zip(dist.dims, dist.proc_dim_of):
                p = 0 if pdim is None else coords[pdim]
                slicers.append(dim.local_indices(p))
            local = self._data[np.ix_(*slicers)].copy()
        return LocalArray(self.name, rank, dist, local, version=self._version,
                          content_tag=self.content_fingerprint())

    def scatter_all(self) -> List[LocalArray]:
        return [self.scatter(r) for r in range(self.dist.procs.size)]

    def gather_from(self, locals_: Sequence[LocalArray]) -> None:
        """Reassemble the global array from per-rank pieces (driver side).

        If the program redistributed the array, the pieces carry the new
        layout; the driver adopts it so subsequent scatters match.
        """
        if locals_ and locals_[0].dist is not self.dist:
            self.dist = locals_[0].dist
        dist = self.dist
        if len(locals_) != dist.procs.size:
            raise DistributionError(
                f"{self.name}: need {dist.procs.size} local pieces, got {len(locals_)}"
            )
        if dist.fully_replicated:
            # All copies are identical by construction; take rank 0's.
            self._data[...] = locals_[0].data
            self._version += 1
            return
        for rank, la in enumerate(locals_):
            if la.rank != rank:
                raise DistributionError(f"{self.name}: local pieces out of order")
            if dist.ndim == 1:
                idx = dist.global_indices_of(rank)
                self._data[idx] = la.data
            else:
                coords = dist.procs.coords_of(rank)
                slicers = []
                for dim, pdim in zip(dist.dims, dist.proc_dim_of):
                    p = 0 if pdim is None else coords[pdim]
                    slicers.append(dim.local_indices(p))
                self._data[np.ix_(*slicers)] = la.data
        self._version += 1

    # --- conveniences ------------------------------------------------------------

    @property
    def procs(self) -> ProcessorArray:
        return self.dist.procs

    def owner(self, index) -> int:
        return self.dist.owner(index)

    def __repr__(self) -> str:
        return (
            f"DistributedArray({self.name!r}, shape={self.shape}, "
            f"{self.dist.describe()}, dtype={self.dtype})"
        )
