"""Distributed arrays: the global-name-space data type (paper §2.2, §2.4).

A :class:`DistributedArray` is the single-object view of a partitioned
array: the programmer indexes it globally, the runtime stores one local
piece per rank.  :class:`LocalArray` is the rank-side piece with
global-to-local translation.
"""

from repro.arrays.darray import DistributedArray
from repro.arrays.localview import LocalArray

__all__ = ["DistributedArray", "LocalArray"]
