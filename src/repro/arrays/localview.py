"""Rank-side piece of a distributed array.

A :class:`LocalArray` owns the elements its rank stores plus the
distribution metadata needed to translate global indices.  This is the
only array object the generated SPMD code touches — the executor reads
and writes local storage by *local* offsets, and resolves nonlocal global
indices through the communication schedule's translation table, never
through the driver's global copy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.distributions.multidim import ArrayDistribution
from repro.errors import DistributionError


class LocalArray:
    """The local piece of ``name`` on ``rank``.

    For a 1-d distributed dimension the local data is packed in ascending
    global order (offset ``k`` holds the rank's ``k``-th smallest global
    index), matching every :class:`DimDistribution.to_local`.  For 2-d
    arrays the first axis is the distributed dimension and trailing axes
    are replicated, as in the paper's Figure 4 (``adj``, ``coef``).
    """

    __slots__ = ("name", "rank", "dist", "data", "version", "dist_version",
                 "content_tag", "_global_rows")

    #: shm data-plane hoist protocol (repro.machine.shm): the local
    #: payload may cross process boundaries as a shared-memory block;
    #: everything else is small metadata that stays in the pickle.
    __shm_fields__ = ("data",)

    def __init__(
        self,
        name: str,
        rank: int,
        dist: ArrayDistribution,
        data: np.ndarray,
        version: int = 0,
        dist_version: int = 0,
        content_tag: Optional[str] = None,
    ):
        self.name = name
        self.rank = rank
        self.dist = dist
        self.data = data
        self.version = version
        #: bumped whenever the distribution changes (redistribute); cached
        #: schedules referencing this array become invalid.
        self.dist_version = dist_version
        #: fingerprint of the **global** array content at scatter time.
        #: Schedules are collective, so content-addressed cache keys must
        #: hash global content — hashing only the local piece would let
        #: ranks disagree about a hit and diverge.  None when unknown
        #: (e.g. after a redistribute), which disables the disk tier.
        self.content_tag = content_tag
        self._global_rows: Optional[np.ndarray] = None

    # --- index translation -------------------------------------------------

    @property
    def global_rows(self) -> np.ndarray:
        """Sorted global indices (along the first/distributed axis) held here."""
        if self._global_rows is None:
            dim = self.dist.dims[0]
            pdim = self.dist.proc_dim_of[0]
            coords = self.dist.procs.coords_of(self.rank)
            p = 0 if pdim is None else coords[pdim]
            self._global_rows = dim.local_indices(p)
        return self._global_rows

    def n_local(self) -> int:
        """Number of rows of the distributed dimension stored here."""
        return int(self.data.shape[0])

    def owns(self, global_index) -> np.ndarray:
        """Vectorised membership test along the distributed dimension."""
        dim = self.dist.dims[0]
        pdim = self.dist.proc_dim_of[0]
        coords = self.dist.procs.coords_of(self.rank)
        p = 0 if pdim is None else coords[pdim]
        return np.asarray(dim.owner(np.asarray(global_index))) == p

    def to_local_rows(self, global_index) -> np.ndarray:
        """Local row offsets for global first-axis indices (must be owned)."""
        dim = self.dist.dims[0]
        return np.asarray(dim.to_local(np.asarray(global_index)))

    # --- element access (global first-axis index) ----------------------------------

    def get_rows(self, global_index) -> np.ndarray:
        """Rows at the given owned global indices."""
        return self.data[self.to_local_rows(global_index)]

    def set_rows(self, global_index, values) -> None:
        self.data[self.to_local_rows(global_index)] = values

    def copy(self) -> "LocalArray":
        return LocalArray(self.name, self.rank, self.dist, self.data.copy(),
                          self.version, self.dist_version, self.content_tag)

    def nbytes_rows(self, nrows: int) -> int:
        """Wire size of ``nrows`` rows (for message cost accounting)."""
        row_elems = int(np.prod(self.data.shape[1:])) if self.data.ndim > 1 else 1
        return int(nrows * row_elems * self.data.dtype.itemsize)

    def __repr__(self) -> str:
        return (
            f"LocalArray({self.name!r}, rank={self.rank}, "
            f"local_shape={self.data.shape})"
        )
