"""Workload generators: meshes in the paper's adj/count/coef format."""

from repro.meshes.regular import five_point_grid, seven_point_grid
from repro.meshes.unstructured import random_unstructured_mesh
from repro.meshes.partition import block_partition, coordinate_bisection

__all__ = [
    "five_point_grid",
    "seven_point_grid",
    "random_unstructured_mesh",
    "block_partition",
    "coordinate_bisection",
]
