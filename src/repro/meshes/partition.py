"""Mesh partitioners producing owner maps for ``Custom`` distributions.

The paper defers "dynamic load balancing" to future work but its language
supports user-defined distributions (§2.2); these partitioners supply
them.  :func:`block_partition` is the trivial contiguous split;
:func:`coordinate_bisection` is recursive coordinate bisection, the
standard static decomposition for irregular meshes of the era.
"""

from __future__ import annotations

import numpy as np


def block_partition(n: int, nprocs: int) -> np.ndarray:
    """Owner map equal to the block distribution (for cross-checks)."""
    if nprocs < 1:
        raise ValueError("need at least one processor")
    block = -(-n // nprocs) if n else 0
    return (np.arange(n, dtype=np.int64) // max(block, 1)).clip(0, nprocs - 1)


def coordinate_bisection(points: np.ndarray, nprocs: int) -> np.ndarray:
    """Recursive coordinate bisection of 2-d points into ``nprocs`` parts.

    Splits the widest coordinate direction, dividing processors (and
    hence load) proportionally; handles non-power-of-two processor
    counts.  Returns an owner map usable with
    :class:`repro.distributions.custom.Custom`.

    Part sizes are apportioned *exactly*: processor ``p`` receives
    ``n // nprocs`` points plus one of the ``n % nprocs`` leftovers, and
    every recursion level cuts at the exact prefix sum of its target
    sizes (rounding a fraction per level lets errors compound into
    lopsided or empty parts).  Duplicate points are split positionally by
    the stable sort, so a plane of coincident coordinates never collapses
    onto one processor.  The map is always total and balanced to within
    one point — including ``nprocs > n``, where the trailing parts are
    legitimately empty.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if nprocs < 1:
        raise ValueError("need at least one processor")
    n = points.shape[0]
    owners = np.empty(n, dtype=np.int64)
    base, extra = divmod(n, nprocs)

    def target(first_proc: int, count: int) -> int:
        """Exact total size of parts [first_proc, first_proc + count)."""
        extras = max(0, min(first_proc + count, extra) - first_proc)
        return count * base + extras

    def split(idx: np.ndarray, first_proc: int, count: int) -> None:
        if count == 1 or idx.size == 0:
            owners[idx] = first_proc
            return
        left_procs = count // 2
        left_size = target(first_proc, left_procs)
        pts = points[idx]
        spans = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spans))
        order = np.argsort(pts[:, axis], kind="stable")
        split(idx[order[:left_size]], first_proc, left_procs)
        split(idx[order[left_size:]], first_proc + left_procs,
              count - left_procs)

    split(np.arange(n, dtype=np.int64), 0, nprocs)
    return owners


def partition_imbalance(owners: np.ndarray, nprocs: int) -> float:
    """Max part size over mean part size (1.0 = perfectly balanced)."""
    counts = np.bincount(owners, minlength=nprocs).astype(float)
    mean = counts.mean() if nprocs else 0.0
    return float(counts.max() / mean) if mean else 1.0


def edge_cut(adj: np.ndarray, count: np.ndarray, owners: np.ndarray) -> int:
    """Number of mesh edges crossing partition boundaries (counted once)."""
    n, width = adj.shape
    live = np.arange(width)[None, :] < count[:, None]
    src = np.repeat(np.arange(n, dtype=np.int64), count)
    dst = adj[live]
    cross = owners[src] != owners[dst]
    return int(cross.sum()) // 2
