"""Mesh partitioners producing owner maps for ``Custom`` distributions.

The paper defers "dynamic load balancing" to future work but its language
supports user-defined distributions (§2.2); these partitioners supply
them.  :func:`block_partition` is the trivial contiguous split;
:func:`coordinate_bisection` is recursive coordinate bisection, the
standard static decomposition for irregular meshes of the era.
"""

from __future__ import annotations

import numpy as np


def block_partition(n: int, nprocs: int) -> np.ndarray:
    """Owner map equal to the block distribution (for cross-checks)."""
    if nprocs < 1:
        raise ValueError("need at least one processor")
    block = -(-n // nprocs) if n else 0
    return (np.arange(n, dtype=np.int64) // max(block, 1)).clip(0, nprocs - 1)


def coordinate_bisection(points: np.ndarray, nprocs: int) -> np.ndarray:
    """Recursive coordinate bisection of 2-d points into ``nprocs`` parts.

    Splits the widest coordinate direction at the weighted median,
    dividing processors (and hence load) proportionally; handles
    non-power-of-two processor counts.  Returns an owner map usable with
    :class:`repro.distributions.custom.Custom`.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if nprocs < 1:
        raise ValueError("need at least one processor")
    owners = np.zeros(points.shape[0], dtype=np.int64)

    def split(idx: np.ndarray, first_proc: int, count: int) -> None:
        if count == 1 or idx.size == 0:
            owners[idx] = first_proc
            return
        left_procs = count // 2
        frac = left_procs / count
        pts = points[idx]
        spans = pts.max(axis=0) - pts.min(axis=0) if idx.size else np.zeros(2)
        axis = int(np.argmax(spans))
        order = np.argsort(pts[:, axis], kind="stable")
        cut = int(round(frac * idx.size))
        split(idx[order[:cut]], first_proc, left_procs)
        split(idx[order[cut:]], first_proc + left_procs, count - left_procs)

    split(np.arange(points.shape[0], dtype=np.int64), 0, nprocs)
    return owners


def partition_imbalance(owners: np.ndarray, nprocs: int) -> float:
    """Max part size over mean part size (1.0 = perfectly balanced)."""
    counts = np.bincount(owners, minlength=nprocs).astype(float)
    mean = counts.mean() if nprocs else 0.0
    return float(counts.max() / mean) if mean else 1.0


def edge_cut(adj: np.ndarray, count: np.ndarray, owners: np.ndarray) -> int:
    """Number of mesh edges crossing partition boundaries (counted once)."""
    n, width = adj.shape
    live = np.arange(width)[None, :] < count[:, None]
    src = np.repeat(np.arange(n, dtype=np.int64), count)
    dst = adj[live]
    cross = owners[src] != owners[dst]
    return int(cross.sum()) // 2
