"""Synthetic unstructured 2-D meshes.

The paper's primary motivation is PDE solvers on *irregular* meshes,
where "nodes in a two dimensional unstructured grid have six neighbors,
on average".  We have no NASA mesh files, so we synthesise the closest
equivalent: a Delaunay triangulation of jittered points, whose node
degrees average ~6 — exercising exactly the data-dependent
``old_a[adj[i,j]]`` communication path the inspector exists for.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.meshes.regular import MeshArrays


def _delaunay_edges(points: np.ndarray) -> np.ndarray:
    """Undirected Delaunay edges as an (m, 2) array of node pairs."""
    from scipy.spatial import Delaunay

    tri = Delaunay(points)
    simplices = tri.simplices
    edges = np.concatenate(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]], axis=0
    )
    edges = np.sort(edges, axis=1)
    return np.unique(edges, axis=0)


def random_unstructured_mesh(
    n_nodes: int,
    seed: int = 0,
    jitter: float = 0.35,
    locality_sort: bool = True,
) -> Tuple[MeshArrays, np.ndarray]:
    """A Delaunay mesh over jittered grid points; returns (mesh, points).

    ``jitter`` perturbs the underlying lattice (0 = regular triangulated
    grid, ~0.5 = strongly irregular).  With ``locality_sort`` nodes are
    renumbered along the y-then-x order of their coordinates so a block
    distribution of node ids approximates a geometric partition — the
    paper's setting where the "optimal static domain decomposition is
    obvious" does not hold here, making this the honest unstructured
    workload.
    """
    if n_nodes < 3:
        raise ValueError("need at least 3 nodes for a triangulation")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n_nodes)))
    xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1)[:n_nodes]
    pts = pts + rng.uniform(-jitter, jitter, size=pts.shape)

    if locality_sort:
        order = np.lexsort((pts[:, 0], pts[:, 1]))
        pts = pts[order]

    edges = _delaunay_edges(pts)
    degree = np.zeros(n_nodes, dtype=np.int64)
    np.add.at(degree, edges[:, 0], 1)
    np.add.at(degree, edges[:, 1], 1)
    width = int(degree.max())

    adj = np.zeros((n_nodes, width), dtype=np.int64)
    fill = np.zeros(n_nodes, dtype=np.int64)
    for a, b in edges:
        adj[a, fill[a]] = b
        fill[a] += 1
        adj[b, fill[b]] = a
        fill[b] += 1
    count = fill

    coef = np.zeros((n_nodes, width), dtype=np.float64)
    live = np.arange(width)[None, :] < count[:, None]
    weights = np.where(count > 0, 1.0 / np.maximum(count, 1), 0.0)
    coef[live] = np.repeat(weights, count)

    mesh = MeshArrays(n=n_nodes, width=width, adj=adj, count=count, coef=coef)
    mesh.validate()
    return mesh, pts


def average_degree(mesh: MeshArrays) -> float:
    return float(mesh.count.mean())
