"""Regular rectangular grids in the paper's adjacency format.

The paper's evaluation runs the *unstructured-mesh* relaxation program of
its Figure 4 on "simple rectangular grids, on which we performed 100
Jacobi iterations with the standard five point Laplacian" — i.e. the
general ``adj``/``count``/``coef`` representation filled with a grid.
:func:`five_point_grid` reproduces exactly that workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MeshArrays:
    """The Figure 4 mesh representation.

    adj   : (n, width) int64 — neighbour node ids, row ``i`` live in
            columns ``0..count[i]-1`` (dead slots hold 0).
    count : (n,) int64 — live neighbour count per node.
    coef  : (n, width) float64 — relaxation coefficients per edge.
    """

    n: int
    width: int
    adj: np.ndarray
    count: np.ndarray
    coef: np.ndarray

    def total_references(self) -> int:
        """Total ``old_a[adj[i,j]]`` references in one sweep."""
        return int(self.count.sum())

    def validate(self) -> None:
        assert self.adj.shape == (self.n, self.width)
        assert self.coef.shape == (self.n, self.width)
        assert self.count.shape == (self.n,)
        assert (self.count >= 0).all() and (self.count <= self.width).all()
        live = np.arange(self.width)[None, :] < self.count[:, None]
        neighbours = self.adj[live]
        assert neighbours.size == 0 or (
            neighbours.min() >= 0 and neighbours.max() < self.n
        )


def five_point_grid(rows: int, cols: int) -> MeshArrays:
    """A ``rows x cols`` grid with 4-neighbour (von Neumann) adjacency.

    Nodes are numbered row-major (``node = r * cols + c``), so a block
    distribution of the node array assigns contiguous row bands to
    processors — the "obvious" optimal static decomposition the paper
    uses.  Coefficients are ``1 / count[i]`` (Jacobi averaging for the
    Laplace equation).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = rows * cols
    width = 4
    adj = np.zeros((n, width), dtype=np.int64)
    count = np.zeros(n, dtype=np.int64)

    node = np.arange(n, dtype=np.int64)
    r, c = node // cols, node % cols
    # Candidate neighbours in fixed order: up, down, left, right.
    candidates = [
        (r > 0, node - cols),
        (r < rows - 1, node + cols),
        (c > 0, node - 1),
        (c < cols - 1, node + 1),
    ]
    for valid, nbr in candidates:
        slot = count.copy()
        adj[node[valid], slot[valid]] = nbr[valid]
        count[valid] += 1

    coef = np.zeros((n, width), dtype=np.float64)
    live = np.arange(width)[None, :] < count[:, None]
    with np.errstate(divide="ignore"):
        weights = np.where(count > 0, 1.0 / np.maximum(count, 1), 0.0)
    coef[live] = np.repeat(weights, count)

    mesh = MeshArrays(n=n, width=width, adj=adj, count=count, coef=coef)
    mesh.validate()
    return mesh


def seven_point_grid(nx: int, ny: int, nz: int) -> MeshArrays:
    """A 3-d grid with 6-neighbour (von Neumann) adjacency.

    Nodes are numbered x-major within planes (``node = (z*ny + y)*nx + x``)
    so a block distribution assigns contiguous z-slabs — the standard 3-d
    decomposition.  Same padded adj/count/coef format as the 2-d grids,
    with width 6; exercises higher connectivity (more boundary exchange
    per processor) than the paper's 2-d evaluation.
    """
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = nx * ny * nz
    width = 6
    adj = np.zeros((n, width), dtype=np.int64)
    count = np.zeros(n, dtype=np.int64)

    node = np.arange(n, dtype=np.int64)
    x = node % nx
    y = (node // nx) % ny
    z = node // (nx * ny)
    candidates = [
        (z > 0, node - nx * ny),
        (z < nz - 1, node + nx * ny),
        (y > 0, node - nx),
        (y < ny - 1, node + nx),
        (x > 0, node - 1),
        (x < nx - 1, node + 1),
    ]
    for valid, nbr in candidates:
        slot = count.copy()
        adj[node[valid], slot[valid]] = nbr[valid]
        count[valid] += 1

    coef = np.zeros((n, width), dtype=np.float64)
    live = np.arange(width)[None, :] < count[:, None]
    weights = np.where(count > 0, 1.0 / np.maximum(count, 1), 0.0)
    coef[live] = np.repeat(weights, count)

    mesh = MeshArrays(n=n, width=width, adj=adj, count=count, coef=coef)
    mesh.validate()
    return mesh


def reference_sweep(mesh: MeshArrays, values: np.ndarray) -> np.ndarray:
    """One sequential Jacobi sweep — the oracle tests compare against.

    Implements Figure 4's loop body directly: for every node,
    ``x = sum_j coef[i,j] * old_a[adj[i,j]]`` with the ``count[i] > 0``
    guard keeping isolated nodes unchanged.
    """
    live = np.arange(mesh.width)[None, :] < mesh.count[:, None]
    gathered = values[mesh.adj] * live
    x = (mesh.coef * gathered).sum(axis=1)
    return np.where(mesh.count > 0, x, values)
