"""The inspector: run-time analysis of a forall's communication (paper §3.3).

Run once per (forall, indirection-data version), before the first executor
run.  Mirroring the paper's Figure 6 ``first_time`` block, the inspector:

1. derives ``exec(p)`` from the ``on`` clause,
2. sweeps every array reference made by iterations in ``exec(p)``,
   classifying each as local or nonlocal (one locality check per
   reference, charged at ``machine.inspect_ref``),
3. splits iterations into ``local_list`` / ``nonlocal_list``,
4. builds per-array ``in(p,q)`` sets as sorted, coalesced range records,
5. routes the in-sets through the crystal router so every home processor
   learns its ``out(p,q)`` sets ("Form send_list using recv_lists from all
   processors (requires global communication)"),
6. finalises translation tables and returns the :class:`CommSchedule`.

Host-side the classification is vectorised NumPy; the *virtual time*
charged follows the paper's per-reference model, so simulated inspector
cost is faithful to the 1990 implementation, not to NumPy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arrays.localview import LocalArray
from repro.comm.collectives import alltoall
from repro.comm.crystal import crystal_route
from repro.core.forall import (
    Affine,
    AffineRead,
    Forall,
    IndirectRead,
    OnOwner,
    OnProcessor,
)
from repro.errors import InspectorError
from repro.machine.api import Compute, Count, Rank
from repro.runtime.schedule import ArraySchedule, CommSchedule, RangeRecord, coalesce_ranges
from repro.util.gray import is_power_of_two

PHASE = "inspector"


def _affine_preimage_of_indices(indices: np.ndarray, fn: Affine) -> np.ndarray:
    """Sorted iteration indices i with fn(i) in ``indices`` (exact)."""
    shifted = indices - fn.b
    mask = shifted % fn.a == 0
    iters = shifted[mask] // fn.a
    return np.sort(iters)


def compute_exec(forall: Forall, rank: Rank, env: Dict[str, LocalArray]) -> np.ndarray:
    """``exec(p) ∩ Index_set``: iterations this rank executes, sorted.

    For ``OnOwner`` this is ``f⁻¹(local(p)) ∩ range`` — computed from the
    owned index list, so it costs O(N/P) like the paper's run-time code.
    """
    lo, hi = forall.index_range
    if isinstance(forall.on, OnOwner):
        target = env.get(forall.on.array)
        if target is None:
            raise InspectorError(f"on-clause array {forall.on.array!r} not in scope")
        owned = target.global_rows
        iters = _affine_preimage_of_indices(owned, forall.on.fn)
    elif isinstance(forall.on, OnProcessor):
        all_iters = np.arange(lo, hi + 1, dtype=np.int64)
        procs = forall.on.fn(all_iters) % rank.size
        iters = all_iters[procs == rank.id]
    else:
        raise InspectorError(f"unknown on clause {forall.on!r}")
    return iters[(iters >= lo) & (iters <= hi)]


def statically_local(read, forall: Forall, env: Dict[str, LocalArray]) -> bool:
    """True when ``read`` can never touch remote data, by construction.

    An affine reference ``B[g(i)]`` in a loop ``on A[f(i)].loc`` with
    ``g == f`` and B laid out identically to A is local for every
    executed iteration.  The paper's compiler exploits this ("local
    accesses may be more amenable to optimization", §3.1): its Figure 6
    inspector checks only the ``adj[i,j]`` references, not ``coef[i,j]``
    or ``count[i]``.  Skipping the check here both matches that code and
    keeps the charged inspector cost proportional to the references that
    actually need checking.
    """
    if not isinstance(read, AffineRead) or not isinstance(forall.on, OnOwner):
        return False
    if read.fn != forall.on.fn:
        return False
    target = env.get(forall.on.array)
    arr = env.get(read.array)
    if target is None or arr is None:
        return False
    return (
        arr.dist.procs == target.dist.procs
        and arr.dist.dims[0].same_layout(target.dist.dims[0])
    )


def _dim0_proc_coord(local: LocalArray) -> int:
    dist = local.dist
    pdim = dist.proc_dim_of[0]
    if pdim is None:
        return 0
    return dist.procs.coords_of(local.rank)[pdim]


def _require_1d_proc_grid(local: LocalArray) -> None:
    if local.dist.procs.ndim != 1:
        raise InspectorError(
            "inspector/executor currently support 1-d processor arrays "
            "(the paper's evaluation configuration)"
        )


def _classify_affine(
    read: AffineRead, iters: np.ndarray, env: Dict[str, LocalArray], me_coord: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Return (elements, owners, nonlocal_mask, checks) for an affine read."""
    arr = env[read.array]
    elems = read.fn(iters)
    dim0 = arr.dist.dims[0]
    owners = np.asarray(dim0.owner(elems))
    nonlocal_mask = owners != me_coord
    return elems, owners, nonlocal_mask, int(iters.size)


def _classify_indirect(
    read: IndirectRead, iters: np.ndarray, env: Dict[str, LocalArray], rank: Rank
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Return (elements_2d, owners_2d, live_mask_2d, nonlocal_mask_2d, checks).

    ``elements_2d[k, j] = table[iters[k], j]`` with dead columns masked out.
    """
    target = env[read.array]
    table = env[read.table]
    if target.data.ndim != 1:
        raise InspectorError(
            f"indirect read target {read.array!r} must be one-dimensional"
        )
    if not np.all(table.owns(iters)):
        raise InspectorError(
            f"indirection table {read.table!r} is not aligned with the on "
            "clause: some executed rows are remote"
        )
    rows = table.get_rows(iters) + read.offset
    if rows.ndim == 1:
        rows = rows[:, None]
    width = rows.shape[1]
    if read.count is not None:
        counts = env[read.count]
        if not np.all(counts.owns(iters)):
            raise InspectorError(f"count array {read.count!r} is not aligned")
        live_width = counts.get_rows(iters).astype(np.int64)
        live = np.arange(width)[None, :] < live_width[:, None]
    else:
        live = np.ones(rows.shape, dtype=bool)
    me_coord = _dim0_proc_coord(target)
    dim0 = target.dist.dims[0]
    # Dead slots may hold garbage indices; clamp before owner lookup.
    safe = np.where(live, rows, 0)
    owners = np.asarray(dim0.owner(safe))
    nonlocal_mask = (owners != me_coord) & live
    return safe, owners, live, nonlocal_mask, int(live.sum())


def run_inspector(rank: Rank, forall: Forall, env: Dict[str, LocalArray]):
    """Generator: inspect ``forall`` on this rank, return a CommSchedule.

    Collective: every rank must call this (the in→out transpose is a
    global communication).
    """
    for name in set(forall.arrays_read()) | set(forall.arrays_written()):
        if name not in env:
            raise InspectorError(f"array {name!r} referenced but not in scope")
        _require_1d_proc_grid(env[name])

    exec_iters = compute_exec(forall, rank, env)

    total_checks = 0
    any_nonlocal = np.zeros(exec_iters.shape, dtype=bool)
    # per-array: list of global element indices found nonlocal
    nonlocal_elems: Dict[str, List[np.ndarray]] = {}

    for read in forall.reads:
        arr = env[read.array]
        me_coord = _dim0_proc_coord(arr)
        if statically_local(read, forall, env):
            nonlocal_elems.setdefault(read.array, [])
            continue
        if isinstance(read, AffineRead):
            elems, owners, nl_mask, checks = _classify_affine(
                read, exec_iters, env, me_coord
            )
            if elems.size:
                lo_e, hi_e = int(elems.min()), int(elems.max())
                if lo_e < 0 or hi_e >= arr.dist.shape[0]:
                    raise InspectorError(
                        f"{forall.label}: reference {read.operand_name()} "
                        f"subscript out of range [{lo_e}, {hi_e}]"
                    )
            any_nonlocal |= nl_mask
            nonlocal_elems.setdefault(read.array, []).append(elems[nl_mask])
            total_checks += checks
        elif isinstance(read, IndirectRead):
            elems2d, owners2d, live, nl_mask2d, checks = _classify_indirect(
                read, exec_iters, env, rank
            )
            live_elems = elems2d[live]
            if live_elems.size:
                lo_e, hi_e = int(live_elems.min()), int(live_elems.max())
                if lo_e < 0 or hi_e >= env[read.array].dist.shape[0]:
                    raise InspectorError(
                        f"{forall.label}: indirection {read.operand_name()} "
                        f"points outside the array ([{lo_e}, {hi_e}])"
                    )
            any_nonlocal |= nl_mask2d.any(axis=1)
            nonlocal_elems.setdefault(read.array, []).append(elems2d[nl_mask2d])
            total_checks += checks
        else:
            raise InspectorError(f"unknown read descriptor {read!r}")

    # Verify the owner-computes discipline for writes (once, at inspection).
    for w in forall.writes:
        arr = env[w.array]
        me_coord = _dim0_proc_coord(arr)
        targets = w.fn(exec_iters)
        if targets.size:
            if targets.min() < 0 or targets.max() >= arr.dist.shape[0]:
                raise InspectorError(
                    f"{forall.label}: write to {w.array} out of range"
                )
            owners = np.asarray(arr.dist.dims[0].owner(targets))
            if (owners != me_coord).any():
                raise InspectorError(
                    f"{forall.label}: write to {w.array} targets remote "
                    "elements; Kali foralls follow owner-computes (align the "
                    "on clause with the write target)"
                )

    exec_local = exec_iters[~any_nonlocal]
    exec_nonlocal = exec_iters[any_nonlocal]

    # Charge the classification sweep (Figure 6's first loop) plus the
    # sorted-array insertions for elements found nonlocal (§3.3 notes the
    # O(r) insertion cost of the range-array representation).
    total_nonlocal = sum(
        int(sum(piece.size for piece in pieces))
        for pieces in nonlocal_elems.values()
    )
    yield Compute(
        rank.machine.inspect_ref * total_checks
        + rank.machine.insert_elem * total_nonlocal,
        phase=PHASE,
        label=forall.label,
    )
    yield Count("inspector_checks", total_checks)
    yield Count("inspector_nonlocal", total_nonlocal)

    # Build per-array in-sets as (home proc -> home local offsets).
    schedule = CommSchedule(
        label=forall.label,
        rank=rank.id,
        exec_local=exec_local,
        exec_nonlocal=exec_nonlocal,
    )
    request_payload: Dict[int, List[Tuple[str, int, int]]] = {}
    for name in sorted({r.array for r in forall.reads}):
        arr = env[name]
        me_coord = _dim0_proc_coord(arr)
        pieces = nonlocal_elems.get(name, [])
        elems = (
            np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
        )
        asched = ArraySchedule(array=name)
        if elems.size:
            dim0 = arr.dist.dims[0]
            owners = np.asarray(dim0.owner(elems))
            offsets = np.asarray(dim0.to_local(elems))
            peer_offsets = {
                int(q): offsets[owners == q] for q in np.unique(owners)
            }
            # Owners are processor coords along proc dim 0 == ranks (1-d grid).
            asched.in_records = coalesce_ranges(peer_offsets, rank.id, incoming=True)
        asched.finalize()
        schedule.arrays[name] = asched
        for rec in asched.in_records:
            request_payload.setdefault(rec.from_proc, []).append(
                (name, rec.low, rec.high)
            )

    # Global transpose: ship each in-range request to its home processor.
    if is_power_of_two(rank.size):
        replies = yield from crystal_route(
            rank, request_payload, phase=PHASE, charge_combine=True
        )
    else:
        outbound = [request_payload.get(q, None) for q in range(rank.size)]
        gathered = yield from alltoall(rank, outbound, phase=PHASE)
        replies = {q: req for q, req in enumerate(gathered) if req}

    # out(p,q) = requests received from q, sorted by (q, low) per Figure 5.
    out_by_array: Dict[str, List[RangeRecord]] = {name: [] for name in schedule.arrays}
    for q in sorted(replies):
        for name, low, high in replies[q]:
            out_by_array[name].append(
                RangeRecord(from_proc=rank.id, to_proc=q, low=low, high=high)
            )
    for name, recs in out_by_array.items():
        recs.sort(key=lambda r: (r.to_proc, r.low))
        schedule.arrays[name].out_records = recs

    for name in forall.comm_dependency_arrays():
        schedule.versions[name] = env[name].version
    for name in set(forall.arrays_read()) | set(forall.arrays_written()):
        schedule.dist_versions[name] = env[name].dist_version

    yield Count("inspector_runs", 1)
    return schedule
