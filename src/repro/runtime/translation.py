"""Translation tables: locating communicated elements in receive buffers.

The paper stores ``in`` sets as sorted arrays of ranges and finds an
individual communicated element "by binary search in O(log r) time (where
r is the number of ranges), which is optimal in the general case" (§3.3).
:class:`TranslationTable` is that structure, vectorised: lookups for whole
index arrays run as one ``searchsorted`` call, while the *virtual-time*
cost charged by the executor remains the per-element O(log r) searches of
the paper's C implementation.

:class:`EnumeratedTable` is the Saltz-style alternative the paper contrasts
in Related Work (§5): explicitly enumerate every reference in a list —
O(1) lookup, no search, but storage proportional to the number of
*references* instead of the number of *ranges*.  It backs the A2 ablation
benchmark.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InspectorError

# Keys combine (proc, offset) into one sortable integer; offsets are local
# storage offsets so they comfortably fit 40 bits.
_KEY_SHIFT = 40
_KEY_LIMIT = 1 << _KEY_SHIFT


def _keys(procs: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    return (procs.astype(np.int64) << _KEY_SHIFT) | offsets.astype(np.int64)


class TranslationTable:
    """Sorted-range lookup from (home_proc, home_offset) to buffer slot."""

    __slots__ = ("range_keys_low", "range_high", "buffer_starts", "num_ranges")

    def __init__(
        self,
        range_keys_low: np.ndarray,
        range_high: np.ndarray,
        buffer_starts: np.ndarray,
    ):
        self.range_keys_low = range_keys_low
        self.range_high = range_high
        self.buffer_starts = buffer_starts
        self.num_ranges = int(range_keys_low.size)

    @classmethod
    def from_records(cls, in_records: Sequence) -> "TranslationTable":
        """Build from in-records already sorted by (from_proc, low)."""
        lows = np.array(
            [(r.from_proc << _KEY_SHIFT) | r.low for r in in_records], dtype=np.int64
        )
        if lows.size > 1 and (np.diff(lows) <= 0).any():
            raise InspectorError("in records are not sorted by (proc, low)")
        highs = np.array([r.high for r in in_records], dtype=np.int64)
        starts = np.array([r.buffer_start for r in in_records], dtype=np.int64)
        for r in in_records:
            if r.low >= _KEY_LIMIT or r.high >= _KEY_LIMIT:
                raise InspectorError("offset exceeds translation key width")
        return cls(lows, highs, starts)

    def lookup(self, procs: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Buffer slots for (proc, offset) pairs; raises if any miss.

        Vectorised binary search: each element costs the cost model's
        O(log r) search charge, accounted by the executor.
        """
        procs = np.asarray(procs, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if self.num_ranges == 0:
            if procs.size:
                raise InspectorError("lookup on empty translation table")
            return np.empty(0, dtype=np.int64)
        keys = _keys(procs, offsets)
        idx = np.searchsorted(self.range_keys_low, keys, side="right") - 1
        if (idx < 0).any():
            raise InspectorError("translation miss: element below every range")
        rec_proc = self.range_keys_low[idx] >> _KEY_SHIFT
        rec_low = self.range_keys_low[idx] & (_KEY_LIMIT - 1)
        ok = (rec_proc == procs) & (offsets >= rec_low) & (offsets <= self.range_high[idx])
        if not ok.all():
            bad = np.nonzero(~ok)[0][0]
            raise InspectorError(
                f"translation miss for proc {int(procs[bad])} offset "
                f"{int(offsets[bad])}: element was never scheduled for receive"
            )
        return self.buffer_starts[idx] + (offsets - rec_low)

    def contains(self, procs: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Vectorised membership (no raise)."""
        procs = np.asarray(procs, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if self.num_ranges == 0:
            return np.zeros(procs.shape, dtype=bool)
        keys = _keys(procs, offsets)
        idx = np.searchsorted(self.range_keys_low, keys, side="right") - 1
        idx_ok = idx >= 0
        idx = np.maximum(idx, 0)
        rec_proc = self.range_keys_low[idx] >> _KEY_SHIFT
        rec_low = self.range_keys_low[idx] & (_KEY_LIMIT - 1)
        return (
            idx_ok
            & (rec_proc == procs)
            & (offsets >= rec_low)
            & (offsets <= self.range_high[idx])
        )


class EnumeratedTable:
    """Hash-style full enumeration of communicated elements (Saltz, §5).

    Stores one entry per distinct communicated element.  Lookup is O(1)
    per element (charged as a single base search cost, no log factor);
    memory is proportional to element count rather than range count —
    exactly the trade-off the paper describes: "they explicitly enumerate
    all array references ... this eliminates the overhead of checking and
    searching for nonlocal references during the loop execution but
    requires more storage".
    """

    __slots__ = ("_map", "num_entries")

    def __init__(self, procs: np.ndarray, offsets: np.ndarray, slots: np.ndarray):
        keys = _keys(np.asarray(procs, np.int64), np.asarray(offsets, np.int64))
        self._map = dict(zip(keys.tolist(), np.asarray(slots, np.int64).tolist()))
        self.num_entries = len(self._map)

    @classmethod
    def from_records(cls, in_records: Sequence) -> "EnumeratedTable":
        procs: List[int] = []
        offsets: List[int] = []
        slots: List[int] = []
        for r in in_records:
            for k, off in enumerate(range(r.low, r.high + 1)):
                procs.append(r.from_proc)
                offsets.append(off)
                slots.append(r.buffer_start + k)
        return cls(np.array(procs, np.int64), np.array(offsets, np.int64),
                   np.array(slots, np.int64))

    def lookup(self, procs: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        keys = _keys(np.asarray(procs, np.int64), np.asarray(offsets, np.int64))
        try:
            return np.fromiter(
                (self._map[k] for k in keys.tolist()), dtype=np.int64, count=keys.size
            )
        except KeyError as exc:
            raise InspectorError(f"enumerated-table miss: {exc}") from exc

    def storage_entries(self) -> int:
        return self.num_entries
