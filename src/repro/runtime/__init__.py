"""The run-time analysis machinery: inspector, executor, schedules, cache.

This is the paper's core contribution (§3.3): before a data-dependent
forall first runs, an *inspector* classifies every array reference as
local or nonlocal, builds the ``in(p,q)`` receive sets as sorted arrays of
contiguous-range records (the paper's Figure 5), routes them through the
crystal router to derive the ``out(p,q)`` send sets, and caches the
resulting :class:`~repro.runtime.schedule.CommSchedule`.  The *executor*
then performs every forall execution as: send all → local iterations →
receive all → nonlocal iterations (Figures 3 and 6).
"""

from repro.runtime.schedule import CommSchedule, RangeRecord
from repro.runtime.translation import TranslationTable, EnumeratedTable
from repro.runtime.inspector import run_inspector
from repro.runtime.executor import run_executor
from repro.runtime.cache import ScheduleCache
from repro.runtime.redistribute import redistribute

__all__ = [
    "RangeRecord",
    "CommSchedule",
    "TranslationTable",
    "EnumeratedTable",
    "run_inspector",
    "run_executor",
    "ScheduleCache",
    "redistribute",
]
