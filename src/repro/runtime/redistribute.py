"""Array redistribution: changing a distribution at run time.

The paper defers "dynamic load balancing" to future work (§6); its
language already has everything needed except the data-motion primitive.
``redistribute`` is that primitive: an all-to-all exchange moving every
element of a distributed array from its current owner to its owner under
a new distribution pattern.

Both sides of the exchange are computed *symbolically* — distributions
are global knowledge, so rank ``p`` knows exactly which of its rows each
``q`` needs (``old_local(p) ∩ new_local(q)``) and which rows it will
receive (``new_local(p) ∩ old_local(q)``) without any negotiation
messages.  Costs are charged through the machine model: per-element
pack/unpack plus one message per communicating pair.

Redistribution invalidates every cached communication schedule that
references the array (the ``exec``/``ref`` sets all change); this is
tracked by the ``dist_version`` stamp on :class:`LocalArray`, which the
schedule cache validates alongside the data versions.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arrays.localview import LocalArray
from repro.distributions.base import DimDistribution
from repro.distributions.multidim import ArrayDistribution
from repro.distributions.replicated import Replicated
from repro.errors import DistributionError
from repro.machine.api import Compute, Count, Rank, Recv, Send, payload_nbytes

PHASE = "redistribute"
_REDIST_TAG_BASE = 1 << 19


def redistribute(
    rank: Rank,
    local: LocalArray,
    new_spec: DimDistribution,
    tag: int = 0,
    phase: str = PHASE,
) -> LocalArray:
    """Generator: move ``local`` to ``new_spec`` along its first dimension.

    Collective — every rank must call it with the same arguments.
    Returns the new :class:`LocalArray`; the old one must no longer be
    used.  The distributed dimension must map onto a 1-d processor array
    (the paper's evaluation configuration).
    """
    dist = local.dist
    if dist.procs.ndim != 1:
        raise DistributionError("redistribute supports 1-d processor arrays")
    if dist.proc_dim_of[0] is None:
        raise DistributionError(
            f"array {local.name!r} is replicated; only distributed arrays "
            "can be redistributed"
        )
    me, P = rank.id, rank.size
    m = rank.machine
    extent = dist.shape[0]

    trailing = []
    for d, pdim in zip(dist.dims[1:], dist.proc_dim_of[1:]):
        if pdim is not None:
            raise DistributionError(
                "redistribute supports one distributed dimension"
            )
        trailing.append(Replicated())
    new_dist = ArrayDistribution(dist.shape, [new_spec] + trailing, dist.procs)
    old_dim = dist.dims[0]
    new_dim = new_dist.dims[0]

    row_elems = int(np.prod(local.data.shape[1:])) if local.data.ndim > 1 else 1
    t = _REDIST_TAG_BASE + tag

    # --- outgoing: my old rows grouped by their new owner -------------------
    my_rows = local.global_rows
    new_owners = np.asarray(new_dim.owner(my_rows)) if my_rows.size else \
        np.empty(0, dtype=np.int64)

    # --- allocate and place the rows that stay local --------------------------
    new_shape = (new_dim.local_count(me),) + local.data.shape[1:]
    new_data = np.zeros(new_shape, dtype=local.data.dtype)
    keep = new_owners == me
    if keep.any():
        kept_rows = my_rows[keep]
        new_data[np.asarray(new_dim.to_local(kept_rows))] = local.data[
            np.asarray(old_dim.to_local(kept_rows))
        ]
        yield Compute(m.copy_elem * int(keep.sum()) * row_elems, phase=phase)

    # --- send to every new owner that needs some of my rows -------------------
    send_targets = np.unique(new_owners[~keep]) if (~keep).any() else []
    for q in send_targets:
        mask = new_owners == q
        rows = my_rows[mask]
        payload = local.data[np.asarray(old_dim.to_local(rows))]
        yield Compute(m.copy_elem * rows.size * row_elems, phase=phase)
        yield Send(dest=int(q), payload=(rows, payload), tag=t, phase=phase,
                   label=local.name)
        yield Count("redistribute_elems_sent", int(rows.size))
        yield Count("redistribute_msgs", 1)
        yield Count("redistribute_bytes", payload_nbytes((rows, payload)))

    # --- receive from every old owner of my new rows --------------------------
    my_new = new_dim.local_indices(me)
    old_owners = np.asarray(old_dim.owner(my_new)) if my_new.size else \
        np.empty(0, dtype=np.int64)
    sources = [int(q) for q in np.unique(old_owners) if q != me]
    for q in sources:
        msg = yield Recv(source=q, tag=t, phase=phase, label=local.name)
        rows, payload = msg.payload
        new_data[np.asarray(new_dim.to_local(rows))] = payload
        yield Compute(m.copy_elem * rows.size * row_elems, phase=phase)

    out = LocalArray(local.name, me, new_dist, new_data, version=local.version)
    out.dist_version = local.dist_version + 1
    return out
