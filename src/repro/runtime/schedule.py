"""Communication schedules: the paper's Figure 5 data structure.

The ``in(p,q)`` and ``out(p,q)`` sets are represented as dynamically-sized
arrays of range records::

    record
        from_proc : integer;   -- sending processor
        to_proc   : integer;   -- receiving processor
        low, high : integer;   -- bounds of the block (offsets from the
                                  base of the array on the home processor)
        buffer    : ^real;     -- pointer into the communications buffer

exactly as in the paper: records are sorted on the peer processor id with
``low`` as secondary key, adjacent ranges are coalesced "to minimize the
number of records needed", and the ``buffer`` field (here: an offset into
a NumPy buffer) is used on the receive side to locate communicated
elements.  When several arrays share one schedule a symbol field becomes
the secondary key (§3.3); this implementation keeps one schedule per
referenced array, which is equivalent and simpler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InspectorError
from repro.runtime.translation import EnumeratedTable, TranslationTable


@dataclass(frozen=True)
class RangeRecord:
    """One contiguous block of array elements to communicate.

    ``low``/``high`` are inclusive *local offsets on the home (sending)
    processor*, per the paper ("these fields are actually the offsets from
    the base of the array on the home processor").  ``buffer_start`` is
    the block's position in the receiver's communication buffer.
    """

    from_proc: int
    to_proc: int
    low: int
    high: int
    buffer_start: int = -1

    def __post_init__(self):
        if self.low > self.high:
            raise InspectorError(f"empty range record {self.low}..{self.high}")

    @property
    def count(self) -> int:
        return self.high - self.low + 1


def coalesce_ranges(
    peer_offsets: Dict[int, np.ndarray],
    me: int,
    incoming: bool,
) -> List[RangeRecord]:
    """Build sorted, coalesced records from per-peer offset arrays.

    ``peer_offsets[q]`` holds the (home-processor-local) offsets of the
    elements exchanged with peer ``q``.  Offsets are deduplicated and
    sorted, adjacent offsets merge into one record.  Records are ordered
    by (peer, low) — the paper's primary/secondary sort keys — and
    ``buffer_start`` is assigned cumulatively for incoming records.
    """
    records: List[RangeRecord] = []
    buf = 0
    for q in sorted(peer_offsets):
        offs = np.unique(np.asarray(peer_offsets[q], dtype=np.int64))
        if offs.size == 0:
            continue
        breaks = np.nonzero(np.diff(offs) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [offs.size - 1]))
        for s, e in zip(starts, ends):
            low, high = int(offs[s]), int(offs[e])
            if incoming:
                rec = RangeRecord(from_proc=q, to_proc=me, low=low, high=high,
                                  buffer_start=buf)
                buf += high - low + 1
            else:
                rec = RangeRecord(from_proc=me, to_proc=q, low=low, high=high)
            records.append(rec)
    return records


@dataclass
class ArraySchedule:
    """Communication plan for one referenced array on one rank.

    ``in_records``: blocks this rank receives (sorted by from_proc, low).
    ``out_records``: blocks this rank sends (sorted by to_proc, low).
    ``translation``: resolves (home_proc, home_offset) pairs to positions
    in the receive buffer.
    ``buffer_len``: total elements received.
    """

    array: str
    in_records: List[RangeRecord] = field(default_factory=list)
    out_records: List[RangeRecord] = field(default_factory=list)
    translation: Optional[TranslationTable] = None
    buffer_len: int = 0

    def finalize(self) -> None:
        """Build the translation table from the (already sorted) in records."""
        self.buffer_len = sum(r.count for r in self.in_records)
        self.translation = TranslationTable.from_records(self.in_records)

    def to_enumerated(self) -> None:
        """Swap the sorted-range table for a full enumeration (Saltz, §5)."""
        self.translation = EnumeratedTable.from_records(self.in_records)

    def peers_in(self) -> List[int]:
        return sorted({r.from_proc for r in self.in_records})

    def peers_out(self) -> List[int]:
        return sorted({r.to_proc for r in self.out_records})

    def ranges_for_peer_out(self, q: int) -> List[RangeRecord]:
        return [r for r in self.out_records if r.to_proc == q]

    def ranges_for_peer_in(self, q: int) -> List[RangeRecord]:
        return [r for r in self.in_records if r.from_proc == q]

    def num_in_ranges(self) -> int:
        return len(self.in_records)


@dataclass
class CommSchedule:
    """The complete cached result of inspecting one forall on one rank.

    Contents (paper Figure 6's ``local_list``/``nonlocal_list``/
    ``recv_list``/``send_list``):

    * ``exec_local``: global iteration indices whose references are all
      local (``exec(p) ∩ ref(p)`` across references),
    * ``exec_nonlocal``: iterations touching at least one remote element
      (``exec(p) − ref(p)``),
    * ``arrays``: per-referenced-array :class:`ArraySchedule`,
    * ``versions``: versions of the communication-determining arrays at
      inspection time (cache invalidation key),
    * counters used by the executor's cost charging.
    """

    label: str
    rank: int
    exec_local: np.ndarray
    exec_nonlocal: np.ndarray
    arrays: Dict[str, ArraySchedule] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    #: distribution generation of every referenced array at build time —
    #: a redistribute invalidates the whole schedule (exec/ref/in/out all
    #: depend on the layout, not just the indirection values)
    dist_versions: Dict[str, int] = field(default_factory=dict)
    built_by: str = "inspector"  # or "compile-time"
    translation_kind: str = "ranges"  # or "enumerated"

    def enumerate_translations(self) -> None:
        """Convert all translation tables to enumerated form."""
        for a in self.arrays.values():
            a.to_enumerated()
        self.translation_kind = "enumerated"

    def total_in_elements(self) -> int:
        return sum(a.buffer_len for a in self.arrays.values())

    def total_out_elements(self) -> int:
        return sum(r.count for a in self.arrays.values() for r in a.out_records)

    def total_messages_out(self) -> int:
        return sum(len(a.peers_out()) for a in self.arrays.values())

    def num_exec(self) -> int:
        return int(self.exec_local.size + self.exec_nonlocal.size)

    def describe(self) -> str:
        lines = [
            f"schedule {self.label} on rank {self.rank} ({self.built_by}):",
            f"  local iters={self.exec_local.size} nonlocal iters={self.exec_nonlocal.size}",
        ]
        for name, a in sorted(self.arrays.items()):
            lines.append(
                f"  array {name}: recv {a.buffer_len} elems in "
                f"{len(a.in_records)} ranges from {a.peers_in()}; "
                f"send {sum(r.count for r in a.out_records)} elems in "
                f"{len(a.out_records)} ranges to {a.peers_out()}"
            )
        return "\n".join(lines)
