"""The executor: run one forall under a communication schedule.

Follows the paper's Figure 3/6 structure exactly:

1. **send** every ``out(p,q)`` block to its requester,
2. **local iterations** — compute iterations whose references are all
   local, overlapping with message transit,
3. **receive** every ``in(p,q)`` block into the communication buffer,
4. **nonlocal iterations** — compute the rest, resolving remote elements
   through the O(log r) translation table (with the per-element locality
   test the paper notes is needed "because even within the same iteration
   of the forall, the reference old_a[adj[i,j]] may be sometimes local and
   sometimes nonlocal"),
5. commit writes (copy-in/copy-out: no write is visible to any read of
   this forall execution).

Host-side, gathers and kernels are vectorised NumPy over iteration
batches; virtual time is charged from reference counts using the machine
cost model, so the simulated cost profile matches the paper's per-element
C implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arrays.localview import LocalArray
from repro.comm.collectives import allreduce
from repro.core.forall import (
    AffineRead,
    Forall,
    IndirectOperand,
    IndirectRead,
)
from repro.errors import InspectorError
from repro.machine.api import Compute, Count, Rank, Recv, Send
from repro.runtime.schedule import ArraySchedule, CommSchedule

PHASE = "executor"

# Tag space for executor data messages: disjoint from collective tags.
_EXEC_TAG_BASE = 1 << 16


def _dim0_coord(local: LocalArray) -> int:
    dist = local.dist
    pdim = dist.proc_dim_of[0]
    if pdim is None:
        return 0
    return dist.procs.coords_of(local.rank)[pdim]


class _GatherPlan:
    """Resolved value sources for one read over one iteration batch."""

    __slots__ = ("values", "n_local_refs", "n_remote_refs", "n_indirect_refs")

    def __init__(self, values, n_local_refs: int, n_remote_refs: int,
                 n_indirect_refs: int = 0):
        self.values = values
        self.n_local_refs = n_local_refs
        self.n_remote_refs = n_remote_refs
        self.n_indirect_refs = n_indirect_refs


def _gather_affine(
    read: AffineRead,
    iters: np.ndarray,
    env: Dict[str, LocalArray],
    asched: ArraySchedule,
    buffers: Dict[str, np.ndarray],
) -> _GatherPlan:
    arr = env[read.array]
    elems = read.fn(iters)
    dim0 = arr.dist.dims[0]
    owners = np.asarray(dim0.owner(elems))
    me = _dim0_coord(arr)
    local_mask = owners == me
    if arr.data.ndim == 1:
        out = np.zeros(iters.shape, dtype=arr.data.dtype)
    else:
        out = np.zeros((iters.size,) + arr.data.shape[1:], dtype=arr.data.dtype)
    if local_mask.any():
        out[local_mask] = arr.data[np.asarray(dim0.to_local(elems[local_mask]))]
    remote = ~local_mask
    n_remote = int(remote.sum())
    if n_remote:
        offs = np.asarray(dim0.to_local(elems[remote]))
        slots = asched.translation.lookup(owners[remote], offs)
        out[remote] = buffers[read.array][slots]
    return _GatherPlan(out, int(local_mask.sum()), n_remote)


def _gather_indirect(
    read: IndirectRead,
    iters: np.ndarray,
    env: Dict[str, LocalArray],
    asched: ArraySchedule,
    buffers: Dict[str, np.ndarray],
) -> _GatherPlan:
    arr = env[read.array]
    table = env[read.table]
    rows = table.get_rows(iters) + read.offset
    if rows.ndim == 1:
        rows = rows[:, None]
    width = rows.shape[1]
    if read.count is not None:
        live_width = env[read.count].get_rows(iters).astype(np.int64)
        live = np.arange(width)[None, :] < live_width[:, None]
    else:
        live_width = np.full(iters.shape, width, dtype=np.int64)
        live = np.ones(rows.shape, dtype=bool)
    dim0 = arr.dist.dims[0]
    me = _dim0_coord(arr)
    safe = np.where(live, rows, 0)
    owners = np.asarray(dim0.owner(safe))
    local_mask = (owners == me) & live
    remote_mask = (owners != me) & live
    values = np.zeros(rows.shape, dtype=arr.data.dtype)
    if local_mask.any():
        values[local_mask] = arr.data[
            np.asarray(dim0.to_local(safe[local_mask]))
        ]
    n_remote = int(remote_mask.sum())
    if n_remote:
        offs = np.asarray(dim0.to_local(safe[remote_mask]))
        slots = asched.translation.lookup(owners[remote_mask], offs)
        values[remote_mask] = buffers[read.array][slots]
    n_local = int(local_mask.sum())
    return _GatherPlan(
        IndirectOperand(values=values, counts=live_width),
        n_local,
        n_remote,
        n_indirect_refs=n_local + n_remote,
    )


def _gather_batch(
    forall: Forall,
    iters: np.ndarray,
    env: Dict[str, LocalArray],
    schedule: CommSchedule,
    buffers: Dict[str, np.ndarray],
) -> Tuple[Dict[str, object], int, int, int]:
    """Gather all read operands for a batch.

    Returns ``(operands, n_local_refs, n_remote_refs, n_indirect_refs)``;
    the last counts live elements of indirection reads, which is what
    ``flops_per_ref`` is charged against (one multiply-add per mesh edge
    in the Jacobi kernel, not per auxiliary coefficient read).
    """
    operands: Dict[str, object] = {}
    n_local = n_remote = n_indirect = 0
    for read in forall.reads:
        asched = schedule.arrays[read.array]
        if isinstance(read, AffineRead):
            plan = _gather_affine(read, iters, env, asched, buffers)
        else:
            plan = _gather_indirect(read, iters, env, asched, buffers)
        operands[read.operand_name()] = plan.values
        n_local += plan.n_local_refs
        n_remote += plan.n_remote_refs
        n_indirect += plan.n_indirect_refs
    return operands, n_local, n_remote, n_indirect


def _apply_kernel(
    forall: Forall,
    iters: np.ndarray,
    operands: Dict[str, object],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Run the kernel; returns ({array: values}, {reduction: contributions})."""
    result = forall.kernel(iters, operands)
    if not isinstance(result, dict):
        if len(forall.writes) != 1 or forall.reductions:
            raise InspectorError(
                f"{forall.label}: kernel must return a dict for multiple "
                "writes or reductions"
            )
        return {forall.writes[0].array: np.asarray(result)}, {}
    writes = {}
    for w in forall.writes:
        if w.array not in result:
            raise InspectorError(
                f"{forall.label}: kernel returned no values for {w.array}"
            )
        writes[w.array] = np.asarray(result[w.array])
    contribs = {}
    for spec in forall.reductions:
        if spec.name not in result:
            raise InspectorError(
                f"{forall.label}: kernel returned no contributions for "
                f"reduction {spec.name!r}"
            )
        contribs[spec.name] = np.asarray(result[spec.name])
    return writes, contribs


def run_executor(
    rank: Rank,
    forall: Forall,
    env: Dict[str, LocalArray],
    schedule: CommSchedule,
    tag_base: int,
    combine_messages: bool = True,
):
    """Generator: execute one forall under ``schedule``.

    ``tag_base`` must be identical on all ranks for this execution (the
    caller keeps a per-rank counter that stays synchronised because every
    rank executes the same forall sequence).

    ``combine_messages`` merges all arrays' blocks for one peer into a
    single message (the paper's §3.3: "Sorting by processor id also
    allowed us to combine messages between the same two processors" with
    "a symbol field identifying the array" — here the payload is keyed by
    array name).  Disable for the message-combining ablation.
    """
    m = rank.machine

    # --- 1. send out-blocks (old values: nothing written yet) -------------
    array_order = sorted(schedule.arrays)
    if combine_messages:
        # One message per peer, carrying every array's blocks ("symbol
        # field" = the array name keying each chunk).
        combined_tag = _EXEC_TAG_BASE + tag_base
        peer_payloads: Dict[int, Dict[str, np.ndarray]] = {}
        for name in array_order:
            asched = schedule.arrays[name]
            arr = env[name]
            for q in asched.peers_out():
                chunks = [
                    arr.data[r.low : r.high + 1]
                    for r in asched.ranges_for_peer_out(q)
                ]
                payload = (
                    np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
                )
                peer_payloads.setdefault(q, {})[name] = payload
        for q in sorted(peer_payloads):
            bundle = peer_payloads[q]
            n_elems = sum(int(v.shape[0]) for v in bundle.values())
            # Wire size: the data plus a small symbol field per array (the
            # paper's in-message array identifier), not Python dict overhead.
            nbytes = sum(v.nbytes for v in bundle.values()) + 8 * len(bundle)
            yield Compute(m.copy_elem * n_elems, phase=PHASE, label=forall.label)
            yield Send(dest=q, payload=bundle, tag=combined_tag,
                       nbytes=nbytes, phase=PHASE, label=forall.label)
            yield Count("executor_elems_sent", n_elems)
    else:
        for a_idx, name in enumerate(array_order):
            asched = schedule.arrays[name]
            arr = env[name]
            tag = _EXEC_TAG_BASE + tag_base + a_idx
            for q in asched.peers_out():
                chunks = [
                    arr.data[r.low : r.high + 1]
                    for r in asched.ranges_for_peer_out(q)
                ]
                payload = (
                    np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
                )
                yield Compute(m.copy_elem * payload.shape[0], phase=PHASE,
                              label=forall.label)
                yield Send(dest=q, payload=payload, tag=tag, phase=PHASE,
                           label=forall.label)
                yield Count("executor_elems_sent", int(payload.shape[0]))

    # --- snapshot read-write overlap for copy-in/copy-out ----------------------
    # Reads gather from arr.data; if a read array is also written we must
    # gather *before* committing writes.  We gather everything first and
    # commit last, so a snapshot is only needed defensively for buffers
    # already sent (done above).  Nothing to do here; order guarantees it.

    # --- 2. local iterations ------------------------------------------------
    buffers: Dict[str, np.ndarray] = {
        name: np.zeros(
            (schedule.arrays[name].buffer_len,) + env[name].data.shape[1:],
            dtype=env[name].data.dtype,
        )
        for name in array_order
    }
    exec_local = schedule.exec_local
    pending_writes: List[Tuple[np.ndarray, Dict[str, np.ndarray]]] = []
    partials: Dict[str, float] = {
        spec.name: spec.identity for spec in forall.reductions
    }

    def fold_contributions(contribs: Dict[str, np.ndarray]) -> None:
        for spec in forall.reductions:
            vec = contribs[spec.name]
            if vec.size == 0:
                continue
            if spec.op == "sum":
                batch = float(vec.sum())
            elif spec.op == "max":
                batch = float(vec.max())
            else:
                batch = float(vec.min())
            partials[spec.name] = spec.fn(partials[spec.name], batch)

    live_refs_local = 0
    if exec_local.size:
        operands, n_loc, n_rem, n_ind = _gather_batch(
            forall, exec_local, env, schedule, buffers
        )
        if n_rem:
            raise InspectorError(
                f"{forall.label}: schedule marked iterations local but "
                f"{n_rem} references resolve remotely (stale schedule?)"
            )
        live_refs_local = n_loc
        out_vals, contribs = _apply_kernel(forall, exec_local, operands)
        pending_writes.append((exec_local, out_vals))
        fold_contributions(contribs)
        cost = (
            exec_local.size * m.iter_base
            + n_loc * m.ref_local
            + n_ind * forall.flops_per_ref * m.flop
            + exec_local.size * forall.flops_per_iter * m.flop
        )
        yield Compute(cost, phase=PHASE, label=forall.label)

    # --- 3. receive in-blocks ------------------------------------------------
    def unpack(name: str, q: int, data: np.ndarray) -> int:
        asched = schedule.arrays[name]
        pos = 0
        for r in asched.ranges_for_peer_in(q):
            buffers[name][r.buffer_start : r.buffer_start + r.count] = data[
                pos : pos + r.count
            ]
            pos += r.count
        if pos != data.shape[0]:
            raise InspectorError(
                f"{forall.label}: message from {q} for {name} carried "
                f"{data.shape[0]} elements, schedule expects {pos}"
            )
        return pos

    if combine_messages:
        peers_in = sorted(
            {q for name in array_order for q in schedule.arrays[name].peers_in()}
        )
        combined_tag = _EXEC_TAG_BASE + tag_base
        for q in peers_in:
            msg = yield Recv(source=q, tag=combined_tag, phase=PHASE,
                             label=forall.label)
            total = 0
            for name, data in msg.payload.items():
                total += unpack(name, q, data)
            yield Compute(m.copy_elem * total, phase=PHASE, label=forall.label)
            yield Count("executor_elems_recv", total)
    else:
        for a_idx, name in enumerate(array_order):
            asched = schedule.arrays[name]
            tag = _EXEC_TAG_BASE + tag_base + a_idx
            for q in asched.peers_in():
                msg = yield Recv(source=q, tag=tag, phase=PHASE,
                                 label=forall.label)
                pos = unpack(name, q, msg.payload)
                yield Compute(m.copy_elem * pos, phase=PHASE,
                              label=forall.label)
                yield Count("executor_elems_recv", pos)

    # --- 4. nonlocal iterations ----------------------------------------------
    exec_nonlocal = schedule.exec_nonlocal
    live_refs_remote = 0
    if exec_nonlocal.size:
        operands, n_loc, n_rem, n_ind = _gather_batch(
            forall, exec_nonlocal, env, schedule, buffers
        )
        live_refs_remote = n_rem
        out_vals, contribs = _apply_kernel(forall, exec_nonlocal, operands)
        pending_writes.append((exec_nonlocal, out_vals))
        fold_contributions(contribs)
        # Every reference in the nonlocal loop pays the locality test;
        # remote ones additionally pay the O(log r) search — unless the
        # schedule enumerates every element (Saltz-style), where a remote
        # access is two plain references (table probe + buffer load).
        max_ranges = max(
            (schedule.arrays[r.array].num_in_ranges() for r in forall.reads),
            default=0,
        )
        if schedule.translation_kind == "enumerated":
            per_remote = 2.0 * m.ref_local
        else:
            per_remote = m.search_cost(max(max_ranges, 1))
        cost = (
            exec_nonlocal.size * m.iter_base
            + n_loc * m.ref_local
            + n_rem * per_remote
            + n_ind * forall.flops_per_ref * m.flop
            + exec_nonlocal.size * forall.flops_per_iter * m.flop
        )
        yield Compute(cost, phase=PHASE, label=forall.label)
        yield Count("executor_remote_refs", n_rem)

    # --- 5. commit writes (copy-out) ---------------------------------------------
    n_written = 0
    written_arrays = set()
    for iters, outputs in pending_writes:
        for w in forall.writes:
            arr = env[w.array]
            targets = w.fn(iters)
            arr.set_rows(targets, outputs[w.array])
            written_arrays.add(w.array)
            n_written += iters.size
    # Bump versions so schedules depending on written arrays re-inspect.
    for name in written_arrays:
        env[name].version += 1
    if n_written:
        yield Compute(m.ref_local * n_written, phase=PHASE, label=forall.label)
    yield Count("executor_iters", schedule.num_exec())
    yield Count("executor_local_refs", live_refs_local)

    # --- 6. global reductions (recursive doubling, charged like any
    # other executor communication) -----------------------------------------
    if not forall.reductions:
        return None
    # One flop per contribution folded locally.
    n_contrib = schedule.num_exec() * len(forall.reductions)
    if n_contrib:
        yield Compute(m.flop * n_contrib, phase=PHASE, label=forall.label)
    results: Dict[str, float] = {}
    for r_idx, spec in enumerate(forall.reductions):
        reduced = yield from allreduce(
            rank,
            partials[spec.name],
            spec.fn,
            tag=(tag_base + r_idx) % 1000,
            phase=PHASE,
            op_cost=m.flop,
        )
        results[spec.name] = reduced
    return results
