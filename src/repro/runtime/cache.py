"""Schedule caching across forall executions (paper §3.2).

"Our run-time analysis takes advantage of this by computing the exec(p)
and ref(p) sets only the first time they are needed and saving them for
later loop executions.  This amortizes the cost of the run-time analysis
over many repetitions of the forall."

A schedule is valid while the *communication-determining* data is
unchanged: the indirection tables and count arrays named by the forall's
reads (changing the floating-point mesh values does not invalidate
anything).  The cache therefore keys on the forall label and compares the
stored version stamps of those arrays.  Invalidation is automatic: bump an
array's version (any write through the driver API does) and the next
execution re-inspects.

Two tiers.  The in-memory tier above dies with the process, which is fine
for one long run but wrong for a job server paying inspector cost once
per *job*.  An optional second tier — a
:class:`~repro.serve.diskcache.DiskScheduleCache` — persists inspected
schedules on disk under a content-addressed key (hash of the forall spec,
distributions, and the indirection arrays' bytes).  A memory miss falls
through to disk; a disk hit is re-stamped with the current version
counters and promoted into memory, so the fast path stays fast.  Stores
write through.  Only inspector-built schedules persist: closed-form
schedules cost nothing to rebuild.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arrays.localview import LocalArray
from repro.core.forall import Forall
from repro.runtime.schedule import CommSchedule


def _content_key(forall: Forall, env: Dict[str, LocalArray],
                 translation: str) -> Optional[str]:
    # Imported lazily: repro.serve is a higher layer, and the key is only
    # needed when a disk tier is actually attached.
    from repro.serve.diskcache import schedule_content_key

    return schedule_content_key(forall, env, translation)


class ScheduleCache:
    """Per-rank cache of inspected forall schedules (memory + optional disk)."""

    def __init__(self, enabled: bool = True, disk=None,
                 translation: str = "ranges"):
        self.enabled = enabled
        #: optional :class:`~repro.serve.diskcache.DiskScheduleCache`
        self.disk = disk
        self.translation = translation
        self._store: Dict[str, CommSchedule] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._reported: Dict[str, int] = {}
        if disk is not None:
            # The disk tier may be a process-shared instance carrying
            # counters from earlier runs (see ``shared_disk_cache``);
            # baseline them so take_counts() reports this run's deltas.
            self._reported.update({
                "schedule_cache_disk_hits": disk.hits,
                "schedule_cache_disk_misses": disk.misses,
                "schedule_cache_disk_stores": disk.stores,
                "schedule_cache_disk_evictions": disk.evictions,
                "schedule_cache_disk_corrupt": disk.corrupt,
            })

    def take_counts(self) -> Dict[str, int]:
        """Counter deltas since the last call, keyed by engine counter name.

        The cache lives outside the engine, so its statistics are invisible
        to :class:`~repro.machine.stats.RunResult` unless the caller turns
        them into ``Count`` events.  ``KaliRank.forall`` drains this after
        every lookup/store so ``counter_sum("schedule_cache_hits")`` works.
        Disk-tier counters surface the same way
        (``schedule_cache_disk_hits`` etc.).
        """
        pairs = [
            ("schedule_cache_hits", self.hits),
            ("schedule_cache_misses", self.misses),
            ("schedule_cache_invalidations", self.invalidations),
        ]
        if self.disk is not None:
            pairs += [
                ("schedule_cache_disk_hits", self.disk.hits),
                ("schedule_cache_disk_misses", self.disk.misses),
                ("schedule_cache_disk_stores", self.disk.stores),
                ("schedule_cache_disk_evictions", self.disk.evictions),
                ("schedule_cache_disk_corrupt", self.disk.corrupt),
            ]
        out: Dict[str, int] = {}
        for name, value in pairs:
            delta = value - self._reported.get(name, 0)
            if delta:
                out[name] = delta
                self._reported[name] = value
        return out

    def lookup(self, forall: Forall, env: Dict[str, LocalArray]) -> Optional[CommSchedule]:
        """Return a valid cached schedule, or None (miss / stale / disabled).

        Memory misses (including version/distribution invalidations) fall
        through to the disk tier when one is attached.
        """
        if not self.enabled:
            self.misses += 1
            return None
        sched = self._store.get(forall.label)
        if sched is not None:
            stale = False
            for name, version in sched.versions.items():
                local = env.get(name)
                if local is None or local.version != version:
                    stale = True
                    break
            if not stale:
                for name, dv in sched.dist_versions.items():
                    local = env.get(name)
                    if local is None or local.dist_version != dv:
                        stale = True
                        break
            if not stale:
                self.hits += 1
                return sched
            self.invalidations += 1
            del self._store[forall.label]
        else:
            self.misses += 1
        return self._disk_lookup(forall, env)

    def _disk_lookup(self, forall: Forall, env: Dict[str, LocalArray]) -> Optional[CommSchedule]:
        """Disk-tier fallback: content hash, load, re-stamp, promote."""
        if self.disk is None:
            return None
        key = _content_key(forall, env, self.translation)
        if key is None:
            return None
        sched = self.disk.load(key)
        if sched is None:
            return None
        sched.built_by = "disk-cache"  # provenance for strategies()/describe()
        # The stored version stamps belong to whichever process inspected
        # this schedule; the *content* matched, so the schedule is valid
        # for the data now in scope — adopt the current stamps.
        sched.versions = {
            name: env[name].version for name in sched.versions if name in env
        }
        sched.dist_versions = {
            name: env[name].dist_version
            for name in sched.dist_versions if name in env
        }
        self._store[forall.label] = sched
        return sched

    def store(self, forall: Forall, schedule: CommSchedule) -> None:
        """Memory-only store (disk stores need the env for the content
        key — callers with a disk tier use :meth:`store_through`)."""
        if self.enabled:
            self._store[forall.label] = schedule

    def store_through(self, forall: Forall, schedule: CommSchedule,
                      env: Dict[str, LocalArray]) -> None:
        """Store in memory and, when a disk tier is attached, persist
        inspector-built schedules under their content key."""
        if not self.enabled:
            return
        self._store[forall.label] = schedule
        if self.disk is not None and schedule.built_by == "inspector":
            key = _content_key(forall, env, self.translation)
            if key is not None:
                self.disk.store(key, schedule)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)
